#!/usr/bin/env python
"""Supply-voltage sweep: watch the delay distribution go non-Gaussian.

Regenerates the paper's Fig. 2 through the public API: the same
inverter arc is Monte-Carlo simulated at several supply voltages, and
the first four moments plus an ASCII sketch of each PDF are printed.
Above ~0.8 V the distribution is almost Gaussian; at 0.5 V it is wide,
right-skewed and heavy-tailed — the regime the N-sigma model exists for.

Run:
    python examples/voltage_sweep.py [n_samples]
"""

import sys

import numpy as np

from repro.cells.characterize import ArcCharacterizer, fanout_load
from repro.cells.library import build_default_library
from repro.moments.stats import Moments
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import PS
from repro.variation.parameters import Technology, VariationModel

VOLTAGES = (0.5, 0.6, 0.7, 0.8)


def ascii_pdf(delays_ps, width=56, height=7):
    """A small ASCII histogram sketch of the distribution."""
    hist, edges = np.histogram(delays_ps, bins=width, density=True)
    hist = hist / hist.max()
    rows = []
    for level in range(height, 0, -1):
        row = "".join(
            "#" if h * height >= level - 0.5 else " " for h in hist)
        rows.append("  |" + row)
    rows.append("  +" + "-" * width)
    rows.append(f"   {edges[0]:.0f} ps{'':>{max(0, width - 14)}}{edges[-1]:.0f} ps")
    return "\n".join(rows)


def main() -> None:
    n_samples = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    variation = VariationModel()
    print(f"INVx1 FO4 delay distribution vs supply ({n_samples} MC samples)\n")
    print(f"{'VDD':>5} {'mu(ps)':>8} {'sigma':>7} {'sig/mu':>7} "
          f"{'skew':>6} {'kurt':>6} {'+3σ/µ':>7}")
    sketches = {}
    for vdd in VOLTAGES:
        tech = Technology().at_vdd(vdd)
        library = build_default_library(tech)
        cell = library.get("INVx1")
        engine = MonteCarloEngine(tech, variation, seed=2026)
        res = ArcCharacterizer(engine).simulate_arc(
            cell, "A", 10 * PS, fanout_load(cell, tech), n_samples)
        d = res.delay[res.valid]
        m = Moments.from_samples(d)
        plus3 = float(np.quantile(d, 0.99865))
        print(f"{vdd:5.2f} {m.mu / PS:8.2f} {m.sigma / PS:7.2f} "
              f"{m.variability:7.1%} {m.skew:6.2f} {m.kurt:6.2f} "
              f"{plus3 / m.mu:7.2f}")
        sketches[vdd] = ascii_pdf(d / PS)

    for vdd in (0.8, 0.5):
        print(f"\nPDF sketch at {vdd} V:")
        print(sketches[vdd])
    print("\nAt 0.5 V the +3σ point sits far beyond mu+3sigma — the"
          " N-sigma model's raison d'être.")


if __name__ == "__main__":
    main()
