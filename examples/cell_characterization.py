#!/usr/bin/env python
"""Cell delay modeling walkthrough: moments, calibration, model shoot-out.

Reproduces the paper's Section III flow on one cell family:

1. characterize NOR2 arcs over the (slew × load) grid (Fig. 4 data);
2. fit the Eq. (2)/(3) operating-condition calibration and show the
   calibrated moments against held-out simulation points;
3. compare ±3σ estimates of LSN [12], Burr [13] and the N-sigma model
   (a single-cell slice of Table II).

Run:
    python examples/cell_characterization.py
"""

import numpy as np

from repro.cells.characterize import ArcCharacterizer, fanout_load
from repro.core.calibration import fit_arc_calibration
from repro.core.flow import DelayCalibrationFlow
from repro.moments.distributions import BurrXII, LogSkewNormal
from repro.moments.stats import Moments, empirical_sigma_quantiles
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel


def main() -> None:
    tech = Technology()
    variation = VariationModel()
    flow = DelayCalibrationFlow(
        tech, variation, seed=2,
        cache_dir="examples/.cache",
        n_samples=800,
        slews=[10 * PS, 60 * PS, 150 * PS, 300 * PS],
        loads=[0.1 * FF, 0.5 * FF, 1.5 * FF, 4.0 * FF],
        wire_fit_samples=300, wire_fit_trees=1,
        cell_names=["INVx1", "INVx2", "INVx4", "INVx8", "NOR2x2"],
    )
    models = flow.fit_models()
    table = flow.characterize().get("NOR2x2", "A", output_rising=False)

    # --- Fig. 4 style moment sweeps -----------------------------------
    print("NOR2x2 falling-arc moments over the characterization grid:")
    print(f"{'slew(ps)':>9} {'load(fF)':>9} {'mu(ps)':>8} {'sigma':>7} "
          f"{'skew':>6} {'kurt':>6}")
    for i, s in enumerate(table.slews):
        for j, c in enumerate(table.loads):
            mu, sg, sk, ku = table.moments[i, j]
            print(f"{s / PS:9.0f} {c / FF:9.2f} {mu / PS:8.2f} "
                  f"{sg / PS:7.2f} {sk:6.2f} {ku:6.2f}")

    # --- Eq. (2)/(3) calibration vs a held-out operating point --------
    calibration = fit_arc_calibration(table)
    engine = MonteCarloEngine(tech, variation, seed=321)
    cell = flow.library.get("NOR2x2")
    s_test, c_test = 100 * PS, 2.2 * FF  # not a grid point
    mc = ArcCharacterizer(engine).simulate_arc(cell, "A", s_test, c_test, 3000)
    truth = Moments.from_samples(mc.delay[mc.valid])
    pred = calibration.moments_at(s_test, c_test)
    print(f"\nCalibrated moments at held-out (100 ps, 2.2 fF):")
    for name, t, p in (("mu", truth.mu / PS, pred.mu / PS),
                       ("sigma", truth.sigma / PS, pred.sigma / PS),
                       ("skew", truth.skew, pred.skew),
                       ("kurt", truth.kurt, pred.kurt)):
        print(f"  {name:>5}: MC {t:7.3f}  Eq.(2/3) {p:7.3f}")

    # --- Table II slice ------------------------------------------------
    d = mc.delay[mc.valid]
    q = empirical_sigma_quantiles(d, (-3, 3))
    lsn = LogSkewNormal.fit(d)
    burr = BurrXII.fit(d)
    print("\n+/-3σ estimation errors at the held-out point (Table II style):")
    print(f"{'model':<10} {'-3σ err':>9} {'+3σ err':>9}")
    for name, model_q in (
        ("LSN", {n: lsn.sigma_quantile(n) for n in (-3, 3)}),
        ("Burr", {n: burr.sigma_quantile(n) for n in (-3, 3)}),
        ("N-sigma", {n: models.nsigma.quantile(truth, n) for n in (-3, 3)}),
    ):
        errs = [abs(model_q[n] - q[n]) / q[n] for n in (-3, 3)]
        print(f"{name:<10} {errs[0]:9.2%} {errs[1]:9.2%}")


if __name__ == "__main__":
    main()
