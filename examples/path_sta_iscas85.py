#!/usr/bin/env python
"""Full statistical STA on a benchmark circuit (Table III, one row).

Runs the complete paper flow on the c432-profile circuit:

1. characterize + calibrate the library (cached);
2. generate the mapped netlist with parasitics;
3. statistical STA: critical path and its Eq. (10) sigma-level quantiles;
4. golden transistor-level path Monte-Carlo for reference;
5. report the Table III quantities: delays, errors, runtimes, speedup.

Run (first run ~10 min — characterization + MC; cached afterwards):
    python examples/path_sta_iscas85.py [circuit] [mc_samples]

where circuit is one of c432..c7552, ADD, SUB, MUL, DIV.
"""

import sys

from repro.baselines.golden import GoldenPathMC
from repro.baselines.primetime import CornerSTA
from repro.core.flow import DelayCalibrationFlow
from repro.core.sta import StatisticalSTA
from repro.netlist.benchmarks import (
    ISCAS85_PROFILES,
    attach_parasitics,
    build_iscas85_like,
    build_pulpino_unit,
)
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "c432"
    n_mc = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    tech = Technology()
    variation = VariationModel()
    # Characterize the four cell families the benchmark circuits use
    # (full-library characterization works too — it just takes longer).
    families = ("INV", "NAND2", "NOR2", "AOI21")
    cells = [f"{t}x{s}" for t in families for s in (1, 2, 4, 8)]
    flow = DelayCalibrationFlow(
        tech, variation, seed=4,
        cache_dir="examples/.cache",
        n_samples=1000,
        slews=[s * PS for s in (10, 60, 150, 300)],
        loads=[c * FF for c in (0.1, 0.5, 1.5, 4.0, 9.0)],
        wire_fit_samples=400, wire_fit_trees=2,
        cell_names=cells,
    )
    print("Fitting models (cached after the first run)...")
    models = flow.fit_models()

    if name in ISCAS85_PROFILES:
        circuit = build_iscas85_like(name, type_names=families)
    else:
        circuit = build_pulpino_unit(name, 16 if name in ("MUL", "DIV") else 32)
    attach_parasitics(circuit, tech, seed=42)
    print(f"Circuit: {circuit}")

    sta = StatisticalSTA(circuit, models)
    result = sta.analyze()
    path = result.critical_path
    print(f"\nCritical path: {path.n_cells} cells, "
          f"cell delay {path.cell_total / PS:.0f} ps + wire "
          f"{path.wire_total / PS:.0f} ps (mean)")
    print("Path stages:")
    for s in path.stages:
        if not s.cell_name:
            print(f"  [launch] net {s.net} (wire {s.wire_elmore / PS:.2f} ps)")
            continue
        print(f"  {s.gate:<10} {s.cell_name:<9} pin {s.input_pin} "
              f"{'rise' if s.output_rising else 'fall'}  "
              f"slew {s.input_slew / PS:5.1f} ps  load {s.load / FF:5.2f} fF  "
              f"cell {s.cell_quantiles[0] / PS:6.1f} ps  "
              f"wire {s.wire_quantiles[0] / PS:5.2f} ps")

    print(f"\nModel sigma-level path delays (Eq. 10):")
    for n, q in path.quantiles.items():
        print(f"  {n:+d}σ: {q / PS:8.1f} ps")

    print(f"\nGolden path Monte-Carlo ({n_mc} samples)...")
    golden = GoldenPathMC(circuit, flow.library, tech, variation, seed=2024)
    mc = golden.run(path, n_samples=n_mc)
    corner = CornerSTA(models).analyze_path(path)

    print(f"\n{'':>10} {'-3σ (ps)':>10} {'+3σ (ps)':>10}")
    print(f"{'MC':>10} {mc.quantiles[-3] / PS:10.1f} {mc.quantiles[3] / PS:10.1f}")
    print(f"{'Ours':>10} {path.total(-3) / PS:10.1f} {path.total(3) / PS:10.1f}")
    print(f"{'Corner':>10} {corner.early / PS:10.1f} {corner.late / PS:10.1f}")
    err3 = abs(path.total(3) - mc.quantiles[3]) / mc.quantiles[3]
    errm3 = abs(path.total(-3) - mc.quantiles[-3]) / mc.quantiles[-3]
    pt_err = abs(corner.late - mc.quantiles[3]) / mc.quantiles[3]
    print(f"\nErrors vs MC: ours +3σ {err3:.1%}, -3σ {errm3:.1%}; "
          f"corner +3σ {pt_err:.1%}")
    print(f"Runtimes: MC {mc.runtime_s:.1f} s, model {result.runtime_s:.3f} s "
          f"(speedup {mc.runtime_s / max(result.runtime_s, 1e-9):.0f}x)")


if __name__ == "__main__":
    main()
