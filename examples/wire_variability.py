#!/usr/bin/env python
"""Wire delay variability and the driver/load interaction (Section IV).

Demonstrates the paper's wire modeling chain on one routed net:

1. the Elmore mean (Eq. 4) vs the Monte-Carlo wire-delay distribution
   (the Fig. 7 gap);
2. how σw/µw responds to driver and load strength (Fig. 8);
3. the calibrated Eq. (7) model predicting ±3σ wire delays for
   driver/load pairs it never saw (Fig. 10 style check).

Run:
    python examples/wire_variability.py
"""

import numpy as np

from repro.core.flow import DelayCalibrationFlow
from repro.core.nsigma_wire import (
    annotated_elmore,
    cell_variability_ratio,
    measure_wire_variability,
)
from repro.interconnect.generate import NetGenerator
from repro.moments.stats import empirical_sigma_quantiles
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS, UM
from repro.variation.parameters import Technology, VariationModel


def main() -> None:
    tech = Technology()
    variation = VariationModel()
    flow = DelayCalibrationFlow(
        tech, variation, seed=3,
        cache_dir="examples/.cache",
        n_samples=800,
        slews=[10 * PS, 80 * PS, 250 * PS],
        loads=[0.1 * FF, 1.0 * FF, 4.0 * FF],
        wire_fit_samples=400, wire_fit_trees=2,
        cell_names=["INVx1", "INVx2", "INVx4", "INVx8"],
    )
    models = flow.fit_models()
    engine = MonteCarloEngine(tech, variation, seed=555)
    gen = NetGenerator(tech, seed=55)
    tree = gen.chain(60 * UM)
    sink = tree.leaves()[0]
    print(f"Example net: {tree}")

    # --- Fig. 7: Elmore vs the distribution ---------------------------
    moments, samples = measure_wire_variability(
        engine, flow.library, "INVx4", "INVx4", tree, sink=sink,
        n_samples=2000)
    elmore = annotated_elmore(tech, flow.library, tree, sink, "INVx4")
    q = empirical_sigma_quantiles(samples.delay[samples.valid], (-3, 0, 3))
    print(f"\nElmore (annotated): {elmore / PS:6.2f} ps")
    print(f"MC mean           : {moments.mu / PS:6.2f} ps")
    print(f"MC 99.86% (+3σ)   : {q[3] / PS:6.2f} ps "
          f"({100 * (q[3] / elmore - 1):+.1f}% above Elmore — the Fig. 7 gap)")

    # --- Fig. 8: strength sweeps ---------------------------------------
    print("\nWire variability σw/µw vs cell strengths (Fig. 8):")
    for role in ("driver", "load"):
        xs = []
        for s in (1, 2, 4):
            drv, ld = (f"INVx{s}", "INVx4") if role == "driver" else ("INVx4", f"INVx{s}")
            m, _ = measure_wire_variability(
                engine, flow.library, drv, ld, tree, sink=sink, n_samples=800)
            xs.append(m.variability)
        trend = " -> ".join(f"{x:.4f}" for x in xs)
        print(f"  sweep {role:<6} strength 1->2->4: Xw {trend}")

    # --- Eq. (7)/(9) prediction on an unseen pair ----------------------
    drv, ld = "INVx2", "INVx8"
    m, samples = measure_wire_variability(
        engine, flow.library, drv, ld, tree, sink=sink, n_samples=2000)
    truth = empirical_sigma_quantiles(samples.delay[samples.valid], (-3, 3))
    elm = annotated_elmore(tech, flow.library, tree, sink, ld)
    r_fi = cell_variability_ratio(models.calibrated, drv)
    r_fo = cell_variability_ratio(models.calibrated, ld)
    print(f"\nEq. (7) prediction for unseen pair {drv} -> {ld}:")
    print(f"  X_w = {models.wire.wire_variability(r_fi, r_fo):.4f} "
          f"(measured {m.variability:.4f})")
    for n in (-3, 3):
        pred = models.wire.wire_quantile(elm, r_fi, r_fo, n)
        print(f"  T_w({n:+d}σ): model {pred / PS:6.2f} ps, "
              f"MC {truth[n] / PS:6.2f} ps "
              f"(err {abs(pred - truth[n]) / truth[n]:.1%})")


if __name__ == "__main__":
    main()
