#!/usr/bin/env python
"""Quickstart: N-sigma quantiles of one cell arc in ~a minute.

Builds the synthetic 28 nm-class process, Monte-Carlo-characterizes a
NAND2 gate at the near-threshold corner (0.6 V), fits the paper's
Table I N-sigma model, and compares its ±3σ delay predictions against
the golden Monte-Carlo distribution.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.cells.characterize import ArcCharacterizer, fanout_load
from repro.cells.library import build_default_library
from repro.core.flow import DelayCalibrationFlow
from repro.moments.stats import SIGMA_LEVELS, Moments, empirical_sigma_quantiles
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel


def main() -> None:
    tech = Technology()  # 0.6 V near-threshold by default
    variation = VariationModel()
    print(f"Technology: VDD={tech.vdd} V, Vt={tech.vt0_n} V (near-threshold)")

    # 1. Fit the models. A small grid keeps the first run around a
    #    minute; results are cached under examples/.cache afterwards.
    flow = DelayCalibrationFlow(
        tech, variation, seed=1,
        cache_dir="examples/.cache",
        n_samples=800,
        slews=[10 * PS, 80 * PS, 250 * PS],
        loads=[0.1 * FF, 1.0 * FF, 4.0 * FF],
        wire_fit_samples=300, wire_fit_trees=1,
        cell_names=["INVx1", "INVx2", "INVx4", "INVx8", "NAND2x2"],
    )
    models = flow.fit_models()
    print("Models fitted (Table I coefficients + Eq. 2/3 calibrations "
          "+ Eq. 7 wire weights).")

    # 2. Golden Monte-Carlo of a NAND2x2 arc, out-of-sample seed.
    library = build_default_library(tech)
    cell = library.get("NAND2x2")
    engine = MonteCarloEngine(tech, variation, seed=123)
    mc = ArcCharacterizer(engine).simulate_arc(
        cell, "A", input_slew=30 * PS, load=fanout_load(cell, tech),
        n_samples=4000)
    delays = mc.delay[mc.valid]
    truth = empirical_sigma_quantiles(delays)
    moments = Moments.from_samples(delays)
    print(f"\n{cell.name} FO4 arc: mu={moments.mu / PS:.2f} ps, "
          f"sigma/mu={moments.variability:.1%}, skew={moments.skew:.2f}, "
          f"kurt={moments.kurt:.2f}")

    # 3. The N-sigma model predicts every sigma level from the moments.
    print(f"\n{'level':>6} {'MC (ps)':>9} {'N-sigma (ps)':>13} "
          f"{'Gaussian (ps)':>14} {'err':>7}")
    for n in SIGMA_LEVELS:
        pred = models.nsigma.quantile(moments, n)
        gauss = moments.gaussian_quantile(n)
        err = (pred - truth[n]) / truth[n]
        print(f"{n:+6d} {truth[n] / PS:9.2f} {pred / PS:13.2f} "
              f"{gauss / PS:14.2f} {err:+7.1%}")
    print("\nNote how mu+3*sigma (Gaussian) misses the skewed +3σ tail "
          "while Table I tracks it.")


if __name__ == "__main__":
    main()
