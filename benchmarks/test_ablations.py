"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations quantify why the paper's modeling pieces are there:

1. **Table I interaction terms** — refit the quantile model with only
   the Gaussian ``mu + n*sigma`` part (all corrections zeroed) and with
   the full feature set; compare ±3σ errors.
2. **Cubic vs linear skew/kurt calibration (Eq. 3)** — evaluate how
   much of the skew/kurt operating-condition dependence a bilinear
   model would miss.
3. **Cell terms of the wire model (Eq. 7)** — fit X_w with and without
   the driver/load features (intercept-only = "BEOL-only" model).
"""

import numpy as np
import pytest

from conftest import record_result
from repro.core.nsigma_wire import WireVariabilityModel, fit_wire_model
from repro.interconnect.generate import NetGenerator
from repro.moments.regression import fit_linear, polynomial_features
from repro.moments.stats import SIGMA_LEVELS, Moments
from repro.units import UM


@pytest.fixture(scope="module")
def observations(flow):
    charac = flow.characterize()
    obs = []
    for table in charac.tables.values():
        for i in range(table.slews.size):
            for j in range(table.loads.size):
                mu, sg, sk, ku = table.moments[i, j]
                q = {lvl: table.quantiles[i, j, k]
                     for k, lvl in enumerate(SIGMA_LEVELS)}
                obs.append((Moments(mu, sg, sk, ku), q))
    return obs


class TestTable1Ablation:
    def test_interaction_terms_cut_tail_error(self, observations, models, benchmark):
        def errors():
            gauss, full = [], []
            for m, q in observations:
                gauss.append(abs(m.gaussian_quantile(3) - q[3]) / q[3])
                full.append(abs(models.nsigma.quantile(m, 3) - q[3]) / q[3])
            return float(np.mean(gauss)), float(np.mean(full))

        gauss_err, full_err = benchmark(errors)
        print(f"\nAblation 1 — +3σ error: Gaussian {100 * gauss_err:.2f}% vs "
              f"Table I {100 * full_err:.2f}%")
        assert full_err < 0.6 * gauss_err
        record_result("ablation_table1_terms", {
            "gaussian_err3_pct": 100 * gauss_err,
            "table1_err3_pct": 100 * full_err,
        })


class TestEq3Ablation:
    def test_cubic_beats_linear_for_skew(self, flow, benchmark):
        table = flow.characterize().get("INVx1", "A", False)
        ss, cc = np.meshgrid(table.slews, table.loads, indexing="ij")
        ds = (ss.ravel() - 10e-12) / 100e-12
        dc = (cc.ravel() - 0.4e-15) / 1e-15
        skew = table.moments[..., 2].ravel()

        def fit_both():
            lin = fit_linear(polynomial_features(ds, dc, 1), skew - skew.mean())
            cub = fit_linear(polynomial_features(ds, dc, 3), skew - skew.mean())
            return lin.residual_rms, cub.residual_rms

        lin_rms, cub_rms = benchmark(fit_both)
        print(f"\nAblation 2 — skew fit residual: linear {lin_rms:.4f} vs "
              f"cubic {cub_rms:.4f}")
        assert cub_rms < lin_rms
        record_result("ablation_eq3_cubic", {
            "linear_rms": lin_rms, "cubic_rms": cub_rms,
        })


class TestEq7Ablation:
    def test_cell_terms_explain_wire_variability(self, flow, models,
                                                 golden_engine, benchmark):
        gen = NetGenerator(flow.tech, seed=4242)
        trees = [gen.random_net(mean_length=45 * UM, max_branches=1)
                 for _ in range(2)]
        full, observations = fit_wire_model(
            golden_engine, flow.library, models.calibrated, trees,
            driver_names=("INVx1", "INVx2", "INVx4", "INVx8"),
            load_names=("INVx1", "INVx4", "INVx8"),
            n_samples=500)

        def intercept_only():
            obs = np.asarray(observations)
            mean_xw = float(np.mean(obs[:, 2]))
            resid_const = float(np.sqrt(np.mean((obs[:, 2] - mean_xw) ** 2)))
            return resid_const, full.residual_rms

        const_rms, full_rms = benchmark(intercept_only)
        print(f"\nAblation 3 — X_w residual: intercept-only {const_rms:.4f} vs "
              f"Eq.(7) {full_rms:.4f} (R2 {full.r_squared:.3f})")
        assert full_rms < const_rms
        record_result("ablation_eq7_cell_terms", {
            "intercept_only_rms": const_rms,
            "eq7_rms": full_rms,
            "eq7_r2": full.r_squared,
        })
