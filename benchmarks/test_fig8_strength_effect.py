"""Fig. 8 — wire delay distribution vs driver/load strengths 1, 2, 4.

The paper's observation on the same RC tree with different driver/load
inverters: the mean scales with the load (and against the driver)
strength, and the *variability* σw/µw rises with load strength and
falls with driver strength — the empirical basis of Eq. (5).
"""

import numpy as np
import pytest

from conftest import N_MC, record_result
from repro.core.nsigma_wire import measure_wire_variability
from repro.interconnect.generate import NetGenerator
from repro.units import PS, UM

STRENGTHS = (1, 2, 4)


@pytest.fixture(scope="module")
def fig8(flow, golden_engine):
    gen = NetGenerator(flow.tech, seed=8)
    tree = gen.chain(50 * UM)
    n = max(800, N_MC // 3)
    sweep = {"driver": {}, "load": {}}
    for s in STRENGTHS:
        m_drv, _ = measure_wire_variability(
            golden_engine, flow.library, f"INVx{s}", "INVx4", tree, n_samples=n)
        sweep["driver"][s] = m_drv
        m_load, _ = measure_wire_variability(
            golden_engine, flow.library, "INVx4", f"INVx{s}", tree, n_samples=n)
        sweep["load"][s] = m_load
    return sweep


class TestFig8:
    def test_mean_rises_with_load_strength(self, fig8):
        mus = [fig8["load"][s].mu for s in STRENGTHS]
        assert mus[0] < mus[1] < mus[2]

    def test_variability_rises_with_load_strength(self, fig8):
        xs = [fig8["load"][s].variability for s in STRENGTHS]
        assert xs[2] > xs[0]

    def test_variability_falls_with_driver_strength(self, fig8):
        xs = [fig8["driver"][s].variability for s in STRENGTHS]
        assert xs[2] < xs[0] * 1.15  # downward or flat-to-down trend

    def test_report(self, fig8, benchmark):
        def build():
            return {
                kind: {
                    str(s): {
                        "mu_ps": fig8[kind][s].mu / PS,
                        "sigma_ps": fig8[kind][s].sigma / PS,
                        "xw": fig8[kind][s].variability,
                    }
                    for s in STRENGTHS
                }
                for kind in ("driver", "load")
            }

        table = benchmark(build)
        print("\nFig. 8 — wire delay vs driver/load inverter strength")
        for kind in ("driver", "load"):
            print(f"  sweep {kind} (other side INVx4):")
            for s in STRENGTHS:
                r = table[kind][str(s)]
                print(f"    x{s}: mu {r['mu_ps']:6.2f} ps  sigma "
                      f"{r['sigma_ps']:5.2f} ps  Xw {r['xw']:.4f}")
        record_result("fig8_strength_effect", table)
