"""Table III — path delay analysis on ISCAS85 + PULPino functional units.

The paper's headline table: for each benchmark circuit, the critical
path's ±3σ delay from Monte-Carlo (golden), from a PrimeTime-style
corner flow [7], from the ML-based wire method [9], from the
correction-factor method [8], and from the N-sigma model — plus
runtimes. Shape targets: Ours closest to MC at both tails (paper: 5.6 %
/ 3.6 % average), Correction ≈ 12 %, ML ≈ 18 %, PT ≈ 31 %, with the
model orders of magnitude faster than MC.

Circuit scale note: the PULPino MUL/DIV units are built at reduced
operand width (the paper's 49k/51k-cell units would only lengthen the
Monte-Carlo reference, not change the per-stage modeling), and the
ISCAS85 circuits are the profile-matched synthetics of
``repro.netlist.benchmarks``. Select a subset with, e.g.,
``REPRO_TABLE3_CIRCUITS=c432,ADD`` for quick runs.
"""

import os
import time

import numpy as np
import pytest

from conftest import N_PATH_MC, record_result
from repro.baselines.correction import CorrectionBasedSTA
from repro.baselines.golden import GoldenPathMC
from repro.baselines.ml_wire import MLPRegressor, MLWireModel
from repro.baselines.primetime import CornerSTA
from repro.core.sta import StatisticalSTA
from repro.interconnect.generate import NetGenerator
from repro.netlist.benchmarks import (
    ISCAS85_PROFILES,
    attach_parasitics,
    build_iscas85_like,
    build_pulpino_unit,
)
from repro.units import PS, UM

_DEFAULT = [*ISCAS85_PROFILES, "ADD", "SUB", "MUL", "DIV"]
CIRCUITS = [
    c.strip()
    for c in os.environ.get("REPRO_TABLE3_CIRCUITS", ",".join(_DEFAULT)).split(",")
    if c.strip()
]

#: Reduced operand widths for the array units (runtime, not behaviour).
UNIT_WIDTHS = {"ADD": 32, "SUB": 32, "MUL": 10, "DIV": 10}


#: Cell families the benchmark flow characterizes (see conftest).
BENCH_TYPES = ("INV", "NAND2", "NOR2", "AOI21")


def _build(name, tech):
    if name in ISCAS85_PROFILES:
        circuit = build_iscas85_like(name, type_names=BENCH_TYPES)
    else:
        circuit = build_pulpino_unit(name, UNIT_WIDTHS[name])
    attach_parasitics(circuit, tech, seed=hash(name) % 100000)
    return circuit


@pytest.fixture(scope="module")
def comparators(flow, models, golden_engine):
    """Calibrate/train the baseline methods once."""
    gen = NetGenerator(flow.tech, seed=3333)
    calib_trees = [gen.random_net(mean_length=40 * UM, max_branches=1)
                   for _ in range(3)]
    corner = CornerSTA(models)
    correction = CorrectionBasedSTA.calibrate(
        models, golden_engine, calib_trees, n_samples=400)
    ml = MLWireModel.train(
        models, golden_engine, calib_trees,
        driver_names=("INVx1", "INVx4", "NAND2x2"),
        load_names=("INVx1", "INVx4", "NAND2x2"),
        n_samples=300,
        network=MLPRegressor(hidden=20, epochs=800),
    )
    return corner, correction, ml


@pytest.fixture(scope="module")
def table3(flow, models, golden_engine, comparators):
    corner, correction, ml = comparators
    rows = {}
    for name in CIRCUITS:
        circuit = _build(name, flow.tech)
        sta = StatisticalSTA(circuit, models)
        result = sta.analyze()
        path = result.critical_path
        print(f"[table3] {name}: {circuit.n_cells} cells, "
              f"path {path.n_cells} stages; golden MC ({N_PATH_MC} samples)...",
              flush=True)

        golden = GoldenPathMC(
            circuit, flow.library, flow.tech, flow.variation,
            seed=1000 + len(name))
        mc = golden.run(path, n_samples=N_PATH_MC)
        print(f"[table3] {name}: MC done in {mc.runtime_s:.0f}s "
              f"(valid {mc.valid_fraction:.2f})", flush=True)

        pt = corner.analyze_path(path)
        corr_late, corr_early, corr_rt = correction.analyze_path(path)
        ml_late, ml_early, ml_rt = ml.analyze_path(path, circuit)

        truth3 = mc.quantiles[3]
        truth_m3 = mc.quantiles[-3]
        rho = models.stage_correlation
        rows[name] = {
            "n_nets": circuit.n_nets,
            "n_cells": circuit.n_cells,
            "path_cells": path.n_cells,
            "mc": {"-3": truth_m3 / PS, "3": truth3 / PS,
                   "runtime_s": mc.runtime_s,
                   "valid": mc.valid_fraction},
            "pt": {"late_ps": pt.late / PS,
                   "err3": abs(pt.late - truth3) / truth3,
                   "runtime_s": pt.runtime_s},
            "ml": {"late_ps": ml_late / PS,
                   "err3": abs(ml_late - truth3) / truth3,
                   "runtime_s": ml_rt},
            "correction": {"late_ps": corr_late / PS,
                           "err3": abs(corr_late - truth3) / truth3,
                           "runtime_s": corr_rt},
            "ours": {"-3": path.total(-3) / PS, "3": path.total(3) / PS,
                     "err3": abs(path.total(3) - truth3) / truth3,
                     "err_m3": abs(path.total(-3) - truth_m3) / truth_m3,
                     "runtime_s": result.runtime_s},
            # Reproduction extension: correlation-aware Eq. (10).
            "ours_rho": {
                "-3": path.total_correlated(-3, rho) / PS,
                "3": path.total_correlated(3, rho) / PS,
                "err3": abs(path.total_correlated(3, rho) - truth3) / truth3,
                "err_m3": abs(path.total_correlated(-3, rho) - truth_m3)
                / truth_m3,
            },
        }
    return rows


def _avg(rows, method, key):
    return float(np.mean([rows[c][method][key] for c in rows]))


class TestTable3:
    def test_all_circuits_analyzed(self, table3):
        assert set(table3) == set(CIRCUITS)
        for name, row in table3.items():
            assert row["mc"]["valid"] > 0.9, name

    def test_ours_plus3_average_error(self, table3):
        # Paper: 3.6% average. Eq. (10)'s comonotone sum over-widens
        # long paths on our substrate (stage correlation ~0.6-0.7);
        # allow the corresponding headroom — the correlation-aware
        # extension below recovers the tighter band.
        assert _avg(table3, "ours", "err3") < 0.16

    def test_ours_minus3_average_error(self, table3):
        # Paper: 5.6% average (its worst tail too).
        assert _avg(table3, "ours", "err_m3") < 0.25

    def test_correlation_extension_tightens_minus3(self, table3):
        assert _avg(table3, "ours_rho", "err_m3") <= _avg(table3, "ours", "err_m3")

    def test_every_method_beats_corner(self, table3):
        pt = _avg(table3, "pt", "err3")
        for method in ("ours", "ours_rho", "ml", "correction"):
            assert _avg(table3, method, "err3") < pt

    def test_pt_strongly_pessimistic(self, table3):
        # Paper: 31.4% average overestimate (ours is larger still — the
        # synthetic near-threshold corner is harsher).
        assert _avg(table3, "pt", "err3") > 0.15

    def test_speedup_over_mc(self, table3):
        # Paper: 103x over SPICE MC on average.
        speedups = [row["mc"]["runtime_s"] / max(row["ours"]["runtime_s"], 1e-9)
                    for row in table3.values()]
        assert float(np.mean(speedups)) > 50

    def test_model_runtime_scales_with_cells(self, table3):
        if len(table3) < 4:
            pytest.skip("needs several circuits")
        cells = np.array([row["n_cells"] for row in table3.values()], float)
        runtime = np.array([row["ours"]["runtime_s"] for row in table3.values()])
        rho = np.corrcoef(cells, runtime)[0, 1]
        assert rho > 0.5  # "runtime ... in direct proportion to the number of cells"

    def test_report(self, table3, benchmark):
        def build():
            avg = {
                "pt_err3_pct": 100 * _avg(table3, "pt", "err3"),
                "ml_err3_pct": 100 * _avg(table3, "ml", "err3"),
                "correction_err3_pct": 100 * _avg(table3, "correction", "err3"),
                "ours_err3_pct": 100 * _avg(table3, "ours", "err3"),
                "ours_err_m3_pct": 100 * _avg(table3, "ours", "err_m3"),
                "ours_rho_err3_pct": 100 * _avg(table3, "ours_rho", "err3"),
                "ours_rho_err_m3_pct": 100 * _avg(table3, "ours_rho", "err_m3"),
                "mc_runtime_s": _avg(table3, "mc", "runtime_s"),
                "ours_runtime_s": _avg(table3, "ours", "runtime_s"),
            }
            return {"rows": table3, "avg": avg}

        table = benchmark(build)
        print("\nTable III — path analysis (delays in ps, errors vs MC +3σ)")
        header = (f"{'circuit':<8} {'nets':>6} {'cells':>6} {'MC-3σ':>8} "
                  f"{'MC+3σ':>8} {'PT':>8} {'ML':>8} {'Corr':>8} {'Ours-3':>8} "
                  f"{'Ours+3':>8} {'ePT':>5} {'eML':>5} {'eCo':>5} {'eOu':>5} "
                  f"{'tMC':>7} {'tOurs':>7}")
        print(header)
        for name, r in table3.items():
            print(f"{name:<8} {r['n_nets']:>6} {r['n_cells']:>6} "
                  f"{r['mc']['-3']:8.1f} {r['mc']['3']:8.1f} "
                  f"{r['pt']['late_ps']:8.1f} {r['ml']['late_ps']:8.1f} "
                  f"{r['correction']['late_ps']:8.1f} "
                  f"{r['ours']['-3']:8.1f} {r['ours']['3']:8.1f} "
                  f"{100 * r['pt']['err3']:4.0f}% {100 * r['ml']['err3']:4.0f}% "
                  f"{100 * r['correction']['err3']:4.0f}% "
                  f"{100 * r['ours']['err3']:4.0f}% "
                  f"{r['mc']['runtime_s']:7.1f} {r['ours']['runtime_s']:7.3f}")
        avg = table["avg"]
        print(f"Avg errors: PT {avg['pt_err3_pct']:.1f}%  ML {avg['ml_err3_pct']:.1f}%  "
              f"Corr {avg['correction_err3_pct']:.1f}%  Ours +3σ {avg['ours_err3_pct']:.1f}%"
              f" / -3σ {avg['ours_err_m3_pct']:.1f}%")
        print(f"Correlation-aware extension: +3σ {avg['ours_rho_err3_pct']:.1f}% "
              f"/ -3σ {avg['ours_rho_err_m3_pct']:.1f}%")
        print(f"Avg speedup over MC: "
              f"{avg['mc_runtime_s'] / max(avg['ours_runtime_s'], 1e-9):.0f}x")
        record_result("table3_path_analysis", table)
