"""Fig. 2 — inverter delay PDFs from 0.5 V to 0.8 V.

The paper's motivating figure: as the supply drops toward threshold,
the delay distribution widens, right-skews and grows a heavy tail.
This benchmark regenerates the distribution statistics per supply and
checks the monotone trends; the "PDF" is reported as histogram data in
the JSON result.
"""

import numpy as np
import pytest

from conftest import N_MC, record_result
from repro.cells.characterize import ArcCharacterizer, fanout_load
from repro.cells.library import build_default_library
from repro.moments.stats import Moments
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import PS
from repro.variation.parameters import Technology, VariationModel

VOLTAGES = (0.5, 0.6, 0.7, 0.8)


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    for vdd in VOLTAGES:
        tech = Technology().at_vdd(vdd)
        library = build_default_library(tech)
        engine = MonteCarloEngine(tech, VariationModel(), seed=20)
        cell = library.get("INVx1")
        res = ArcCharacterizer(engine).simulate_arc(
            cell, "A", 10 * PS, fanout_load(cell, tech), N_MC)
        d = res.delay[res.valid]
        hist, edges = np.histogram(d / PS, bins=60, density=True)
        rows[vdd] = {
            "moments": Moments.from_samples(d),
            "hist": hist.tolist(),
            "edges": edges.tolist(),
        }
    return rows


class TestFig2:
    def test_mean_delay_decreases_with_vdd(self, sweep):
        mus = [sweep[v]["moments"].mu for v in VOLTAGES]
        assert all(a > b for a, b in zip(mus, mus[1:]))

    def test_variability_decreases_with_vdd(self, sweep):
        ratios = [sweep[v]["moments"].variability for v in VOLTAGES]
        assert all(a > b for a, b in zip(ratios, ratios[1:]))

    def test_skewness_decreases_with_vdd(self, sweep):
        skews = [sweep[v]["moments"].skew for v in VOLTAGES]
        assert skews[0] > skews[-1]
        assert skews[0] > 0.5  # clearly non-Gaussian at 0.5 V

    def test_kurtosis_above_gaussian_at_low_vdd(self, sweep):
        assert sweep[0.5]["moments"].kurt > 3.5

    def test_report(self, sweep, benchmark):
        def summarize():
            return {
                str(v): {
                    "mu_ps": sweep[v]["moments"].mu / PS,
                    "sigma_ps": sweep[v]["moments"].sigma / PS,
                    "skew": sweep[v]["moments"].skew,
                    "kurt": sweep[v]["moments"].kurt,
                }
                for v in VOLTAGES
            }

        table = benchmark(summarize)
        print("\nFig. 2 — INVx1 delay distribution vs supply voltage")
        print(f"{'VDD':>5} {'mu(ps)':>9} {'sigma':>8} {'skew':>7} {'kurt':>7}")
        for v in VOLTAGES:
            r = table[str(v)]
            print(f"{v:5.2f} {r['mu_ps']:9.2f} {r['sigma_ps']:8.2f} "
                  f"{r['skew']:7.2f} {r['kurt']:7.2f}")
        record_result("fig2_voltage_pdfs", {
            "summary": table,
            "histograms": {str(v): {"hist": sweep[v]["hist"],
                                    "edges": sweep[v]["edges"]}
                           for v in VOLTAGES},
        })
