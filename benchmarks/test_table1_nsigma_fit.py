"""Table I — the fitted N-sigma quantile model coefficients.

Regenerates the regression behind Table I (coefficients ``A_ni`` /
``B_nj`` per sigma level) on the benchmark library characterization and
reports per-level fit quality. The key claims checked: the model's
corrections are significant exactly where Table I places them, and the
fit reduces the residual of the naive Gaussian ``mu + n*sigma`` model.
"""

import numpy as np
import pytest

from conftest import record_result
from repro.core.nsigma_cell import QUANTILE_FEATURES
from repro.moments.stats import SIGMA_LEVELS, Moments


@pytest.fixture(scope="module")
def fit_data(flow, models):
    charac = flow.characterize()
    observations = []
    for table in charac.tables.values():
        for i in range(table.slews.size):
            for j in range(table.loads.size):
                mu, sg, sk, ku = table.moments[i, j]
                q = {lvl: table.quantiles[i, j, k]
                     for k, lvl in enumerate(SIGMA_LEVELS)}
                observations.append((Moments(mu, sg, sk, ku), q))
    return models.nsigma, observations


class TestTable1:
    def test_every_level_fitted(self, fit_data):
        model, _ = fit_data
        assert set(model.coefficients) == set(SIGMA_LEVELS)
        for level in SIGMA_LEVELS:
            assert model.coefficients[level].shape == (
                len(QUANTILE_FEATURES[level]),)

    def test_model_beats_gaussian_everywhere(self, fit_data):
        model, observations = fit_data
        for level in SIGMA_LEVELS:
            if level == 0:
                continue
            model_err, gauss_err = [], []
            for m, q in observations:
                model_err.append(abs(model.quantile(m, level) - q[level]))
                gauss_err.append(abs(m.gaussian_quantile(level) - q[level]))
            assert np.mean(model_err) < np.mean(gauss_err)

    def test_tail_correction_substantial(self, fit_data):
        # At +3 sigma the Gaussian assumption is badly biased for
        # right-skewed delays; Table I must recover most of it.
        model, observations = fit_data
        improvement = []
        for m, q in observations:
            gauss = abs(m.gaussian_quantile(3) - q[3])
            ours = abs(model.quantile(m, 3) - q[3])
            improvement.append(gauss - ours)
        assert np.mean(improvement) > 0
        rel = np.mean([abs(m.gaussian_quantile(3) - q[3]) / q[3]
                       for m, q in observations])
        assert rel > 0.03  # the Gaussian bias the correction removes

    def test_fit_rms_small_relative_to_delay(self, fit_data):
        model, observations = fit_data
        mean_mu = np.mean([m.mu for m, _ in observations])
        for level in SIGMA_LEVELS:
            assert model.fit_rms[level] < 0.08 * mean_mu

    def test_report(self, fit_data, benchmark):
        model, observations = fit_data

        def build():
            rows = {}
            for level in SIGMA_LEVELS:
                err = [abs(model.quantile(m, level) - q[level]) / q[level]
                       for m, q in observations]
                rows[str(level)] = {
                    "features": list(QUANTILE_FEATURES[level]),
                    "coefficients": model.coefficients[level].tolist(),
                    "fit_rms_ps": model.fit_rms[level] * 1e12,
                    "mean_rel_err_pct": 100 * float(np.mean(err)),
                }
            return rows

        table = benchmark(build)
        print("\nTable I — N-sigma quantile model (fitted)")
        print(f"{'level':>6} {'features':<16} {'rms(ps)':>8} {'err%':>6}")
        for level in SIGMA_LEVELS:
            r = table[str(level)]
            print(f"{level:+6d} {','.join(r['features']):<16} "
                  f"{r['fit_rms_ps']:8.3f} {r['mean_rel_err_pct']:6.2f}")
        record_result("table1_nsigma_fit", table)
