"""Shared fixtures for the paper-reproduction benchmarks.

Fidelity is controlled by environment variables so the same harness
serves quick shape checks and paper-fidelity runs:

================  =======  =====================================
variable          default  meaning
================  =======  =====================================
REPRO_BENCH_SAMPLES  1200  MC samples per characterization point
REPRO_BENCH_MC       3000  MC samples for golden references
REPRO_BENCH_PATH_MC   400  MC samples for golden *path* references
REPRO_WORKERS           1  characterization worker processes
================  =======  =====================================

Characterization and fitted models are cached under
``benchmarks/.bench_cache`` (delete to force re-characterization);
the flow additionally keeps per-arc content-hashed tables there via
:class:`repro.cache.JsonCache` (``arc_*.json`` — changing any knob
that affects the physics changes the hash, so stale reuse is
impossible). Each benchmark writes its reproduced table/figure data
as JSON into ``benchmarks/results/`` — the source for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.flow import DelayCalibrationFlow
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / ".bench_cache"
RESULTS_DIR = BENCH_DIR / "results"

#: Monte-Carlo fidelity knobs.
N_CHARAC = int(os.environ.get("REPRO_BENCH_SAMPLES", "1200"))
N_MC = int(os.environ.get("REPRO_BENCH_MC", "3000"))
N_PATH_MC = int(os.environ.get("REPRO_BENCH_PATH_MC", "400"))

#: Cells the benchmark flow characterizes: Table II's NOR2/NAND2/AOI2
#: families plus the INV strengths (FO4 baseline, wire sweeps, Fig. 2/4).
BENCH_CELLS = [
    f"{t}x{s}"
    for t in ("INV", "NAND2", "NOR2", "AOI21")
    for s in (1, 2, 4, 8)
]

BENCH_SLEWS = tuple(s * PS for s in (10, 60, 150, 300))
#: Up to 20 fF: the FO4 load of the x8 cells reaches ~18 fF.
BENCH_LOADS = tuple(c * FF for c in (0.1, 0.4, 1.5, 4.0, 9.0, 20.0))


def pytest_configure(config):
    """Show the captured table/figure prints of passing benchmarks.

    The reproduction tables are printed inside the tests; without this,
    a plain ``pytest benchmarks/ --benchmark-only`` would swallow them.
    """
    if "P" not in (config.option.reportchars or ""):
        config.option.reportchars = (config.option.reportchars or "") + "P"


@pytest.fixture(scope="session")
def flow() -> DelayCalibrationFlow:
    """The benchmark calibration flow (cached on disk)."""
    return DelayCalibrationFlow(
        seed=2023,
        cache_dir=str(CACHE_DIR),
        n_samples=N_CHARAC,
        slews=BENCH_SLEWS,
        loads=BENCH_LOADS,
        wire_fit_samples=max(400, N_CHARAC // 3),
        wire_fit_trees=2,
        cell_names=BENCH_CELLS,
        nsigma_fit_samples=max(6000, 4 * N_CHARAC),
    )


@pytest.fixture(scope="session")
def models(flow):
    """Fitted models of the benchmark flow."""
    return flow.fit_models()


@pytest.fixture(scope="session")
def golden_engine(flow) -> MonteCarloEngine:
    """Out-of-sample Monte-Carlo engine for golden references."""
    return MonteCarloEngine(flow.tech, flow.variation, seed=777)


def record_result(name: str, payload: dict) -> None:
    """Persist a benchmark's reproduced table/figure as JSON."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    with (RESULTS_DIR / f"{name}.json").open("w") as fh:
        json.dump(payload, fh, indent=2)


@pytest.fixture()
def record():
    """Fixture alias for :func:`record_result`."""
    return record_result
