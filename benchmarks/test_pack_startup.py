"""Cold-start cost: mmap'd ``.rpk`` pack vs JSON parse + tensor rebuild.

Operational benchmark of the packed design database (:mod:`repro.pack`):

* **cold reload** — on the benchmark circuit (default ``c3540``), a
  digest-verified ``mmap`` load of the compiled design must beat the
  JSON compile-cache path (parse + ``from_dict`` tensor rebuild) by
  ``REPRO_BENCH_PACK_MIN_SPEEDUP`` (default 5x, asserted);
* **zero-copy** — the loaded tensors must be read-only views into the
  mapping, not private heap copies (asserted);
* **burst identity** — a 48-query concurrent burst against the
  mmap-backed engine must be bit-identical to the freshly compiled
  design (asserted).

The circuit is overridable via ``REPRO_BENCH_PACK_CIRCUIT`` and the
reload repetition count via ``REPRO_BENCH_PACK_REPEATS``; results land
in ``benchmarks/results/BENCH_pack_startup.json``.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

from conftest import CACHE_DIR, record_result
from repro.cache import JsonCache
from repro.core.sta_compiled import (
    COMPILE_CACHE_KIND,
    CompiledDesign,
    CompiledSTA,
    Scenario,
    compile_design,
    design_cache_key,
)
from repro.moments.stats import SIGMA_LEVELS
from repro.netlist.benchmarks import attach_parasitics, build_iscas85_like
from repro.pack import load_compiled_design, pack_compiled_design
from repro.units import PS

CIRCUIT = os.environ.get("REPRO_BENCH_PACK_CIRCUIT", "c3540")
REPEATS = int(os.environ.get("REPRO_BENCH_PACK_REPEATS", "5"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PACK_MIN_SPEEDUP", "5"))

#: Cell mix restricted to the benchmark flow's characterized families.
TYPE_NAMES = ("INV", "NAND2", "NOR2", "AOI21")

BURST_QUERIES = 48
BURST_THREADS = 8

RESULT_NAME = "BENCH_pack_startup"


def make_scenarios(n: int):
    """A deterministic spread of (slew, edge) operating points."""
    slews = (10.0, 25.0, 60.0, 110.0, 180.0, 250.0)
    return [
        Scenario(input_slew=slews[k % len(slews)] * PS, launch_rising=k % 2 == 0)
        for k in range(n)
    ]


def best_of(repeats: int, fn) -> float:
    """Minimum wall time of ``repeats`` runs (cold-start, so min is fair)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestPackStartup:
    def test_mmap_reload_beats_json_rebuild(self, models, benchmark):
        circuit = build_iscas85_like(CIRCUIT, type_names=TYPE_NAMES)
        attach_parasitics(circuit, tech=models.tech, seed=7)
        key = design_cache_key(circuit, models)

        t0 = time.perf_counter()
        design = compile_design(circuit, models)
        compile_s = time.perf_counter() - t0

        # Stage both cold-start representations of the same artifact.
        json_cache = JsonCache(CACHE_DIR)
        json_cache.put(COMPILE_CACHE_KIND, key, design.to_dict())
        rpk = CACHE_DIR / f"{CIRCUIT}.rpk"
        pack_compiled_design(design, rpk, design_key=key)

        def json_reload() -> CompiledDesign:
            doc = json_cache.get(COMPILE_CACHE_KIND, key)
            assert doc is not None
            return CompiledDesign.from_dict(doc)

        def pack_reload() -> CompiledDesign:
            return load_compiled_design(rpk, verify=True, expected_key=key)

        json_s = best_of(REPEATS, json_reload)
        pack_s = best_of(REPEATS, pack_reload)
        speedup = json_s / pack_s

        # Zero-copy check: tensors are read-only views into the mapping.
        mapped = pack_reload()
        assert mapped.pack is not None
        for arr in (mapped.arcs.mu_coef, mapped.net_load, mapped.levels[0].elm_in):
            assert arr.flags.owndata is False
            assert arr.flags.writeable is False

        # 48-query concurrent burst: bit-identical to the fresh compile.
        scenarios = make_scenarios(BURST_QUERIES)
        fresh_engine = CompiledSTA(circuit, models, design=design)
        mapped_engine = CompiledSTA(circuit, models, design=mapped)
        expected = fresh_engine.analyze_batch(scenarios)
        with ThreadPoolExecutor(max_workers=BURST_THREADS) as pool:
            got = list(
                pool.map(lambda s: mapped_engine.analyze_batch([s])[0], scenarios)
            )
        burst_identical = all(
            a.critical_delay == b.critical_delay
            and all(
                a.critical_path.total(n) == b.critical_path.total(n)
                for n in SIGMA_LEVELS
            )
            for a, b in zip(expected, got)
        )
        assert burst_identical

        print(
            f"\n{CIRCUIT}: compile {compile_s:.3f}s, JSON reload "
            f"{json_s * 1e3:.1f}ms, pack mmap reload {pack_s * 1e3:.1f}ms "
            f"-> x{speedup:.1f} ({rpk.stat().st_size} pack bytes)"
        )
        out = {
            "circuit": CIRCUIT,
            "n_cells": circuit.n_cells,
            "n_levels": design.n_levels,
            "packed_arc_rows": design.arcs.n_arcs,
            "repeats": REPEATS,
            "compile_s": round(compile_s, 4),
            "json_reload_s": round(json_s, 5),
            "pack_reload_s": round(pack_s, 5),
            "speedup": round(speedup, 2),
            "min_speedup_gate": MIN_SPEEDUP,
            "pack_bytes": rpk.stat().st_size,
            "json_bytes": json_cache.path(COMPILE_CACHE_KIND, key).stat().st_size,
            "zero_copy_verified": True,
            "burst_queries": BURST_QUERIES,
            "burst_threads": BURST_THREADS,
            "burst_bit_identical": burst_identical,
        }

        assert speedup >= MIN_SPEEDUP, (
            f"{CIRCUIT}: pack reload only x{speedup:.1f} over the JSON "
            f"path (gate: x{MIN_SPEEDUP})"
        )

        table = benchmark(lambda: out)
        record_result(RESULT_NAME, table)
