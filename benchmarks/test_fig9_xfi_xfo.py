"""Fig. 9 — accuracy of the cell-specific coefficients X_FI and X_FO.

Eq. (5)/(6): a cell's normalized variability coefficient is predicted
analytically from Pelgrom's law, ``X = sqrt(n_FO4*s_FO4)/sqrt(n*s)``,
and measured from characterization as ``(σ/µ) / (σ/µ)_FO4``. The paper
reports ~1.92 % (X_FI) and ~3.31 % (X_FO) fitting errors over the
FO1–FO8 constraint sweep; here the same comparison is run for driver
and load roles, where the *fitted Eq. (7) weights* supply the role-
specific scaling.
"""

import numpy as np
import pytest

from conftest import record_result
from repro.core.nsigma_wire import (
    cell_variability_ratio,
    fit_wire_model,
    predicted_coefficient,
)
from repro.interconnect.generate import NetGenerator
from repro.units import UM

SWEEP = ("INVx1", "INVx2", "INVx4", "INVx8")


@pytest.fixture(scope="module")
def fig9(flow, models, golden_engine):
    # Re-fit Eq. (7) on an out-of-sample tree set so the reported errors
    # are honest hold-out numbers.
    gen = NetGenerator(flow.tech, seed=909)
    trees = [gen.random_net(mean_length=45 * UM, max_branches=1) for _ in range(2)]
    fitted, observations = fit_wire_model(
        golden_engine, flow.library, models.calibrated, trees,
        driver_names=SWEEP, load_names=SWEEP, n_samples=600)
    return fitted, observations


class TestFig9:
    def test_pelgrom_prediction_vs_measured(self, flow, models):
        base = flow.library.get("INVx4")
        fo4 = cell_variability_ratio(models.calibrated, "INVx4")
        errors = []
        for name in SWEEP:
            measured = cell_variability_ratio(models.calibrated, name) / fo4
            predicted = predicted_coefficient(flow.library.get(name), base)
            errors.append(abs(predicted - measured) / measured)
        # The sqrt(strength) law holds within tens of percent; the exact
        # coefficients come from the Eq. (7) regression.
        assert float(np.mean(errors)) < 0.40

    def test_eq7_fit_explains_variability(self, fig9):
        fitted, _ = fig9
        assert fitted.r_squared > 0.5

    def test_load_weight_positive(self, fig9):
        # The load-cell term is the dominant cell contribution (Fig. 8).
        fitted, _ = fig9
        assert fitted.weight_fo > 0

    def test_residuals_small(self, fig9):
        fitted, observations = fig9
        rel = [
            abs(fitted.wire_variability(r_fi, r_fo) - xw) / xw
            for r_fi, r_fo, xw in observations
        ]
        assert float(np.mean(rel)) < 0.25

    def test_report(self, fig9, flow, models, benchmark):
        fitted, observations = fig9
        base = flow.library.get("INVx4")
        fo4 = cell_variability_ratio(models.calibrated, "INVx4")

        def build():
            coeffs = {}
            for name in SWEEP:
                measured = cell_variability_ratio(models.calibrated, name) / fo4
                predicted = predicted_coefficient(flow.library.get(name), base)
                coeffs[name] = {
                    "measured_x": measured,
                    "pelgrom_x": predicted,
                    "err_pct": 100 * abs(predicted - measured) / measured,
                }
            rel = [abs(fitted.wire_variability(r_fi, r_fo) - xw) / xw
                   for r_fi, r_fo, xw in observations]
            return {
                "cell_coefficients": coeffs,
                "eq7": fitted.to_dict(),
                "xw_mean_fit_err_pct": 100 * float(np.mean(rel)),
            }

        table = benchmark(build)
        print("\nFig. 9 — cell-specific coefficients (X), Eq. (5)/(6)")
        for name in SWEEP:
            r = table["cell_coefficients"][name]
            print(f"  {name:6s}: measured {r['measured_x']:5.2f}  "
                  f"Pelgrom {r['pelgrom_x']:5.2f}  err {r['err_pct']:5.1f}%")
        print(f"  Eq.(7) fit: w_FI={table['eq7']['weight_fi']:+.4f} "
              f"w_FO={table['eq7']['weight_fo']:+.4f} "
              f"X0={table['eq7']['intercept']:.4f} R2={table['eq7']['r_squared']:.3f}")
        print(f"  mean X_w fit error: {table['xw_mean_fit_err_pct']:.2f}%")
        record_result("fig9_xfi_xfo", table)
