"""Table II — ±3σ cell-delay accuracy: LSN [12] vs Burr [13] vs N-sigma.

The comparison isolates the *moments → quantiles* step, which is what
Table II is about: every model receives the same population moments of
an out-of-sample Monte-Carlo run under the FO4 constraint and must
produce the ±3σ quantiles. LSN and Burr reconstruct their distribution
from ``(mu, sigma, skew)`` (their three-parameter families cannot use
more); the N-sigma model maps all four moments — kurtosis included,
the paper's key addition — through the pre-fitted Table I regression
(whose coefficients come from the separate characterization seed).

Shape targets from the paper: N-sigma < LSN < Burr in average error,
N-sigma in the low single digits, Burr failing on the +3σ tail.
"""

import numpy as np
import pytest

from conftest import N_MC, record_result
from repro.cells.characterize import ArcCharacterizer, fanout_load
from repro.moments.distributions import BurrXII, LogSkewNormal
from repro.moments.stats import empirical_sigma_quantiles
from repro.units import PS

CELLS = [f"{t}x{s}" for t in ("NOR2", "NAND2", "AOI21") for s in (1, 2, 4, 8)]
TEST_SLEW = 20 * PS


@pytest.fixture(scope="module")
def table2(flow, models, golden_engine):
    characterizer = ArcCharacterizer(golden_engine)
    rows = {}
    for name in CELLS:
        cell = flow.library.get(name)
        load = fanout_load(cell, flow.tech)
        res = characterizer.simulate_arc(cell, "A", TEST_SLEW, load, N_MC)
        d = res.delay[res.valid]
        truth = empirical_sigma_quantiles(d, (-3, 3))

        # Identical inputs for every model: the population's moments.
        from repro.moments.stats import Moments
        m = Moments.from_samples(d)
        estimates = {
            "LSN": LogSkewNormal.from_moments(m.mu, m.sigma, m.skew),
            "Burr": BurrXII.from_moments(m.mu, m.sigma, m.skew),
        }
        row = {}
        for model_name, model in estimates.items():
            row[model_name] = {
                lvl: abs(model.sigma_quantile(lvl) - truth[lvl]) / truth[lvl]
                for lvl in (-3, 3)
            }
        row["Ours"] = {
            lvl: abs(models.nsigma.quantile(m, lvl) - truth[lvl]) / truth[lvl]
            for lvl in (-3, 3)
        }
        rows[name] = row
    return rows


def _avg(rows, method, level):
    return float(np.mean([rows[c][method][level] for c in CELLS]))


class TestTable2:
    def test_ours_competitive_with_lsn(self, table2):
        # Reproduction note (see EXPERIMENTS.md): the synthetic process
        # has a single dominant variation mechanism, which makes the
        # delay distributions almost exactly log-skew-normal — LSN with
        # *exact* moment inputs is therefore stronger here than in the
        # paper. The N-sigma model must stay in the same accuracy class.
        assert _avg(table2, "Ours", 3) < _avg(table2, "LSN", 3) + 0.01
        assert _avg(table2, "Ours", -3) < _avg(table2, "LSN", -3) + 0.05

    def test_ours_beats_burr_on_average(self, table2):
        for level in (-3, 3):
            assert _avg(table2, "Ours", level) < _avg(table2, "Burr", level)

    def test_ours_single_digit_percent(self, table2):
        # Paper: 2.03% (−3σ) and 2.73% (+3σ) average.
        assert _avg(table2, "Ours", -3) < 0.08
        assert _avg(table2, "Ours", 3) < 0.08

    def test_burr_worst_at_plus3(self, table2):
        # "the Burr-based model cannot be used for estimating the +3σ
        # delay in the near-threshold voltage region"
        assert _avg(table2, "Burr", 3) > _avg(table2, "Ours", 3)

    def test_every_cell_ours_reasonable(self, table2):
        for cell in CELLS:
            assert table2[cell]["Ours"][3] < 0.20, cell

    def test_report(self, table2, benchmark):
        def build():
            out = {}
            for cell in CELLS:
                out[cell] = {
                    m: {str(l): 100 * table2[cell][m][l] for l in (-3, 3)}
                    for m in ("LSN", "Burr", "Ours")
                }
            out["Avg."] = {
                m: {str(l): 100 * _avg(table2, m, l) for l in (-3, 3)}
                for m in ("LSN", "Burr", "Ours")
            }
            return out

        table = benchmark(build)
        print("\nTable II — errors (%) of the +/-3σ cell delay estimates")
        print(f"{'cell':<10} {'LSN-3':>7} {'LSN+3':>7} {'Burr-3':>7} "
              f"{'Burr+3':>7} {'Ours-3':>7} {'Ours+3':>7}")
        for cell in (*CELLS, "Avg."):
            r = table[cell]
            print(f"{cell:<10} {r['LSN']['-3']:7.2f} {r['LSN']['3']:7.2f} "
                  f"{r['Burr']['-3']:7.2f} {r['Burr']['3']:7.2f} "
                  f"{r['Ours']['-3']:7.2f} {r['Ours']['3']:7.2f}")
        record_result("table2_cell_accuracy", table)
