"""Active-learning surrogate characterization: cost vs accuracy.

Dense characterization simulates every (slew, load) grid point; the GP
surrogate (:mod:`repro.surrogate`) simulates a seed design plus
acquisition-chosen points and predicts the rest. This benchmark runs
both on a paper-fidelity grid density (8x8, vs the quick default 5x6)
and records:

- Monte-Carlo grid-point evaluations, dense vs surrogate (the headline:
  the surrogate must cut simulations >= ``MIN_REDUCTION``x to pass, and
  targets >= 5x with the benchmark config);
- wall-clock characterization time for both paths;
- accuracy of the predicted entries against the dense reference, per
  moment and sigma-level quantile (fraction of each surface's range —
  the same normalization the surrogate's own budgets use).

Results land in ``benchmarks/results/BENCH_surrogate_characterization.json``.
"""

import time

import numpy as np
import pytest

from conftest import N_CHARAC, record_result
from repro.cells.characterize import ArcCharacterizer, characterize_library
from repro.cells.library import build_default_library
from repro.perf import PerfCounters
from repro.spice.montecarlo import MonteCarloEngine
from repro.surrogate import SurrogateConfig
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel

#: CI gate: the sweep fails if the surrogate saves less than this.
MIN_REDUCTION = 3.0
#: The configured target (max_points=12 on an 8x8 grid -> 64/12 = 5.3x).
TARGET_REDUCTION = 5.0

#: Paper-fidelity grid density over the quick-default ranges.
SURR_SLEWS = tuple(np.geomspace(10 * PS, 300 * PS, 8))
SURR_LOADS = tuple(np.geomspace(0.1 * FF, 20 * FF, 8))
SURR_CELLS = ["INVx1", "NAND2x1"]
N_SAMPLES = max(200, N_CHARAC // 3)

#: Benchmark surrogate config: a lean seed design plus acquisition up
#: to 12 real points per 64-point arc (>= 5.3x reduction by
#: construction; accuracy asserted below).
SURR_CONFIG = SurrogateConfig(n_seed=4, max_points=12)


@pytest.fixture(scope="module")
def sweep():
    tech = Technology()
    library = build_default_library(tech)
    results = {}
    for mode, surrogate in (("dense", None), ("surrogate", SURR_CONFIG)):
        charz = ArcCharacterizer(
            MonteCarloEngine(tech, VariationModel(), seed=2023)
        )
        t0 = time.perf_counter()
        charac = characterize_library(
            charz, library, cells=SURR_CELLS, n_samples=N_SAMPLES,
            slews=SURR_SLEWS, loads=SURR_LOADS, surrogate=surrogate,
        )
        results[mode] = {
            "wall_s": time.perf_counter() - t0,
            "charac": charac,
            "perf": charz.engine.perf,
        }
    return results


def _arc_stats(sweep):
    dense = sweep["dense"]["charac"]
    surro = sweep["surrogate"]["charac"]
    arcs = []
    for key, table in surro.tables.items():
        ref = dense.tables[key]
        prov = table.provenance or {}
        n_grid = int(table.moments[..., 0].size)
        n_sim = int(prov.get("n_simulated", n_grid))
        surfaces = {
            "mu": (table.moments[..., 0], ref.moments[..., 0]),
            "sigma": (table.moments[..., 1], ref.moments[..., 1]),
            "out_slew": (table.out_slew, ref.out_slew),
            "q+3": (table.quantiles[..., -1], ref.quantiles[..., -1]),
            "q-3": (table.quantiles[..., 0], ref.quantiles[..., 0]),
        }
        errors = {
            name: float(np.abs(got - want).max() / max(np.ptp(want), 1e-30))
            for name, (got, want) in surfaces.items()
        }
        arcs.append({
            "arc": "/".join(key),
            "n_grid": n_grid,
            "n_simulated": n_sim,
            "reduction": n_grid / n_sim,
            "converged": bool(prov.get("converged", False)),
            "fallback": prov.get("fallback"),
            "max_err_rel_range": errors,
        })
    return arcs


class TestSurrogateCharacterization:
    def test_simulation_reduction_and_accuracy(self, sweep):
        arcs = _arc_stats(sweep)
        assert arcs, "no arcs characterized"

        total_grid = sum(a["n_grid"] for a in arcs)
        total_sim = sum(a["n_simulated"] for a in arcs)
        reduction = total_grid / total_sim
        dense_wall = sweep["dense"]["wall_s"]
        surro_wall = sweep["surrogate"]["wall_s"]

        print(f"\nSurrogate characterization — {len(arcs)} arcs, "
              f"{total_grid} grid points")
        print(f"  MC evaluations: dense {total_grid} vs surrogate "
              f"{total_sim} ({reduction:.1f}x fewer; target "
              f">= {TARGET_REDUCTION:.0f}x, gate >= {MIN_REDUCTION:.0f}x)")
        print(f"  wall: dense {dense_wall:.1f}s vs surrogate "
              f"{surro_wall:.1f}s ({dense_wall / surro_wall:.1f}x)")
        for a in arcs:
            errs = ", ".join(
                f"{k} {100 * v:.1f}%" for k, v in a["max_err_rel_range"].items()
            )
            print(f"  {a['arc']}: {a['n_simulated']}/{a['n_grid']} points "
                  f"({a['reduction']:.1f}x), max err of range: {errs}")

        record_result("BENCH_surrogate_characterization", {
            "n_samples": N_SAMPLES,
            "grid": [len(SURR_SLEWS), len(SURR_LOADS)],
            "cells": SURR_CELLS,
            "config": SURR_CONFIG.identity(),
            "dense_points": total_grid,
            "surrogate_points": total_sim,
            "reduction": reduction,
            "target_reduction": TARGET_REDUCTION,
            "min_reduction_gate": MIN_REDUCTION,
            "dense_wall_s": dense_wall,
            "surrogate_wall_s": surro_wall,
            "arcs": arcs,
        })

        # CI gate: the surrogate must actually save simulations...
        assert reduction >= MIN_REDUCTION, (
            f"surrogate reduced simulations only {reduction:.2f}x "
            f"(< {MIN_REDUCTION}x gate)"
        )
        # ...without giving up table accuracy. Bounds are relative to
        # each surface's range and sized to the Monte-Carlo estimator
        # noise a dense table carries at this sample count.
        for a in arcs:
            assert a["fallback"] is None, (
                f"{a['arc']} fell back to dense ({a['fallback']}); "
                f"no reduction measured"
            )
            errs = a["max_err_rel_range"]
            assert errs["mu"] < 0.12, (a["arc"], errs)
            assert errs["sigma"] < 0.30, (a["arc"], errs)
            assert errs["out_slew"] < 0.20, (a["arc"], errs)
            assert errs["q+3"] < 0.25, (a["arc"], errs)
            assert errs["q-3"] < 0.25, (a["arc"], errs)

    def test_simulated_points_bit_identical_to_dense(self, sweep):
        dense = sweep["dense"]["charac"]
        surro = sweep["surrogate"]["charac"]
        for key, table in surro.tables.items():
            ref = dense.tables[key]
            for (i, j) in (tuple(p) for p in table.provenance["simulated"]):
                assert np.array_equal(table.moments[i, j], ref.moments[i, j])
                assert np.array_equal(
                    table.quantiles[i, j], ref.quantiles[i, j]
                )
                assert table.out_slew[i, j] == ref.out_slew[i, j]

    def test_perf_counters_attribute_points(self, sweep):
        perf: PerfCounters = sweep["surrogate"]["perf"]
        arcs = _arc_stats(sweep)
        assert perf.points_simulated == sum(a["n_simulated"] for a in arcs)
        assert perf.points_predicted == sum(
            a["n_grid"] - a["n_simulated"] for a in arcs
        )
        # Per-arc wall/sample attribution is populated for every arc.
        assert len(perf.arc_samples) == len(arcs)
        assert all(v > 0 for v in perf.arc_samples.values())
