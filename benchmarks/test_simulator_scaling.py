"""Engine benchmarks: batched-solver scaling and model evaluation cost.

Not a paper table — operational benchmarks for the substrate itself:

* transient-solver cost vs Monte-Carlo batch size (the batching claim:
  sub-linear wall-clock in samples until memory bandwidth saturates);
* transient-solver cost vs node count (cubic dense-solve scaling, the
  reason golden paths are chained stage-by-stage);
* per-quantile evaluation cost of the fitted N-sigma model (the reason
  the paper's method is ~100× faster than Monte-Carlo).
"""

import numpy as np
import pytest

from conftest import record_result
from repro.moments.stats import Moments
from repro.spice.montecarlo import MonteCarloEngine, SimulationSetup
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.spice.measure import ramp_time_for_slew
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel


def inverter_setup(tech, n_stages_of_load=1):
    net = TransistorNetlist()
    net.fix("vdd", tech.vdd)
    net.fix("in", PiecewiseLinearSource.ramp(0, tech.vdd, 5 * PS,
                                             ramp_time_for_slew(20 * PS)))
    net.add_mosfet("mp", "p", "out", "in", "vdd", tech.unit_pmos_width)
    net.add_mosfet("mn", "n", "out", "in", "gnd", tech.unit_nmos_width)
    parent = "out"
    for k in range(n_stages_of_load):
        net.add_resistor(f"r{k}", parent, f"w{k}", 300.0)
        net.add_capacitor(f"c{k}", f"w{k}", 0.5 * FF)
        parent = f"w{k}"
    net.add_capacitor("cl", parent, 1 * FF)
    return SimulationSetup(
        netlist=net, input_node="in", output_node="out",
        input_rising=True, output_rising=False,
        initial_voltages={"out": tech.vdd,
                          **{f"w{k}": tech.vdd for k in range(n_stages_of_load)}},
    )


class TestSolverScaling:
    def test_batch_scaling_sublinear(self, benchmark):
        tech = Technology()
        engine = MonteCarloEngine(tech, VariationModel(), seed=5)
        setup = inverter_setup(tech)

        import time
        times = {}
        perf = {}
        for n in (64, 512, 4096):
            engine.perf = type(engine.perf)()  # fresh counters per batch size
            t0 = time.perf_counter()
            engine.simulate(setup, n)
            times[n] = time.perf_counter() - t0
            perf[n] = engine.perf.to_dict()

        def summary():
            return {
                str(n): {"wall_s": times[n], "perf": perf[n]} for n in times
            }

        table = benchmark(summary)
        per_sample_small = times[64] / 64
        per_sample_large = times[4096] / 4096
        print(f"\nsolver batch scaling: {times}")
        print(f"  per-sample cost: {per_sample_small * 1e6:.1f} us (n=64) -> "
              f"{per_sample_large * 1e6:.1f} us (n=4096)")
        print(f"  active-sample fraction (n=4096): "
              f"{perf[4096]['active_sample_fraction']:.3f}")
        # Batching must pay: the marginal sample gets much cheaper.
        assert per_sample_large < 0.5 * per_sample_small
        record_result("simulator_batch_scaling", table)

    def test_node_scaling(self, benchmark):
        tech = Technology()
        engine = MonteCarloEngine(tech, VariationModel(), seed=6)
        import time
        times = {}
        for extra in (1, 8, 20):
            setup = inverter_setup(tech, n_stages_of_load=extra)
            t0 = time.perf_counter()
            engine.simulate(setup, 256)
            times[extra + 1] = time.perf_counter() - t0
        table = benchmark(lambda: {str(k): v for k, v in times.items()})
        print(f"\nsolver node scaling (256 samples): {times}")
        # Cost grows clearly faster than linear in node count.
        n_small, n_large = min(times), max(times)
        assert times[n_large] / times[n_small] > (n_large / n_small)
        record_result("simulator_node_scaling", table)


class TestModelEvaluationSpeed:
    def test_quantile_evaluation_microseconds(self, models, benchmark):
        m = Moments(mu=5e-11, sigma=8e-12, skew=1.1, kurt=6.0)

        def evaluate():
            return models.nsigma.quantiles(m)

        out = benchmark(evaluate)
        assert set(out) == {-3, -2, -1, 0, 1, 2, 3}
        # pytest-benchmark stats confirm this is micro-second scale; the
        # assertion just guards against pathological regressions.
        assert benchmark.stats["mean"] < 1e-3
