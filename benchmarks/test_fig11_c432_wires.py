"""Fig. 11 — per-wire +3σ delay on the c432 critical path.

The paper compares, wire by wire along c432's critical path, the +3σ
delay predicted by the raw Elmore model and by the N-sigma wire model
against MC simulation: Elmore (having no variability) misses the +3σ
point consistently; the N-sigma model tracks it. This benchmark walks
the same wires of our c432 stand-in.
"""

import numpy as np
import pytest

from conftest import N_MC, record_result
from repro.core.nsigma_wire import (
    annotated_elmore,
    cell_variability_ratio,
    measure_wire_variability,
)
from repro.core.sta import StatisticalSTA
from repro.moments.stats import empirical_sigma_quantiles
from repro.netlist.benchmarks import attach_parasitics, build_iscas85_like
from repro.units import PS

N_WIRES = 9  # the paper plots ~9 labeled wires


@pytest.fixture(scope="module")
def fig11(flow, models, golden_engine):
    # Restrict the mix to the characterized cell families.
    circuit = build_iscas85_like(
        "c432", type_names=("INV", "NAND2", "NOR2", "AOI21"))
    attach_parasitics(circuit, flow.tech, seed=432)
    sta = StatisticalSTA(circuit, models)
    path = sta.analyze().critical_path

    wire_stages = [s for s in path.stages if s.cell_name and s.wire_elmore > 0]
    wire_stages = wire_stages[:N_WIRES]
    n = max(600, N_MC // 4)

    rows = []
    for idx, stage in enumerate(wire_stages):
        net = circuit.nets[stage.net]
        sink_gate = stage.sink[0]
        if sink_gate in ("<PO>", ""):
            continue
        load_cell = circuit.gates[sink_gate].cell_name
        leaf = net.sink_leaf.get(stage.sink) or net.tree.leaves()[0]
        moments, samples = measure_wire_variability(
            golden_engine, flow.library, stage.cell_name, load_cell,
            net.tree, sink=leaf, n_samples=n)
        truth = empirical_sigma_quantiles(samples.delay[samples.valid], (3,))[3]
        elmore = annotated_elmore(flow.tech, flow.library, net.tree, leaf,
                                  load_cell)
        r_fi = cell_variability_ratio(models.calibrated, stage.cell_name)
        r_fo = cell_variability_ratio(models.calibrated, load_cell)
        ours = models.wire.wire_quantile(elmore, r_fi, r_fo, 3)
        rows.append({
            "wire": f"Wire{idx + 1}",
            "net": stage.net,
            "driver": stage.cell_name,
            "load": load_cell,
            "mc_plus3_ps": truth / PS,
            "elmore_ps": elmore / PS,
            "ours_ps": ours / PS,
            "elmore_err": abs(elmore - truth) / truth,
            "ours_err": abs(ours - truth) / truth,
        })
    return rows


class TestFig11:
    def test_enough_wires_sampled(self, fig11):
        assert len(fig11) >= 5

    def test_ours_beats_elmore_on_average(self, fig11):
        ours = np.mean([r["ours_err"] for r in fig11])
        elmore = np.mean([r["elmore_err"] for r in fig11])
        assert ours < elmore

    def test_elmore_systematically_low(self, fig11):
        # Elmore carries no +3σ lift: it sits below the MC +3σ point.
        low = [r["elmore_ps"] < r["mc_plus3_ps"] for r in fig11]
        assert np.mean(low) > 0.7

    def test_ours_mean_error_moderate(self, fig11):
        assert np.mean([r["ours_err"] for r in fig11]) < 0.15

    def test_report(self, fig11, benchmark):
        def build():
            return {
                "rows": fig11,
                "avg_err_pct": {
                    "elmore": 100 * float(np.mean([r["elmore_err"] for r in fig11])),
                    "ours": 100 * float(np.mean([r["ours_err"] for r in fig11])),
                },
            }

        table = benchmark(build)
        print("\nFig. 11 — +3σ of each wire on the c432 critical path")
        print(f"{'wire':<7} {'drv':<9} {'load':<9} {'MC+3σ':>8} {'Elmore':>8} "
              f"{'Ours':>8} {'eErr':>6} {'oErr':>6}")
        for r in fig11:
            print(f"{r['wire']:<7} {r['driver']:<9} {r['load']:<9} "
                  f"{r['mc_plus3_ps']:8.2f} {r['elmore_ps']:8.2f} "
                  f"{r['ours_ps']:8.2f} {100 * r['elmore_err']:5.1f}% "
                  f"{100 * r['ours_err']:5.1f}%")
        print(f"  avg: Elmore {table['avg_err_pct']['elmore']:.1f}%  "
              f"Ours {table['avg_err_pct']['ours']:.1f}%")
        record_result("fig11_c432_wires", table)
