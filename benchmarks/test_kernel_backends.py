"""Kernel backend A/B: end-to-end characterization speedup + parity.

Operational benchmark of the pluggable Monte-Carlo kernel backends
(:mod:`repro.kernels`) and the shared-memory characterization fan-out:

* **backend A/B** — one NAND2 arc simulated at ``REPRO_BENCH_KERNEL_SAMPLES``
  (default 65536) MC samples through the ``numpy`` golden backend and
  every accelerated backend that probes available, best-of-N wall
  clock, asserting end-to-end delay parity within the 1e-12 s
  equivalence envelope. At full fidelity the fastest accelerated
  backend must show >= 2x.
* **perf smoke** — a smaller A/B (8192 samples) compared against the
  checked-in baseline in ``results/BENCH_kernel_backends.json``;
  fails when the measured speedup ratio regresses by more than 20 %.
  The baseline is only (re)written when absent or when
  ``REPRO_BENCH_UPDATE=1``, so a regression cannot silently ratchet
  the baseline down.
* **worker scaling** — a mini grid characterized with 1 and 4 workers
  on the best backend, asserting bit-identical tables and recording
  the per-task pickle payload with and without the shared-memory bank
  (the fan-out cost shared memory removes). Wall-clock speedup needs
  multiple cores; on a single-core host the recorded timings are
  honest (≈flat) and the payload shrink is the meaningful signal.

Results accumulate into ``benchmarks/results/BENCH_kernel_backends.json``.
"""

import json
import os
import pickle
import time

import numpy as np

from conftest import RESULTS_DIR, record_result
from repro.cells.characterize import ArcCharacterizer, characterize_library
from repro.cells.library import build_default_library
from repro.kernels import PREFERENCE_ORDER, available_backends
from repro.parallel import SharedPayloadBank
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel

N_KERNEL = int(os.environ.get("REPRO_BENCH_KERNEL_SAMPLES", "65536"))
N_SMOKE = int(os.environ.get("REPRO_BENCH_KERNEL_SMOKE", "8192"))
BEST_OF = int(os.environ.get("REPRO_BENCH_KERNEL_BEST_OF", "3"))

#: End-to-end equivalence envelope for accelerated backends (seconds).
DELAY_TOL = 1e-12

RESULT_NAME = "BENCH_kernel_backends"

ARC = dict(pin="A", input_slew=40 * PS, load=2 * FF)

MINI_SLEWS = tuple(s * PS for s in (20, 200))
MINI_LOADS = tuple(c * FF for c in (0.2, 4.0))


def _record_section(section: str, payload: dict) -> None:
    """Merge one sweep's results into the shared JSON document."""
    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    doc = {}
    if path.exists():
        with path.open() as fh:
            doc = json.load(fh)
    doc[section] = payload
    record_result(RESULT_NAME, doc)


def _accelerated_names():
    return [
        b["name"] for b in available_backends()
        if b["available"] == "yes" and b["name"] != "numpy"
    ]


def _simulate(kernel: str, n_samples: int):
    """Best-of-N wall clock of one arc simulation on one backend."""
    tech = Technology()
    library = build_default_library(tech)
    cell = library.get("NAND2x1")
    walls = []
    samples = None
    for _ in range(BEST_OF):
        engine = MonteCarloEngine(tech, VariationModel(), seed=2023,
                                  kernel=kernel)
        chz = ArcCharacterizer(engine)
        t0 = time.perf_counter()
        samples = chz.simulate_arc(cell, ARC["pin"],
                                   input_slew=ARC["input_slew"],
                                   load=ARC["load"], n_samples=n_samples)
        walls.append(time.perf_counter() - t0)
    return samples, min(walls), engine.perf


def _ab_sweep(n_samples: int) -> dict:
    """numpy vs every available accelerated backend at ``n_samples``."""
    golden, wall_numpy, _ = _simulate("numpy", n_samples)
    out = {
        "n_samples": n_samples,
        "best_of": BEST_OF,
        "arc": "NAND2x1/A fall, slew 40 ps, load 2 fF",
        "backends": {"numpy": {"wall_s": round(wall_numpy, 4),
                               "speedup": 1.0, "max_ddelay_s": 0.0}},
    }
    for name in _accelerated_names():
        got, wall, perf = _simulate(name, n_samples)
        ddelay = float(np.max(np.abs(got.delay - golden.delay)))
        dslew = float(np.max(np.abs(got.output_slew - golden.output_slew)))
        assert ddelay <= DELAY_TOL, \
            f"{name} delays diverge from golden by {ddelay:.3e} s"
        assert dslew <= DELAY_TOL, \
            f"{name} slews diverge from golden by {dslew:.3e} s"
        assert any(k.startswith(f"{name}.") for k in perf.kernel_ops)
        out["backends"][name] = {
            "wall_s": round(wall, 4),
            "speedup": round(wall_numpy / wall, 3),
            "max_ddelay_s": ddelay,
        }
    return out


class TestKernelBackendAB:
    def test_backend_speedup_and_parity(self):
        sweep = _ab_sweep(N_KERNEL)
        _record_section("backend_ab", sweep)
        print(f"\nkernel backend A/B at {N_KERNEL} samples/arc "
              f"(best of {BEST_OF}):")
        for name, row in sweep["backends"].items():
            print(f"  {name:8s} {row['wall_s']:8.3f} s   "
                  f"{row['speedup']:5.2f}x   "
                  f"max|ddelay| {row['max_ddelay_s']:.3e} s")
        accelerated = _accelerated_names()
        if not accelerated:
            print("  (no accelerated backend available here)")
            return
        best = max(sweep["backends"][n]["speedup"] for n in accelerated)
        # The >=2x acceptance target applies at full fidelity (65k+).
        if N_KERNEL >= 65536:
            assert best >= 2.0, \
                f"best accelerated speedup {best:.2f}x is below the 2x target"


class TestKernelPerfSmoke:
    def test_no_speedup_regression(self):
        """Fail when the accelerated speedup regresses >20 % vs baseline."""
        accelerated = _accelerated_names()
        if not accelerated:
            import pytest
            pytest.skip("no accelerated backend available")
        sweep = _ab_sweep(N_SMOKE)
        current = {n: sweep["backends"][n]["speedup"] for n in accelerated}

        path = RESULTS_DIR / f"{RESULT_NAME}.json"
        doc = {}
        if path.exists():
            with path.open() as fh:
                doc = json.load(fh)
        baseline = doc.get("perf_smoke", {}).get("speedup", {})

        update = os.environ.get("REPRO_BENCH_UPDATE") == "1"
        if not baseline or update:
            _record_section("perf_smoke", {
                "n_samples": N_SMOKE, "speedup": current})
            print(f"\nperf smoke baseline recorded: {current}")
            return

        print(f"\nperf smoke at {N_SMOKE} samples: {current} "
              f"(baseline {baseline})")
        for name, want in baseline.items():
            got = current.get(name)
            if got is None:  # backend no longer available on this host
                continue
            assert got >= 0.8 * want, (
                f"{name} speedup regressed: {got:.2f}x vs baseline "
                f"{want:.2f}x (>20% regression; set REPRO_BENCH_UPDATE=1 "
                f"only for intentional rebaselines)")


def _characterize(workers: int, kernel: str):
    tech = Technology()
    engine = MonteCarloEngine(tech, VariationModel(), seed=2023,
                              kernel=kernel)
    library = build_default_library(tech)
    t0 = time.perf_counter()
    charac = characterize_library(
        ArcCharacterizer(engine), library, cells=["INVx1", "NAND2x1"],
        slews=MINI_SLEWS, loads=MINI_LOADS,
        n_samples=int(os.environ.get("REPRO_BENCH_PAR_SAMPLES", "400")),
        workers=workers,
    )
    return charac, time.perf_counter() - t0


class TestSharedMemoryFanout:
    def test_worker_scaling_with_banks(self):
        kernel = (_accelerated_names() or ["numpy"])[0]
        runs = {}
        for workers in (1, 4):
            charac, wall = _characterize(workers, kernel)
            runs[workers] = {"charac": charac, "wall_s": wall}
        ref = runs[1]["charac"]
        for workers in (4,):
            got = runs[workers]["charac"]
            assert sorted(got.tables) == sorted(ref.tables)
            for key, want in ref.tables.items():
                table = got.tables[key]
                for attr in ("moments", "quantiles", "out_slew"):
                    assert np.array_equal(getattr(table, attr),
                                          getattr(want, attr)), \
                        f"workers={workers} diverged on {key}.{attr}"

        # The pickle traffic shared memory removes: one task inline vs
        # one task carrying only the bank handle.
        tech = Technology()
        engine = MonteCarloEngine(tech, VariationModel(), seed=2023)
        library = build_default_library(tech)
        chz = ArcCharacterizer(engine)
        cell = library.get("INVx1")
        with SharedPayloadBank(chz.arc_payload(cell, "A")) as bank:
            banked = chz.point_tasks(cell, "A", MINI_SLEWS, MINI_LOADS,
                                     400, False, payload=bank.handle)
            inline = chz.point_tasks(cell, "A", MINI_SLEWS, MINI_LOADS,
                                     400, False)
            banked_bytes = len(pickle.dumps(banked[0]))
            inline_bytes = len(pickle.dumps(inline[0]))

        payload = {
            "kernel": kernel,
            "n_samples_per_point": int(
                os.environ.get("REPRO_BENCH_PAR_SAMPLES", "400")),
            "grid": f"{len(MINI_SLEWS)}x{len(MINI_LOADS)} x 2 cells",
            "wall_s": {str(w): round(r["wall_s"], 3)
                       for w, r in runs.items()},
            "task_pickle_bytes": {"inline": inline_bytes,
                                  "banked": banked_bytes},
            "note": ("wall-clock worker speedup requires multiple cores; "
                     "single-core hosts show ~flat walls and the "
                     "task-payload shrink is the shared-memory signal"),
        }
        _record_section("worker_scaling", payload)
        print(f"\nshared-memory fan-out ({kernel}): "
              f"walls {payload['wall_s']}, task bytes "
              f"{inline_bytes} inline -> {banked_bytes} banked")
        assert banked_bytes < inline_bytes / 5
