"""Parallel characterization + masked-kernel before/after scaling.

Operational benchmark (not a paper table) of this repo's two performance
levers:

* **worker scaling** — a 2-cell mini-library characterized with the
  grid fanned over 1/2/4 worker processes, asserting that every worker
  count produces *bit-identical* tables (per-point derived seeds, fresh
  engine per point — see :mod:`repro.cells.characterize`);
* **masked-kernel scaling** — the convergence-masked Newton kernel vs
  the unmasked reference at MC batch sizes 64/512/4096, asserting the
  delay deviation stays within 1e-12 s.

Results accumulate into
``benchmarks/results/BENCH_parallel_characterization.json``.
Note: wall-clock speedup from workers requires multiple cores; on a
single-core host the worker sweep still verifies determinism, and the
recorded timings are honest (≈flat).
"""

import os
import time

import numpy as np

from conftest import RESULTS_DIR, record_result
from test_simulator_scaling import inverter_setup
from repro.cells.characterize import ArcCharacterizer, characterize_library
from repro.cells.library import build_default_library
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel

N_POINT = int(os.environ.get("REPRO_BENCH_PAR_SAMPLES", "400"))

MINI_CELLS = ["INVx1", "NAND2x1"]
MINI_SLEWS = tuple(s * PS for s in (20, 80, 200))
MINI_LOADS = tuple(c * FF for c in (0.2, 1.0, 4.0))

RESULT_NAME = "BENCH_parallel_characterization"


def _record_section(section: str, payload: dict) -> None:
    """Merge one sweep's results into the shared JSON document."""
    import json

    path = RESULTS_DIR / f"{RESULT_NAME}.json"
    doc = {}
    if path.exists():
        with path.open() as fh:
            doc = json.load(fh)
    doc[section] = payload
    record_result(RESULT_NAME, doc)


def _characterize(workers: int):
    tech = Technology()
    engine = MonteCarloEngine(tech, VariationModel(), seed=2023)
    library = build_default_library(tech)
    t0 = time.perf_counter()
    charac = characterize_library(
        ArcCharacterizer(engine),
        library,
        cells=MINI_CELLS,
        slews=MINI_SLEWS,
        loads=MINI_LOADS,
        n_samples=N_POINT,
        workers=workers,
    )
    return charac, time.perf_counter() - t0, engine.perf


class TestParallelCharacterization:
    def test_worker_scaling_bit_identical(self, benchmark):
        runs = {}
        for workers in (1, 2, 4):
            charac, wall, perf = _characterize(workers)
            runs[workers] = {"charac": charac, "wall_s": wall, "perf": perf}
        ref = runs[1]["charac"]
        for workers in (2, 4):
            other = runs[workers]["charac"]
            assert set(other.tables) == set(ref.tables)
            for key, table in ref.tables.items():
                got = other.tables[key]
                assert np.array_equal(got.moments, table.moments), key
                assert np.array_equal(got.quantiles, table.quantiles), key
                assert np.array_equal(got.out_slew, table.out_slew), key

        def summary():
            return {
                "n_samples": N_POINT,
                "cells": MINI_CELLS,
                "grid": [len(MINI_SLEWS), len(MINI_LOADS)],
                "bit_identical": True,
                # Flat wall_s on a 1-core host is expected; scaling
                # needs cpu_count >= workers.
                "cpu_count": os.cpu_count(),
                "workers": {
                    str(w): {
                        "wall_s": round(r["wall_s"], 3),
                        "speedup_vs_serial": round(
                            runs[1]["wall_s"] / r["wall_s"], 3
                        ),
                        "perf": r["perf"].to_dict(),
                    }
                    for w, r in runs.items()
                },
            }

        table = benchmark(summary)
        print(f"\nworker scaling ({N_POINT} samples/point): "
              + "  ".join(f"w={w}: {r['wall_s']:.2f}s" for w, r in runs.items()))
        _record_section("worker_scaling", table)

    def test_masked_kernel_scaling(self, benchmark):
        tech = Technology()
        setup = inverter_setup(tech)
        out = {}
        for n in (64, 512, 4096):
            row = {}
            delays = {}
            for masked in (False, True):
                engine = MonteCarloEngine(
                    tech, VariationModel(), seed=5, masked=masked
                )
                t0 = time.perf_counter()
                res = engine.simulate(setup, n)
                row["masked" if masked else "reference"] = {
                    "wall_s": round(time.perf_counter() - t0, 4),
                    "perf": engine.perf.to_dict(),
                }
                delays[masked] = res.delay
            dev = float(np.nanmax(np.abs(delays[True] - delays[False])))
            assert dev < 1e-12, f"masked kernel deviates by {dev:.3e} s at n={n}"
            row["max_delay_deviation_s"] = dev
            row["speedup"] = round(
                row["reference"]["wall_s"] / row["masked"]["wall_s"], 3
            )
            out[str(n)] = row
            print(f"\nn={n}: masked {row['masked']['wall_s']:.3f}s vs "
                  f"reference {row['reference']['wall_s']:.3f}s "
                  f"({row['speedup']}x), max |d delay| = {dev:.2e} s")

        table = benchmark(lambda: out)
        # The large batch is where masking pays; small batches are noise.
        assert out["4096"]["speedup"] > 1.4
        _record_section("masked_kernel", table)
