"""Fig. 10 — ±3σ wire-delay accuracy over five RC circuits × FO1–FO8.

The paper reports 1.61 % (−3σ) and 2.39 % (+3σ) average errors of the
N-sigma wire model (Eq. 9) against SPICE MC over five randomly drawn
RC interconnects with FO1/FO2/FO4/FO8 driver/load constraints. This
benchmark reruns that sweep against the golden engine.
"""

import numpy as np
import pytest

from conftest import N_MC, record_result
from repro.core.nsigma_wire import (
    annotated_elmore,
    cell_variability_ratio,
    measure_wire_variability,
)
from repro.interconnect.generate import NetGenerator
from repro.moments.stats import empirical_sigma_quantiles
from repro.units import PS, UM

FANOUTS = (1, 2, 4, 8)
N_NETS = 5


@pytest.fixture(scope="module")
def fig10(flow, models, golden_engine):
    gen = NetGenerator(flow.tech, seed=1010)
    trees = [gen.random_net(mean_length=40 * UM, max_branches=1)
             for _ in range(N_NETS)]
    n = max(800, N_MC // 3)
    rows = []
    for t_idx, tree in enumerate(trees):
        sink = tree.leaves()[0]
        for fo in FANOUTS:
            drv = ld = f"INVx{fo}"
            moments, samples = measure_wire_variability(
                golden_engine, flow.library, drv, ld, tree,
                sink=sink, n_samples=n)
            truth = empirical_sigma_quantiles(
                samples.delay[samples.valid], (-3, 3))
            elmore = annotated_elmore(flow.tech, flow.library, tree, sink, ld)
            r_fi = cell_variability_ratio(models.calibrated, drv)
            r_fo = cell_variability_ratio(models.calibrated, ld)
            pred = {
                lvl: models.wire.wire_quantile(elmore, r_fi, r_fo, lvl)
                for lvl in (-3, 3)
            }
            rows.append({
                "net": t_idx,
                "fo": fo,
                "elmore_ps": elmore / PS,
                "mc": {str(l): truth[l] / PS for l in (-3, 3)},
                "model": {str(l): pred[l] / PS for l in (-3, 3)},
                "err": {str(l): abs(pred[l] - truth[l]) / truth[l]
                        for l in (-3, 3)},
            })
    return rows


class TestFig10:
    def test_average_errors_small(self, fig10):
        for level in ("-3", "3"):
            avg = float(np.mean([r["err"][level] for r in fig10]))
            assert avg < 0.12, f"avg {level}σ error {avg:.3f}"

    def test_model_beats_raw_elmore_at_plus3(self, fig10):
        model_err, elmore_err = [], []
        for r in fig10:
            truth = r["mc"]["3"]
            model_err.append(abs(r["model"]["3"] - truth) / truth)
            elmore_err.append(abs(r["elmore_ps"] - truth) / truth)
        assert np.mean(model_err) < np.mean(elmore_err)

    def test_no_pathological_net(self, fig10):
        assert max(r["err"]["3"] for r in fig10) < 0.35

    def test_report(self, fig10, benchmark):
        def build():
            return {
                "rows": fig10,
                "avg_err_pct": {
                    lvl: 100 * float(np.mean([r["err"][lvl] for r in fig10]))
                    for lvl in ("-3", "3")
                },
            }

        table = benchmark(build)
        print("\nFig. 10 — N-sigma wire model ±3σ errors (model vs MC)")
        print(f"{'net':>4} {'FO':>3} {'Elmore':>8} {'MC+3σ':>8} {'mdl+3σ':>8} "
              f"{'err+3':>6} {'err-3':>6}")
        for r in fig10:
            print(f"{r['net']:>4} {r['fo']:>3} {r['elmore_ps']:8.2f} "
                  f"{r['mc']['3']:8.2f} {r['model']['3']:8.2f} "
                  f"{100 * r['err']['3']:5.1f}% {100 * r['err']['-3']:5.1f}%")
        print(f"  average: +3σ {table['avg_err_pct']['3']:.2f}%  "
              f"-3σ {table['avg_err_pct']['-3']:.2f}%")
        record_result("fig10_wire_accuracy", table)
