"""Fig. 4 — first four moments of the INVx1 delay vs operating condition.

The paper sweeps input slew (constant 0.4 fF load) and output load
(constant 10 ps slew) and observes: mean and sigma near-linear in both
knobs; skewness and kurtosis varying in a complicated, higher-order way
("more like a cubic function") — which is exactly what motivates the
split between the bilinear Eq. (2) and cubic Eq. (3) calibrations.
"""

import numpy as np
import pytest

from conftest import record_result
from repro.cells.characterize import REFERENCE_LOAD, REFERENCE_SLEW
from repro.moments.regression import fit_linear, polynomial_features
from repro.units import FF, PS


@pytest.fixture(scope="module")
def inv_table(flow):
    return flow.characterize().get("INVx1", "A", output_rising=False)


def _linearity(x, y):
    """R^2 of a straight-line fit (with intercept)."""
    features = np.stack([np.asarray(x), np.ones(len(x))], axis=1)
    return fit_linear(features, np.asarray(y)).r_squared


class TestFig4:
    def test_mu_sigma_near_linear_in_load(self, inv_table):
        j_all = range(inv_table.loads.size)
        mu = [inv_table.moments[0, j, 0] for j in j_all]
        sigma = [inv_table.moments[0, j, 1] for j in j_all]
        assert _linearity(inv_table.loads, mu) > 0.97
        assert _linearity(inv_table.loads, sigma) > 0.9

    def test_mu_near_linear_in_slew(self, inv_table):
        i_all = range(inv_table.slews.size)
        mu = [inv_table.moments[i, 1, 0] for i in i_all]
        assert _linearity(inv_table.slews, mu) > 0.9

    def test_skew_kurt_not_linear(self, inv_table):
        # Along the load axis the higher moments bend visibly: a straight
        # line explains them worse than it explains the mean.
        j_all = range(inv_table.loads.size)
        skew = [inv_table.moments[0, j, 2] for j in j_all]
        mu = [inv_table.moments[0, j, 0] for j in j_all]
        assert _linearity(inv_table.loads, skew) < _linearity(inv_table.loads, mu)

    def test_skew_positive_everywhere(self, inv_table):
        assert np.all(inv_table.moments[..., 2] > 0)

    def test_report(self, inv_table, benchmark):
        def build():
            out = {"slew_sweep": [], "load_sweep": []}
            for i, s in enumerate(inv_table.slews):
                mu, sg, sk, ku = inv_table.moments[i, 1]
                out["slew_sweep"].append(
                    {"slew_ps": s / PS, "mu_ps": mu / PS, "sigma_ps": sg / PS,
                     "skew": sk, "kurt": ku})
            for j, c in enumerate(inv_table.loads):
                mu, sg, sk, ku = inv_table.moments[0, j]
                out["load_sweep"].append(
                    {"load_ff": c / FF, "mu_ps": mu / PS, "sigma_ps": sg / PS,
                     "skew": sk, "kurt": ku})
            return out

        table = benchmark(build)
        print("\nFig. 4 — INVx1 moments vs operating condition")
        print("slew sweep (load = 0.4 fF):")
        for row in table["slew_sweep"]:
            print(f"  S={row['slew_ps']:6.0f}ps mu={row['mu_ps']:7.2f} "
                  f"sd={row['sigma_ps']:6.2f} g={row['skew']:5.2f} k={row['kurt']:5.2f}")
        print("load sweep (slew = 10 ps):")
        for row in table["load_sweep"]:
            print(f"  C={row['load_ff']:5.2f}fF mu={row['mu_ps']:7.2f} "
                  f"sd={row['sigma_ps']:6.2f} g={row['skew']:5.2f} k={row['kurt']:5.2f}")
        record_result("fig4_moment_sweeps", table)
