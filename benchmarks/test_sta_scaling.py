"""Compiled vs scalar STA scaling across circuits and scenario counts.

Operational benchmark (not a paper table) of the compiled STA engine
(:mod:`repro.core.sta_compiled`):

* **equivalence** — on every benchmarked circuit the compiled engine
  must reproduce the scalar critical-path quantiles within 1e-12 s
  (asserted, not just recorded);
* **scenario scaling** — batch query cost vs scenario count (1/4/16/64)
  against per-scenario scalar runs, including the compile-time
  amortization curve (total compiled cost / scenario count);
* **speedup floor** — on the largest circuit, a >= 16-scenario batch
  must beat the scalar engine by >= 5x *including* the one-off compile.

Scalar runs are measured up to ``REPRO_BENCH_STA_SCALAR_CAP`` scenarios
(default 16) and linearly extrapolated beyond it — the scalar engine is
embarrassingly per-scenario, so extrapolation is fair, and every
extrapolated entry is flagged in the JSON. Circuits are overridable via
``REPRO_BENCH_STA_CIRCUITS`` (comma-separated ISCAS85 profile names).

Results land in ``benchmarks/results/BENCH_sta_scaling.json``.
"""

import os
import time

from conftest import record_result
from repro.core.sta import StatisticalSTA
from repro.core.sta_compiled import CompiledSTA, Scenario
from repro.moments.stats import SIGMA_LEVELS
from repro.netlist.benchmarks import attach_parasitics, build_iscas85_like
from repro.perf import PerfCounters
from repro.units import PS

#: Circuits to sweep (ascending size); override for quick CI smoke runs.
CIRCUITS = [
    c.strip()
    for c in os.environ.get("REPRO_BENCH_STA_CIRCUITS", "c432,c1908,c3540").split(",")
    if c.strip()
]

#: Batch widths of the scenario sweep.
SCENARIO_COUNTS = (1, 4, 16, 64)

#: Scalar runs are measured up to this many scenarios, then extrapolated.
SCALAR_CAP = int(os.environ.get("REPRO_BENCH_STA_SCALAR_CAP", "16"))

#: Cell mix restricted to the benchmark flow's characterized families.
TYPE_NAMES = ("INV", "NAND2", "NOR2", "AOI21")

RESULT_NAME = "BENCH_sta_scaling"


def make_scenarios(n: int):
    """A deterministic spread of (slew, edge) operating points."""
    slews = (10.0, 25.0, 60.0, 110.0, 180.0, 250.0)
    return [
        Scenario(input_slew=slews[k % len(slews)] * PS, launch_rising=k % 2 == 0)
        for k in range(n)
    ]


def build_circuit(name, tech):
    circuit = build_iscas85_like(name, type_names=TYPE_NAMES)
    attach_parasitics(circuit, tech, seed=7)
    return circuit


def sweep_circuit(circuit, models) -> dict:
    """Scalar-vs-compiled sweep of one circuit; returns the JSON row."""
    perf = PerfCounters()
    t0 = time.perf_counter()
    engine = CompiledSTA(circuit, models, perf=perf)
    compile_s = time.perf_counter() - t0

    # Equivalence gate: the compiled engine must be a drop-in replacement.
    probe = make_scenarios(1)[0]
    scalar_ref = StatisticalSTA(
        circuit, models, input_slew=probe.input_slew,
        launch_rising=probe.launch_rising,
    ).analyze()
    compiled_ref = engine.analyze_batch([probe])[0]
    max_dev = max(
        abs(scalar_ref.critical_path.total(n) - compiled_ref.critical_path.total(n))
        for n in SIGMA_LEVELS
    )
    arrival_dev = max(
        abs(scalar_ref.arrival[net] - compiled_ref.arrival[net])
        for net in scalar_ref.arrival
    )
    assert max_dev < 1e-12, f"{circuit.name}: quantile deviation {max_dev:.3e} s"
    assert arrival_dev < 1e-12, f"{circuit.name}: arrival deviation {arrival_dev:.3e} s"

    # Scalar cost per scenario (measured on a capped scenario count).
    n_scalar = min(max(SCENARIO_COUNTS), SCALAR_CAP)
    scenarios = make_scenarios(n_scalar)
    t0 = time.perf_counter()
    for scenario in scenarios:
        StatisticalSTA(
            circuit, models, input_slew=scenario.input_slew,
            launch_rising=scenario.launch_rising,
        ).analyze()
    scalar_wall = time.perf_counter() - t0
    scalar_per_scenario = scalar_wall / n_scalar

    row = {
        "n_cells": circuit.n_cells,
        "n_nets": circuit.n_nets,
        "n_levels": engine.design.n_levels,
        "n_arcs": engine.design.n_arcs,
        "packed_arc_rows": engine.design.arcs.n_arcs,
        "max_quantile_deviation_s": max_dev,
        "max_arrival_deviation_s": arrival_dev,
        "compile_s": round(compile_s, 4),
        "scalar_measured_scenarios": n_scalar,
        "scalar_per_scenario_s": round(scalar_per_scenario, 4),
        "batches": {},
    }
    for n in SCENARIO_COUNTS:
        t0 = time.perf_counter()
        results = engine.analyze_batch(make_scenarios(n))
        query_s = time.perf_counter() - t0
        assert len(results) == n
        scalar_s = scalar_per_scenario * n
        total_s = compile_s + query_s
        row["batches"][str(n)] = {
            "query_s": round(query_s, 4),
            # Amortization curve: one-off compile spread over the batch.
            "amortized_per_scenario_s": round(total_s / n, 4),
            "scalar_s": round(scalar_s, 4),
            "scalar_extrapolated": n > n_scalar,
            "speedup_query_only": round(scalar_s / query_s, 2),
            "speedup_incl_compile": round(scalar_s / total_s, 2),
        }
    row["perf"] = perf.to_dict()
    return row


class TestStaScaling:
    def test_scaling_and_speedup(self, models, benchmark):
        tech = models.tech
        out = {
            "scenario_counts": list(SCENARIO_COUNTS),
            "scalar_cap": SCALAR_CAP,
            "sigma_levels": list(SIGMA_LEVELS),
            "circuits": {},
        }
        for name in CIRCUITS:
            circuit = build_circuit(name, tech)
            row = sweep_circuit(circuit, models)
            out["circuits"][name] = row
            print(f"\n{name} ({row['n_cells']} cells, {row['n_levels']} levels): "
                  f"compile {row['compile_s']:.3f}s, scalar "
                  f"{row['scalar_per_scenario_s']:.3f}s/scenario")
            for n, batch in row["batches"].items():
                flag = " (scalar extrapolated)" if batch["scalar_extrapolated"] else ""
                print(f"  batch {n:>3}: query {batch['query_s']:.4f}s  "
                      f"amortized {batch['amortized_per_scenario_s']:.4f}s/scn  "
                      f"speedup x{batch['speedup_incl_compile']:.1f} incl compile, "
                      f"x{batch['speedup_query_only']:.1f} query-only{flag}")

        # Acceptance floor: >= 5x over scalar for >= 16-scenario batches
        # on the largest benchmarked circuit, compile time included.
        largest = max(out["circuits"], key=lambda c: out["circuits"][c]["n_cells"])
        for n in SCENARIO_COUNTS:
            if n >= 16:
                batch = out["circuits"][largest]["batches"][str(n)]
                assert batch["speedup_incl_compile"] >= 5.0, (
                    f"{largest} batch {n}: only "
                    f"{batch['speedup_incl_compile']}x over scalar"
                )
        out["largest_circuit"] = largest

        table = benchmark(lambda: out)
        record_result(RESULT_NAME, table)
