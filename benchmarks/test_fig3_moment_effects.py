"""Fig. 3 — effect of skewness and kurtosis on the sigma-level quantiles.

The paper illustrates, on synthetic densities, that (a) skewness mostly
displaces the inner quantiles (−2σ…+2σ) and (b) excess kurtosis mostly
displaces the tails (±3σ) — the observations that motivate Table I's
feature layout. This benchmark regenerates the quantile shifts on
controlled distribution families (no circuit simulation needed).
"""

import numpy as np
import pytest
from scipy import stats as sps

from conftest import record_result
from repro.moments.stats import SIGMA_LEVELS, empirical_sigma_quantiles

N = 400_000


def skewed_family(skew_target, rng):
    """Skew-normal samples standardized to zero mean / unit variance."""
    c = abs(skew_target) ** (2.0 / 3.0)
    delta2 = (np.pi / 2) * c / (c + ((4 - np.pi) / 2) ** (2.0 / 3.0))
    delta = np.sign(skew_target) * np.sqrt(min(delta2, 0.999))
    alpha = delta / np.sqrt(1 - delta**2)
    x = sps.skewnorm.rvs(alpha, size=N, random_state=rng)
    return (x - x.mean()) / x.std()


def heavy_family(kurt_target, rng):
    """Student-t samples standardized; kurtosis 3 + 6/(nu-4)."""
    nu = 4.0 + 6.0 / (kurt_target - 3.0)
    x = sps.t.rvs(nu, size=N, random_state=rng)
    return (x - x.mean()) / x.std()


@pytest.fixture(scope="module")
def shifts():
    rng = np.random.default_rng(30)
    gauss = rng.normal(0, 1, N)
    q_gauss = empirical_sigma_quantiles(gauss)
    skew = {
        g: empirical_sigma_quantiles(skewed_family(g, rng))
        for g in (0.3, 0.6, 0.9)
    }
    kurt = {
        k: empirical_sigma_quantiles(heavy_family(k, rng))
        for k in (4.0, 6.0, 9.0)
    }
    return q_gauss, skew, kurt


class TestFig3:
    def test_skew_shifts_inner_quantiles_most(self, shifts):
        q_gauss, skew, _ = shifts
        q = skew[0.9]
        inner = abs(q[1] - q_gauss[1])
        outer_gap = abs(q[3] - q_gauss[3])
        # Inner |Δq(+1σ)| comparable to or larger than |Δq(+3σ)| per
        # unit of sigma distance: normalized by level.
        assert inner / 1.0 > outer_gap / 3.0

    def test_positive_skew_moves_median_left(self, shifts):
        _, skew, _ = shifts
        assert skew[0.9][0] < -0.05

    def test_kurtosis_fattens_tails_symmetrically(self, shifts):
        q_gauss, _, kurt = shifts
        q = kurt[9.0]
        assert q[3] > q_gauss[3] + 0.2
        assert q[-3] < q_gauss[-3] - 0.2
        # ... while barely moving the inner quantiles.
        assert abs(q[1] - q_gauss[1]) < 0.15

    def test_effects_monotone_in_parameter(self, shifts):
        _, skew, kurt = shifts
        medians = [skew[g][0] for g in (0.3, 0.6, 0.9)]
        assert medians[0] > medians[1] > medians[2]
        tails = [kurt[k][3] for k in (4.0, 6.0, 9.0)]
        assert tails[0] < tails[1] < tails[2]

    def test_report(self, shifts, benchmark):
        q_gauss, skew, kurt = shifts

        def build():
            return {
                "gaussian": {str(n): q_gauss[n] for n in SIGMA_LEVELS},
                "skew": {str(g): {str(n): q[n] for n in SIGMA_LEVELS}
                         for g, q in skew.items()},
                "kurtosis": {str(k): {str(n): q[n] for n in SIGMA_LEVELS}
                             for k, q in kurt.items()},
            }

        table = benchmark(build)
        print("\nFig. 3 — quantile displacement vs skew/kurtosis (unit-sigma data)")
        print("level   gauss   skew=0.9  kurt=9")
        for n in SIGMA_LEVELS:
            print(f"{n:+d}     {q_gauss[n]:7.3f} {skew[0.9][n]:9.3f} "
                  f"{kurt[9.0][n]:8.3f}")
        record_result("fig3_moment_effects", table)
