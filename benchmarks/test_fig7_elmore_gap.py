"""Fig. 7 — Elmore vs the SPICE wire-delay distribution.

The paper's single-net motivation: the Monte-Carlo wire delay
distribution is wide and skewed, so its 99.86 % quantile sits far above
the deterministic Elmore number ("31.65 ps vs 22.19 ps"). This
benchmark regenerates the comparison on the fixed example net with an
INVx4 driver and load.
"""

import numpy as np
import pytest

from conftest import N_MC, record_result
from repro.core.nsigma_wire import annotated_elmore, measure_wire_variability
from repro.interconnect.generate import NetGenerator
from repro.moments.stats import empirical_sigma_quantiles
from repro.units import PS


@pytest.fixture(scope="module")
def fig7(flow, golden_engine):
    gen = NetGenerator(flow.tech, seed=7)
    tree = gen.paper_example_net()
    sink = tree.leaves()[0]
    elmore = annotated_elmore(flow.tech, flow.library, tree, sink, "INVx4")
    moments, samples = measure_wire_variability(
        golden_engine, flow.library, "INVx4", "INVx4", tree,
        sink=sink, n_samples=N_MC)
    d = samples.delay[samples.valid]
    quantiles = empirical_sigma_quantiles(d)
    hist, edges = np.histogram(d / PS, bins=60, density=True)
    return tree, elmore, moments, quantiles, (hist, edges)


class TestFig7:
    def test_high_yield(self, fig7):
        _, _, moments, _, _ = fig7
        assert moments.n > 0.95 * N_MC

    def test_elmore_near_mean(self, fig7):
        # Eq. (4): the paper uses Elmore as mu_w.
        _, elmore, moments, _, _ = fig7
        assert moments.mu == pytest.approx(elmore, rel=0.25)

    def test_plus3_quantile_well_above_elmore(self, fig7):
        # The headline gap of Fig. 7.
        _, elmore, _, quantiles, _ = fig7
        assert quantiles[3] > 1.08 * elmore

    def test_distribution_spread(self, fig7):
        _, _, moments, _, _ = fig7
        assert moments.variability > 0.02

    def test_report(self, fig7, benchmark):
        tree, elmore, moments, quantiles, (hist, edges) = fig7

        def build():
            return {
                "elmore_ps": elmore / PS,
                "mc_mean_ps": moments.mu / PS,
                "mc_sigma_ps": moments.sigma / PS,
                "mc_quantiles_ps": {str(n): q / PS for n, q in quantiles.items()},
                "gap_plus3_vs_elmore": quantiles[3] / elmore,
                "net": {"total_r_ohm": tree.total_resistance(),
                        "total_c_ff": tree.total_cap() * 1e15},
            }

        table = benchmark(build)
        print("\nFig. 7 — Elmore vs Monte-Carlo wire delay")
        print(f"  Elmore          : {table['elmore_ps']:7.2f} ps")
        print(f"  MC mean         : {table['mc_mean_ps']:7.2f} ps")
        print(f"  MC 99.86% (+3σ) : {table['mc_quantiles_ps']['3']:7.2f} ps"
              f"  ({100 * (table['gap_plus3_vs_elmore'] - 1):+.1f}% vs Elmore)")
        record_result("fig7_elmore_gap", {**table, "hist": hist.tolist(),
                                          "edges": edges.tolist()})
