"""Shared fixtures.

Simulation-heavy fixtures (library characterization, fitted models) are
session-scoped and cached on disk under ``.pytest_repro_cache/`` keyed
by their parameters, so the first ``pytest`` run pays the Monte-Carlo
cost once and subsequent runs start instantly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cells.characterize import ArcCharacterizer
from repro.cells.library import build_default_library
from repro.core.flow import DelayCalibrationFlow
from repro.netlist.benchmarks import attach_parasitics
from repro.netlist.generators import build_adder
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel

#: Repo-local cache reused across pytest runs (safe to delete any time).
CACHE_DIR = ".pytest_repro_cache"

#: Cells the mini flow characterizes — the smallest set that supports
#: the wire-model fit (INV x1–x8) plus one stacked cell type.
MINI_CELLS = ["INVx1", "INVx2", "INVx4", "INVx8", "NAND2x1", "NOR2x1"]


@pytest.fixture(scope="session")
def tech() -> Technology:
    """Default synthetic technology."""
    return Technology()


@pytest.fixture(scope="session")
def variation() -> VariationModel:
    """Default variation model."""
    return VariationModel()


@pytest.fixture(scope="session")
def library(tech):
    """The default cell library."""
    return build_default_library(tech)


@pytest.fixture(scope="session")
def engine(tech, variation) -> MonteCarloEngine:
    """A seeded Monte-Carlo engine for direct simulation tests."""
    return MonteCarloEngine(tech, variation, seed=42)


@pytest.fixture(scope="session")
def characterizer(engine) -> ArcCharacterizer:
    """Arc characterizer bound to the session engine."""
    return ArcCharacterizer(engine)


@pytest.fixture(scope="session")
def mini_flow() -> DelayCalibrationFlow:
    """A small but complete calibration flow (cached on disk)."""
    return DelayCalibrationFlow(
        seed=7,
        cache_dir=CACHE_DIR,
        n_samples=250,
        slews=[10 * PS, 80 * PS, 250 * PS],
        loads=[0.1 * FF, 1.0 * FF, 4.0 * FF, 9.0 * FF],
        wire_fit_samples=200,
        wire_fit_trees=1,
        cell_names=MINI_CELLS,
    )


@pytest.fixture(scope="session")
def mini_charac(mini_flow):
    """Characterization tables of the mini flow."""
    return mini_flow.characterize()


@pytest.fixture(scope="session")
def mini_models(mini_flow):
    """Fully fitted timing models of the mini flow."""
    return mini_flow.fit_models()


@pytest.fixture(scope="session")
def adder_circuit(tech):
    """A 3-bit ripple adder with parasitics, remapped onto mini-flow cells."""
    circuit = build_adder(3, name="adder3")
    # The generators emit NAND2x1 gates only, which the mini flow covers.
    attach_parasitics(circuit, tech, seed=5)
    return circuit


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
