"""Kernel backend registry, selection, and golden-equivalence tests.

The numpy backend is the golden reference; every other backend that
probes available on this machine must satisfy the KRN001 equivalence
envelope (primitives within 1e-12 normalized, conductances within
1e-9, end-to-end delays within 1e-12 s) and be selectable through the
``REPRO_KERNEL`` environment variable and the ``kernel=`` engine knob.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.kernels as kernels
from repro.cache import version_salt
from repro.cells.characterize import ArcCharacterizer
from repro.kernels import (
    KERNEL_ENV,
    PREFERENCE_ORDER,
    available_backends,
    backend_identity,
    default_backend,
    select_backend,
)
from repro.kernels.base import KernelBackend
from repro.kernels.numpy_backend import NumpyBackend
from repro.lint import lint_kernel_equivalence
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS


def _available_names():
    return [b["name"] for b in available_backends() if b["available"] == "yes"]


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    """Isolate each test from the ambient backend choice and the
    warn-once latch (so fallback warnings are observable per-test)."""
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    monkeypatch.setattr(kernels, "_warned", set())
    yield


class TestSelection:
    def test_default_is_numpy(self):
        assert select_backend().name == "numpy"
        assert default_backend().name == "numpy"

    def test_env_var_honored(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fused")
        assert select_backend().name == "fused"
        assert backend_identity().startswith("fused-")

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "fused")
        assert select_backend("numpy").name == "numpy"

    def test_auto_picks_first_available(self):
        picked = select_backend("auto")
        avail = _available_names()
        # auto must pick the preference-order-first available backend
        assert picked.name == next(n for n in PREFERENCE_ORDER if n in avail)

    def test_unknown_name_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="unknown kernel backend"):
            backend = select_backend("hal9000")
        assert backend.name == "numpy"

    def test_unknown_name_warns_once_per_process(self):
        with pytest.warns(RuntimeWarning):
            select_backend("hal9000")
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            assert select_backend("hal9000").name == "numpy"

    def test_strict_mode_raises_on_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            select_backend("hal9000", fallback=False)

    def test_strict_mode_raises_on_unavailable(self):
        unavailable = [
            b["name"] for b in available_backends() if b["available"] == "no"
        ]
        if not unavailable:
            pytest.skip("every registered backend is available here")
        with pytest.raises(ValueError, match="unavailable"):
            select_backend(unavailable[0], fallback=False)

    def test_unavailable_falls_back_down_preference_order(self):
        unavailable = [
            b["name"] for b in available_backends() if b["available"] == "no"
        ]
        if not unavailable:
            pytest.skip("every registered backend is available here")
        with pytest.warns(RuntimeWarning, match="unavailable"):
            backend = select_backend(unavailable[0])
        assert backend.name in _available_names()

    def test_available_backends_shape(self):
        rows = available_backends()
        assert [r["name"] for r in rows] == list(PREFERENCE_ORDER)
        for row in rows:
            assert row["available"] in ("yes", "no")
            assert row["detail"]
        # numpy is the terminal fallback and must always be available
        assert rows[-1] == {
            "name": "numpy",
            "available": "yes",
            "detail": rows[-1]["detail"],
        }

    def test_identity_strings_are_distinct(self):
        ids = {name: select_backend(name).identity() for name in _available_names()}
        assert len(set(ids.values())) == len(ids)
        for name, ident in ids.items():
            assert ident.startswith(f"{name}-")


class TestCacheSalt:
    def test_version_salt_names_backend(self):
        salt = version_salt()
        assert salt["kernel"] == backend_identity()

    def test_salt_tracks_kernel_env(self, monkeypatch):
        base = version_salt()["kernel"]
        monkeypatch.setenv(KERNEL_ENV, "fused")
        assert version_salt()["kernel"] != base
        assert version_salt()["kernel"].startswith("fused-")


class _BrokenBackend(NumpyBackend):
    """A backend violating equivalence on purpose (KRN001 must fire)."""

    name = "broken"
    version = "0"

    def ekv_eval(self, vg, vd, vs, params):
        ids, gg, gd, gs = super().ekv_eval(vg, vd, vs, params)
        return ids * (1.0 + 1e-6), gg, gd, gs


class TestEquivalenceLint:
    @pytest.mark.parametrize("name", _available_names())
    def test_backend_passes_krn001(self, name):
        report = lint_kernel_equivalence(name, n=256)
        assert not report.errors, [d.message for d in report.errors]

    def test_krn001_fires_on_divergent_backend(self):
        report = lint_kernel_equivalence(_BrokenBackend(), n=256)
        assert report.errors
        assert all(d.rule_id == "KRN001" for d in report.errors)
        assert any("ekv_eval" in d.message for d in report.errors)


class TestPrimitives:
    """Direct primitive-level checks shared by every available backend."""

    @pytest.mark.parametrize("name", _available_names())
    def test_solve_stack_matches_dense_solve(self, name):
        backend = select_backend(name, fallback=False)
        rng = np.random.default_rng(5)
        for n in (1, 2, 3, 4):
            jac = rng.normal(size=(64, n, n))
            jac[:, np.arange(n), np.arange(n)] += 4.0
            resid = rng.normal(size=(64, n))
            delta = backend.solve_stack(jac.copy(), resid.copy())
            want = np.linalg.solve(jac, -resid[..., None])[..., 0]
            np.testing.assert_allclose(delta, want, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("name", _available_names())
    def test_solve_stack_raises_on_singular(self, name):
        backend = select_backend(name, fallback=False)
        jac = np.zeros((4, 2, 2))
        resid = np.ones((4, 2))
        with pytest.raises(np.linalg.LinAlgError):
            backend.solve_stack(jac, resid)

    @pytest.mark.parametrize("name", _available_names())
    def test_apply_update_convergence_bookkeeping(self, name):
        backend = select_backend(name, fallback=False)
        golden = NumpyBackend()
        rng = np.random.default_rng(11)
        v1 = rng.normal(size=(32, 3))
        v2 = v1.copy()
        delta = rng.normal(size=(32, 3)) * 0.05
        rows1, fin1 = backend.apply_update(v1, None, delta.copy(), 0.3, 1e-2)
        rows2, fin2 = golden.apply_update(v2, None, delta.copy(), 0.3, 1e-2)
        assert fin1 == fin2
        np.testing.assert_array_equal(v1, v2)
        if rows2 is None:
            assert rows1 is None
        else:
            np.testing.assert_array_equal(rows1, rows2)

    @pytest.mark.parametrize("name", _available_names())
    def test_apply_update_flags_nonfinite(self, name):
        backend = select_backend(name, fallback=False)
        v = np.zeros((4, 2))
        delta = np.zeros((4, 2))
        delta[1, 0] = np.nan
        _, finite = backend.apply_update(v, None, delta, 0.3, 1e-2)
        assert finite is False


def _simulate_delay(library, tech, variation, kernel, n_samples=64):
    engine = MonteCarloEngine(tech, variation, seed=7, kernel=kernel)
    chz = ArcCharacterizer(engine)
    samples = chz.simulate_arc(
        library.get("NAND2x1"), "A", input_slew=40 * PS, load=2 * FF,
        n_samples=n_samples,
    )
    return samples, engine.perf


class TestEndToEndEquivalence:
    """Accelerated backends must reproduce golden delays to 1e-12 s."""

    @pytest.mark.parametrize(
        "name", [n for n in _available_names() if n != "numpy"]
    )
    def test_delays_match_golden_envelope(self, library, tech, variation, name):
        golden, _ = _simulate_delay(library, tech, variation, "numpy")
        got, perf = _simulate_delay(library, tech, variation, name)
        assert np.max(np.abs(got.delay - golden.delay)) <= 1e-12
        assert np.max(np.abs(got.output_slew - golden.output_slew)) <= 1e-12
        # the run must be attributed to the backend it claims
        assert any(k.startswith(f"{name}.") for k in perf.kernel_ops)

    def test_kernel_ops_counters_populate(self, library, tech, variation):
        _, perf = _simulate_delay(library, tech, variation, "numpy", n_samples=16)
        assert perf.kernel_ops.get("numpy.solve_stack", 0) > 0
        assert perf.kernel_ops.get("numpy.device_eval", 0) > 0
