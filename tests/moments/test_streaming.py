"""Tests for the streaming moments / reservoir quantiles extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.moments.stats import Moments
from repro.moments.streaming import ReservoirQuantiles, StreamingMoments


class TestStreamingMoments:
    def test_matches_batch_estimator(self, rng):
        x = rng.gamma(2.0, 1.5, 5000)
        stream = StreamingMoments().add_many(x)
        batch = Moments.from_samples(x)
        online = stream.moments()
        assert online.mu == pytest.approx(batch.mu, rel=1e-12)
        assert online.sigma == pytest.approx(batch.sigma, rel=1e-12)
        assert online.skew == pytest.approx(batch.skew, rel=1e-9)
        assert online.kurt == pytest.approx(batch.kurt, rel=1e-9)
        assert online.n == batch.n

    def test_nan_ignored(self):
        s = StreamingMoments().add_many([1.0, np.nan, 2.0] * 4)
        assert s.n == 8

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            StreamingMoments().add_many([1.0, 2.0]).moments()

    def test_constant_stream(self):
        m = StreamingMoments().add_many([3.0] * 20).moments()
        assert m.sigma == 0.0
        assert m.kurt == 3.0

    def test_merge_equals_concatenation(self, rng):
        x = rng.lognormal(0, 0.4, 3000)
        a = StreamingMoments().add_many(x[:1000])
        b = StreamingMoments().add_many(x[1000:])
        merged = a.merge(b).moments()
        whole = StreamingMoments().add_many(x).moments()
        assert merged.mu == pytest.approx(whole.mu, rel=1e-12)
        assert merged.sigma == pytest.approx(whole.sigma, rel=1e-10)
        assert merged.skew == pytest.approx(whole.skew, rel=1e-8)
        assert merged.kurt == pytest.approx(whole.kurt, rel=1e-8)

    def test_merge_with_empty(self, rng):
        x = rng.normal(size=100)
        a = StreamingMoments().add_many(x)
        merged = a.merge(StreamingMoments())
        assert merged.moments().mu == pytest.approx(np.mean(x))
        merged2 = StreamingMoments().merge(a)
        assert merged2.moments().mu == pytest.approx(np.mean(x))

    @given(split=st.integers(min_value=8, max_value=192))
    @settings(max_examples=20, deadline=None)
    def test_merge_associativity_property(self, split):
        x = np.random.default_rng(9).exponential(1.0, 200)
        a = StreamingMoments().add_many(x[:split])
        b = StreamingMoments().add_many(x[split:])
        m = a.merge(b).moments()
        w = StreamingMoments().add_many(x).moments()
        assert m.kurt == pytest.approx(w.kurt, rel=1e-7)


class TestReservoirQuantiles:
    def test_exact_below_capacity(self, rng):
        x = rng.normal(size=500)
        r = ReservoirQuantiles(capacity=1000, seed=1).add_many(x)
        q = r.sigma_quantiles(levels=(0,))
        assert q[0] == pytest.approx(float(np.median(x)), abs=1e-12)

    def test_estimates_converge(self, rng):
        x = rng.normal(size=100000)
        r = ReservoirQuantiles(capacity=4096, seed=2).add_many(x)
        q = r.sigma_quantiles(levels=(-1, 0, 1))
        for n in (-1, 0, 1):
            assert q[n] == pytest.approx(float(n), abs=0.08)

    def test_capacity_bound(self, rng):
        r = ReservoirQuantiles(capacity=64, seed=3)
        r.add_many(rng.normal(size=10000))
        assert r.n_seen == 10000
        assert r._buffer.shape == (64,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReservoirQuantiles(seed=1).sigma_quantiles()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirQuantiles(capacity=4)


class TestStreamingEdgeCases:
    """Edge cases exercised by the surrogate's noise-floor estimates."""

    def test_seven_observations_still_too_few(self):
        with pytest.raises(ValueError, match=">= 8"):
            StreamingMoments().add_many(np.arange(7.0)).moments()

    def test_eight_observations_suffice(self):
        m = StreamingMoments().add_many(np.arange(8.0)).moments()
        assert m.n == 8

    def test_zero_sigma_reports_neutral_shape(self):
        # Degenerate distributions must yield the Gaussian reference
        # kurtosis (3.0) and zero skew, not NaN — the surrogate divides
        # by these moments when flooring the GP nugget.
        m = StreamingMoments().add_many([5.0] * 16).moments()
        assert m.sigma == 0.0
        assert m.skew == 0.0
        assert m.kurt == 3.0

    def test_merge_empty_with_empty(self):
        merged = StreamingMoments().merge(StreamingMoments())
        assert merged.n == 0
        with pytest.raises(ValueError):
            merged.moments()

    def test_all_nan_stream_counts_nothing(self):
        s = StreamingMoments().add_many([np.nan] * 20)
        assert s.n == 0
