"""Tests for the LSN / Burr / skew-normal comparison distributions."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import CalibrationError
from repro.moments.distributions import BurrXII, LogSkewNormal, SkewNormal


@pytest.fixture()
def skewed_delays(rng):
    """Synthetic positive, right-skewed 'delay' data (log-normal-ish)."""
    return 10e-12 * np.exp(rng.normal(0.0, 0.25, 20000))


class TestSkewNormal:
    def test_fit_recovers_gaussian(self, rng):
        x = rng.normal(5.0, 2.0, 50000)
        sn = SkewNormal.fit_moments(x)
        assert abs(sn.alpha) < 0.5
        assert sn.quantile(0.5) == pytest.approx(5.0, rel=0.02)

    def test_fit_recovers_known_skewnormal(self, rng):
        x = sps.skewnorm.rvs(4.0, loc=1.0, scale=2.0, size=100000,
                             random_state=rng)
        sn = SkewNormal.fit_moments(x)
        for p in (0.1, 0.5, 0.9):
            assert sn.quantile(p) == pytest.approx(
                sps.skewnorm.ppf(p, 4.0, loc=1.0, scale=2.0), rel=0.05)

    def test_extreme_skew_clipped_not_crash(self, rng):
        x = rng.exponential(1.0, 5000)  # skew 2 > representable limit
        sn = SkewNormal.fit_moments(x)
        assert np.isfinite(sn.quantile(0.99))

    def test_pdf_integrates_to_one(self):
        sn = SkewNormal(xi=0.0, omega=1.0, alpha=3.0)
        x = np.linspace(-5, 8, 4000)
        assert np.trapezoid(sn.pdf(x), x) == pytest.approx(1.0, abs=1e-3)

    def test_sample_roundtrip(self, rng):
        sn = SkewNormal(xi=2.0, omega=1.0, alpha=2.0)
        x = sn.sample(50000, rng)
        refit = SkewNormal.fit_moments(x)
        assert refit.quantile(0.5) == pytest.approx(sn.quantile(0.5), rel=0.03)

    def test_rejects_tiny_datasets(self):
        with pytest.raises(CalibrationError):
            SkewNormal.fit_moments([1.0, 2.0])

    def test_sigma_quantile_alias(self):
        from repro.moments.stats import sigma_level_fraction
        sn = SkewNormal(xi=0.0, omega=1.0, alpha=0.0)
        assert sn.sigma_quantile(2) == pytest.approx(
            sn.quantile(sigma_level_fraction(2)), abs=1e-9)


class TestLogSkewNormal:
    def test_quantiles_close_on_lognormal_data(self, skewed_delays):
        lsn = LogSkewNormal.fit(skewed_delays)
        for p in (0.1, 0.5, 0.9, 0.99):
            emp = np.quantile(skewed_delays, p)
            assert lsn.quantile(p) == pytest.approx(emp, rel=0.05)

    def test_requires_positive(self, rng):
        with pytest.raises(CalibrationError):
            LogSkewNormal.fit(rng.normal(0, 1, 100))

    def test_pdf_zero_for_negative(self, skewed_delays):
        lsn = LogSkewNormal.fit(skewed_delays)
        assert np.all(lsn.pdf(np.array([-1.0, 0.0])) == 0.0)

    def test_pdf_integrates_to_one(self, skewed_delays):
        lsn = LogSkewNormal.fit(skewed_delays)
        x = np.linspace(1e-13, 100e-12, 20000)
        assert np.trapezoid(lsn.pdf(x), x) == pytest.approx(1.0, abs=0.01)


class TestBurrXII:
    def test_fit_on_burr_data(self, rng):
        true = BurrXII(c=3.0, k=1.5, loc=5e-12, scale=10e-12)
        u = rng.uniform(0.001, 0.999, 40000)
        x = np.array([true.quantile(p) for p in u])
        fit = BurrXII.fit(x)
        for p in (0.1, 0.5, 0.9):
            assert fit.quantile(p) == pytest.approx(true.quantile(p), rel=0.05)

    def test_quantile_monotone(self, skewed_delays):
        burr = BurrXII.fit(skewed_delays)
        qs = [burr.quantile(p) for p in (0.01, 0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_cdf_quantile_inverse(self, skewed_delays):
        burr = BurrXII.fit(skewed_delays)
        for p in (0.05, 0.5, 0.95):
            assert burr.cdf(np.array([burr.quantile(p)]))[0] == pytest.approx(p, abs=1e-6)

    def test_quantile_domain(self, skewed_delays):
        burr = BurrXII.fit(skewed_delays)
        with pytest.raises(ValueError):
            burr.quantile(0.0)
        with pytest.raises(ValueError):
            burr.quantile(1.0)

    def test_pdf_nonnegative_and_normalized(self, skewed_delays):
        burr = BurrXII.fit(skewed_delays)
        x = np.linspace(burr.loc, burr.loc + 50 * burr.scale, 50000)
        pdf = burr.pdf(x)
        assert np.all(pdf >= 0)
        assert np.trapezoid(pdf, x) == pytest.approx(1.0, abs=0.02)

    def test_needs_samples(self):
        with pytest.raises(CalibrationError):
            BurrXII.fit(np.ones(10))

    def test_tail_heavier_than_gaussian_fit(self, rng):
        # On heavy-tailed data Burr's +3-sigma-level quantile should
        # exceed mu + 3 sigma.
        x = 1e-11 * np.exp(rng.normal(0, 0.4, 30000))
        burr = BurrXII.fit(x)
        assert burr.sigma_quantile(3) > np.mean(x) + 2.5 * np.std(x)


class TestQuantileFits:
    def test_skewnormal_fit_quantiles_roundtrip(self):
        sn = SkewNormal(xi=2.0, omega=1.5, alpha=3.0)
        q = {p: sn.quantile(p) for p in (0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99)}
        refit = SkewNormal.fit_quantiles(q)
        for p in (0.05, 0.5, 0.995):
            assert refit.quantile(p) == pytest.approx(sn.quantile(p), rel=0.02)

    def test_skewnormal_fit_quantiles_validation(self):
        with pytest.raises(CalibrationError):
            SkewNormal.fit_quantiles({0.5: 1.0})
        with pytest.raises(CalibrationError):
            SkewNormal.fit_quantiles({0.1: 2.0, 0.5: 1.0, 0.9: 0.0})

    def test_lsn_fit_quantiles_roundtrip(self, skewed_delays):
        probs = (0.01, 0.1, 0.5, 0.9, 0.99)
        q = {p: float(np.quantile(skewed_delays, p)) for p in probs}
        lsn = LogSkewNormal.fit_quantiles(q)
        for p in probs:
            assert lsn.quantile(p) == pytest.approx(q[p], rel=0.03)

    def test_lsn_fit_quantiles_rejects_nonpositive(self):
        with pytest.raises(CalibrationError):
            LogSkewNormal.fit_quantiles({0.1: -1.0, 0.5: 1.0, 0.9: 2.0})

    def test_burr_fit_quantiles_roundtrip(self):
        true = BurrXII(c=3.0, k=1.5, loc=5e-12, scale=10e-12)
        probs = (0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.98)
        q = {p: true.quantile(p) for p in probs}
        refit = BurrXII.fit_quantiles(q)
        for p in (0.05, 0.5, 0.95):
            assert refit.quantile(p) == pytest.approx(true.quantile(p), rel=0.05)


class TestMomentMatchedConstructors:
    def test_lsn_from_moments_matches_lognormal(self, rng):
        x = 3e-11 * np.exp(rng.normal(0, 0.2, 100000))
        mu, sd = float(x.mean()), float(x.std())
        g = float(((x - mu) ** 3).mean() / sd**3)
        lsn = LogSkewNormal.from_moments(mu, sd, g)
        for p in (0.00135, 0.5, 0.99865):
            assert lsn.quantile(p) == pytest.approx(
                float(np.quantile(x, p)), rel=0.04)

    def test_lsn_from_moments_validation(self):
        with pytest.raises(CalibrationError):
            LogSkewNormal.from_moments(-1.0, 1.0, 0.5)
        with pytest.raises(CalibrationError):
            LogSkewNormal.from_moments(1.0, 0.0, 0.5)

    def test_burr_from_moments_matches_bulk(self, rng):
        x = 3e-11 * np.exp(rng.normal(0, 0.2, 100000))
        mu, sd = float(x.mean()), float(x.std())
        g = float(((x - mu) ** 3).mean() / sd**3)
        burr = BurrXII.from_moments(mu, sd, g)
        # Bulk matches well...
        assert burr.quantile(0.5) == pytest.approx(
            float(np.quantile(x, 0.5)), rel=0.05)
        # ...but the implied -3σ tail is visibly off (the paper's point).
        emp = float(np.quantile(x, 0.00135))
        assert abs(burr.quantile(0.00135) - emp) / emp > 0.02

    def test_burr_from_moments_positive_support(self):
        burr = BurrXII.from_moments(3e-11, 5e-12, 1.0)
        assert burr.loc == 0.0
        assert burr.quantile(0.0001) > 0

    def _legacy_tail_check(self, rng):
        # On heavy-tailed data Burr's +3-sigma-level quantile should
        # exceed mu + 3 sigma.
        x = 1e-11 * np.exp(rng.normal(0, 0.4, 30000))
        burr = BurrXII.fit(x)
        assert burr.sigma_quantile(3) > np.mean(x) + 2.5 * np.std(x)
