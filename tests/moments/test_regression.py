"""Tests for the regression helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CalibrationError
from repro.moments.regression import LinearFit, fit_linear, polynomial_features


class TestFitLinear:
    def test_exact_fit(self, rng):
        x = rng.normal(size=(50, 3))
        coef = np.array([1.0, -2.0, 0.5])
        fit = fit_linear(x, x @ coef)
        assert np.allclose(fit.coef, coef)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.residual_rms == pytest.approx(0.0, abs=1e-10)

    def test_noisy_fit_r2(self, rng):
        x = rng.normal(size=(500, 2))
        y = x @ np.array([3.0, 1.0]) + rng.normal(0, 0.1, 500)
        fit = fit_linear(x, y)
        assert fit.r_squared > 0.99
        assert fit.residual_rms == pytest.approx(0.1, rel=0.2)

    def test_weights_prioritize_observations(self, rng):
        x = np.array([[1.0], [1.0]])
        y = np.array([0.0, 10.0])
        fit = fit_linear(x, y, weights=np.array([1e6, 1.0]))
        assert fit.coef[0] == pytest.approx(0.0, abs=0.01)

    def test_ridge_shrinks_collinear(self, rng):
        base = rng.normal(size=200)
        x = np.stack([base, base + 1e-9 * rng.normal(size=200)], axis=1)
        y = base
        plain = fit_linear(x, y)
        damped = fit_linear(x, y, ridge=1e-3)
        assert np.max(np.abs(damped.coef)) < np.max(np.abs(plain.coef)) + 1e-6
        assert np.max(np.abs(damped.coef)) < 10.0

    def test_underdetermined_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear(np.ones((2, 3)), np.ones(2))

    def test_shape_validation(self):
        with pytest.raises(CalibrationError):
            fit_linear(np.ones(5), np.ones(5))
        with pytest.raises(CalibrationError):
            fit_linear(np.ones((5, 1)), np.ones(4))

    def test_predict(self, rng):
        x = rng.normal(size=(30, 2))
        fit = fit_linear(x, x @ np.array([2.0, -1.0]))
        new = np.array([[1.0, 1.0]])
        assert fit.predict(new)[0] == pytest.approx(1.0)

    @given(scale=st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=20, deadline=None)
    def test_scale_equivariance(self, scale):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(40, 2))
        y = x @ np.array([1.0, 2.0])
        fit = fit_linear(x, y * scale)
        assert np.allclose(fit.coef, scale * np.array([1.0, 2.0]), rtol=1e-8)


class TestPolynomialFeatures:
    def test_degree1_columns(self):
        f = polynomial_features(np.array([2.0]), np.array([3.0]), degree=1)
        assert f.tolist() == [[2.0, 3.0, 6.0]]

    def test_degree3_columns(self):
        f = polynomial_features(np.array([2.0]), np.array([1.0]), degree=3)
        assert f.tolist() == [[2.0, 1.0, 4.0, 1.0, 8.0, 1.0, 2.0]]

    def test_no_cross(self):
        f = polynomial_features(np.array([2.0]), np.array([3.0]), degree=1, cross=False)
        assert f.shape == (1, 2)

    def test_broadcasting(self):
        f = polynomial_features(np.zeros(5), np.ones(5), degree=2)
        assert f.shape == (5, 5)

    def test_invalid_degree(self):
        with pytest.raises(CalibrationError):
            polynomial_features(np.zeros(2), np.zeros(2), degree=4)

    def test_zero_deviation_gives_zero_features(self):
        f = polynomial_features(np.array([0.0]), np.array([0.0]), degree=3)
        assert np.all(f == 0.0)
