"""Unit and property tests for moments and sigma-level quantiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as sps

from repro.moments.stats import (
    MOMENT_VALIDITY_TOL,
    SIGMA_LEVELS,
    Moments,
    check_moment_validity,
    empirical_sigma_quantiles,
    moment_validity_margin,
    moments_valid,
    quantile_standard_error,
    sigma_level_fraction,
)


class TestMomentValidity:
    def test_margin_gaussian(self):
        # Gaussian: skew 0, kurt 3 -> margin 2.
        assert moment_validity_margin(0.0, 3.0) == pytest.approx(2.0)

    def test_margin_at_the_bound(self):
        assert moment_validity_margin(1.5, 1.5**2 + 1.0) == pytest.approx(0.0)
        assert moments_valid(1.5, 1.5**2 + 1.0)

    def test_invalid_pair_detected(self):
        assert not moments_valid(2.0, 3.0)  # needs kurt >= 5
        assert moment_validity_margin(2.0, 3.0) == pytest.approx(-2.0)

    def test_tolerance_absorbs_round_off(self):
        kurt = 1.0 - MOMENT_VALIDITY_TOL / 2  # barely below skew**2 + 1
        assert moments_valid(0.0, kurt)
        assert not moments_valid(0.0, 1.0 - 1e-6)

    def test_check_raises_with_context(self):
        with pytest.raises(ValueError, match="arc INVx1/A/fall"):
            check_moment_validity(2.0, 3.0, context="arc INVx1/A/fall")
        check_moment_validity(0.0, 3.0, context="fine")  # silent

    def test_from_samples_always_satisfies_inequality(self):
        rng = np.random.default_rng(5)
        for dist in (rng.normal(0, 1, 500), rng.exponential(1.0, 500),
                     rng.uniform(0, 1, 500)):
            m = Moments.from_samples(dist)
            assert moments_valid(m.skew, m.kurt)

    def test_from_samples_context_in_messages(self):
        with pytest.raises(ValueError, match="arc X: need >= 8"):
            Moments.from_samples([1.0, 2.0], context="arc X")


class TestSigmaLevels:
    def test_paper_percent_defective_column(self):
        # Table I's "percent defective" values.
        expected = {-3: 0.0014, -2: 0.0228, -1: 0.1587, 0: 0.5,
                    1: 0.8413, 2: 0.9772, 3: 0.9986}
        for level, frac in expected.items():
            # The paper's column is rounded to 4 decimals.
            assert sigma_level_fraction(level) == pytest.approx(frac, abs=1e-4)

    def test_levels_ascending(self):
        assert list(SIGMA_LEVELS) == sorted(SIGMA_LEVELS)


class TestMoments:
    def test_gaussian_data(self, rng):
        x = rng.normal(10.0, 2.0, 200000)
        m = Moments.from_samples(x)
        assert m.mu == pytest.approx(10.0, rel=0.01)
        assert m.sigma == pytest.approx(2.0, rel=0.02)
        assert m.skew == pytest.approx(0.0, abs=0.05)
        assert m.kurt == pytest.approx(3.0, abs=0.1)

    def test_exponential_data_skewed(self, rng):
        x = rng.exponential(1.0, 100000)
        m = Moments.from_samples(x)
        assert m.skew == pytest.approx(2.0, rel=0.1)
        assert m.kurt == pytest.approx(9.0, rel=0.2)

    def test_nan_handling(self):
        x = np.array([1.0, 2.0, np.nan, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        m = Moments.from_samples(x)
        assert m.n == 8
        assert m.mu == pytest.approx(4.5)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            Moments.from_samples([1.0, 2.0, 3.0])

    def test_constant_data(self):
        m = Moments.from_samples([5.0] * 20)
        assert m.sigma == 0.0
        assert m.kurt == 3.0

    def test_variability(self):
        m = Moments(10.0, 2.0, 0.0, 3.0)
        assert m.variability == pytest.approx(0.2)
        with pytest.raises(ZeroDivisionError):
            Moments(0.0, 1.0, 0.0, 3.0).variability

    def test_gaussian_quantile(self):
        m = Moments(10.0, 2.0, 0.5, 4.0)
        assert m.gaussian_quantile(3) == pytest.approx(16.0)
        assert m.gaussian_quantile(-3) == pytest.approx(4.0)

    def test_as_array_order(self):
        m = Moments(1.0, 2.0, 3.0, 4.0)
        assert m.as_array().tolist() == [1.0, 2.0, 3.0, 4.0]

    @given(
        mu=st.floats(min_value=-100, max_value=100),
        sigma=st.floats(min_value=0.01, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_location_scale_equivariance(self, mu, sigma):
        base = np.random.default_rng(0).normal(0, 1, 3000)
        m = Moments.from_samples(mu + sigma * base)
        m0 = Moments.from_samples(base)
        assert m.mu == pytest.approx(mu + sigma * m0.mu, abs=1e-6 + abs(mu) * 1e-9)
        assert m.sigma == pytest.approx(sigma * m0.sigma, rel=1e-6)
        assert m.skew == pytest.approx(m0.skew, abs=1e-6)
        assert m.kurt == pytest.approx(m0.kurt, abs=1e-6)


class TestEmpiricalQuantiles:
    def test_gaussian_matches_mu_n_sigma(self, rng):
        x = rng.normal(0.0, 1.0, 500000)
        q = empirical_sigma_quantiles(x)
        for n in SIGMA_LEVELS:
            assert q[n] == pytest.approx(float(n), abs=0.05)

    def test_monotone_in_level(self, rng):
        x = rng.gamma(2.0, 1.0, 20000)
        q = empirical_sigma_quantiles(x)
        values = [q[n] for n in SIGMA_LEVELS]
        assert values == sorted(values)

    def test_subset_of_levels(self, rng):
        x = rng.normal(0, 1, 1000)
        q = empirical_sigma_quantiles(x, levels=(-3, 3))
        assert set(q) == {-3, 3}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_sigma_quantiles([np.nan, np.nan])


class TestQuantileStandardError:
    def test_gaussian_reference(self, rng):
        # SE of the median of N(0,1): sqrt(pi/2)/sqrt(n).
        x = rng.normal(0, 1, 10000)
        se = quantile_standard_error(x, 0)
        assert se == pytest.approx(np.sqrt(np.pi / 2) / 100, rel=0.2)

    def test_tail_se_larger_than_median_se(self, rng):
        x = rng.normal(0, 1, 10000)
        assert quantile_standard_error(x, 3) > quantile_standard_error(x, 0)

    def test_shrinks_with_samples(self, rng):
        small = quantile_standard_error(rng.normal(0, 1, 2000), 2)
        large = quantile_standard_error(rng.normal(0, 1, 50000), 2)
        assert large < small

    def test_needs_enough_samples(self, rng):
        with pytest.raises(ValueError):
            quantile_standard_error(rng.normal(0, 1, 50), 0)
