"""Corrupt packs must fail loudly — never deserialize garbage.

Each test damages a valid ``.rpk`` a different way (truncation, bit
flips, foreign byte order, stale identity) and asserts the loader
raises :class:`~repro.errors.PackError` with the right machine code
*before* any document content is handed out.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np
import pytest

from repro.errors import PackError
from repro.pack import (
    COMPILED_DESIGN_KIND,
    ENDIAN_MARK,
    HEADER_SIZE,
    PACK_FORMAT_VERSION,
    PackFile,
    load_compiled_design,
    write_pack,
)


def make_pack(path: Path, meta: dict | None = None) -> Path:
    doc = {
        "x": np.arange(64, dtype=float),
        "y": {"z": np.ones((4, 4))},
        "k": np.array([3, 1, 4], dtype=np.int64),
    }
    return write_pack(path, "unit", doc, meta=meta)


def flip_byte(path: Path, offset: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


def patch_u32(path: Path, offset: int, value: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[offset : offset + 4] = struct.pack("<I", value)
    path.write_bytes(bytes(blob))


@pytest.fixture()
def pack_path(tmp_path) -> Path:
    return make_pack(tmp_path / "unit.rpk")


class TestTruncation:
    def test_empty_file(self, pack_path):
        pack_path.write_bytes(b"")
        with pytest.raises(PackError) as err:
            PackFile.open(pack_path)
        assert err.value.code == "truncated"

    def test_shorter_than_header(self, pack_path):
        pack_path.write_bytes(pack_path.read_bytes()[: HEADER_SIZE - 8])
        with pytest.raises(PackError) as err:
            PackFile.open(pack_path)
        assert err.value.code == "truncated"

    def test_tail_cut_off(self, pack_path):
        pack_path.write_bytes(pack_path.read_bytes()[:-8])
        with pytest.raises(PackError, match="truncated or padded") as err:
            PackFile.open(pack_path)
        assert err.value.code == "truncated"

    def test_trailing_garbage_appended(self, pack_path):
        pack_path.write_bytes(pack_path.read_bytes() + b"\0" * 16)
        with pytest.raises(PackError) as err:
            PackFile.open(pack_path)
        assert err.value.code == "truncated"


class TestHeaderDamage:
    def test_bad_magic(self, pack_path):
        flip_byte(pack_path, 0)
        with pytest.raises(PackError, match="bad magic") as err:
            PackFile.open(pack_path)
        assert err.value.code == "magic"

    def test_wrong_endian_header(self, pack_path):
        # The canary as a foreign-endian writer would have recorded it.
        swapped = int.from_bytes(
            ENDIAN_MARK.to_bytes(4, "little"), "big"
        )
        patch_u32(pack_path, 12, swapped)
        with pytest.raises(PackError, match="foreign byte order") as err:
            PackFile.open(pack_path)
        assert err.value.code == "endian"

    def test_future_format_version(self, pack_path):
        patch_u32(pack_path, 8, PACK_FORMAT_VERSION + 41)
        with pytest.raises(PackError, match="not supported") as err:
            PackFile.open(pack_path)
        assert err.value.code == "version"

    def test_version_zero(self, pack_path):
        patch_u32(pack_path, 8, 0)
        with pytest.raises(PackError) as err:
            PackFile.open(pack_path)
        assert err.value.code == "version"


class TestContentDamage:
    def test_flipped_manifest_byte(self, pack_path):
        flip_byte(pack_path, HEADER_SIZE + 2)
        with pytest.raises(PackError, match="manifest sha256") as err:
            PackFile.open(pack_path)
        assert err.value.code == "digest"

    def test_flipped_tensor_byte(self, pack_path):
        flip_byte(pack_path, pack_path.stat().st_size - 1)
        with pytest.raises(PackError, match="sha256 mismatch") as err:
            PackFile.open(pack_path, verify=True)
        assert err.value.code == "digest"

    def test_unverified_open_then_explicit_verify_catches_it(self, pack_path):
        flip_byte(pack_path, pack_path.stat().st_size - 1)
        pack = PackFile.open(pack_path, verify=False)  # header still fine
        with pytest.raises(PackError) as err:
            pack.verify()
        assert err.value.code == "digest"

    def test_every_tensor_byte_is_covered(self, tmp_path):
        # Flip one byte in each segment: all three must be caught.
        for i in range(3):
            path = make_pack(tmp_path / f"seg{i}.rpk")
            pack = PackFile.open(path)
            record = pack.segments[i]
            offset = pack._data_off + record["offset"]
            flip_byte(path, offset)
            with pytest.raises(PackError) as err:
                PackFile.open(path, verify=True)
            assert err.value.code == "digest"


class TestStaleIdentity:
    def test_stale_design_cache_key_never_deserializes(self, tmp_path):
        # A wrong identity is refused before CompiledDesign.from_dict
        # ever sees the document — the junk payload here would explode
        # in from_dict, so reaching it would fail this test loudly.
        path = tmp_path / "design.rpk"
        write_pack(
            path,
            COMPILED_DESIGN_KIND,
            {"junk": np.zeros(3)},
            meta={"design_cache_key": "key-at-build-time"},
        )
        with pytest.raises(PackError, match="stale") as err:
            load_compiled_design(path, expected_key="key-live-now")
        assert err.value.code == "stale"

    def test_wrong_kind_never_deserializes(self, tmp_path):
        path = make_pack(tmp_path / "unit.rpk")
        with pytest.raises(PackError) as err:
            load_compiled_design(path)
        assert err.value.code == "kind"


class TestNothingLeaksThrough:
    CORRUPTIONS = {
        "truncated": lambda p: p.write_bytes(p.read_bytes()[:-4]),
        "magic": lambda p: flip_byte(p, 1),
        "endian": lambda p: patch_u32(p, 12, 0x04030201),
        "version": lambda p: patch_u32(p, 8, 999),
        "manifest": lambda p: flip_byte(p, HEADER_SIZE),
        "tensor": lambda p: flip_byte(p, p.stat().st_size - 1),
    }

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_open_raises_packerror(self, tmp_path, name):
        path = make_pack(tmp_path / f"{name}.rpk")
        self.CORRUPTIONS[name](path)
        with pytest.raises(PackError) as err:
            PackFile.open(path, verify=True)
        assert isinstance(err.value.code, str) and err.value.code
