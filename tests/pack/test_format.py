"""Pack container format: round-trip, alignment, zero-copy, caching."""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.cache import PackCache, version_salt
from repro.core.sta_compiled import (
    CompiledSTA,
    Scenario,
    compile_design,
    design_cache_key,
)
from repro.errors import PackError
from repro.journal import RunJournal, read_journal
from repro.pack import (
    COMPILED_DESIGN_KIND,
    PACK_FORMAT_VERSION,
    PackFile,
    SEGMENT_ALIGN,
    delist_document,
    load_compiled_design,
    load_library_characterization_pack,
    pack_compiled_design,
    pack_library_characterization,
    write_pack,
)
from repro.perf import PerfCounters
from repro.units import PS


def sample_doc() -> dict:
    """A document exercising nesting, dtypes, shapes and scalars."""
    return {
        "label": "unit",
        "alpha": np.linspace(0.0, 1.0, 37),
        "nested": {
            "idx": np.arange(12, dtype=np.int64).reshape(3, 4),
            "flags": np.array([True, False, True]),
        },
        "rows": [np.zeros((2, 2)), {"deep": np.full(5, 2.5)}],
        "scalar": 42,
        "none": None,
    }


SCENARIOS = [
    Scenario(input_slew=s * PS, launch_rising=e)
    for s in (10.0, 40.0)
    for e in (True, False)
]


class TestRoundTrip:
    def test_document_round_trips_exactly(self, tmp_path):
        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", sample_doc(), meta={"who": "test"})
        pack = PackFile.open(path)
        assert pack.kind == "unit"
        assert pack.version == PACK_FORMAT_VERSION
        assert pack.meta == {"who": "test"}
        assert delist_document(pack.document()) == delist_document(sample_doc())

    def test_arrays_keep_dtype_and_shape(self, tmp_path):
        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", sample_doc())
        doc = PackFile.open(path).document()
        assert doc["alpha"].dtype == np.float64
        assert doc["nested"]["idx"].dtype == np.int64
        assert doc["nested"]["idx"].shape == (3, 4)
        assert doc["nested"]["flags"].dtype == np.bool_
        np.testing.assert_array_equal(doc["rows"][0], np.zeros((2, 2)))

    def test_segments_are_64_byte_aligned(self, tmp_path):
        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", sample_doc())
        pack = PackFile.open(path)
        assert pack._data_off % SEGMENT_ALIGN == 0
        for record in pack.segments:
            assert record["offset"] % SEGMENT_ALIGN == 0

    def test_views_are_read_only_and_zero_copy(self, tmp_path):
        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", sample_doc())
        arr = PackFile.open(path).array("alpha")
        assert arr.flags.writeable is False
        assert arr.flags.owndata is False
        with pytest.raises(ValueError):
            arr[0] = 99.0

    def test_views_outlive_the_packfile(self, tmp_path):
        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", sample_doc())
        pack = PackFile.open(path)
        arr = pack.array("nested.idx")
        pack.close()
        del pack
        gc.collect()
        assert arr.sum() == np.arange(12).sum()

    def test_array_lookup_by_name_and_index(self, tmp_path):
        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", sample_doc())
        pack = PackFile.open(path)
        np.testing.assert_array_equal(pack.array("alpha"), pack.array(0))
        with pytest.raises(PackError, match="no segment named"):
            pack.array("never-stored")

    def test_identity_is_stable_and_content_sensitive(self, tmp_path):
        a = tmp_path / "a.rpk"
        b = tmp_path / "b.rpk"
        c = tmp_path / "c.rpk"
        write_pack(a, "unit", sample_doc())
        write_pack(b, "unit", sample_doc())
        changed = sample_doc()
        changed["alpha"] = changed["alpha"] + 1.0
        write_pack(c, "unit", changed)
        ia = PackFile.open(a).identity()
        assert ia == PackFile.open(b).identity()
        assert ia != PackFile.open(c).identity()

    def test_trailing_zero_length_segment_round_trips(self, tmp_path):
        # Regression: a trailing empty segment seeks past EOF without
        # writing; the writer must still pin the file to its recorded
        # length or every subsequent open fails the truncation check.
        path = tmp_path / "tail.rpk"
        doc = {"body": np.ones(3), "tail": np.zeros(0)}
        write_pack(path, "unit", doc)
        loaded = PackFile.open(path).document()
        assert loaded["tail"].size == 0
        np.testing.assert_array_equal(loaded["body"], np.ones(3))

    def test_empty_document_round_trips(self, tmp_path):
        path = tmp_path / "empty.rpk"
        write_pack(path, "unit", {"only": "scalars", "n": 3})
        pack = PackFile.open(path)
        assert pack.segments == []
        assert pack.document() == {"only": "scalars", "n": 3}

    def test_unsupported_dtype_raises(self, tmp_path):
        with pytest.raises(PackError, match="unsupported dtype") as err:
            write_pack(tmp_path / "x.rpk", "unit", {"s": np.array(["a", "b"])})
        assert err.value.code == "dtype"

    def test_segment_placeholder_collision_raises(self, tmp_path):
        doc = {"evil": {"__ndarray_segment__": 1}}
        with pytest.raises(PackError, match="collides") as err:
            write_pack(tmp_path / "x.rpk", "unit", doc)
        assert err.value.code == "document"

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        write_pack(tmp_path / "unit.rpk", "unit", sample_doc())
        assert not list(tmp_path.glob("*.tmp"))

    def test_perf_counters_and_journal_events(self, tmp_path):
        perf = PerfCounters()
        journal = RunJournal(tmp_path / "pack.jsonl")
        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", sample_doc(), perf=perf, journal=journal)
        PackFile.open(path, perf=perf, journal=journal)
        journal.close()
        assert perf.pack_writes == 1
        assert perf.pack_loads == 1
        assert perf.pack_verifies == 1
        events = [e["event"] for e in read_journal(journal.path)]
        assert events == ["pack_write", "pack_verify", "pack_load"]


class TestCompiledDesignPack:
    def test_round_trip_is_bit_identical(
        self, adder_circuit, mini_models, tmp_path
    ):
        design = compile_design(adder_circuit, mini_models)
        key = design_cache_key(adder_circuit, mini_models)
        path = tmp_path / "adder3.rpk"
        pack_compiled_design(design, path, design_key=key)
        loaded = load_compiled_design(path, expected_key=key)

        direct = CompiledSTA(adder_circuit, mini_models, design=design)
        packed = CompiledSTA(adder_circuit, mini_models, design=loaded)
        for a, b in zip(
            direct.analyze_batch(SCENARIOS), packed.analyze_batch(SCENARIOS)
        ):
            assert a.critical_delay == b.critical_delay
            for level in (-3, -1, 1, 3):
                assert a.critical_path.total(level) == b.critical_path.total(level)

    def test_loaded_design_is_mmap_backed(
        self, adder_circuit, mini_models, tmp_path
    ):
        design = compile_design(adder_circuit, mini_models)
        path = tmp_path / "adder3.rpk"
        pack_compiled_design(design, path)
        loaded = load_compiled_design(path)
        assert loaded.pack is not None
        assert loaded.pack.path == path
        # The big tensors must be views into the mapping, not copies.
        assert loaded.arcs.mu_coef.flags.owndata is False
        assert loaded.arcs.mu_coef.flags.writeable is False
        assert loaded.net_load.flags.owndata is False
        np.testing.assert_array_equal(loaded.net_load, design.net_load)

    def test_meta_records_the_design_identity(
        self, adder_circuit, mini_models, tmp_path
    ):
        design = compile_design(adder_circuit, mini_models)
        key = design_cache_key(adder_circuit, mini_models)
        path = tmp_path / "adder3.rpk"
        pack_compiled_design(design, path, design_key=key)
        pack = PackFile.open(path)
        assert pack.kind == COMPILED_DESIGN_KIND
        assert pack.meta["design_cache_key"] == key
        assert pack.meta["circuit_name"] == "adder3"
        assert pack.meta["calibration_digest"] == design.calibration_digest

    def test_wrong_expected_key_is_stale(
        self, adder_circuit, mini_models, tmp_path
    ):
        design = compile_design(adder_circuit, mini_models)
        path = tmp_path / "adder3.rpk"
        pack_compiled_design(design, path, design_key="real-key")
        with pytest.raises(PackError, match="stale") as err:
            load_compiled_design(path, expected_key="other-key")
        assert err.value.code == "stale"

    def test_wrong_kind_is_refused(self, tmp_path):
        path = tmp_path / "notdesign.rpk"
        write_pack(path, "unit", sample_doc())
        with pytest.raises(PackError, match="not a compiled design") as err:
            load_compiled_design(path)
        assert err.value.code == "kind"


class TestLibraryPack:
    def test_round_trip_preserves_tables(self, mini_charac, tmp_path):
        from repro.cells.liberty import table_to_dict

        path = tmp_path / "library.rpk"
        pack_library_characterization(mini_charac, path)
        loaded = load_library_characterization_pack(path)
        assert set(loaded.tables) == set(mini_charac.tables)
        for arc_key, table in mini_charac.tables.items():
            assert table_to_dict(loaded.tables[arc_key]) == table_to_dict(table)
        assert loaded.pack is not None

    def test_quarantine_records_survive(self, mini_charac, tmp_path):
        path = tmp_path / "library.rpk"
        pack_library_characterization(mini_charac, path)
        loaded = load_library_characterization_pack(path)
        assert [q.as_dict() for q in loaded.quarantined] == [
            q.as_dict() for q in mini_charac.quarantined
        ]

    def test_save_load_dispatch_on_rpk_suffix(self, mini_charac, tmp_path):
        from repro.cells.liberty import (
            load_library_characterization,
            save_library_characterization,
        )

        path = tmp_path / "library.rpk"
        save_library_characterization(mini_charac, path)
        loaded = load_library_characterization(path)
        assert set(loaded.tables) == set(mini_charac.tables)
        assert loaded.pack is not None


class TestPackCache:
    def test_miss_then_hit(self, tmp_path):
        cache = PackCache(tmp_path)
        assert cache.get("arc", "abc") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("arc", "abc", sample_doc())
        doc = cache.get("arc", "abc")
        assert (cache.hits, cache.misses) == (1, 1)
        pack = doc.pop("__pack__")
        assert isinstance(pack, PackFile)
        assert delist_document(doc) == delist_document(sample_doc())

    def test_paths_use_the_rpk_suffix(self, tmp_path):
        cache = PackCache(tmp_path)
        cache.put("arc", "abc", {"x": np.ones(2)})
        assert cache.path("arc", "abc").suffix == ".rpk"
        assert cache.path("arc", "abc").exists()

    def test_corrupt_pack_is_unlinked_miss(self, tmp_path):
        perf = PerfCounters()
        cache = PackCache(tmp_path, perf=perf)
        path = cache.put("arc", "k", sample_doc())
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert cache.get("arc", "k") is None
        assert cache.corrupt == 1
        assert perf.cache_corrupt == 1
        assert not path.exists()

    def test_put_strips_the_pack_handle(self, tmp_path):
        cache = PackCache(tmp_path)
        cache.put("arc", "a", sample_doc())
        doc = cache.get("arc", "a")
        cache.put("arc", "b", doc)  # carries "__pack__": must not recurse
        again = cache.get("arc", "b")
        again.pop("__pack__")
        doc.pop("__pack__")
        assert delist_document(again) == delist_document(doc)

    def test_purge_removes_packs(self, tmp_path):
        cache = PackCache(tmp_path)
        cache.put("arc", "a", {"x": np.ones(2)})
        cache.put("models", "b", {"x": np.ones(2)})
        assert cache.purge("arc") == 1
        assert cache.purge() == 1

    def test_compile_design_round_trips_through_pack_cache(
        self, adder_circuit, mini_models, tmp_path
    ):
        cache = PackCache(tmp_path)
        first = compile_design(adder_circuit, mini_models, cache=cache)
        assert first.pack is None  # built fresh, then stored
        second = compile_design(adder_circuit, mini_models, cache=cache)
        assert second.pack is not None  # served zero-copy from the pack
        a = CompiledSTA(adder_circuit, mini_models, design=first)
        b = CompiledSTA(adder_circuit, mini_models, design=second)
        for ra, rb in zip(
            a.analyze_batch(SCENARIOS), b.analyze_batch(SCENARIOS)
        ):
            assert ra.critical_delay == rb.critical_delay


class TestVersionSaltCoupling:
    def test_salt_carries_the_pack_format(self):
        assert version_salt()["pack_format"] == f"rpk-v{PACK_FORMAT_VERSION}"
