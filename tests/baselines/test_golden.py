"""Tests for the golden stage-chained path Monte-Carlo."""

import numpy as np
import pytest

from repro.baselines.golden import GoldenPathMC
from repro.core.sta import StatisticalSTA
from repro.moments.stats import SIGMA_LEVELS


@pytest.fixture(scope="module")
def golden_run(adder_circuit, mini_flow, mini_models):
    sta = StatisticalSTA(adder_circuit, mini_models)
    result = sta.analyze()
    golden = GoldenPathMC(
        adder_circuit, mini_flow.library, mini_flow.tech, mini_flow.variation,
        seed=55)
    mc = golden.run(result.critical_path, n_samples=250)
    return result, mc


class TestGoldenMC:
    def test_high_yield(self, golden_run):
        _, mc = golden_run
        assert mc.valid_fraction > 0.95

    def test_quantiles_monotone(self, golden_run):
        _, mc = golden_run
        values = [mc.quantiles[n] for n in SIGMA_LEVELS]
        assert values == sorted(values)

    def test_stage_delays_positive(self, golden_run):
        _, mc = golden_run
        assert all(d > 0 for d in mc.stage_delays)

    def test_stage_count_matches_path(self, golden_run):
        result, mc = golden_run
        assert len(mc.stage_delays) == result.critical_path.n_cells

    def test_spread_is_near_threshold_sized(self, golden_run):
        _, mc = golden_run
        d = mc.delay[np.isfinite(mc.delay)]
        assert 0.05 < np.std(d) / np.mean(d) < 0.4

    def test_model_mean_close_to_golden(self, golden_run):
        # The headline agreement (loose at test fidelity).
        result, mc = golden_run
        model_mu = result.critical_path.total(0)
        assert model_mu == pytest.approx(mc.quantiles[0], rel=0.15)

    def test_model_plus3_within_paper_band(self, golden_run):
        result, mc = golden_run
        model = result.critical_path.total(3)
        assert model == pytest.approx(mc.quantiles[3], rel=0.30)

    def test_reproducible_given_seed(self, adder_circuit, mini_flow, mini_models):
        sta = StatisticalSTA(adder_circuit, mini_models)
        path = sta.analyze().critical_path
        a = GoldenPathMC(adder_circuit, mini_flow.library, mini_flow.tech,
                         mini_flow.variation, seed=9).run(path, n_samples=60)
        b = GoldenPathMC(adder_circuit, mini_flow.library, mini_flow.tech,
                         mini_flow.variation, seed=9).run(path, n_samples=60)
        assert np.allclose(a.delay, b.delay, equal_nan=True)

    def test_runtime_recorded(self, golden_run):
        _, mc = golden_run
        assert mc.runtime_s > 0

    def test_model_runtime_far_below_mc(self, golden_run):
        # The paper's speedup claim, in miniature.
        result, mc = golden_run
        assert result.runtime_s < 0.2 * mc.runtime_s

    def test_empty_path_rejected(self, adder_circuit, mini_flow):
        from repro.core.sta import PathTiming
        from repro.errors import TimingError
        golden = GoldenPathMC(adder_circuit, mini_flow.library,
                              mini_flow.tech, mini_flow.variation)
        with pytest.raises(TimingError):
            golden.run(PathTiming(stages=[]), n_samples=10)

    def test_plus_minus_spread_asymmetric(self, golden_run):
        # Right-skewed path delay: the +3σ tail is longer than the −3σ.
        _, mc = golden_run
        median = mc.quantiles[0]
        assert (mc.quantiles[3] - median) > (median - mc.quantiles[-3])


class TestRunPaths:
    def test_matches_direct_run_any_worker_count(
        self, adder_circuit, mini_flow, mini_models
    ):
        from repro.baselines.golden import run_paths

        sta = StatisticalSTA(adder_circuit, mini_models)
        path = sta.analyze().critical_path
        direct = GoldenPathMC(
            adder_circuit, mini_flow.library, mini_flow.tech,
            mini_flow.variation, seed=9,
        ).run(path, n_samples=60)
        for workers in (1, 2):
            batch = run_paths(
                adder_circuit, mini_flow.library, mini_flow.tech,
                mini_flow.variation, [path, path], n_samples=60, seed=9,
                workers=workers,
            )
            assert len(batch) == 2
            for res in batch:
                assert np.array_equal(res.delay, direct.delay, equal_nan=True)
