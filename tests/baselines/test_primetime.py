"""Tests for the corner-STA (PrimeTime proxy) baseline."""

import pytest

from repro.baselines.primetime import CornerSTA
from repro.core.sta import StatisticalSTA


@pytest.fixture(scope="module")
def corner_report(adder_circuit, mini_models):
    path = StatisticalSTA(adder_circuit, mini_models).analyze().critical_path
    return CornerSTA(mini_models).analyze_path(path), path, mini_models


class TestCornerSTA:
    def test_late_exceeds_nominal_exceeds_early(self, corner_report):
        report, _, _ = corner_report
        assert report.late > report.nominal > report.early

    def test_derates_bracket_unity(self, corner_report):
        report, _, _ = corner_report
        assert report.derate_late > 1.0
        assert 0.0 <= report.derate_early < 1.0

    def test_derates_right_skew_asymmetric(self, corner_report):
        # Near-threshold delay is right-skewed: the slow corner is much
        # farther from nominal than the fast corner.
        report, _, _ = corner_report
        assert report.derate_late - 1.0 > 1.0 - report.derate_early

    def test_corner_sized_from_worst_cell(self, corner_report):
        _, _, models = corner_report
        sta = CornerSTA(models, margin=1.0)
        late, _ = sta.corner_derates
        worst = max(
            models.nsigma.quantile(a.ref, 3) / a.ref.mu
            for a in models.calibrated.arcs.values()
        )
        assert late == pytest.approx(worst)

    def test_pessimistic_vs_nsigma_plus3(self, corner_report):
        # The Table III shape: corner-based +3 sigma far above the
        # statistical model's +3 sigma.
        report, path, _ = corner_report
        assert report.late > path.total(3)

    def test_margin_scales_guardband(self, corner_report):
        _, path, models = corner_report
        tight = CornerSTA(models, margin=1.0).analyze_path(path)
        loose = CornerSTA(models, margin=1.5).analyze_path(path)
        assert loose.late > tight.late
        assert loose.early < tight.early

    def test_runtime_recorded(self, corner_report):
        report, _, _ = corner_report
        assert report.runtime_s >= 0
