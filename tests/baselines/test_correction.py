"""Tests for the correction-factor baseline."""

import pytest

from repro.baselines.correction import CorrectionBasedSTA
from repro.core.sta import StatisticalSTA
from repro.interconnect.generate import NetGenerator
from repro.units import UM


@pytest.fixture(scope="module")
def corrected(adder_circuit, mini_flow, mini_models, engine):
    gen = NetGenerator(mini_flow.tech, seed=21)
    trees = [gen.chain(40 * UM), gen.chain(80 * UM)]
    model = CorrectionBasedSTA.calibrate(
        mini_models, engine, trees, n_samples=250)
    path = StatisticalSTA(adder_circuit, mini_models).analyze().critical_path
    return model, path


class TestCorrectionBased:
    def test_factors_bracket_unity(self, corrected):
        model, _ = corrected
        assert model.factor_late > 1.0
        assert model.factor_early < 1.0

    def test_late_above_early(self, corrected):
        model, path = corrected
        late, early, _ = model.analyze_path(path)
        assert late > early > 0

    def test_between_corner_and_nsigma(self, corrected, mini_models):
        # The Table III ordering: correction-based is tighter than the
        # global-corner method but looser than (or comparable to) ours.
        from repro.baselines.primetime import CornerSTA
        model, path = corrected
        late, _, _ = model.analyze_path(path)
        corner = CornerSTA(mini_models).analyze_path(path)
        assert late < corner.late

    def test_runtime_tiny(self, corrected):
        model, path = corrected
        _, _, runtime = model.analyze_path(path)
        assert runtime < 0.1
