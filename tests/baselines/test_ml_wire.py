"""Tests for the ML wire-delay baseline (features, MLP, pipeline)."""

import numpy as np
import pytest

from repro.baselines.ml_wire import MLPRegressor, MLWireModel, wire_features
from repro.errors import CalibrationError
from repro.interconnect.generate import NetGenerator
from repro.units import UM


class TestFeatures:
    def test_feature_vector_shape(self, tech, library):
        gen = NetGenerator(tech, seed=1)
        tree = gen.chain(30 * UM)
        f = wire_features(tree, tree.leaves()[0],
                          library.get("INVx2"), library.get("NAND2x4"))
        assert f.shape == (9,)
        assert np.all(np.isfinite(f))
        # driver strength / stack and load strength / stack encoded
        assert f[5] == 2.0 and f[6] == 1.0
        assert f[7] == 4.0 and f[8] == 2.0

    def test_features_scale_with_length(self, tech, library):
        gen = NetGenerator(tech, seed=1)
        short = gen.chain(20 * UM)
        long = gen.chain(80 * UM)
        inv = library.get("INVx1")
        f_s = wire_features(short, short.leaves()[0], inv, inv)
        f_l = wire_features(long, long.leaves()[0], inv, inv)
        assert f_l[0] > f_s[0]  # m1
        assert f_l[3] > f_s[3]  # total C


class TestMLP:
    def test_learns_linear_function(self, rng):
        x = rng.normal(size=(400, 3))
        y = x @ np.array([[1.0, -1.0], [2.0, 0.5], [0.0, 1.0]])
        net = MLPRegressor(hidden=16, epochs=600, seed=1)
        net.fit(x, y)
        pred = net.predict(x)
        rel = np.sqrt(np.mean((pred - y) ** 2)) / np.std(y)
        assert rel < 0.1

    def test_learns_mild_nonlinearity(self, rng):
        x = rng.uniform(-1, 1, size=(500, 2))
        y = (x[:, 0] ** 2 + np.sin(2 * x[:, 1]))[:, None]
        net = MLPRegressor(hidden=24, epochs=1500, seed=2)
        net.fit(x, y)
        rel = np.sqrt(np.mean((net.predict(x) - y) ** 2)) / np.std(y)
        assert rel < 0.2

    def test_predict_before_fit_rejected(self):
        with pytest.raises(CalibrationError):
            MLPRegressor().predict(np.zeros((1, 2)))

    def test_needs_data(self):
        with pytest.raises(CalibrationError):
            MLPRegressor().fit(np.zeros((3, 2)), np.zeros(3))

    def test_single_row_predict(self, rng):
        x = rng.normal(size=(100, 2))
        y = x[:, :1]
        net = MLPRegressor(epochs=200).fit(x, y)
        assert net.predict(x[0]).shape == (1, 1)

    def test_training_time_recorded(self, rng):
        x = rng.normal(size=(50, 2))
        net = MLPRegressor(epochs=50).fit(x, x[:, :1])
        assert net.train_time_s > 0

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(60, 2))
        y = x[:, :1]
        a = MLPRegressor(epochs=100, seed=3).fit(x, y).predict(x)
        b = MLPRegressor(epochs=100, seed=3).fit(x, y).predict(x)
        assert np.allclose(a, b)


@pytest.mark.slow
class TestMLWirePipeline:
    def test_train_and_predict(self, mini_flow, mini_models, engine):
        gen = NetGenerator(mini_flow.tech, seed=31)
        trees = [gen.chain(30 * UM), gen.chain(70 * UM)]
        model = MLWireModel.train(
            mini_models, engine, trees,
            driver_names=["INVx1", "INVx4"],
            load_names=["INVx1", "INVx4"],
            n_samples=150,
            network=MLPRegressor(hidden=12, epochs=400),
        )
        tree = gen.chain(50 * UM)
        lo, hi = model.wire_quantiles(
            tree, tree.leaves()[0],
            mini_models.library.get("INVx2"), mini_models.library.get("INVx2"))
        assert 0 < lo < hi
