"""Thread-safety of shared ``CompiledSTA`` instances.

Two guarantees the resident server depends on:

* perf-counter updates from ``analyze_batch`` go through
  ``PerfCounters.incr`` under the counters' lock — the lock-audit test
  fails against the old bare ``+=`` read-modify-writes;
* concurrent batches on one shared engine are bit-identical to serial
  evaluation and lose no counter updates.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.sta_compiled import CompiledSTA, Scenario
from repro.perf import PerfCounters
from repro.units import PS

#: Counters analyze_batch must only touch under the lock.
GUARDED = ("sta_scenarios", "sta_levels", "sta_arc_evals", "sta_compiles")


class LockAuditingCounters(PerfCounters):
    """Records every write to a guarded counter made without the lock.

    Deterministic stand-in for a thread race: a bare ``counter += n``
    on the shared instance calls ``__setattr__`` while ``_lock`` is
    free, which a real concurrent writer could interleave with.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        self.unlocked_writes = []

    def __setattr__(self, name, value):
        # During dataclass __init__ the lock does not exist yet.
        lock = getattr(self, "_lock", None)
        if name in GUARDED and lock is not None and not lock.locked():
            self.unlocked_writes.append(name)
        super().__setattr__(name, value)


SCENARIOS = [
    Scenario(input_slew=slew * PS, launch_rising=rising)
    for slew in (10.0, 50.0)
    for rising in (True, False)
]


@pytest.fixture(scope="module")
def shared_engine(adder_circuit, mini_models):
    return CompiledSTA(adder_circuit, mini_models)


class TestLockedCounterUpdates:
    def test_analyze_batch_never_writes_counters_unlocked(
        self, adder_circuit, mini_models
    ):
        perf = LockAuditingCounters()
        engine = CompiledSTA(adder_circuit, mini_models, perf=perf)
        engine.analyze_batch(SCENARIOS)
        assert perf.unlocked_writes == []

    def test_incr_is_the_locked_path(self):
        perf = LockAuditingCounters()
        perf.incr(sta_scenarios=3, sta_levels=2)
        assert perf.unlocked_writes == []
        assert perf.sta_scenarios == 3
        # ... and the audit actually detects the raced pattern.
        perf.sta_scenarios += 1
        assert perf.unlocked_writes == ["sta_scenarios"]


class TestConcurrentAnalyzeBatch:
    N_THREADS = 8
    BATCHES_PER_THREAD = 4

    def test_concurrent_batches_bit_identical_and_counters_exact(
        self, shared_engine
    ):
        serial = shared_engine.analyze_batch(SCENARIOS)
        before = shared_engine.perf.sta_scenarios
        barrier = threading.Barrier(self.N_THREADS)

        def worker(_):
            barrier.wait()
            out = []
            for _ in range(self.BATCHES_PER_THREAD):
                out.append(shared_engine.analyze_batch(SCENARIOS))
            return out

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            per_thread = list(pool.map(worker, range(self.N_THREADS)))

        for batches in per_thread:
            for results in batches:
                for got, want in zip(results, serial):
                    assert got.critical_delay == want.critical_delay
                    for n in got.scenario.levels:
                        assert got.critical_path.total(n) == \
                            want.critical_path.total(n)

        n_batches = self.N_THREADS * self.BATCHES_PER_THREAD
        assert shared_engine.perf.sta_scenarios - before == \
            n_batches * len(SCENARIOS)

    def test_per_result_runtime_is_positive_per_call(self, shared_engine):
        results = shared_engine.analyze_batch(SCENARIOS)
        assert all(r.runtime_s > 0 for r in results)
        # amortized per scenario: all results of one batch share it
        assert len({r.runtime_s for r in results}) == 1
