"""Tests for the Table I N-sigma cell quantile model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.nsigma_cell import NSigmaCellModel, QUANTILE_FEATURES
from repro.errors import CalibrationError
from repro.moments.stats import SIGMA_LEVELS, Moments, empirical_sigma_quantiles


def synthetic_dataset(rng, n_obs=60):
    """Skewed 'delay' populations with known moments and quantiles."""
    moments, quantiles = [], []
    for _ in range(n_obs):
        mu = rng.uniform(20e-12, 120e-12)
        sigma_log = rng.uniform(0.1, 0.3)
        samples = mu * np.exp(rng.normal(0, sigma_log, 30000))
        moments.append(Moments.from_samples(samples))
        quantiles.append(empirical_sigma_quantiles(samples))
    return moments, quantiles


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(5)
    moments, quantiles = synthetic_dataset(rng)
    model = NSigmaCellModel.fit(moments, quantiles)
    return model, moments, quantiles


class TestStructure:
    def test_feature_layout_matches_table1(self):
        # sigma*skew terms only between -2 and +2; sigma*kurt at +-2/3.
        assert "sg" not in QUANTILE_FEATURES[3]
        assert "sg" not in QUANTILE_FEATURES[-3]
        assert "sk" in QUANTILE_FEATURES[2]
        assert "sk" not in QUANTILE_FEATURES[1]
        for level in SIGMA_LEVELS:
            assert "gk" in QUANTILE_FEATURES[level]

    def test_gaussian_reduces_to_mu_n_sigma(self, fitted):
        model, _, _ = fitted
        gaussian = Moments(mu=50e-12, sigma=5e-12, skew=0.0, kurt=3.0)
        for n in SIGMA_LEVELS:
            assert model.quantile(gaussian, n) == pytest.approx(
                50e-12 + n * 5e-12, abs=1e-18)

    def test_unfitted_level_rejected(self, fitted):
        model, moments, _ = fitted
        with pytest.raises(CalibrationError):
            model.quantile(moments[0], 6)


class TestAccuracy:
    def test_beats_gaussian_assumption_at_tails(self, fitted):
        model, moments, quantiles = fitted
        for level in (-3, 3):
            model_err, gauss_err = [], []
            for m, q in zip(moments, quantiles):
                model_err.append(abs(model.quantile(m, level) - q[level]) / q[level])
                gauss_err.append(abs(m.gaussian_quantile(level) - q[level]) / q[level])
            assert np.mean(model_err) < 0.6 * np.mean(gauss_err)

    def test_three_sigma_error_small(self, fitted):
        model, moments, quantiles = fitted
        errors = [
            abs(model.quantile(m, 3) - q[3]) / q[3]
            for m, q in zip(moments, quantiles)
        ]
        assert np.mean(errors) < 0.03  # the paper's headline regime

    def test_quantiles_monotone_for_typical_moments(self, fitted):
        model, moments, _ = fitted
        for m in moments[:10]:
            qs = [model.quantile(m, n) for n in SIGMA_LEVELS]
            assert qs == sorted(qs)

    def test_on_mini_characterization(self, mini_models, mini_charac):
        # Fitted on the real characterization data: in-sample +3 sigma
        # prediction error should be a few percent.
        errors = []
        for table in mini_charac.tables.values():
            for i in range(table.slews.size):
                for j in range(table.loads.size):
                    mu, sigma, skew, kurt = table.moments[i, j]
                    m = Moments(mu, sigma, skew, kurt)
                    pred = mini_models.nsigma.quantile(m, 3)
                    truth = table.quantiles[i, j, SIGMA_LEVELS.index(3)]
                    errors.append(abs(pred - truth) / truth)
        assert np.mean(errors) < 0.06


class TestFitValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(CalibrationError):
            NSigmaCellModel.fit([Moments(1, 0.1, 0, 3)] * 3, [{}] * 4)

    def test_too_few_observations(self):
        m = Moments(1, 0.1, 0, 3)
        q = {n: 1.0 for n in SIGMA_LEVELS}
        with pytest.raises(CalibrationError):
            NSigmaCellModel.fit([m] * 4, [q] * 4)


class TestSerialization:
    def test_round_trip(self, fitted):
        model, moments, _ = fitted
        back = NSigmaCellModel.from_dict(model.to_dict())
        for n in SIGMA_LEVELS:
            assert back.quantile(moments[0], n) == pytest.approx(
                model.quantile(moments[0], n))

    def test_dict_is_json_serializable(self, fitted):
        import json
        model, _, _ = fitted
        json.dumps(model.to_dict())


@given(scale=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=20, deadline=None)
def test_scale_equivariance(scale):
    """Scaling all delays by k scales every predicted quantile by k."""
    rng = np.random.default_rng(3)
    moments, quantiles = synthetic_dataset(rng, n_obs=30)
    model = NSigmaCellModel.fit(moments, quantiles)
    m = moments[0]
    scaled = Moments(m.mu * scale, m.sigma * scale, m.skew, m.kurt)
    for n in (-3, 0, 3):
        assert model.quantile(scaled, n) == pytest.approx(
            scale * model.quantile(m, n), rel=1e-9)
