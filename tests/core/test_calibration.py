"""Tests for the Eq. (2)/(3) operating-condition moment calibration."""

import numpy as np
import pytest

from repro.cells.characterize import REFERENCE_LOAD, REFERENCE_SLEW
from repro.core.calibration import (
    ArcCalibration,
    CalibratedCellLibrary,
    fit_arc_calibration,
)
from repro.errors import CalibrationError
from repro.units import FF, PS


@pytest.fixture(scope="module")
def inv_cal(mini_charac):
    return fit_arc_calibration(mini_charac.get("INVx1", "A", False))


class TestFit:
    def test_reference_point_recovered(self, inv_cal, mini_charac):
        table = mini_charac.get("INVx1", "A", False)
        ref = table.moments_at(REFERENCE_SLEW, REFERENCE_LOAD)
        m = inv_cal.moments_at(REFERENCE_SLEW, REFERENCE_LOAD)
        assert m.mu == pytest.approx(ref.mu, rel=0.02)
        assert m.sigma == pytest.approx(ref.sigma, rel=0.05)

    def test_grid_points_reproduced(self, inv_cal, mini_charac):
        # The bilinear Eq. (2) cannot be exact over a wide grid; check
        # the aggregate residual rather than every corner.
        table = mini_charac.get("INVx1", "A", False)
        errors = []
        for i, s in enumerate(table.slews):
            for j, c in enumerate(table.loads):
                m = inv_cal.moments_at(s, c)
                truth = table.moments[i, j, 0]
                errors.append(abs(m.mu - truth) / truth)
        assert np.mean(errors) < 0.10
        assert max(errors) < 0.30

    def test_mu_increases_with_load(self, inv_cal):
        lo = inv_cal.moments_at(20 * PS, 0.2 * FF).mu
        hi = inv_cal.moments_at(20 * PS, 3 * FF).mu
        assert hi > lo

    def test_mu_increases_with_slew(self, inv_cal):
        lo = inv_cal.moments_at(10 * PS, 1 * FF).mu
        hi = inv_cal.moments_at(200 * PS, 1 * FF).mu
        assert hi > lo

    def test_sigma_floor(self, inv_cal):
        # Even at extreme clamped corners, sigma stays positive.
        m = inv_cal.moments_at(0.0, 0.0)
        assert m.sigma > 0

    def test_kurtosis_pearson_bound(self, inv_cal):
        for s in (5 * PS, 50 * PS, 400 * PS):
            for c in (0.05 * FF, 2 * FF, 20 * FF):
                m = inv_cal.moments_at(s, c)
                assert m.kurt >= 1.0 + m.skew**2

    def test_out_slew_positive_and_monotone_in_load(self, inv_cal):
        lo = inv_cal.out_slew_at(20 * PS, 0.2 * FF)
        hi = inv_cal.out_slew_at(20 * PS, 3 * FF)
        assert 0 < lo < hi

    def test_clamps_beyond_grid(self, inv_cal):
        inside = inv_cal.moments_at(inv_cal.s_range[1], 1 * FF)
        outside = inv_cal.moments_at(10 * inv_cal.s_range[1], 1 * FF)
        assert outside.mu == pytest.approx(inside.mu)

    def test_grid_too_small_rejected(self, mini_charac):
        table = mini_charac.get("INVx1", "A", False)
        import dataclasses
        small = dataclasses.replace(
            table,
            slews=table.slews[:2],
            loads=table.loads[:2],
            moments=table.moments[:2, :2],
            quantiles=table.quantiles[:2, :2],
            out_slew=table.out_slew[:2, :2],
        )
        with pytest.raises(CalibrationError):
            fit_arc_calibration(small)


class TestLibraryContainer:
    def test_fit_covers_all_arcs(self, mini_charac):
        cal = CalibratedCellLibrary.fit(mini_charac)
        assert len(cal.arcs) == len(mini_charac)

    def test_get_exact(self, mini_models):
        arc = mini_models.calibrated.get("INVx1", "A", False)
        assert arc.cell_name == "INVx1"
        assert not arc.output_rising

    def test_get_falls_back_to_pin_a(self, mini_models):
        # NAND2x1 pin B was not characterized; falls back to pin A.
        arc = mini_models.calibrated.get("NAND2x1", "B", False)
        assert arc.pin == "A"

    def test_get_unknown_cell(self, mini_models):
        with pytest.raises(KeyError):
            mini_models.calibrated.get("XORx1", "A", False)

    def test_serialization_round_trip(self, mini_models):
        cal = mini_models.calibrated
        back = CalibratedCellLibrary.from_dict(cal.to_dict())
        arc_a = cal.get("INVx2", "A", False)
        arc_b = back.get("INVx2", "A", False)
        m_a = arc_a.moments_at(30 * PS, 1 * FF)
        m_b = arc_b.moments_at(30 * PS, 1 * FF)
        assert m_a.mu == pytest.approx(m_b.mu)
        assert m_a.kurt == pytest.approx(m_b.kurt)
        assert arc_b.s_range == arc_a.s_range
