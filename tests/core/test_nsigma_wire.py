"""Tests for the Eq. (5)-(9) wire variability model."""

import numpy as np
import pytest

from repro.core.nsigma_wire import (
    WireVariabilityModel,
    build_wire_setup,
    cell_variability_ratio,
    measure_wire_variability,
    predicted_coefficient,
)
from repro.errors import CalibrationError
from repro.interconnect.generate import NetGenerator
from repro.interconnect.metrics import elmore_delay
from repro.units import PS, UM


class TestCellRatios:
    def test_ratio_positive(self, mini_models):
        r = cell_variability_ratio(mini_models.calibrated, "INVx1")
        assert 0.02 < r < 0.6

    def test_pelgrom_ordering(self, mini_models):
        rs = [cell_variability_ratio(mini_models.calibrated, f"INVx{s}")
              for s in (1, 2, 4, 8)]
        assert rs == sorted(rs, reverse=True)

    def test_predicted_coefficient(self, library):
        base = library.get("INVx4")
        assert predicted_coefficient(library.get("INVx1"), base) == pytest.approx(2.0)
        assert predicted_coefficient(library.get("INVx4"), base) == pytest.approx(1.0)
        assert predicted_coefficient(library.get("NAND2x2"), base) == pytest.approx(1.0)

    def test_predictions_track_measured(self, mini_models, library):
        # Eq. (5)/(6): measured normalized ratios should follow the
        # 1/sqrt(n*strength) law within a modest factor (Fig. 9's claim).
        base = library.get("INVx4")
        fo4 = cell_variability_ratio(mini_models.calibrated, "INVx4")
        for name in ("INVx1", "INVx2", "INVx8"):
            measured = cell_variability_ratio(mini_models.calibrated, name) / fo4
            predicted = predicted_coefficient(library.get(name), base)
            assert measured == pytest.approx(predicted, rel=0.45)


class TestModelMath:
    def model(self):
        return WireVariabilityModel(
            weight_fi=0.2, weight_fo=0.4, intercept=0.02, fo4_ratio=0.1)

    def test_eq7_linear_combination(self):
        m = self.model()
        assert m.wire_variability(0.1, 0.2) == pytest.approx(
            0.02 + 0.2 * 0.1 + 0.4 * 0.2)

    def test_eq8_sigma(self):
        m = self.model()
        xw = m.wire_variability(0.1, 0.1)
        assert m.wire_sigma(10e-12, 0.1, 0.1) == pytest.approx(10e-12 * xw)

    def test_eq9_quantiles_symmetric_around_elmore(self):
        m = self.model()
        elm = 20e-12
        up = m.wire_quantile(elm, 0.1, 0.1, +3)
        dn = m.wire_quantile(elm, 0.1, 0.1, -3)
        assert up - elm == pytest.approx(elm - dn)
        assert m.wire_quantile(elm, 0.1, 0.1, 0) == pytest.approx(elm)

    def test_variability_never_negative(self):
        m = WireVariabilityModel(
            weight_fi=-1.0, weight_fo=0.0, intercept=0.0, fo4_ratio=0.1)
        assert m.wire_variability(1.0, 0.0) == 0.0

    def test_x_coefficient_normalization(self):
        m = self.model()
        assert m.x_coefficient(0.2) == pytest.approx(2.0)

    def test_fit_recovers_planted_weights(self, rng):
        truth = self.model()
        obs = []
        for _ in range(50):
            r_fi, r_fo = rng.uniform(0.05, 0.3, 2)
            obs.append((r_fi, r_fo, truth.wire_variability(r_fi, r_fo)))
        fit = WireVariabilityModel.fit(obs, fo4_ratio=0.1)
        assert fit.weight_fi == pytest.approx(0.2, abs=1e-6)
        assert fit.weight_fo == pytest.approx(0.4, abs=1e-6)
        assert fit.intercept == pytest.approx(0.02, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_needs_observations(self):
        with pytest.raises(CalibrationError):
            WireVariabilityModel.fit([(0.1, 0.1, 0.05)], fo4_ratio=0.1)

    def test_serialization(self):
        m = self.model()
        back = WireVariabilityModel.from_dict(m.to_dict())
        assert back == m


class TestWireBench:
    def test_setup_measures_root_to_sink(self, tech, library):
        gen = NetGenerator(tech, seed=2)
        tree = gen.chain(30 * UM)
        setup, sink_node = build_wire_setup(
            tech, library, "INVx4", "INVx4", tree)
        assert setup.reference_node == "drv_out"
        assert setup.output_node == sink_node

    def test_measured_mean_close_to_annotated_elmore(self, engine, library, tech):
        # The slow-ramp LTI property: mean wire delay ~ Elmore, once the
        # receiver pin cap is annotated onto the tree.
        from repro.core.nsigma_wire import annotated_elmore
        gen = NetGenerator(tech, seed=2)
        tree = gen.chain(80 * UM)
        sink = tree.leaves()[0]
        moments, samples = measure_wire_variability(
            engine, library, "INVx4", "INVx4", tree, n_samples=300)
        elm = annotated_elmore(tech, library, tree, sink, "INVx4")
        assert samples.yield_fraction > 0.99
        assert moments.mu == pytest.approx(elm, rel=0.25)

    def test_annotated_elmore_above_bare(self, tech, library):
        from repro.core.nsigma_wire import annotated_elmore
        gen = NetGenerator(tech, seed=2)
        tree = gen.chain(40 * UM)
        sink = tree.leaves()[0]
        assert annotated_elmore(tech, library, tree, sink, "INVx8") > elmore_delay(
            tree, sink)

    def test_fitted_model_on_mini_flow(self, mini_models):
        wire = mini_models.wire
        assert wire.fo4_ratio > 0
        # The model must predict positive variability for real cells.
        assert wire.wire_variability(0.15, 0.15) > 0
