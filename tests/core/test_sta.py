"""Tests for the statistical STA engine (Eq. 10)."""

import numpy as np
import pytest

from repro.core.sta import StatisticalSTA, WIRE_SLEW_FACTOR
from repro.errors import NetlistError, TimingError
from repro.moments.stats import SIGMA_LEVELS
from repro.netlist.benchmarks import attach_parasitics
from repro.netlist.circuit import Circuit
from repro.netlist.generators import build_adder
from repro.units import PS


@pytest.fixture(scope="module")
def sta_result(adder_circuit, mini_models):
    sta = StatisticalSTA(adder_circuit, mini_models)
    return sta.analyze()


class TestAnalysis:
    def test_all_nets_timed(self, sta_result, adder_circuit):
        for net in adder_circuit.nets:
            assert net in sta_result.arrival

    def test_arrivals_nonnegative_and_finite(self, sta_result):
        values = np.array(list(sta_result.arrival.values()))
        assert np.all(np.isfinite(values))
        assert np.all(values >= 0)

    def test_critical_delay_positive(self, sta_result):
        assert sta_result.critical_delay > 10 * PS

    def test_arrival_increases_along_path(self, sta_result, adder_circuit):
        path = sta_result.critical_path
        arrivals = [sta_result.arrival[s.net] for s in path.stages if s.gate]
        assert arrivals == sorted(arrivals)

    def test_path_quantiles_monotone_in_level(self, sta_result):
        q = sta_result.critical_path.quantiles
        values = [q[n] for n in SIGMA_LEVELS]
        assert values == sorted(values)

    def test_eq10_additivity(self, sta_result):
        # Total equals the stage-wise sum by construction.
        path = sta_result.critical_path
        for n in (-3, 0, 3):
            manual = sum(
                s.cell_quantiles[n] + s.wire_quantiles[n] for s in path.stages)
            assert path.total(n) == pytest.approx(manual)

    def test_path_contains_cells_and_wires(self, sta_result):
        path = sta_result.critical_path
        assert path.n_cells >= 3
        assert path.cell_total > 0
        assert path.wire_total > 0

    def test_edges_alternate_through_inverting_chain(self, sta_result):
        # All adder gates are NAND2 (inverting): consecutive stages flip.
        cells = [s for s in sta_result.critical_path.stages if s.cell_name]
        for a, b in zip(cells, cells[1:]):
            assert a.output_rising != b.output_rising

    def test_runtime_recorded(self, sta_result):
        assert sta_result.runtime_s > 0

    def test_critical_path_is_connected(self, sta_result, adder_circuit):
        cells = [s for s in sta_result.critical_path.stages if s.cell_name]
        for a, b in zip(cells, cells[1:]):
            sink_gate, sink_pin = a.sink
            assert sink_gate == b.gate
            assert sink_pin == b.input_pin
            assert adder_circuit.gates[b.gate].pins[b.input_pin] == a.net


class TestModelInputs:
    def test_launch_polarity_changes_result(self, adder_circuit, mini_models):
        rise = StatisticalSTA(adder_circuit, mini_models, launch_rising=True).analyze()
        fall = StatisticalSTA(adder_circuit, mini_models, launch_rising=False).analyze()
        assert rise.critical_delay != pytest.approx(fall.critical_delay, rel=1e-6)

    def test_bigger_input_slew_slower(self, adder_circuit, mini_models):
        fast = StatisticalSTA(adder_circuit, mini_models, input_slew=10 * PS).analyze()
        slow = StatisticalSTA(adder_circuit, mini_models, input_slew=200 * PS).analyze()
        assert slow.critical_delay > fast.critical_delay

    def test_ideal_nets_supported(self, mini_models):
        c = Circuit("tiny")
        c.add_input("a")
        c.add_gate("g1", "INVx1", {"A": "a"}, "w")
        c.add_gate("g2", "INVx1", {"A": "w"}, "y")
        c.add_output("y")
        res = StatisticalSTA(c, mini_models).analyze()
        assert res.critical_delay > 0
        assert res.critical_path.wire_total == 0.0

    def test_slew_degradation_rule(self):
        s = StatisticalSTA._degrade_slew(10 * PS, 5 * PS)
        assert s == pytest.approx(np.hypot(10 * PS, WIRE_SLEW_FACTOR * 5 * PS))

    def test_subset_levels(self, adder_circuit, mini_models):
        res = StatisticalSTA(adder_circuit, mini_models).analyze(levels=(-3, 0, 3))
        assert set(res.critical_path.quantiles) == {-3, 0, 3}


class TestSpreadShape:
    def test_spread_reflects_near_threshold_variability(self, sta_result):
        q = sta_result.critical_path.quantiles
        rel_spread = (q[3] - q[-3]) / q[0]
        assert 0.2 < rel_spread < 2.0

    def test_plus3_further_than_minus3(self, sta_result):
        # Right-skewed delays: the +3 sigma tail is longer.
        q = sta_result.critical_path.quantiles
        assert (q[3] - q[0]) > (q[0] - q[-3])
