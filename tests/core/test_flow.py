"""Tests for the end-to-end flow and its caching."""

import json
from pathlib import Path

import pytest

from repro.core.flow import DelayCalibrationFlow
from repro.units import FF, PS


class TestCaching:
    def test_cache_files_created(self, mini_flow, mini_models):
        cache = Path(mini_flow.cache_dir)
        assert any(p.name.startswith("charac_") for p in cache.iterdir())
        assert any(p.name.startswith("models_") for p in cache.iterdir())

    def test_cache_reload_matches(self, mini_flow, mini_models):
        clone = DelayCalibrationFlow(
            seed=mini_flow.seed,
            cache_dir=str(mini_flow.cache_dir),
            n_samples=mini_flow.n_samples,
            slews=mini_flow.slews,
            loads=mini_flow.loads,
            wire_fit_samples=mini_flow.wire_fit_samples,
            wire_fit_trees=mini_flow.wire_fit_trees,
            cell_names=mini_flow.cell_names,
        )
        models = clone.fit_models()
        assert models.wire.weight_fi == pytest.approx(mini_models.wire.weight_fi)
        assert models.nsigma.coefficients.keys() == mini_models.nsigma.coefficients.keys()

    def test_cache_key_sensitive_to_params(self, mini_flow):
        other = DelayCalibrationFlow(
            seed=mini_flow.seed + 1, cache_dir=str(mini_flow.cache_dir),
            cell_names=mini_flow.cell_names)
        assert mini_flow._cache_key() != other._cache_key()

    def test_no_cache_dir_ok(self):
        flow = DelayCalibrationFlow(cache_dir=None)
        assert flow._cache_path("charac") is None


class TestModels:
    def test_models_complete(self, mini_models):
        assert mini_models.nsigma.coefficients
        assert mini_models.wire.fo4_ratio > 0
        assert len(mini_models.calibrated.arcs) > 0

    def test_analyze_runs(self, mini_flow, adder_circuit):
        res = mini_flow.analyze(adder_circuit)
        assert res.critical_delay > 0

    def test_wire_model_r_squared_reported(self, mini_models):
        # The Eq. (7) regression must explain a meaningful share of the
        # wire variability across the driver/load sweep.
        assert mini_models.wire.r_squared > 0.3


@pytest.mark.slow
class TestDeepNSigmaFit:
    def test_deep_fit_produces_model(self, mini_flow):
        from repro.core.flow import DelayCalibrationFlow

        flow = DelayCalibrationFlow(
            seed=mini_flow.seed,
            cache_dir=str(mini_flow.cache_dir),
            n_samples=mini_flow.n_samples,
            slews=mini_flow.slews,
            loads=mini_flow.loads,
            wire_fit_samples=mini_flow.wire_fit_samples,
            wire_fit_trees=mini_flow.wire_fit_trees,
            cell_names=["INVx1", "INVx2", "INVx4", "INVx8"],
            nsigma_fit_samples=800,
        )
        models = flow.fit_models()
        from repro.moments.stats import SIGMA_LEVELS
        assert set(models.nsigma.coefficients) == set(SIGMA_LEVELS)

    def test_deep_fit_has_distinct_cache(self, mini_flow):
        from repro.core.flow import DelayCalibrationFlow

        base = DelayCalibrationFlow(seed=1, cache_dir="/tmp/x")
        deep = DelayCalibrationFlow(seed=1, cache_dir="/tmp/x",
                                    nsigma_fit_samples=5000)
        assert base._cache_path("models") != deep._cache_path("models")
        # Characterization cache is shared (same data).
        assert base._cache_path("charac") == deep._cache_path("charac")
