"""Golden equivalence of the compiled STA engine against the scalar one.

The compiled engine (:mod:`repro.core.sta_compiled`) must be an exact
drop-in for :class:`~repro.core.sta.StatisticalSTA`: same arrivals, same
critical path, same sigma-level quantiles, to well under 1e-12 s. These
tests pin that contract on the deterministic adder fixture, on random
ISCAS85-like circuits (example-based and hypothesis-driven), on
ideal-net circuits, and across the compile cache round trip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import JsonCache
from repro.core.sta import StatisticalSTA
from repro.core.sta_compiled import (
    COMPILE_CACHE_KIND,
    BatchSTAResult,
    CompiledDesign,
    CompiledSTA,
    Scenario,
    compile_design,
    design_cache_key,
)
from repro.errors import TimingError
from repro.lint import lint_compiled_design
from repro.moments.stats import SIGMA_LEVELS
from repro.netlist.benchmarks import BenchmarkProfile, attach_parasitics, build_iscas85_like
from repro.netlist.circuit import Circuit
from repro.netlist.generators import build_adder
from repro.units import PS

#: Equivalence budget required by the engine contract. The actual
#: deviation is float round-off (~1e-25 s); anything near 1e-12 s would
#: mean a modeling divergence, not noise.
TOL = 1e-12


def build_mini_circuit(seed: int, n_cells: int = 40, depth: int = 6, tech=None) -> Circuit:
    """A small random circuit covered by the mini-flow calibration.

    Only INV types: the generator randomizes strengths x1–x8 and the
    mini flow characterizes every INV strength but only x1 of the
    stacked cells.
    """
    profile = BenchmarkProfile(
        name=f"mini{seed}", n_cells=n_cells, n_nets=n_cells + 8,
        n_outputs=4, depth=depth, seed=seed,
    )
    circuit = build_iscas85_like(profile.name, profile, type_names=("INV",))
    if tech is not None:
        attach_parasitics(circuit, tech, seed=seed + 1)
    return circuit


def assert_equivalent(scalar_result, batch_result, levels=SIGMA_LEVELS):
    """Scalar and compiled results agree on everything that matters."""
    assert set(scalar_result.arrival) == set(batch_result.arrival)
    for net, value in scalar_result.arrival.items():
        assert abs(batch_result.arrival[net] - value) < TOL, net

    sp, cp = scalar_result.critical_path, batch_result.critical_path
    assert [(s.gate, s.input_pin, s.net, s.sink) for s in sp.stages] == [
        (s.gate, s.input_pin, s.net, s.sink) for s in cp.stages
    ]
    for s_stage, c_stage in zip(sp.stages, cp.stages):
        assert s_stage.output_rising == c_stage.output_rising
        assert abs(s_stage.input_slew - c_stage.input_slew) < TOL
        assert s_stage.load == pytest.approx(c_stage.load, abs=1e-21)
        assert abs(s_stage.wire_elmore - c_stage.wire_elmore) < TOL
        for n in levels:
            assert abs(s_stage.cell_quantiles[n] - c_stage.cell_quantiles[n]) < TOL
            assert abs(s_stage.wire_quantiles[n] - c_stage.wire_quantiles[n]) < TOL
    for n in levels:
        assert abs(sp.total(n) - cp.total(n)) < TOL


@pytest.fixture(scope="module")
def compiled_adder(adder_circuit, mini_models):
    return CompiledSTA(adder_circuit, mini_models)


class TestGoldenEquivalence:
    def test_adder_default_scenario(self, adder_circuit, mini_models, compiled_adder):
        scalar = StatisticalSTA(adder_circuit, mini_models).analyze()
        assert_equivalent(scalar, compiled_adder.analyze())

    def test_adder_scenario_grid(self, adder_circuit, mini_models, compiled_adder):
        scenarios = [
            Scenario(input_slew=s * PS, launch_rising=r)
            for s in (10.0, 20.0, 75.0, 240.0)
            for r in (True, False)
        ]
        results = compiled_adder.analyze_batch(scenarios)
        assert len(results) == len(scenarios)
        for scenario, result in zip(scenarios, results):
            scalar = StatisticalSTA(
                adder_circuit, mini_models,
                input_slew=scenario.input_slew,
                launch_rising=scenario.launch_rising,
            ).analyze()
            assert_equivalent(scalar, result)
            assert result.scenario == scenario

    def test_random_circuits_with_parasitics(self, mini_models, tech):
        for seed in (3, 11, 27):
            circuit = build_mini_circuit(seed, tech=tech)
            scalar = StatisticalSTA(circuit, mini_models).analyze()
            compiled = CompiledSTA(circuit, mini_models).analyze()
            assert_equivalent(scalar, compiled)

    def test_ideal_nets_zero_wire(self, mini_models):
        # No parasitics attached: every wire contributes exactly zero.
        circuit = build_mini_circuit(5, tech=None)
        scalar = StatisticalSTA(circuit, mini_models).analyze()
        compiled = CompiledSTA(circuit, mini_models).analyze()
        assert_equivalent(scalar, compiled)
        assert compiled.critical_path.wire_total == 0.0

    def test_sigma_level_subset(self, adder_circuit, mini_models, compiled_adder):
        levels = (-2, 0, 2)
        scalar = StatisticalSTA(adder_circuit, mini_models).analyze(levels=levels)
        compiled = compiled_adder.analyze(levels=levels)
        assert compiled.critical_path.levels == levels
        assert_equivalent(scalar, compiled, levels=levels)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_cells=st.integers(min_value=8, max_value=60),
        depth=st.integers(min_value=2, max_value=8),
        slew_ps=st.floats(min_value=5.0, max_value=260.0),
        rising=st.booleans(),
    )
    def test_property_random_circuit(
        self, mini_models, tech, seed, n_cells, depth, slew_ps, rising
    ):
        depth = min(depth, max(2, n_cells // 2))
        circuit = build_mini_circuit(seed, n_cells=n_cells, depth=depth,
                                     tech=tech if seed % 2 else None)
        scalar = StatisticalSTA(
            circuit, mini_models, input_slew=slew_ps * PS, launch_rising=rising
        ).analyze()
        compiled = CompiledSTA(circuit, mini_models).analyze(
            input_slew=slew_ps * PS, launch_rising=rising
        )
        assert_equivalent(scalar, compiled)


class TestBatchSemantics:
    def test_empty_batch(self, compiled_adder):
        assert compiled_adder.analyze_batch([]) == []

    def test_result_type_and_runtime(self, compiled_adder):
        results = compiled_adder.analyze_batch([Scenario(), Scenario(input_slew=50 * PS)])
        for result in results:
            assert isinstance(result, BatchSTAResult)
            assert result.runtime_s > 0

    def test_correlated_quantiles_match_path(self, mini_models, compiled_adder):
        rho = 0.4
        result = compiled_adder.analyze_batch([Scenario(stage_correlation=rho)])[0]
        for n in SIGMA_LEVELS:
            assert result.correlated_quantiles[n] == pytest.approx(
                result.critical_path.total_correlated(n, rho)
            )

    def test_default_correlation_comes_from_models(self, compiled_adder, mini_models):
        result = compiled_adder.analyze_batch([Scenario()])[0]
        rho = mini_models.stage_correlation
        for n in (0, 3):
            assert result.correlated_quantiles[n] == pytest.approx(
                result.critical_path.total_correlated(n, rho)
            )

    def test_perf_counters(self, adder_circuit, mini_models):
        engine = CompiledSTA(adder_circuit, mini_models)
        perf = engine.perf
        assert perf.sta_compiles == 1
        assert perf.wall_s.get("sta_compile", 0.0) > 0.0
        engine.analyze_batch([Scenario(), Scenario(launch_rising=False)])
        assert perf.sta_scenarios == 2
        # One vectorized sweep per level serves the whole batch; arc
        # evaluations still count per (scenario x gate x pin).
        assert perf.sta_levels == engine.design.n_levels
        assert perf.sta_arc_evals == 2 * engine.design.n_arcs
        assert perf.wall_s.get("sta_query", 0.0) > 0.0

    def test_design_shape(self, compiled_adder, adder_circuit):
        design = compiled_adder.design
        assert design.n_gates == adder_circuit.n_cells
        assert design.n_nets == adder_circuit.n_nets
        assert design.n_levels >= adder_circuit.logic_depth()
        assert sum(level.n_arcs for level in design.levels) == design.n_arcs


class TestCompileCache:
    def test_cache_round_trip_identical(self, adder_circuit, mini_models, tmp_path):
        cache = JsonCache(tmp_path)
        first = compile_design(adder_circuit, mini_models, cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        second = compile_design(adder_circuit, mini_models, cache=cache)
        assert cache.hits == 1
        r1 = CompiledSTA(adder_circuit, mini_models, design=first).analyze()
        r2 = CompiledSTA(adder_circuit, mini_models, design=second).analyze()
        assert r1.arrival == r2.arrival  # bit-identical, not just close
        for n in SIGMA_LEVELS:
            assert r1.critical_path.total(n) == r2.critical_path.total(n)

    def test_key_tracks_circuit_content(self, adder_circuit, mini_models, tech):
        other = build_adder(3, name="adder3")
        attach_parasitics(other, tech, seed=99)  # different parasitics
        assert design_cache_key(adder_circuit, mini_models) != design_cache_key(
            other, mini_models
        )

    def test_json_round_trip_exact(self, adder_circuit, mini_models):
        import json

        design = compile_design(adder_circuit, mini_models)
        restored = CompiledDesign.from_dict(json.loads(json.dumps(design.to_dict())))
        assert restored.net_names == design.net_names
        assert np.array_equal(restored.net_load, design.net_load)
        assert np.array_equal(restored.end_elmore, design.end_elmore)
        assert restored.sink_elmore == design.sink_elmore
        assert restored.arcs.index == design.arcs.index
        assert np.array_equal(restored.arcs.mu_coef, design.arcs.mu_coef)

    def test_stale_artifact_is_rebuilt_not_served(
        self, adder_circuit, mini_models, tmp_path
    ):
        cache = JsonCache(tmp_path)
        compile_design(adder_circuit, mini_models, cache=cache)
        key = design_cache_key(adder_circuit, mini_models)
        doc = cache.get(COMPILE_CACHE_KIND, key)
        # Corrupt the cached tensors as a stale-calibration artifact would be.
        doc["arc_table"]["mu_coef"][0][0] *= 1.5
        cache.put(COMPILE_CACHE_KIND, key, doc)
        hits_before = cache.hits
        served = compile_design(adder_circuit, mini_models, cache=cache)
        # The poisoned artifact was loaded but failed the drift lint and
        # was rebuilt: the served design matches the live calibration.
        assert cache.hits == hits_before + 1
        assert not lint_compiled_design(served, mini_models.calibrated).errors


class TestDriftLint:
    def test_clean_design_passes(self, compiled_adder, mini_models):
        report = lint_compiled_design(compiled_adder.design, mini_models.calibrated)
        assert not report.errors

    def test_digest_mismatch_flagged(self, compiled_adder, mini_models):
        import dataclasses

        stale = dataclasses.replace(
            compiled_adder.design, calibration_digest="0" * 32
        )
        report = lint_compiled_design(stale, mini_models.calibrated)
        assert "NSM003" in report.rule_ids()

    def test_coefficient_drift_flagged(self, adder_circuit, mini_models):
        design = compile_design(adder_circuit, mini_models)
        design.arcs.sigma_coef[0, 0] += 1e-13
        report = lint_compiled_design(design, mini_models.calibrated)
        assert "NSM003" in report.rule_ids()
        assert any("sigma_coef" in d.message for d in report.errors)

    def test_missing_arc_flagged(self, adder_circuit, mini_models):
        import copy

        design = compile_design(adder_circuit, mini_models)
        calibrated = copy.deepcopy(mini_models.calibrated)
        calibrated.arcs = {
            k: v for k, v in calibrated.arcs.items() if k[0] != "NAND2x1"
        }
        report = lint_compiled_design(design, calibrated)
        assert "NSM003" in report.rule_ids()


class TestErrors:
    def test_gateless_circuit_rejected(self, mini_models):
        circuit = Circuit("wires_only")
        circuit.add_input("a")
        circuit.add_output("a")
        with pytest.raises(TimingError, match="no gates"):
            compile_design(circuit, mini_models)

    def test_design_circuit_mismatch(self, adder_circuit, mini_models, tech):
        design = compile_design(adder_circuit, mini_models)
        other = build_mini_circuit(1, tech=tech)
        with pytest.raises(TimingError, match="does not match"):
            CompiledSTA(other, mini_models, design=design)

    def test_lint_fail_fast(self, mini_models):
        circuit = Circuit("broken")
        circuit.add_gate("g0", "INVx1", {"A": "floating"}, "out")
        circuit.add_output("out")
        with pytest.raises(TimingError):
            compile_design(circuit, mini_models)


class TestScalarCaches:
    """The satellite caches on the scalar engine keep results unchanged."""

    def test_cell_ratio_memoized(self, mini_models):
        mini_models._ratio_cache.clear()
        first = mini_models.cell_ratio("INVx4")
        assert "INVx4" in mini_models._ratio_cache
        # Poison the cache to prove the second call is served from it.
        mini_models._ratio_cache["INVx4"] = first + 1.0
        assert mini_models.cell_ratio("INVx4") == first + 1.0
        mini_models._ratio_cache.clear()
        assert mini_models.cell_ratio("INVx4") == first

    def test_net_derivations_cached_per_engine(self, adder_circuit, mini_models):
        sta = StatisticalSTA(adder_circuit, mini_models)
        sta.analyze()
        assert sta._load_cache and sta._elmore_cache
        n_load, n_elm = len(sta._load_cache), len(sta._elmore_cache)
        sta.analyze()  # second run adds no entries
        assert len(sta._load_cache) == n_load
        assert len(sta._elmore_cache) == n_elm
