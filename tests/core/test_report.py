"""Tests for the timing report formatter."""

import pytest

from repro.core.report import (
    format_comparison,
    format_path_report,
    format_stage_budget,
)
from repro.core.sta import StatisticalSTA


@pytest.fixture(scope="module")
def result(adder_circuit, mini_models):
    return StatisticalSTA(adder_circuit, mini_models).analyze()


class TestPathReport:
    def test_contains_every_stage(self, result):
        text = format_path_report(result)
        for stage in result.critical_path.stages:
            if stage.gate:
                assert stage.gate in text

    def test_contains_quantiles(self, result):
        text = format_path_report(result)
        assert "+3σ" in text
        assert "-3σ" in text
        assert "Eq. 10" in text

    def test_truncation(self, result):
        text = format_path_report(result, max_stages=2)
        assert "more stages" in text

    def test_arrival_column_matches_total(self, result):
        text = format_path_report(result)
        last_arrival = None
        for line in text.splitlines():
            parts = line.split()
            if parts and parts[0].isdigit():
                last_arrival = float(parts[-1])
        assert last_arrival == pytest.approx(
            result.critical_path.total(0) * 1e12, abs=0.1)


class TestComparison:
    def test_errors_formatted(self, result):
        golden = {n: result.critical_path.total(n) * 1.1
                  for n in (-3, 0, 3)}
        text = format_comparison(result.critical_path, golden, levels=(-3, 0, 3))
        assert "-9.1%" in text

    def test_missing_levels_skipped(self, result):
        text = format_comparison(result.critical_path, {0: 1e-10}, levels=(-3, 0, 3))
        assert text.count("\n") == 1  # header + one row


class TestStageBudget:
    def test_top_stages_listed(self, result):
        text = format_stage_budget(result.critical_path, top=3)
        assert text.count("% of path") == 3

    def test_shares_bounded(self, result):
        text = format_stage_budget(result.critical_path)
        for line in text.splitlines()[1:]:
            pct = float(line.split("(")[1].split("%")[0])
            assert 0 < pct < 100
