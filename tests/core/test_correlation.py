"""Tests for the stage-correlation extension."""

import numpy as np
import pytest

from repro.core.correlation import estimate_stage_correlation
from repro.core.sta import PathStage, PathTiming, StatisticalSTA
from repro.errors import TimingError


def _stage(q_cell, q_wire=None):
    q_wire = q_wire or {n: 0.0 for n in q_cell}
    return PathStage(
        gate="g", cell_name="INVx1", input_pin="A", output_rising=False,
        net="n", sink=("x", "A"), input_slew=1e-11, load=1e-15,
        cell_moments=None, cell_quantiles=q_cell,
        wire_elmore=0.0, wire_xw=0.0, wire_quantiles=q_wire)


def symmetric_path(n_stages=4, spread=1e-12):
    q = {-3: 10e-12 - 3 * spread, 0: 10e-12, 3: 10e-12 + 3 * spread}
    return PathTiming(stages=[_stage(dict(q)) for _ in range(n_stages)],
                      levels=(-3, 0, 3))


class TestTotalCorrelated:
    def test_rho_one_equals_eq10(self):
        path = symmetric_path()
        for level in (-3, 0, 3):
            assert path.total_correlated(level, 1.0) == pytest.approx(
                path.total(level))

    def test_rho_zero_is_rss(self):
        path = symmetric_path(n_stages=4, spread=1e-12)
        # 4 identical deviations of 3ps: linear sum 12ps, RSS 6ps.
        assert path.total_correlated(3, 0.0) == pytest.approx(
            path.total(0) + 6e-12)

    def test_mean_level_unchanged(self):
        path = symmetric_path()
        for rho in (0.0, 0.5, 1.0):
            assert path.total_correlated(0, rho) == pytest.approx(path.total(0))

    def test_monotone_in_rho_for_upper_tail(self):
        path = symmetric_path()
        values = [path.total_correlated(3, r) for r in (0.0, 0.3, 0.7, 1.0)]
        assert values == sorted(values)

    def test_lower_tail_tightens_with_decorrelation(self):
        path = symmetric_path()
        assert path.total_correlated(-3, 0.3) > path.total_correlated(-3, 1.0)

    def test_validation(self):
        with pytest.raises(TimingError):
            symmetric_path().total_correlated(3, 1.5)


@pytest.mark.slow
class TestEstimation:
    def test_correlation_in_physical_range(self, engine, library):
        rho = estimate_stage_correlation(engine, library, n_samples=500)
        # Shared globals dominate but Pelgrom mismatch decorrelates.
        assert 0.3 < rho < 0.99

    def test_flow_stores_correlation(self, mini_models):
        assert 0.0 < mini_models.stage_correlation <= 1.0

    def test_correlated_sum_tighter_than_eq10(self, adder_circuit, mini_models):
        path = StatisticalSTA(adder_circuit, mini_models).analyze().critical_path
        rho = mini_models.stage_correlation
        assert path.total_correlated(3, rho) <= path.total(3)
        assert path.total_correlated(-3, rho) >= path.total(-3)