"""Work-queue executor: worker resolution, seeding, and serial fallback."""

from __future__ import annotations

import numpy as np
import pytest

import repro.parallel as parallel
from repro.parallel import (
    WORKERS_ENV,
    ParallelExecutor,
    parallel_map,
    resolve_workers,
    task_seed,
)


def _square(x):
    return x * x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_env_var_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_auto_and_zero_mean_all_cores(self, monkeypatch):
        import os

        cores = os.cpu_count() or 1
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == cores
        assert resolve_workers(-1) == cores
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers() == cores

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()


class TestTaskSeed:
    def test_stable_across_calls(self):
        assert task_seed(7, "INVx1", "A", "fall", 0, 0) == task_seed(
            7, "INVx1", "A", "fall", 0, 0
        )

    def test_distinct_for_distinct_parts(self):
        seeds = {
            task_seed(7, "INVx1", "A", "fall", i, j)
            for i in range(5)
            for j in range(5)
        }
        assert len(seeds) == 25

    def test_fits_in_numpy_seed_range(self):
        s = task_seed("anything", 123)
        np.random.default_rng(s)  # must not raise
        assert 0 <= s < 2**63


class TestParallelMap:
    def test_serial_matches_pool(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        tasks = list(range(20))
        assert parallel_map(_square, tasks, workers=1) == parallel_map(
            _square, tasks, workers=2
        )

    def test_preserves_task_order(self):
        tasks = list(range(50))
        assert parallel_map(_square, tasks, workers=2) == [t * t for t in tasks]

    def test_workers_one_never_spawns_pool(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor spawned for workers=1")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_single_task_stays_serial(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("pool spawned for a single task")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        assert parallel_map(_square, [5], workers=8) == [25]

    def test_empty_tasks(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], workers=2)


def _reciprocal(x):
    return 1 / x


class TestParallelExecutor:
    def test_records_dispatch_stats(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        ex = ParallelExecutor(workers=1)
        out = ex.map(_square, [1, 2, 3])
        assert out == [1, 4, 9]
        assert len(ex.history) == 1
        stats = ex.history[0]
        assert stats.tasks == 3
        assert stats.workers == 1
        assert not stats.pooled

    def test_pooled_dispatch_flagged(self):
        ex = ParallelExecutor(workers=2)
        assert ex.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        assert ex.history[-1].pooled
