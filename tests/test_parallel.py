"""Work-queue executor: worker resolution, seeding, and serial fallback."""

from __future__ import annotations

import glob
import json
import os
import pickle
import warnings

import numpy as np
import pytest

import repro.parallel as parallel
from repro.journal import RunJournal
from repro.parallel import (
    SHM_PREFIX,
    RetryPolicy,
    SharedPayloadBank,
    WORKERS_ENV,
    ParallelExecutor,
    parallel_map,
    resolve_workers,
    task_seed,
)


def _square(x):
    return x * x


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1
        assert resolve_workers(None) == 1

    def test_env_var_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_auto_and_zero_mean_all_cores(self, monkeypatch):
        import os

        cores = os.cpu_count() or 1
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == cores
        assert resolve_workers(-1) == cores
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers() == cores

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "not-a-number")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()


class TestTaskSeed:
    def test_stable_across_calls(self):
        assert task_seed(7, "INVx1", "A", "fall", 0, 0) == task_seed(
            7, "INVx1", "A", "fall", 0, 0
        )

    def test_distinct_for_distinct_parts(self):
        seeds = {
            task_seed(7, "INVx1", "A", "fall", i, j)
            for i in range(5)
            for j in range(5)
        }
        assert len(seeds) == 25

    def test_fits_in_numpy_seed_range(self):
        s = task_seed("anything", 123)
        np.random.default_rng(s)  # must not raise
        assert 0 <= s < 2**63


class TestParallelMap:
    def test_serial_matches_pool(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        tasks = list(range(20))
        assert parallel_map(_square, tasks, workers=1) == parallel_map(
            _square, tasks, workers=2
        )

    def test_preserves_task_order(self):
        tasks = list(range(50))
        assert parallel_map(_square, tasks, workers=2) == [t * t for t in tasks]

    def test_workers_one_never_spawns_pool(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("ProcessPoolExecutor spawned for workers=1")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_single_task_stays_serial(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("pool spawned for a single task")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", boom)
        assert parallel_map(_square, [5], workers=8) == [25]

    def test_empty_tasks(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], workers=2)


def _reciprocal(x):
    return 1 / x


class TestParallelExecutor:
    def test_records_dispatch_stats(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        ex = ParallelExecutor(workers=1)
        out = ex.map(_square, [1, 2, 3])
        assert out == [1, 4, 9]
        assert len(ex.history) == 1
        stats = ex.history[0]
        assert stats.tasks == 3
        assert stats.workers == 1
        assert not stats.pooled

    def test_pooled_dispatch_flagged(self):
        ex = ParallelExecutor(workers=2)
        assert ex.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
        assert ex.history[-1].pooled


# ----------------------------------------------------------------------
# Shared-memory payload banks
# ----------------------------------------------------------------------
def _load_bank_payload(task):
    payload = task["bank"].load()
    return payload["base"] + task["i"]


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm here")
class TestSharedPayloadBank:
    @pytest.fixture(autouse=True)
    def no_shm_leaks(self):
        """Every test in this class must leave /dev/shm exactly as found."""
        before = set(glob.glob("/dev/shm/repro_*"))
        yield
        after = set(glob.glob("/dev/shm/repro_*"))
        assert after - before == set(), f"leaked shared memory: {after - before}"

    def test_roundtrip_and_handle_is_small(self):
        payload = {"arr": np.arange(4096, dtype=float), "label": "arc"}
        with SharedPayloadBank(payload) as bank:
            assert bank.handle.name.startswith(SHM_PREFIX)
            # the whole point: tasks ship a tiny pointer, not the payload
            assert len(pickle.dumps(bank.handle)) < 200
            parallel._attached_payloads.clear()
            loaded = bank.handle.load()
            np.testing.assert_array_equal(loaded["arr"], payload["arr"])
            assert loaded["label"] == "arc"

    def test_close_is_idempotent_and_unlinks(self):
        bank = SharedPayloadBank({"x": 1})
        seg = f"/dev/shm/{bank.handle.name}"
        assert os.path.exists(seg)
        bank.close()
        assert not os.path.exists(seg)
        bank.close()  # second close must be a no-op, not an error

    def test_load_caches_per_process(self):
        with SharedPayloadBank({"x": [1, 2, 3]}) as bank:
            parallel._attached_payloads.clear()
            first = bank.handle.load()
            assert bank.handle.load() is first  # cache hit, no re-attach

    def test_load_cache_is_bounded(self):
        parallel._attached_payloads.clear()
        banks = [SharedPayloadBank({"i": i}) for i in range(parallel._ATTACH_CACHE_MAX + 3)]
        try:
            for bank in banks:
                bank.handle.load()
            assert len(parallel._attached_payloads) <= parallel._ATTACH_CACHE_MAX
        finally:
            for bank in banks:
                bank.close()

    def test_pooled_workers_read_bank(self):
        with SharedPayloadBank({"base": 100}) as bank:
            tasks = [{"bank": bank.handle, "i": i} for i in range(8)]
            out = parallel_map(_load_bank_payload, tasks, workers=2)
        assert out == [100 + i for i in range(8)]

    def test_publish_returns_none_on_failure(self, monkeypatch):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        assert SharedPayloadBank.publish(Unpicklable()) is None


class TestSharedPayloadBankPackShortCircuit:
    """A ``.rpk``-backed payload ships as a file pointer, not a segment."""

    @pytest.fixture(autouse=True)
    def no_shm_leaks(self):
        before = set(glob.glob("/dev/shm/repro_*"))
        yield
        after = set(glob.glob("/dev/shm/repro_*"))
        assert after - before == set(), f"leaked shared memory: {after - before}"

    @pytest.fixture()
    def library_pack(self, mini_charac, tmp_path):
        from repro.pack import pack_library_characterization

        return pack_library_characterization(
            mini_charac, tmp_path / "library.rpk"
        )

    def test_pack_payload_publishes_no_shared_memory(
        self, mini_charac, library_pack
    ):
        from repro.pack import load_library_characterization_pack

        payload = load_library_characterization_pack(library_pack)
        with SharedPayloadBank(payload) as bank:
            assert bank.handle.pack_path == str(library_pack)
            assert bank.handle.pack_identity
            assert bank.handle.size == 0
            assert len(pickle.dumps(bank.handle)) < 300
            parallel._attached_payloads.clear()
            loaded = bank.handle.load()
            assert set(loaded.tables) == set(mini_charac.tables)
            assert bank.handle.load() is loaded  # worker-local cache
        # close() had nothing to unlink; the pack file itself survives.
        assert library_pack.exists()

    def test_replaced_pack_is_refused_by_identity(self, library_pack):
        import numpy as np

        from repro.errors import ExecutionError
        from repro.pack import load_library_characterization_pack, write_pack

        payload = load_library_characterization_pack(library_pack)
        with SharedPayloadBank(payload) as bank:
            write_pack(library_pack, "unit", {"swapped": np.ones(4)})
            parallel._attached_payloads.clear()
            with pytest.raises(ExecutionError, match="identity"):
                bank.handle.load()

    def test_plain_payload_still_uses_shared_memory(self, mini_charac):
        # A payload without a pack (freshly characterized) must keep the
        # segment path: the short-circuit is strictly opt-in via .pack.
        assert mini_charac.pack is None
        with SharedPayloadBank(mini_charac) as bank:
            assert bank.handle.pack_path is None
            assert bank.handle.name.startswith(SHM_PREFIX)


# ----------------------------------------------------------------------
# Timeout degradation without SIGALRM
# ----------------------------------------------------------------------
class TestTimeoutDegrade:
    @pytest.fixture(autouse=True)
    def reset_warn_latch(self, monkeypatch):
        monkeypatch.setattr(parallel, "_timeout_unsupported_warned", False)
        yield

    def test_runs_unbounded_with_single_warning(self, monkeypatch):
        monkeypatch.delattr(parallel.signal, "SIGALRM")
        policy = RetryPolicy(task_timeout=0.001)
        with pytest.warns(RuntimeWarning, match="cannot be enforced"):
            out = parallel_map(_square, [3], workers=1, policy=policy)
        assert out == [9]
        # the warning is a one-time latch, not per-task spam
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert parallel_map(_square, [4], workers=1, policy=policy) == [16]

    def test_journal_records_degradation(self, monkeypatch, tmp_path):
        monkeypatch.delattr(parallel.signal, "SIGALRM")
        journal = RunJournal(tmp_path / "run.jsonl")
        with pytest.warns(RuntimeWarning):
            parallel_map(
                _square, [1, 2], workers=1,
                policy=RetryPolicy(task_timeout=0.5), journal=journal,
            )
        journal.close()
        events = [json.loads(line) for line in (tmp_path / "run.jsonl").read_text().splitlines()]
        assert any(e["event"] == "timeout_unsupported" for e in events)

    def test_timeout_still_enforced_with_sigalrm(self):
        if not hasattr(parallel.signal, "SIGALRM"):
            pytest.skip("platform has no SIGALRM")
        policy = RetryPolicy(task_timeout=5.0)
        # sanity: the enforced path still returns results normally
        assert parallel_map(_square, [6], workers=1, policy=policy) == [36]

    def test_signal_install_refusal_degrades_instead_of_crashing(
        self, monkeypatch
    ):
        # signal.signal can refuse with ValueError even when the thread
        # check passed (embedded interpreters, forked servers). The old
        # code let that ValueError escape and fail the attempt.
        def refuse(*_args):
            raise ValueError("signal only works in main thread")

        monkeypatch.setattr(parallel.signal, "signal", refuse)
        policy = RetryPolicy(task_timeout=0.5)
        with pytest.warns(RuntimeWarning, match="cannot be enforced"):
            assert parallel_map(_square, [5], workers=1, policy=policy) == [25]

    def test_off_main_thread_degrades_loudly(self):
        # Server worker threads dispatch queries through parallel_map
        # helpers; SIGALRM cannot arm there.
        policy = RetryPolicy(task_timeout=0.5)
        out: list = []
        captured: list = []

        def body():
            with warnings.catch_warnings(record=True) as records:
                warnings.simplefilter("always")
                out.extend(parallel_map(_square, [7], workers=1, policy=policy))
            captured.extend(records)

        import threading

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert out == [49]
        assert any(
            issubclass(r.category, RuntimeWarning)
            and "cannot be enforced" in str(r.message)
            for r in captured
        )
