"""Code-layer AST rules, suppression comments, and the self-lint pass."""

import textwrap

from repro.lint import lint_codebase, lint_source


def lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), rel_path="repro/fake.py")


class TestSeed001:
    def test_unseeded_default_rng(self):
        report = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert report.rule_ids() == ["SEED001"]
        assert report.errors[0].line == 3

    def test_none_seed_still_flagged(self):
        assert lint("rng = np.random.default_rng(seed=None)").rule_ids() == ["SEED001"]
        assert lint("rng = np.random.default_rng(None)").rule_ids() == ["SEED001"]

    def test_seeded_default_rng_clean(self):
        assert lint("rng = np.random.default_rng(42)").rule_ids() == []
        assert lint("rng = np.random.default_rng(seed=base + 3)").rule_ids() == []

    def test_legacy_global_state_api(self):
        report = lint("""
            import numpy as np
            x = np.random.normal(0.0, 1.0, 100)
        """)
        assert report.rule_ids() == ["SEED001"]
        assert "np.random.normal" in report.errors[0].message

    def test_generator_method_not_confused_with_legacy(self):
        # rng.normal() on a Generator instance is fine.
        assert lint("x = rng.normal(0.0, 1.0, 100)").rule_ids() == []


class TestTime001:
    def test_time_time(self):
        report = lint("""
            import time
            t0 = time.time()
        """)
        assert report.rule_ids() == ["TIME001"]

    def test_datetime_now_and_utcnow(self):
        assert lint("t = datetime.now()").rule_ids() == ["TIME001"]
        assert lint("t = datetime.utcnow()").rule_ids() == ["TIME001"]
        assert lint("d = date.today()").rule_ids() == ["TIME001"]

    def test_perf_counter_clean(self):
        assert lint("t0 = time.perf_counter()").rule_ids() == []
        assert lint("t0 = time.monotonic()").rule_ids() == []

    def test_unrelated_now_attribute_clean(self):
        assert lint("x = scheduler.now()").rule_ids() == []


class TestUnit001:
    def test_bare_picosecond_literal(self):
        report = lint("delay = 1e-12")
        assert report.rule_ids() == ["UNIT001"]
        assert "PS (or PF)" in report.warnings[0].message

    def test_mantissa_forms(self):
        assert lint("c = 2.5e-15").rule_ids() == ["UNIT001"]
        assert lint("t = 20E-9").rule_ids() == ["UNIT001"]

    def test_non_unit_exponents_clean(self):
        assert lint("x = 1e-3").rule_ids() == []
        assert lint("x = 1e-30").rule_ids() == []
        assert lint("x = 3.5e-10").rule_ids() == []

    def test_unit_constant_expression_clean(self):
        assert lint("delay = 20 * PS").rule_ids() == []

    def test_warning_severity_never_fails(self):
        assert lint("delay = 1e-12").ok


class TestErr001:
    def test_bare_raise_of_error_class(self):
        report = lint("raise CharacterizationError")
        assert report.rule_ids() == ["ERR001"]

    def test_zero_arg_call(self):
        assert lint("raise InterconnectError()").rule_ids() == ["ERR001"]

    def test_raise_with_message_clean(self):
        assert lint('raise InterconnectError("net n1: bad cap")').rule_ids() == []

    def test_non_repro_errors_ignored(self):
        assert lint("raise ValueError").rule_ids() == []
        assert lint("raise KeyError()").rule_ids() == []

    def test_reraise_clean(self):
        assert lint("""
            try:
                f()
            except InterconnectError:
                raise
        """).rule_ids() == []

    def test_syntax_error_reported_not_raised(self):
        report = lint("def broken(:\n")
        assert report.rule_ids() == ["ERR001"]
        assert "cannot parse" in report.errors[0].message


class TestSuppressions:
    def test_line_suppression(self):
        report = lint("delay = 1e-12  # repro-lint: disable=UNIT001")
        assert report.rule_ids() == []
        assert report.suppressed == 1

    def test_line_suppression_with_reason_text(self):
        report = lint("eps = 1e-12  # repro-lint: disable=UNIT001 (epsilon)")
        assert report.rule_ids() == []

    def test_line_suppression_only_affects_that_line(self):
        report = lint("""
            a = 1e-12  # repro-lint: disable=UNIT001
            b = 1e-12
        """)
        assert len(report.warnings) == 1

    def test_wrong_rule_id_does_not_suppress(self):
        report = lint("delay = 1e-12  # repro-lint: disable=SEED001")
        # The finding still fires, and the pointless suppression is
        # itself flagged as unused.
        assert report.rule_ids() == ["LNT001", "UNIT001"]

    def test_file_wide_suppression(self):
        report = lint("""
            # repro-lint: disable-file=UNIT001
            a = 1e-12
            b = 20e-15
        """)
        assert report.rule_ids() == []
        assert report.suppressed == 2

    def test_multiple_ids_one_comment(self):
        report = lint(
            "t = time.time(); d = 1e-12"
            "  # repro-lint: disable=TIME001, UNIT001"
        )
        assert report.rule_ids() == []
        assert report.suppressed == 2


class TestLintCodebase:
    def test_self_lint_is_clean(self):
        """The shipped package must pass its own linter (CI-enforced)."""
        report = lint_codebase()
        assert report.format_text().splitlines()[:-1] == []
        assert report.ok
        assert not report.warnings

    def test_self_lint_has_explicit_exemptions(self):
        # The intentional in-line suppressions are counted, not hidden.
        assert lint_codebase().suppressed > 0

    def test_single_file_root(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("rng = np.random.default_rng()\n")
        report = lint_codebase(bad, relative_to=tmp_path)
        assert report.rule_ids() == ["SEED001"]
        assert report.errors[0].file == "mod.py"

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("t = time.time()\n")
        report = lint_codebase(tmp_path / "pkg", relative_to=tmp_path)
        assert report.rule_ids() == []
