"""SUR (surrogate provenance) and TBL007 (axis hygiene) lint rules."""

import json

import numpy as np

from repro.cells.characterize import CharacterizationTable
from repro.lint import lint_characterization
from repro.lint.domain import lint_artifact, lint_surrogate_provenance
from repro.moments.stats import SIGMA_LEVELS
from repro.units import FF, PS


def make_table(**overrides) -> CharacterizationTable:
    slews = np.array([10 * PS, 50 * PS])
    loads = np.array([1 * FF, 4 * FF])
    moments = np.empty((2, 2, 4))
    moments[...] = (30 * PS, 2 * PS, 0.3, 3.3)
    quantiles = np.empty((2, 2, len(SIGMA_LEVELS)))
    for k, lvl in enumerate(SIGMA_LEVELS):
        quantiles[..., k] = 30 * PS + lvl * 2 * PS
    fields = dict(
        cell_name="INVx1", pin="A", output_rising=False,
        slews=slews, loads=loads, moments=moments,
        quantiles=quantiles, out_slew=np.full((2, 2), 20 * PS),
        n_samples=500,
    )
    fields.update(overrides)
    return CharacterizationTable(**fields)


def valid_provenance(**overrides) -> dict:
    simulated = [[0, 0], [0, 1], [1, 0], [1, 1]]
    prov = {
        "method": "gp",
        "version": 1,
        "n_grid": 4,
        "n_simulated": 4,
        "n_predicted": 0,
        "simulated": simulated,
        "statistics": {"mu": {"lengthscales": [0.5, 0.5], "nugget": 1e-6,
                              "lml": 0.0, "signal_var": 1.0, "rel_se": 0.01}},
        "cv": {"statistic": "mu", "rel": 0.01, "budget": 0.08},
        "converged": True,
        "fallback": None,
    }
    prov.update(overrides)
    return prov


class TestTBL007:
    def test_nan_axis_flagged(self):
        table = make_table(slews=np.array([10 * PS, np.nan]))
        report = lint_characterization(table)
        assert "TBL007" in report.rule_ids()

    def test_inf_axis_flagged(self):
        table = make_table(loads=np.array([1 * FF, np.inf]))
        report = lint_characterization(table)
        assert "TBL007" in report.rule_ids()

    def test_finite_axes_silent(self):
        assert "TBL007" not in lint_characterization(make_table()).rule_ids()


class TestSUR001:
    def test_cv_breach_without_fallback(self):
        prov = valid_provenance(
            cv={"statistic": "mu", "rel": 0.5, "budget": 0.08}
        )
        report = lint_surrogate_provenance(prov, "INVx1/A/fall")
        assert "SUR001" in report.rule_ids()

    def test_cv_breach_with_fallback_is_clean(self):
        prov = valid_provenance(
            cv={"statistic": "mu", "rel": 0.5, "budget": 0.08},
            fallback="cv_residual",
        )
        report = lint_surrogate_provenance(prov, "INVx1/A/fall")
        assert "SUR001" not in report.rule_ids()

    def test_cv_within_budget_is_clean(self):
        report = lint_surrogate_provenance(valid_provenance(), "arc")
        assert report.rule_ids() == []


class TestSUR002:
    def test_not_converged_warns(self):
        prov = valid_provenance(converged=False)
        report = lint_surrogate_provenance(prov, "arc")
        assert "SUR002" in report.rule_ids()
        # A warning, not an error: the table is still usable.
        assert all(d.rule_id != "SUR002" for d in report.errors)

    def test_not_converged_with_fallback_is_clean(self):
        prov = valid_provenance(converged=False, fallback="cv_residual")
        report = lint_surrogate_provenance(prov, "arc")
        assert "SUR002" not in report.rule_ids()


class TestSUR003:
    def test_non_dict_provenance(self):
        report = lint_surrogate_provenance(["not", "a", "dict"], "arc")
        assert "SUR003" in report.rule_ids()

    def test_missing_keys(self):
        prov = valid_provenance()
        del prov["statistics"]
        report = lint_surrogate_provenance(prov, "arc")
        assert "SUR003" in report.rule_ids()

    def test_inconsistent_counts(self):
        prov = valid_provenance(n_predicted=7)
        report = lint_surrogate_provenance(prov, "arc")
        assert "SUR003" in report.rule_ids()

    def test_non_numeric_cv(self):
        prov = valid_provenance(cv={"rel": "high", "budget": 0.08})
        report = lint_surrogate_provenance(prov, "arc")
        assert "SUR003" in report.rule_ids()

    def test_table_with_provenance_linted(self):
        table = make_table(provenance=valid_provenance(n_grid=99))
        report = lint_characterization(table)
        assert "SUR003" in report.rule_ids()

    def test_bundle_marker_without_provenance(self, tmp_path):
        from repro.cells.liberty import FORMAT, FORMAT_VERSION, table_to_dict

        doc = {
            "format": FORMAT,
            "version": FORMAT_VERSION,
            "tables": [table_to_dict(make_table())],
            "surrogate": True,
        }
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps(doc))
        report = lint_artifact(path)
        assert "SUR003" in report.rule_ids()

    def test_clean_surrogate_bundle(self, tmp_path):
        from repro.cells.liberty import (
            LibraryCharacterization,
            save_library_characterization,
        )

        charac = LibraryCharacterization()
        charac.put(make_table(provenance=valid_provenance()))
        path = tmp_path / "bundle.json"
        save_library_characterization(charac, path)
        assert json.loads(path.read_text()).get("surrogate") is True
        report = lint_artifact(path)
        assert "SUR003" not in report.rule_ids()
