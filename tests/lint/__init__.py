"""Tests for the repro.lint rule engine."""
