"""The ``repro lint`` CLI subcommand: dispatch, formats, exit codes."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def bad_spef(tmp_path) -> Path:
    p = tmp_path / "bad.spef"
    p.write_text("*D_NET n 1.0\n*CAP\n1 b\n*RES\n1 a b 10.0\n*END\n")
    return p


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("NET001", "RCT001", "SPF001", "TBL002", "NSM001",
                        "SEED001", "UNIT001"):
            assert rule_id in out

    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_missing_artifact_is_usage_error(self, capsys):
        assert main(["lint", "no/such/file.spef"]) == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_bad_artifact_fails_with_diagnostic(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path))]) == 1
        out = capsys.readouterr().out
        assert "SPF002" in out
        assert "1 error" in out

    def test_json_format(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path)), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] == 1
        assert doc["diagnostics"][0]["rule"] == "SPF002"

    def test_disable_suppresses_and_flips_exit_code(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path)), "--disable", "SPF002"]) == 0
        assert "(1 suppressed)" in capsys.readouterr().out

    def test_codebase_self_lint_clean(self, capsys):
        assert main(["lint", "--codebase"]) == 0
        assert "0 errors, 0 warnings" in capsys.readouterr().out

    def test_artifacts_and_codebase_combine(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path)), "--codebase"]) == 1
        assert "SPF002" in capsys.readouterr().out


class TestShippedArtifacts:
    """Acceptance: the shipped example flow lints with zero errors."""

    def test_example_cache_artifacts_lint_clean(self, capsys):
        artifacts = sorted((REPO_ROOT / "examples" / ".cache").glob("*.json"))
        assert artifacts, "shipped example artifacts are missing"
        code = main(["lint", *map(str, artifacts), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0, doc
        assert doc["summary"]["errors"] == 0

    def test_mini_flow_models_lint_clean(self, mini_models, mini_charac):
        from repro.lint import lint_characterization, lint_nsigma_model

        assert lint_characterization(mini_charac).ok
        assert lint_nsigma_model(mini_models.nsigma).ok
