"""The ``repro lint`` CLI subcommand: dispatch, formats, exit codes."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def bad_spef(tmp_path) -> Path:
    p = tmp_path / "bad.spef"
    p.write_text("*D_NET n 1.0\n*CAP\n1 b\n*RES\n1 a b 10.0\n*END\n")
    return p


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("NET001", "RCT001", "SPF001", "TBL002", "NSM001",
                        "SEED001", "UNIT001"):
            assert rule_id in out

    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_missing_artifact_is_usage_error(self, capsys):
        assert main(["lint", "no/such/file.spef"]) == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_bad_artifact_fails_with_diagnostic(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path))]) == 1
        out = capsys.readouterr().out
        assert "SPF002" in out
        assert "1 error" in out

    def test_json_format(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path)), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] == 1
        assert doc["diagnostics"][0]["rule"] == "SPF002"

    def test_disable_suppresses_and_flips_exit_code(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path)), "--disable", "SPF002"]) == 0
        assert "(1 suppressed)" in capsys.readouterr().out

    def test_codebase_self_lint_clean(self, capsys):
        assert main(["lint", "--codebase"]) == 0
        assert "0 errors, 0 warnings" in capsys.readouterr().out

    def test_artifacts_and_codebase_combine(self, tmp_path, capsys):
        assert main(["lint", str(bad_spef(tmp_path)), "--codebase"]) == 1
        assert "SPF002" in capsys.readouterr().out


TAINTED_SRC = (
    "import time\n"
    "def store(cache, key, payload):\n"
    "    doc = {'payload': payload, 'at': time.time()}\n"
    "    cache.put('charac', key, doc)\n"
)

WARNING_ONLY_SRC = (
    "def store(cache, key, names):\n"
    "    uniq = set(names)\n"
    "    doc = {'names': [n for n in uniq]}\n"
    "    cache.put('charac', key, doc)\n"
)


class TestDeepLintCommand:
    def test_deep_flags_dataflow_findings(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(TAINTED_SRC)
        assert main(["lint", "--deep", str(bad)]) == 1
        assert "DET002" in capsys.readouterr().out

    def test_deep_over_src_clean_against_baseline(self, capsys):
        code = main([
            "lint", "--deep", str(REPO_ROOT / "src"),
            "--baseline", str(REPO_ROOT / ".lint-baseline.json"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "suppressed" in out  # baseline entries matched

    def test_default_exit_zero_on_warnings_only(self, tmp_path, capsys):
        warn = tmp_path / "warn.py"
        warn.write_text(WARNING_ONLY_SRC)
        assert main(["lint", "--deep", str(warn)]) == 0
        assert "DET004" in capsys.readouterr().out

    def test_strict_fails_on_warnings(self, tmp_path, capsys):
        warn = tmp_path / "warn.py"
        warn.write_text(WARNING_ONLY_SRC)
        assert main(["lint", "--deep", "--strict", str(warn)]) == 1

    def test_strict_clean_run_still_passes(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text("def f():\n    return 1\n")
        assert main(["lint", "--deep", "--strict", str(ok)]) == 0

    def test_sarif_format(self, tmp_path, capsys):
        from repro.lint import validate_sarif

        bad = tmp_path / "mod.py"
        bad.write_text(TAINTED_SRC)
        assert main(["lint", "--deep", str(bad), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"][0]["ruleId"] == "DET002"

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(TAINTED_SRC)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--deep", str(bad),
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", "--deep", str(bad),
                     "--baseline", str(baseline)]) == 0
        assert "(1 suppressed)" in capsys.readouterr().out

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(TAINTED_SRC)
        assert main(["lint", "--deep", str(bad), "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_stale_baseline_noted(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text(TAINTED_SRC)
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--deep", str(bad),
                     "--baseline", str(baseline), "--update-baseline"]) == 0
        bad.write_text("def f():\n    return 1\n")  # finding fixed
        capsys.readouterr()
        assert main(["lint", "--deep", str(bad),
                     "--baseline", str(baseline)]) == 0
        assert "no longer fire" in capsys.readouterr().err


class TestShippedArtifacts:
    """Acceptance: the shipped example flow lints with zero errors."""

    def test_example_cache_artifacts_lint_clean(self, capsys):
        artifacts = sorted((REPO_ROOT / "examples" / ".cache").glob("*.json"))
        assert artifacts, "shipped example artifacts are missing"
        code = main(["lint", *map(str, artifacts), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0, doc
        assert doc["summary"]["errors"] == 0

    def test_mini_flow_models_lint_clean(self, mini_models, mini_charac):
        from repro.lint import lint_characterization, lint_nsigma_model

        assert lint_characterization(mini_charac).ok
        assert lint_nsigma_model(mini_models.nsigma).ok
