"""PCK rule family: packed-artifact container, digest and staleness lint.

Every rule gets at least three true-positive artifacts (the rule must
fire) and three true-negative artifacts (it must stay silent).
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np
import pytest

from repro.lint import get_rule, lint_artifact, lint_pack
from repro.lint.core import Severity
from repro.pack import (
    COMPILED_DESIGN_KIND,
    ENDIAN_MARK,
    HEADER_SIZE,
    MAGIC,
    PACK_FORMAT_VERSION,
    write_pack,
)


def make_pack(path: Path, meta: dict | None = None, kind: str = "unit") -> Path:
    doc = {"x": np.arange(32, dtype=float), "y": np.ones((3, 3))}
    return write_pack(path, kind, doc, meta=meta)


def flip_byte(path: Path, offset: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


def patch_u32(path: Path, offset: int, value: int) -> None:
    blob = bytearray(path.read_bytes())
    blob[offset : offset + 4] = struct.pack("<I", value)
    path.write_bytes(bytes(blob))


def craft_raw_pack(path: Path, manifest_bytes: bytes) -> Path:
    """Hand-assemble a pack whose header is consistent with ``manifest_bytes``.

    Lets tests reach validation stages *behind* the manifest digest
    check (unparseable JSON, out-of-bounds segment records) that no
    writer-produced file can exhibit.
    """
    import hashlib

    data_off = (HEADER_SIZE + len(manifest_bytes) + 63) // 64 * 64
    file_len = data_off  # empty data section
    header = struct.pack(
        "<8sIIQQQQ16s",
        MAGIC,
        PACK_FORMAT_VERSION,
        ENDIAN_MARK,
        HEADER_SIZE,
        len(manifest_bytes),
        data_off,
        file_len,
        hashlib.sha256(manifest_bytes).digest()[:16],
    )
    blob = header + manifest_bytes
    blob += b"\0" * (file_len - len(blob))
    path.write_bytes(blob)
    return path


class TestRegistration:
    @pytest.mark.parametrize("rule_id", ["PCK001", "PCK002", "PCK003", "PCK004"])
    def test_rules_are_registered_errors(self, rule_id):
        rule = get_rule(rule_id)
        assert rule.layer == "domain"
        assert rule.severity is Severity.ERROR


class TestPCK001Container:
    def test_fires_on_bad_magic(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        flip_byte(path, 0)
        assert lint_pack(path).rule_ids() == ["PCK001"]

    def test_fires_on_unsupported_version(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        patch_u32(path, 8, PACK_FORMAT_VERSION + 7)
        assert lint_pack(path).rule_ids() == ["PCK001"]

    def test_fires_on_foreign_byte_order(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        patch_u32(path, 12, 0x04030201)
        report = lint_pack(path)
        assert report.rule_ids() == ["PCK001"]
        assert "byte order" in report.errors[0].message

    def test_fires_on_unparseable_manifest(self, tmp_path):
        path = craft_raw_pack(tmp_path / "p.rpk", b"{not json at all")
        assert lint_pack(path).rule_ids() == ["PCK001"]

    def test_silent_on_valid_packs(self, tmp_path):
        for i, kind in enumerate(("unit", COMPILED_DESIGN_KIND, "library")):
            path = make_pack(tmp_path / f"ok{i}.rpk", kind=kind)
            assert "PCK001" not in lint_pack(path).rule_ids()

    def test_silent_regardless_of_meta(self, tmp_path):
        path = make_pack(tmp_path / "m.rpk", meta={"design_cache_key": "k"})
        assert "PCK001" not in lint_pack(path).rule_ids()


class TestPCK002Digests:
    def test_fires_on_flipped_tensor_byte(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        flip_byte(path, path.stat().st_size - 1)
        report = lint_pack(path)
        assert report.rule_ids() == ["PCK002"]
        assert "sha256" in report.errors[0].message

    def test_fires_on_first_segment_damage(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        flip_byte(path, HEADER_SIZE + 512)  # inside the first tensor
        assert lint_pack(path).rule_ids() == ["PCK002"]

    def test_fires_on_flipped_manifest_byte(self, tmp_path):
        # Manifest damage is a digest failure too (the header's sha
        # prefix no longer matches), caught before JSON parsing.
        path = make_pack(tmp_path / "p.rpk")
        flip_byte(path, HEADER_SIZE + 2)
        assert lint_pack(path).rule_ids() == ["PCK002"]

    def test_silent_on_clean_packs(self, tmp_path):
        for i in range(3):
            path = make_pack(tmp_path / f"ok{i}.rpk")
            assert "PCK002" not in lint_pack(path).rule_ids()


class TestPCK003Truncation:
    def test_fires_on_tail_cut(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        path.write_bytes(path.read_bytes()[:-16])
        assert lint_pack(path).rule_ids() == ["PCK003"]

    def test_fires_below_header_size(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        path.write_bytes(path.read_bytes()[: HEADER_SIZE // 2])
        assert lint_pack(path).rule_ids() == ["PCK003"]

    def test_fires_on_out_of_bounds_segment_record(self, tmp_path):
        import json

        manifest = {
            "format": "repro-pack",
            "version": PACK_FORMAT_VERSION,
            "kind": "unit",
            "meta": {},
            "doc": {"x": {"__ndarray_segment__": 0}},
            "segments": [
                {
                    "name": "x",
                    "dtype": "<f8",
                    "shape": [8],
                    "offset": 0,
                    "nbytes": 64,  # data section is empty: out of bounds
                    "sha256": "0" * 64,
                }
            ],
        }
        path = craft_raw_pack(
            tmp_path / "p.rpk", json.dumps(manifest, sort_keys=True).encode()
        )
        report = lint_pack(path)
        assert report.rule_ids() == ["PCK003"]
        assert "data section" in report.errors[0].message

    def test_silent_on_intact_files(self, tmp_path):
        for i in range(3):
            path = make_pack(tmp_path / f"ok{i}.rpk")
            assert "PCK003" not in lint_pack(path).rule_ids()


class TestPCK004Staleness:
    def test_fires_on_design_key_mismatch(self, tmp_path):
        path = make_pack(
            tmp_path / "p.rpk", meta={"design_cache_key": "built-key"}
        )
        report = lint_pack(path, expected_key="live-key")
        assert report.rule_ids() == ["PCK004"]
        assert "design_cache_key" in report.errors[0].message

    def test_fires_on_missing_recorded_key(self, tmp_path):
        # No recorded key at all cannot satisfy an expected one.
        path = make_pack(tmp_path / "p.rpk")
        assert lint_pack(path, expected_key="live-key").rule_ids() == ["PCK004"]

    def test_fires_on_stale_calibration_digest(
        self, tmp_path, mini_models
    ):
        path = make_pack(
            tmp_path / "p.rpk",
            meta={"calibration_digest": "0123456789abcdef" * 2},
        )
        report = lint_pack(path, calibrated=mini_models.calibrated)
        assert report.rule_ids() == ["PCK004"]
        assert "calibration" in report.errors[0].message

    def test_silent_when_identity_matches(self, tmp_path, mini_models):
        live = mini_models.calibrated.content_digest()
        path = make_pack(
            tmp_path / "p.rpk",
            meta={"design_cache_key": "k1", "calibration_digest": live},
        )
        report = lint_pack(
            path, expected_key="k1", calibrated=mini_models.calibrated
        )
        assert report.rule_ids() == []

    def test_silent_without_live_identity_to_compare(self, tmp_path):
        path = make_pack(
            tmp_path / "p.rpk", meta={"design_cache_key": "anything"}
        )
        assert lint_pack(path).rule_ids() == []

    def test_silent_when_pack_records_no_calibration(
        self, tmp_path, mini_models
    ):
        path = make_pack(tmp_path / "p.rpk")
        report = lint_pack(path, calibrated=mini_models.calibrated)
        assert "PCK004" not in report.rule_ids()


class TestArtifactDispatch:
    def test_lint_artifact_routes_rpk_files(self, tmp_path):
        path = make_pack(tmp_path / "p.rpk")
        assert lint_artifact(path).rule_ids() == []
        flip_byte(path, path.stat().st_size - 1)
        assert lint_artifact(path).rule_ids() == ["PCK002"]
