"""CKY0xx cache-key completeness fixtures."""

import ast
import textwrap

from repro.lint.flowgraph.rules_cky import CacheKeySpec, check_module

SPEC = CacheKeySpec(
    class_name="Flow",
    producers=("characterize",),
    key_methods=("_cache_key",),
    allowed=frozenset({"perf"}),
)


def cky(code: str, specs=(SPEC,)):
    tree = ast.parse(textwrap.dedent(code))
    return [(d.rule_id, d.line) for d in check_module(tree, "fake.py", specs)]


class TestCkyTruePositives:
    def test_unkeyed_attribute_read(self):
        diags = cky("""
            class Flow:
                def _cache_key(self):
                    return content_key({"seed": self.seed})
                def characterize(self):
                    return run(self.seed, self.n_samples)
        """)
        assert ("CKY001", 6) in diags

    def test_unkeyed_read_hidden_in_helper(self):
        diags = cky("""
            class Flow:
                def _cache_key(self):
                    return content_key({"seed": self.seed})
                def characterize(self):
                    return self._helper()
                def _helper(self):
                    return run(self.seed, self.secret)
        """)
        assert [r for r, _ in diags] == ["CKY001"]

    def test_dead_key_component(self):
        diags = cky("""
            class Flow:
                def _cache_key(self):
                    return content_key({"seed": self.seed, "old": self.removed_knob})
                def characterize(self):
                    return run(self.seed)
        """)
        assert [r for r, _ in diags] == ["CKY002"]

    def test_unversioned_content_key(self):
        diags = cky("""
            def key(payload):
                return content_key(payload, versioned=False)
        """)
        assert [r for r, _ in diags] == ["CKY003"]


class TestCkyTrueNegatives:
    def test_fully_keyed_producer(self):
        assert cky("""
            class Flow:
                def _cache_key(self):
                    return content_key({"seed": self.seed, "n": self.n})
                def characterize(self):
                    return run(self.seed, self.n)
        """) == []

    def test_allowlisted_attribute(self):
        assert cky("""
            class Flow:
                def _cache_key(self):
                    return content_key({"seed": self.seed})
                def characterize(self):
                    self.perf.tick()
                    return run(self.seed)
        """) == []

    def test_constructor_consumption_is_not_dead(self):
        # `kernel` is in the key and consumed while building the engine
        # in __init__ — live, not a dead key component.
        assert cky("""
            class Flow:
                def __init__(self, kernel):
                    self.kernel = kernel
                    self.engine = Engine(kernel=self.kernel)
                def _cache_key(self):
                    return content_key({"kernel": self.kernel})
                def characterize(self):
                    return self.engine.run()
        """, specs=(CacheKeySpec(
            class_name="Flow",
            producers=("characterize",),
            key_methods=("_cache_key",),
            allowed=frozenset({"engine"}),
        ),)) == []

    def test_versioned_content_key_is_clean(self):
        assert cky("""
            def key(payload):
                return content_key(payload)
        """) == []

    def test_unlisted_class_is_ignored(self):
        assert cky("""
            class Other:
                def _cache_key(self):
                    return content_key({"seed": self.seed})
                def characterize(self):
                    return run(self.whatever)
        """) == []


class TestCkyOnRealTree:
    def test_delay_calibration_flow_is_complete(self):
        import repro.core.flow as flow_mod
        from pathlib import Path

        source = Path(flow_mod.__file__).read_text()
        diags = check_module(ast.parse(source), "repro/core/flow.py")
        assert diags == [], [d.render() for d in diags]
