"""Diagnostic core: registry, diagnostics, reports, reporters."""

import json

import pytest

from repro.errors import LintConfigError, TimingError
from repro.lint import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)


class TestRegistry:
    def test_rules_registered_with_all_layers(self):
        rules = all_rules()
        assert len(rules) >= 10
        layers = {r.layer for r in rules}
        assert layers == {"domain", "code", "flow"}

    def test_sorted_by_id(self):
        ids = [r.rule_id for r in all_rules()]
        assert ids == sorted(ids)

    def test_layer_filter(self):
        assert all(r.layer == "code" for r in all_rules(layer="code"))
        assert all(r.layer == "domain" for r in all_rules(layer="domain"))
        assert all_rules(layer="code")

    def test_identical_reregistration_is_idempotent(self):
        existing = all_rules()[0]
        n_before = len(all_rules())
        assert register_rule(existing) is existing
        assert register_rule(
            Rule(existing.rule_id, existing.layer, existing.severity,
                 existing.summary, existing.rationale)
        ) == existing
        assert len(all_rules()) == n_before

    def test_conflicting_redefinition_rejected(self):
        existing = all_rules()[0]
        conflicting = Rule(existing.rule_id, existing.layer,
                           existing.severity, "a different summary")
        with pytest.raises(LintConfigError, match="conflicting"):
            register_rule(conflicting)
        # The registry keeps the original definition.
        assert get_rule(existing.rule_id) == existing

    def test_unknown_layer_rejected(self):
        with pytest.raises(LintConfigError, match="layer"):
            register_rule(Rule("ZZZ999", "nope", Severity.ERROR, "x"))

    def test_get_rule(self):
        rule = get_rule("RCT001")
        assert rule.rule_id == "RCT001"
        assert rule.severity is Severity.ERROR
        assert rule.rationale

    def test_every_rule_has_summary_and_rationale(self):
        for rule in all_rules():
            assert rule.summary, rule.rule_id
            assert rule.rationale, rule.rule_id


class TestDiagnostic:
    def test_of_defaults_severity_from_registry(self):
        d = Diagnostic.of("RCT001", "bad R")
        assert d.severity is Severity.ERROR
        d = Diagnostic.of("RCT004", "floating")
        assert d.severity is Severity.WARNING

    def test_severity_override(self):
        d = Diagnostic.of("RCT001", "bad R", severity=Severity.WARNING)
        assert d.severity is Severity.WARNING

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            Diagnostic.of("NOPE999", "x")

    def test_render_with_file_line(self):
        d = Diagnostic.of("UNIT001", "bare literal", file="repro/x.py", line=12)
        assert d.render() == "repro/x.py:12: warning UNIT001: bare literal"

    def test_render_with_artifact(self):
        d = Diagnostic.of("RCT001", "bad R", artifact="net n1")
        assert d.render().startswith("net n1: error RCT001:")

    def test_as_dict_round_trips_through_json(self):
        d = Diagnostic.of("RCT001", "bad R", artifact="net n1")
        doc = json.loads(json.dumps(d.as_dict()))
        assert doc["rule"] == "RCT001"
        assert doc["severity"] == "error"
        assert doc["message"] == "bad R"


class TestLintReport:
    def _report(self):
        r = LintReport()
        r.emit("RCT001", "bad R", artifact="net a")
        r.emit("RCT004", "floating", artifact="net a")
        r.emit("TBL001", "nan", artifact="arc x")
        return r

    def test_errors_warnings_ok(self):
        r = self._report()
        assert len(r) == 3
        assert [d.rule_id for d in r.errors] == ["RCT001", "TBL001"]
        assert [d.rule_id for d in r.warnings] == ["RCT004"]
        assert not r.ok
        assert LintReport().ok

    def test_rule_ids(self):
        assert self._report().rule_ids() == ["RCT001", "RCT004", "TBL001"]

    def test_extend_merges_diagnostics_and_suppressed(self):
        a, b = self._report(), self._report()
        b.suppressed = 2
        a.extend(b)
        assert len(a) == 6
        assert a.suppressed == 2

    def test_suppress_filters_and_counts(self):
        r = self._report().suppress({"RCT001", "RCT004"})
        assert r.rule_ids() == ["TBL001"]
        assert r.suppressed == 2

    def test_summary_pluralization(self):
        assert self._report().summary() == "2 errors, 1 warning"
        r = LintReport()
        r.emit("RCT001", "x")
        assert r.summary() == "1 error, 0 warnings"

    def test_summary_reports_suppressed(self):
        r = self._report().suppress({"RCT001"})
        assert "(1 suppressed)" in r.summary()

    def test_format_text_ends_with_summary(self):
        text = self._report().format_text()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[-1] == "2 errors, 1 warning"

    def test_to_json_structure(self):
        doc = json.loads(self._report().to_json())
        assert len(doc["diagnostics"]) == 3
        assert doc["summary"] == {"errors": 2, "warnings": 1, "suppressed": 0}

    def test_raise_if_errors(self):
        with pytest.raises(TimingError, match="ctx: 2 lint error"):
            self._report().raise_if_errors(TimingError, context="ctx")

    def test_raise_if_errors_silent_when_clean(self):
        r = LintReport()
        r.emit("RCT004", "warning only")
        r.raise_if_errors(TimingError)

    def test_raise_if_errors_truncates_long_lists(self):
        r = LintReport()
        for i in range(14):
            r.emit("RCT001", f"bad {i}")
        with pytest.raises(TimingError, match=r"and 4 more"):
            r.raise_if_errors(TimingError)
