"""CFG construction and the generic dataflow solver."""

import ast
import textwrap

from repro.lint.flowgraph import (
    ReachingDefinitions,
    build_cfg,
    iter_functions,
)


def cfg_of(code: str):
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[0]
    return build_cfg(func)


class TestCFGShape:
    def test_straight_line(self):
        cfg = cfg_of("""
            def f():
                a = 1
                b = a + 1
                return b
        """)
        stmts = list(cfg.stmt_nodes())
        assert len(stmts) == 3
        # entry -> a -> b -> return -> exit, single chain
        assert cfg.nodes[cfg.entry].succs == {stmts[0].index}

    def test_if_branches_rejoin(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        ret = [n for n in cfg.stmt_nodes()
               if isinstance(n.stmt, ast.Return)][0]
        assigns = [n for n in cfg.stmt_nodes()
                   if isinstance(n.stmt, ast.Assign)]
        assert len(assigns) == 2
        for n in assigns:
            assert ret.index in n.succs

    def test_loop_back_edge(self):
        cfg = cfg_of("""
            def f(xs):
                for x in xs:
                    y = x
                return y
        """)
        head = [n for n in cfg.stmt_nodes()
                if isinstance(n.stmt, ast.For)][0]
        body = [n for n in cfg.stmt_nodes()
                if isinstance(n.stmt, ast.Assign)][0]
        assert head.index in body.succs  # back edge

    def test_exception_edges_marked(self):
        cfg = cfg_of("""
            def f():
                risky()
        """)
        call = [n for n in cfg.stmt_nodes()][0]
        assert (call.index, cfg.exit) in cfg.exc_edges

    def test_try_finally_routes_exceptions_through_finally(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                finally:
                    cleanup()
        """)
        cleanup = [n for n in cfg.stmt_nodes()
                   if isinstance(n.stmt, ast.Expr)
                   and n.stmt.value.func.id == "cleanup"][0]
        risky = [n for n in cfg.stmt_nodes()
                 if isinstance(n.stmt, ast.Expr)
                 and n.stmt.value.func.id == "risky"][0]
        # risky's exception path reaches cleanup (via dispatch/finally).
        reached, frontier = set(), {risky.index}
        while frontier:
            idx = frontier.pop()
            reached.add(idx)
            frontier |= cfg.nodes[idx].succs - reached
        assert cleanup.index in reached

    def test_finally_body_compound_statements_expand(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                finally:
                    if flag:
                        cleanup()
        """)
        # The cleanup call inside the finally's `if` gets its own node.
        calls = [n.stmt.value.func.id for n in cfg.stmt_nodes()
                 if isinstance(n.stmt, ast.Expr)
                 and isinstance(n.stmt.value, ast.Call)
                 and isinstance(n.stmt.value.func, ast.Name)]
        assert "cleanup" in calls


class TestIterFunctions:
    def test_discovers_nested_and_methods(self):
        tree = ast.parse(textwrap.dedent("""
            def top(): pass
            class C:
                def method(self): pass
            if True:
                def conditional(): pass
        """))
        names = sorted(u.qualname for u in iter_functions(tree))
        assert names == ["C.method", "conditional", "top"]
        method = [u for u in iter_functions(tree)
                  if u.qualname == "C.method"][0]
        assert method.class_name == "C"


class TestReachingDefinitions:
    def test_branch_merge_unions_defs(self):
        cfg = cfg_of("""
            def f(x):
                a = 1
                if x:
                    a = 2
                use(a)
        """)
        use = [n for n in cfg.stmt_nodes()
               if isinstance(n.stmt, ast.Expr)][0]
        defs = ReachingDefinitions().defs_at(cfg)[use.index]
        assert defs["a"] == frozenset({3, 5})

    def test_loop_defs_reach_header(self):
        cfg = cfg_of("""
            def f(xs):
                a = 0
                for x in xs:
                    a = a + 1
                return a
        """)
        ret = [n for n in cfg.stmt_nodes()
               if isinstance(n.stmt, ast.Return)][0]
        defs = ReachingDefinitions().defs_at(cfg)[ret.index]
        assert defs["a"] == frozenset({3, 5})
