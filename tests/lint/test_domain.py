"""Domain-layer rules: every rule gets a violating and a clean artifact."""

import json

import numpy as np
import pytest

from repro.cells.characterize import CharacterizationTable
from repro.core.nsigma_cell import NSigmaCellModel
from repro.errors import CharacterizationError
from repro.interconnect.generate import NetGenerator
from repro.interconnect.rctree import RCTree
from repro.interconnect.spef import write_spef
from repro.lint import (
    lint_artifact,
    lint_characterization,
    lint_circuit,
    lint_nsigma_model,
    lint_rctree,
    lint_spef,
    lint_table,
)
from repro.lint.domain import default_probe_moments
from repro.moments.stats import SIGMA_LEVELS, Moments
from repro.netlist.circuit import Circuit
from repro.units import FF, PS


# ----------------------------------------------------------------------
# Fixture builders
# ----------------------------------------------------------------------
def clean_circuit() -> Circuit:
    ckt = Circuit("clean")
    ckt.add_input("a")
    ckt.add_input("b")
    ckt.add_gate("g1", "NAND2x1", {"A": "a", "B": "b"}, "w1")
    ckt.add_gate("g2", "INVx1", {"A": "w1"}, "w2")
    ckt.add_output("w2")
    return ckt


def clean_tree() -> RCTree:
    t = RCTree("drv", root_cap=0.2 * FF)
    t.add_segment("m", "drv", 120.0, 0.8 * FF)
    t.add_segment("s1", "m", 60.0, 1.0 * FF)
    t.add_segment("s2", "m", 80.0, 1.2 * FF)
    return t


def make_table(**overrides) -> CharacterizationTable:
    slews = np.array([10 * PS, 50 * PS])
    loads = np.array([1 * FF, 4 * FF])
    moments = np.empty((2, 2, 4))
    moments[...] = (30 * PS, 2 * PS, 0.3, 3.3)
    quantiles = np.empty((2, 2, len(SIGMA_LEVELS)))
    for k, lvl in enumerate(SIGMA_LEVELS):
        quantiles[..., k] = 30 * PS + lvl * 2 * PS
    fields = dict(
        cell_name="INVx1", pin="A", output_rising=False,
        slews=slews, loads=loads, moments=moments,
        quantiles=quantiles, out_slew=np.full((2, 2), 20 * PS),
        n_samples=500,
    )
    fields.update(overrides)
    return CharacterizationTable(**fields)


def synth_training(n=80, rng_seed=7, crossing=False, outlier=False):
    """Consistent (moments, quantiles) pairs for Table I fitting."""
    rng = np.random.default_rng(rng_seed)
    moments, quantiles = [], []
    for i in range(n):
        mu = float(rng.uniform(15, 90)) * PS
        ratio = float(rng.uniform(0.03, 0.15))
        skew = float(rng.uniform(0.0, 0.8))
        kurt = 3.0 + skew**2 + float(rng.uniform(0.1, 1.0))
        m = Moments(mu=mu, sigma=ratio * mu, skew=skew, kurt=kurt, n=2000)
        q = {}
        for lvl in SIGMA_LEVELS:
            q[lvl] = mu + lvl * m.sigma + 0.08 * m.sigma * skew * lvl * lvl
            if crossing and lvl == 3:
                q[lvl] = mu  # far below the +2 sigma quantile
        if outlier and i == 0:
            q[3] += 50 * PS
        moments.append(m)
        quantiles.append(q)
    return moments, quantiles


# ----------------------------------------------------------------------
# Circuits (NET)
# ----------------------------------------------------------------------
class TestLintCircuit:
    def test_clean_circuit_silent(self, library):
        report = lint_circuit(clean_circuit(), library=library)
        assert report.rule_ids() == []

    def test_net001_undriven_net(self):
        ckt = Circuit("bad")
        ckt.add_input("a")
        # "phantom" is referenced as a gate input but never driven nor
        # declared a primary input.
        ckt.add_gate("g1", "NAND2x1", {"A": "a", "B": "phantom"}, "w1")
        ckt.add_output("w1")
        report = lint_circuit(ckt)
        assert "NET001" in report.rule_ids()
        assert "phantom" in report.errors[0].message

    def test_net002_multi_driver(self):
        ckt = clean_circuit()
        # Unreachable through the API; simulate a corrupt deserialization.
        ckt.gates["g2"].output_net = "w1"
        ckt.nets["w2"].sinks.append(("x", "A"))
        report = lint_circuit(ckt)
        assert "NET002" in report.rule_ids()

    def test_net003_combinational_cycle(self):
        ckt = Circuit("loop")
        ckt.add_gate("g1", "INVx1", {"A": "w2"}, "w1")
        ckt.add_gate("g2", "INVx1", {"A": "w1"}, "w2")
        report = lint_circuit(ckt)
        assert "NET003" in report.rule_ids()

    def test_net004_floating_net(self):
        ckt = clean_circuit()
        ckt.add_gate("g3", "INVx1", {"A": "w1"}, "dead")  # no sinks, not a PO
        report = lint_circuit(ckt)
        assert report.rule_ids() == ["NET004"]
        assert report.ok  # warning only

    def test_net005_unknown_cell(self, library):
        ckt = clean_circuit()
        ckt.gates["g2"].cell_name = "FAKEx9"
        report = lint_circuit(ckt, library=library)
        assert "NET005" in report.rule_ids()
        assert "FAKEx9" in report.errors[0].message

    def test_net005_needs_library(self):
        ckt = clean_circuit()
        ckt.gates["g2"].cell_name = "FAKEx9"
        assert "NET005" not in lint_circuit(ckt).rule_ids()

    def test_attached_trees_are_linted(self):
        ckt = clean_circuit()
        tree = clean_tree()
        tree.nodes["s1"].resistance = -4.0
        ckt.nets["w1"].tree = tree
        assert "RCT001" in lint_circuit(ckt).rule_ids()
        assert "RCT001" not in lint_circuit(ckt, parasitics=False).rule_ids()


# ----------------------------------------------------------------------
# RC trees (RCT)
# ----------------------------------------------------------------------
class TestLintRCTree:
    def test_clean_tree_silent(self):
        assert lint_rctree(clean_tree()).rule_ids() == []

    def test_rct001_non_positive_resistance(self):
        tree = clean_tree()
        tree.nodes["m"].resistance = 0.0
        report = lint_rctree(tree, name="net n1")
        assert report.rule_ids() == ["RCT001"]
        assert "net n1" in report.errors[0].message

    def test_rct002_negative_cap(self):
        tree = clean_tree()
        tree.nodes["s1"].cap = -1 * FF
        assert lint_rctree(tree).rule_ids() == ["RCT002"]

    def test_rct003_non_finite_values(self):
        tree = clean_tree()
        tree.nodes["m"].resistance = float("nan")
        tree.nodes["s2"].cap = float("inf")
        report = lint_rctree(tree)
        assert report.rule_ids() == ["RCT003"]
        assert len(report.errors) == 2

    def test_rct004_floating_leaf(self):
        tree = clean_tree()
        tree.add_segment("tap", "s1", 10.0, 0.0)
        report = lint_rctree(tree)
        assert report.rule_ids() == ["RCT004"]
        assert report.ok

    def test_rct005_absurd_magnitudes(self):
        tree = clean_tree()
        tree.nodes["m"].resistance = 5e7
        tree.nodes["s1"].cap = 2e-9
        report = lint_rctree(tree)
        assert report.rule_ids() == ["RCT005"]
        assert len(report.warnings) == 2


# ----------------------------------------------------------------------
# SPEF (SPF)
# ----------------------------------------------------------------------
class TestLintSpef:
    def test_clean_file_silent(self, tech, tmp_path):
        gen = NetGenerator(tech, seed=11)
        path = tmp_path / "ok.spef"
        write_spef({"n1": gen.random_net(name="n1")}, path)
        assert lint_spef(path).rule_ids() == []

    def test_spf001_cap_budget_mismatch(self, tmp_path):
        p = tmp_path / "budget.spef"
        p.write_text(
            "*D_NET n 5.0\n*CONN\n*I a O\n"
            "*CAP\n1 b 1.0\n2 c 2.2\n*RES\n1 a b 10.0\n2 b c 10.0\n*END\n")
        report = lint_spef(p)
        assert report.rule_ids() == ["SPF001"]
        assert "5.0" in report.errors[0].message

    def test_spf002_truncated_cap_line(self, tmp_path):
        p = tmp_path / "trunc.spef"
        p.write_text("*D_NET n 1.0\n*CAP\n1 b\n*RES\n1 a b 10.0\n*END\n")
        report = lint_spef(p)
        assert report.rule_ids() == ["SPF002"]
        assert "truncated" in report.errors[0].message

    def test_spf002_non_tree_resistors(self, tmp_path):
        p = tmp_path / "forest.spef"
        p.write_text(
            "*D_NET n 1.0\n*CONN\n*I a O\n"
            "*RES\n1 a b 10.0\n2 x y 10.0\n*END\n")
        assert lint_spef(p).rule_ids() == ["SPF002"]

    def test_bad_values_surface_as_rct_rules(self, tmp_path):
        p = tmp_path / "negcap.spef"
        p.write_text(
            "*D_NET n 1.0\n*CONN\n*I a O\n"
            "*CAP\n1 b -1.0\n*RES\n1 a b 10.0\n*END\n")
        # RCTree construction rejects negative caps, reported per net.
        report = lint_spef(p)
        assert report.rule_ids() == ["SPF002"]
        assert "cap" in report.errors[0].message

    def test_diagnostics_carry_the_file_path(self, tmp_path):
        p = tmp_path / "budget.spef"
        p.write_text(
            "*D_NET n 9.9\n*CONN\n*I a O\n"
            "*CAP\n1 b 1.0\n*RES\n1 a b 10.0\n*END\n")
        report = lint_spef(p)
        assert report.errors and all(d.file == str(p) for d in report.errors)


# ----------------------------------------------------------------------
# Characterized tables (TBL)
# ----------------------------------------------------------------------
class TestLintTable:
    def test_clean_table_silent(self):
        assert lint_table(make_table()).rule_ids() == []

    def test_tbl001_non_finite_moment(self):
        table = make_table()
        table.moments[0, 0, 0] = np.nan
        assert "TBL001" in lint_table(table).rule_ids()

    def test_tbl001_non_finite_quantile(self):
        table = make_table()
        table.quantiles[1, 1, 3] = np.inf
        assert "TBL001" in lint_table(table).rule_ids()

    def test_tbl002_moment_inequality(self):
        table = make_table()
        table.moments[0, 1, 2] = 2.0  # skew
        table.moments[0, 1, 3] = 3.0  # kurt < skew**2 + 1 = 5
        report = lint_table(table)
        assert "TBL002" in report.rule_ids()
        assert "INVx1/A" in report.errors[0].message

    def test_tbl003_unsorted_axis(self):
        table = make_table()
        table.slews[:] = table.slews[::-1]
        assert "TBL003" in lint_table(table).rule_ids()

    def test_tbl004_quantile_crossing(self):
        table = make_table()
        table.quantiles[0, 0] = table.quantiles[0, 0][::-1]
        assert "TBL004" in lint_table(table).rule_ids()

    def test_tbl005_negative_sigma(self):
        table = make_table()
        table.moments[1, 0, 1] = -1 * PS
        assert "TBL005" in lint_table(table).rule_ids()

    def test_tbl005_mean_below_slew_floor(self):
        table = make_table()
        table.moments[0, 0, 0] = -60 * PS  # slew at row 0 is 10 ps
        assert "TBL005" in lint_table(table).rule_ids()

    def test_tbl005_mildly_negative_mean_is_legal(self):
        table = make_table()
        table.moments[0, 0, 0] = -4 * PS  # |mu| < input slew: fine
        assert "TBL005" not in lint_table(table).rule_ids()

    def test_tbl006_extrapolating_query(self):
        report = lint_table(make_table(), queries=[(200 * PS, 2 * FF)])
        assert report.rule_ids() == ["TBL006"]
        assert report.ok

    def test_tbl006_in_grid_query_silent(self):
        assert lint_table(make_table(), queries=[(20 * PS, 2 * FF)]).ok


class TestLintCharacterization:
    def test_dispatches_over_all_tables(self, mini_charac):
        assert lint_characterization(mini_charac).rule_ids() == []

    def test_single_table_accepted(self):
        table = make_table()
        table.moments[0, 0, 0] = np.nan
        assert "TBL001" in lint_characterization(table).rule_ids()


# ----------------------------------------------------------------------
# N-sigma models (NSM)
# ----------------------------------------------------------------------
class TestLintNSigmaModel:
    def test_clean_model_silent(self):
        model = NSigmaCellModel.fit(*synth_training())
        assert lint_nsigma_model(model).rule_ids() == []

    def test_nsm001_crossing_quantiles(self):
        model = NSigmaCellModel.fit(*synth_training(crossing=True))
        report = lint_nsigma_model(model)
        assert "NSM001" in report.rule_ids()
        assert "cross" in report.errors[0].message

    def test_nsm002_training_outlier(self):
        moments, quantiles = synth_training(outlier=True)
        model = NSigmaCellModel.fit(moments, quantiles)
        report = lint_nsigma_model(model, training=(moments, quantiles))
        assert "NSM002" in report.rule_ids()
        assert report.ok  # warning only

    def test_nsm002_silent_without_training_data(self):
        moments, quantiles = synth_training(outlier=True)
        model = NSigmaCellModel.fit(moments, quantiles)
        assert "NSM002" not in lint_nsigma_model(model).rule_ids()

    def test_nsm002_silent_on_clean_training_data(self):
        moments, quantiles = synth_training()
        model = NSigmaCellModel.fit(moments, quantiles)
        assert lint_nsigma_model(model, training=(moments, quantiles)).ok

    def test_default_probes_stay_in_validity_region(self):
        for m in default_probe_moments():
            assert m.kurt >= m.skew**2 + 1
            assert m.sigma > 0


# ----------------------------------------------------------------------
# Compiled STA artifacts (NSM003)
# ----------------------------------------------------------------------
class TestLintCompiledDesign:
    """Drift detection between a compiled design and the calibration.

    Deeper scenarios (cache poisoning, rebuild-on-drift) live in
    ``tests/core/test_sta_compiled.py``; here the rule itself is
    exercised against the catalogue contract.
    """

    @pytest.fixture()
    def design(self, mini_models):
        from repro.core.sta_compiled import compile_design

        return compile_design(clean_circuit(), mini_models)

    def test_fresh_design_silent(self, design, mini_models):
        from repro.lint import lint_compiled_design

        assert lint_compiled_design(design, mini_models.calibrated).ok

    def test_nsm003_digest_mismatch(self, design, mini_models):
        import dataclasses

        from repro.lint import lint_compiled_design

        stale = dataclasses.replace(design, calibration_digest="0" * 32)
        report = lint_compiled_design(stale, mini_models.calibrated)
        assert "NSM003" in report.rule_ids()
        assert not report.ok

    def test_nsm003_coefficient_drift(self, design, mini_models):
        from repro.lint import lint_compiled_design

        design.arcs.mu_coef[0, 0] += 1e-13
        report = lint_compiled_design(design, mini_models.calibrated)
        assert "NSM003" in report.rule_ids()
        assert "drift" in report.errors[0].message


# ----------------------------------------------------------------------
# Artifact dispatch (ART)
# ----------------------------------------------------------------------
class TestLintArtifact:
    def test_spef_dispatch(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text("*D_NET n 1.0\n*CAP\n1 b\n*RES\n1 a b 10.0\n*END\n")
        assert lint_artifact(p).rule_ids() == ["SPF002"]

    def test_model_json_dispatch(self, tmp_path):
        model = NSigmaCellModel.fit(*synth_training(crossing=True))
        p = tmp_path / "models.json"
        p.write_text(json.dumps({"nsigma": model.to_dict(), "wire": {}}))
        assert "NSM001" in lint_artifact(p).rule_ids()

    def test_art001_unreadable_json(self, tmp_path):
        p = tmp_path / "corrupt.json"
        p.write_text("{definitely not json")
        report = lint_artifact(p)
        assert report.rule_ids() == ["ART001"]
        assert not report.ok

    def test_art001_unrecognized_json_shape(self, tmp_path):
        p = tmp_path / "mystery.json"
        p.write_text(json.dumps({"what": "is this"}))
        assert lint_artifact(p).rule_ids() == ["ART001"]

    def test_art001_unknown_extension(self, tmp_path):
        p = tmp_path / "data.xyz"
        p.write_text("hello")
        assert lint_artifact(p).rule_ids() == ["ART001"]


# ----------------------------------------------------------------------
# Entry-point integration (fail-fast wiring)
# ----------------------------------------------------------------------
class TestEntryPoints:
    def test_characterize_library_raises_on_corrupt_tables(self, monkeypatch):
        import repro.cells.characterize as characterize_mod

        table = make_table()
        table.moments[0, 0, 3] = 0.5  # violates kurt >= skew**2 + 1
        monkeypatch.setattr(
            characterize_mod, "_assemble_table",
            lambda *a, **k: table,
        )

        class _FakeCharacterizer:
            engine = None

            def point_tasks(self, *a, **k):
                return []

        with pytest.raises(CharacterizationError, match="TBL002"):
            characterize_mod.characterize_library(
                _FakeCharacterizer(), _FakeLibrary(), cells=["INVx1"],
            )

    def test_sta_rejects_cyclic_circuit(self, mini_models):
        from repro.core.sta import StatisticalSTA
        from repro.errors import TimingError

        ckt = Circuit("loop")
        ckt.add_gate("g1", "INVx1", {"A": "w2"}, "w1")
        ckt.add_gate("g2", "INVx1", {"A": "w1"}, "w2")
        with pytest.raises(TimingError, match="NET003"):
            StatisticalSTA(ckt, mini_models).analyze()


class _FakeLibrary:
    names = ["INVx1"]

    def get(self, name):
        from repro.cells.library import build_default_library
        from repro.variation.parameters import Technology

        return build_default_library(Technology()).get(name)
