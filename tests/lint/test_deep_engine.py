"""The deep-lint engine: suppressions, baseline workflow, reporters."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.errors import LintConfigError
from repro.lint import (
    Baseline,
    LintReport,
    fingerprint,
    lint_deep,
    lint_module_deep,
    sarif_json,
    to_sarif,
    validate_sarif,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

TAINTED = """
    import time
    def store(cache, key, payload):
        doc = {"payload": payload, "at": time.time()}
        cache.put("charac", key, doc)
"""


def deep(code: str):
    return lint_module_deep(textwrap.dedent(code), rel_path="repro/fake.py")


class TestEngine:
    def test_all_families_run_in_one_pass(self):
        report = deep("""
            import time
            from repro.units import PS, FF
            def f(cache, key, payload):
                cache.put("x", key, {"at": time.time()})
                bank = SharedPayloadBank.publish(payload)
                use(bank)
                return 2 * PS + 3 * FF
        """)
        ids = report.rule_ids()
        assert "DET002" in ids and "RES001" in ids and "UNT001" in ids

    def test_syntax_error_is_a_diagnostic(self):
        report = lint_module_deep("def broken(:\n", rel_path="bad.py")
        assert report.rule_ids() == ["ERR001"]

    def test_diagnostics_sorted_by_line(self):
        report = deep(TAINTED)
        lines = [d.line for d in report.diagnostics]
        assert lines == sorted(lines)


class TestSuppressionFamilies:
    def test_exact_id_suppression(self):
        report = deep("""
            import time
            def store(cache, key, payload):
                doc = {"payload": payload, "at": time.time()}
                cache.put("charac", key, doc)  # repro-lint: disable=DET002
        """)
        assert report.rule_ids() == []
        assert report.suppressed == 1

    def test_family_prefix_suppresses_all_members(self):
        report = deep("""
            import time, os
            def store(cache, key, payload):
                doc = {"at": time.time(), "env": os.environ.get("X")}
                cache.put("charac", key, doc)  # repro-lint: disable=DET
        """)
        assert report.rule_ids() == []
        assert report.suppressed == 2

    def test_family_file_wide(self):
        report = deep("""
            # repro-lint: disable-file=DET
            import time
            def store(cache, key, payload):
                cache.put("a", key, {"at": time.time()})
            def store2(cache, key, payload):
                cache.put("b", key, {"at": time.time()})
        """)
        assert report.rule_ids() == []
        assert report.suppressed == 2

    def test_unused_suppression_reports_lnt001(self):
        report = deep("""
            def fine():
                return 1  # repro-lint: disable=DET
        """)
        assert report.rule_ids() == ["LNT001"]

    def test_out_of_scope_token_is_not_unused(self):
        # UNIT001 belongs to the code layer; the deep pass must not
        # flag a suppression aimed at another pass.
        report = deep("""
            def fine():
                return 1e-12  # repro-lint: disable=UNIT001
        """)
        assert report.rule_ids() == []


class TestBaseline:
    def make_report(self):
        return deep(TAINTED)

    def test_fingerprint_ignores_line_numbers(self):
        report = self.make_report()
        shifted = deep("\n\n\n" + textwrap.dedent(TAINTED))
        assert [fingerprint(d) for d in report.diagnostics] == \
            [fingerprint(d) for d in shifted.diagnostics]

    def test_roundtrip_and_filter(self, tmp_path):
        report = self.make_report()
        path = tmp_path / "baseline.json"
        Baseline.from_report(report).save(path)
        loaded = Baseline.load(path)
        new, matched = loaded.filter_new(report)
        assert len(new.diagnostics) == 0
        assert matched == len(loaded) == len(report.diagnostics)
        assert new.suppressed == len(report.diagnostics)

    def test_new_findings_pass_through(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_report(LintReport()).save(path)
        new, matched = Baseline.load(path).filter_new(self.make_report())
        assert len(new.diagnostics) == 1
        assert matched == 0

    def test_stale_entries_reported(self):
        baseline = Baseline.from_report(self.make_report())
        stale = baseline.stale_entries(LintReport())
        assert len(stale) == len(baseline)

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(tmp_path / "absent.json")) == 0

    def test_corrupt_file_raises_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(LintConfigError):
            Baseline.load(path)
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(LintConfigError, match="version"):
            Baseline.load(path)


class TestReporters:
    def test_json_roundtrip_is_equivalent(self):
        report = deep(TAINTED)
        report.suppressed = 3
        back = LintReport.from_json(report.to_json())
        assert back.diagnostics == report.diagnostics
        assert back.suppressed == report.suppressed
        # And the round-trip is a fixpoint.
        assert back.to_json() == report.to_json()

    def test_sarif_structure_validates(self):
        doc = to_sarif(deep(TAINTED))
        assert validate_sarif(doc) == []
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == \
            {d["ruleId"] for d in run["results"]}

    def test_sarif_json_parses_and_validates(self):
        doc = json.loads(sarif_json(deep(TAINTED)))
        assert validate_sarif(doc) == []

    def test_validator_rejects_broken_documents(self):
        assert validate_sarif([]) != []
        assert validate_sarif({"version": "2.1.0"}) != []
        broken = to_sarif(deep(TAINTED))
        broken["runs"][0]["results"][0]["message"] = {}
        assert any("message.text" in p for p in validate_sarif(broken))
        mislabeled = to_sarif(deep(TAINTED))
        mislabeled["runs"][0]["results"][0]["ruleId"] = "NOPE99"
        assert any("NOPE99" in p for p in validate_sarif(mislabeled))


class TestSelfDeepLint:
    """Acceptance: the shipped tree is deep-lint clean vs the baseline."""

    def test_src_tree_clean_against_checked_in_baseline(self):
        report = lint_deep(REPO_ROOT / "src", relative_to=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / ".lint-baseline.json")
        new, _ = baseline.filter_new(report)
        assert new.ok, new.format_text()
        assert not new.warnings, new.format_text()

    def test_baseline_entries_all_still_fire(self):
        report = lint_deep(REPO_ROOT / "src", relative_to=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / ".lint-baseline.json")
        assert baseline.stale_entries(report) == []

    def test_baseline_entries_have_reasons(self):
        baseline = Baseline.load(REPO_ROOT / ".lint-baseline.json")
        assert len(baseline) > 0
        for entry in baseline.entries.values():
            assert entry["reason"].strip(), entry
