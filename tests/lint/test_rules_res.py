"""RES0xx resource-lifecycle fixtures (path- and exception-sensitive)."""

import ast
import textwrap

from repro.lint.flowgraph.rules_res import check_module


def res(code: str):
    tree = ast.parse(textwrap.dedent(code))
    return [(d.rule_id, d.line) for d in check_module(tree, "fake.py")]


class TestResTruePositives:
    def test_bank_never_closed(self):
        diags = res("""
            def fan_out(payload):
                bank = SharedPayloadBank.publish(payload)
                use(bank)
                return 1
        """)
        assert diags == [("RES001", 3)]

    def test_bank_close_not_on_exception_path(self):
        # close() is reached on the normal path only: if use() raises,
        # the segment leaks. The whole point of the CFG's exception
        # edges.
        diags = res("""
            def fan_out(payload):
                bank = SharedPayloadBank.publish(payload)
                use(bank)
                bank.close()
        """)
        assert diags == [("RES001", 3)]

    def test_mkstemp_never_unlinked(self):
        diags = res("""
            import tempfile
            def write():
                fd, tmp = tempfile.mkstemp()
                fill(fd)
        """)
        assert diags == [("RES002", 4)]

    def test_journal_never_closed(self):
        diags = res("""
            def run(path):
                j = RunJournal(path)
                j.event("run_start")
        """)
        assert diags == [("RES003", 3)]


class TestResTrueNegatives:
    def test_with_statement_releases(self):
        assert res("""
            def fan_out(payload):
                with SharedPayloadBank.publish(payload) as bank:
                    use(bank)
        """) == []

    def test_try_finally_covers_exception_paths(self):
        assert res("""
            def fan_out(payload):
                bank = SharedPayloadBank.publish(payload)
                try:
                    use(bank)
                finally:
                    bank.close()
        """) == []

    def test_guarded_release_in_finally(self):
        assert res("""
            def fan_out(payload):
                bank = SharedPayloadBank.publish(payload)
                try:
                    use(bank)
                finally:
                    if bank is not None:
                        bank.close()
        """) == []

    def test_ownership_escape_via_return_and_attribute(self):
        assert res("""
            def make(payload):
                bank = SharedPayloadBank.publish(payload)
                return bank
            def keep(self, payload):
                bank = SharedPayloadBank.publish(payload)
                self.bank = bank
            def collect(banks, payload):
                b = SharedPayloadBank.publish(payload)
                banks.append(b)
        """) == []

    def test_atomic_write_idiom_is_clean(self):
        # The cache's mkstemp/replace/finally-unlink pattern.
        assert res("""
            import tempfile, os
            def put(path, payload):
                fd, tmp_name = tempfile.mkstemp()
                try:
                    with os.fdopen(fd, "w") as fh:
                        fh.write(payload)
                    os.replace(tmp_name, path)
                    return path
                finally:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
        """) == []

    def test_journal_as_context_manager(self):
        assert res("""
            def run(path):
                with RunJournal(path) as j:
                    j.event("run_start")
        """) == []


class TestResOnRealTree:
    def test_shipped_package_has_no_lifecycle_errors(self):
        from pathlib import Path
        import repro

        root = Path(repro.__file__).parent
        diags = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            tree = ast.parse(path.read_text())
            diags.extend(check_module(tree, str(path)))
        assert diags == [], [d.render() for d in diags]
