"""UNT0xx unit-dimension inference fixtures."""

import ast
import textwrap

from repro.lint.flowgraph.rules_unt import check_module


def unt(code: str):
    tree = ast.parse(textwrap.dedent(code))
    return [(d.rule_id, d.line) for d in check_module(tree, "fake.py")]


class TestUntTruePositives:
    def test_time_plus_capacitance(self):
        diags = unt("""
            from repro.units import PS, FF
            def f():
                slew = 20 * PS
                load = 5 * FF
                return slew + load
        """)
        assert diags == [("UNT001", 6)]

    def test_bare_number_added_to_dimensioned(self):
        diags = unt("""
            from repro.units import PS
            def f():
                delay = 10 * PS
                return delay + 3
        """)
        assert diags == [("UNT001", 5)]

    def test_cross_dimension_comparison(self):
        diags = unt("""
            from repro.units import NS, FF
            def f():
                t = 1 * NS
                c = 1 * FF
                return t < c
        """)
        assert diags == [("UNT002", 6)]

    def test_converter_wrong_dimension(self):
        diags = unt("""
            from repro.units import FF, to_ps
            def f():
                cap = 2 * FF
                return to_ps(cap)
        """)
        assert diags == [("UNT003", 5)]

    def test_augmented_assignment_mixes_dimensions(self):
        diags = unt("""
            from repro.units import PS, FF
            def f():
                acc = 3 * PS
                acc += 2 * FF
                return acc
        """)
        assert diags == [("UNT001", 5)]


class TestUntTrueNegatives:
    def test_rc_product_is_time(self):
        # Ohm x Farad = seconds: the Elmore idiom must stay silent.
        assert unt("""
            from repro.units import OHM, FF, PS
            def f():
                r = 100 * OHM
                c = 4 * FF
                tau = r * c
                return tau + 7 * PS
        """) == []

    def test_zero_is_polymorphic(self):
        assert unt("""
            from repro.units import PS
            def f():
                acc = 0.0
                acc += 5 * PS
                return acc
        """) == []

    def test_unknown_operands_stay_silent(self):
        assert unt("""
            from repro.units import PS
            def f(x, n):
                return x + n * PS if x else n * PS
        """) == []

    def test_same_dimension_add(self):
        assert unt("""
            from repro.units import PS, NS
            def f():
                return 2 * PS + 1 * NS
        """) == []

    def test_conversion_division_idiom(self):
        # delay / PS is the to_ps idiom; its result is a plain number.
        assert unt("""
            from repro.units import PS
            def f(total):
                ps_val = total / PS
                return ps_val + 1
        """) == []

    def test_module_without_units_import_is_silent(self):
        # Names like PS from some other library carry no dimension.
        assert unt("""
            def f(PS, FF):
                return 2 * PS + 1 * FF
        """) == []


class TestUntOnRealTree:
    def test_shipped_package_has_no_dimension_errors(self):
        from pathlib import Path
        import repro

        root = Path(repro.__file__).parent
        diags = []
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            tree = ast.parse(path.read_text())
            diags.extend(check_module(tree, str(path)))
        assert diags == [], [d.render() for d in diags]
