"""DET0xx determinism-taint fixtures: ≥3 true/false positives each way."""

import textwrap

from repro.lint.flowgraph import lint_module_deep


def deep(code: str):
    return lint_module_deep(textwrap.dedent(code), rel_path="repro/fake.py")


class TestDetTruePositives:
    def test_wallclock_into_cached_payload_via_container(self):
        report = deep("""
            import time
            def store(cache, key, payload):
                doc = {"payload": payload}
                doc["at"] = time.time()
                cache.put("charac", key, doc)
        """)
        assert "DET002" in report.rule_ids()

    def test_env_read_into_cache_key(self):
        report = deep("""
            import os
            def key_of(payload):
                tag = os.environ.get("MY_TAG", "")
                return content_key({"payload": payload, "tag": tag})
        """)
        assert "DET003" in report.rule_ids()

    def test_unseeded_rng_into_journal_event(self):
        report = deep("""
            import numpy as np
            def log_sample(journal):
                rng = np.random.default_rng()
                journal.event("sample", value=float(rng.normal()))
        """)
        assert "DET001" in report.rule_ids()

    def test_set_iteration_order_into_cached_payload(self):
        report = deep("""
            def store(cache, key, names):
                uniq = set(names)
                doc = {"names": [n for n in uniq]}
                cache.put("charac", key, doc)
        """)
        assert "DET004" in report.rule_ids()

    def test_wallclock_into_hash(self):
        report = deep("""
            import time, hashlib
            def key():
                stamp = time.time()
                return hashlib.sha256(str(stamp).encode()).hexdigest()
        """)
        assert "DET002" in report.rule_ids()


class TestDetTrueNegatives:
    def test_sorted_set_is_sanitized(self):
        report = deep("""
            def store(cache, key, names):
                uniq = set(names)
                doc = {"names": sorted(uniq)}
                cache.put("charac", key, doc)
        """)
        assert report.rule_ids() == []

    def test_seeded_rng_is_deterministic(self):
        report = deep("""
            import numpy as np
            def log_sample(journal, seed):
                rng = np.random.default_rng(seed)
                journal.event("sample", value=float(rng.normal()))
        """)
        assert report.rule_ids() == []

    def test_perf_counter_is_not_wallclock(self):
        report = deep("""
            import time
            def store(cache, key, payload):
                t0 = time.perf_counter()
                cache.put("charac", key, {"payload": payload})
                return time.perf_counter() - t0
        """)
        assert report.rule_ids() == []

    def test_env_read_not_flowing_to_sink(self):
        report = deep("""
            import os
            def workers():
                return int(os.environ.get("REPRO_WORKERS", "1"))
        """)
        assert report.rule_ids() == []

    def test_taint_does_not_leak_across_rebinding(self):
        report = deep("""
            import time
            def store(cache, key, payload):
                stamp = time.time()
                stamp = 0.0
                cache.put("charac", key, {"payload": payload, "at": stamp})
        """)
        assert report.rule_ids() == []
