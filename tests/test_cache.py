"""Content-hashed JSON cache: keys, hit/miss accounting, purge."""

from __future__ import annotations

import json

import pytest

from repro.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    JsonCache,
    content_key,
    default_cache_dir,
    version_salt,
)


class TestContentKey:
    def test_stable(self):
        payload = {"a": 1, "b": [1, 2, 3]}
        assert content_key(payload) == content_key(dict(payload))

    def test_key_order_irrelevant(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_any_payload_change_changes_key(self):
        base = {"tech": {"vdd": 0.6}, "n_samples": 250, "seed": 7}
        for mutated in (
            {**base, "n_samples": 251},
            {**base, "seed": 8},
            {**base, "tech": {"vdd": 0.7}},
            {**base, "extra": None},
        ):
            assert content_key(mutated) != content_key(base)

    def test_non_json_values_fall_back_to_repr(self):
        key = content_key({"grid": (1.0, 2.0)})
        assert len(key) == 16
        assert key == content_key({"grid": (1.0, 2.0)})


class TestVersionSalt:
    def test_salt_carries_the_package_version(self):
        import repro
        from repro.kernels import backend_identity
        from repro.pack import PACK_FORMAT_VERSION

        assert version_salt() == {
            "repro_version": repro.__version__,
            "kernel": backend_identity(),
            "pack_format": f"rpk-v{PACK_FORMAT_VERSION}",
        }

    def test_versioned_key_differs_from_unversioned(self):
        payload = {"n_samples": 100}
        assert content_key(payload) != content_key(payload, versioned=False)

    def test_version_change_invalidates_keys(self, monkeypatch):
        import repro

        payload = {"n_samples": 100}
        before = content_key(payload)
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        after = content_key(payload)
        assert before != after
        # Unversioned keys deliberately survive releases.
        assert content_key(payload, versioned=False) == content_key(
            payload, versioned=False
        )

    def test_unversioned_key_stable_across_version_change(self, monkeypatch):
        import repro

        payload = {"grid": (1.0, 2.0)}
        before = content_key(payload, versioned=False)
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        assert content_key(payload, versioned=False) == before


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_fallback(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert str(default_cache_dir()) == DEFAULT_CACHE_DIR


class TestJsonCache:
    def test_miss_then_hit(self, tmp_path):
        cache = JsonCache(tmp_path)
        assert cache.get("arc", "abc") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("arc", "abc", {"x": 1})
        assert cache.get("arc", "abc") == {"x": 1}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_content_hash_miss_on_changed_payload(self, tmp_path):
        cache = JsonCache(tmp_path)
        k1 = content_key({"n_samples": 100})
        k2 = content_key({"n_samples": 200})
        cache.put("arc", k1, {"data": "for-100"})
        assert cache.get("arc", k2) is None
        assert cache.get("arc", k1) == {"data": "for-100"}

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = JsonCache(tmp_path)
        path = cache.put("arc", "k", {"ok": True})
        path.write_text("{not json")
        assert cache.get("arc", "k") is None

    def test_unlink_race_is_a_plain_miss_not_corruption(
        self, tmp_path, monkeypatch
    ):
        # A file vanishing between the existence check and the open (a
        # concurrent reader's corrupt-unlink, or a purge) must count as
        # a miss. The old code fed the FileNotFoundError to the corrupt
        # branch, inflating `corrupt` and re-attempting the unlink.
        from pathlib import Path

        cache = JsonCache(tmp_path)
        monkeypatch.setattr(Path, "exists", lambda self: True)
        assert cache.get("arc", "never-stored") is None
        assert cache.misses == 1
        assert cache.corrupt == 0

    def test_two_thread_get_vs_unlink_stress(self, tmp_path):
        # Readers racing a concurrent unlink+rewrite loop must only
        # ever see the full artifact or a miss — never an exception,
        # never a corrupt count (the file is always complete on disk).
        import threading

        cache = JsonCache(tmp_path)
        doc = {"payload": list(range(32))}
        cache.put("arc", "hot", doc)
        stop = threading.Event()
        seen: list = []
        errors: list = []

        def reader():
            try:
                while not stop.is_set():
                    got = cache.get("arc", "hot")
                    assert got is None or got == doc
                    seen.append(got is not None)
            except BaseException as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        def churner():
            try:
                for _ in range(200):
                    path = cache.path("arc", "hot")
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
                    cache.put("arc", "hot", doc)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=churner))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.corrupt == 0
        assert any(seen)

    def test_put_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache = JsonCache(tmp_path)
        cache.put("arc", "k", {"ok": True})
        assert not list(tmp_path.glob("*.tmp"))
        with cache.path("arc", "k").open() as fh:
            assert json.load(fh) == {"ok": True}

    def test_purge_by_kind(self, tmp_path):
        cache = JsonCache(tmp_path)
        cache.put("arc", "a", {})
        cache.put("arc", "b", {})
        cache.put("models", "c", {})
        assert cache.purge("arc") == 2
        assert cache.get("models", "c") == {}
        assert cache.purge() == 1
        assert cache.purge() == 0

    def test_purge_missing_dir(self, tmp_path):
        assert JsonCache(tmp_path / "never-created").purge() == 0
