"""Tests for the circuit-statistics helpers."""

import pytest

from repro.netlist.benchmarks import attach_parasitics, build_iscas85_like
from repro.netlist.generators import build_adder
from repro.netlist.stats import circuit_stats, compare_profiles


@pytest.fixture(scope="module")
def adder_stats(tech):
    circuit = build_adder(4)
    attach_parasitics(circuit, tech, seed=3)
    return circuit_stats(circuit), circuit


class TestCircuitStats:
    def test_counters_match_circuit(self, adder_stats):
        stats, circuit = adder_stats
        assert stats.n_cells == circuit.n_cells
        assert stats.n_nets == circuit.n_nets
        assert stats.n_inputs == len(circuit.inputs)
        assert stats.n_outputs == len(circuit.outputs)

    def test_depth_matches_logic_depth(self, adder_stats):
        stats, circuit = adder_stats
        assert stats.depth == circuit.logic_depth()
        assert 0 < stats.mean_depth <= stats.depth

    def test_fanout_histogram_counts_all_nets(self, adder_stats):
        stats, circuit = adder_stats
        assert sum(stats.fanout_histogram.values()) == circuit.n_nets

    def test_type_histogram_totals(self, adder_stats):
        stats, _ = adder_stats
        assert sum(stats.type_histogram.values()) == stats.n_cells
        assert "NAND2" in stats.type_histogram

    def test_wire_totals_positive_with_parasitics(self, adder_stats):
        stats, _ = adder_stats
        assert stats.total_wire_resistance > 0
        assert stats.total_wire_cap > 0

    def test_no_parasitics_gives_zero_wire(self):
        stats = circuit_stats(build_adder(3))
        assert stats.total_wire_resistance == 0.0
        assert stats.total_wire_cap == 0.0

    def test_format_contains_key_fields(self, adder_stats):
        stats, _ = adder_stats
        text = stats.format()
        assert "cells" in text
        assert "logic depth" in text
        assert "NAND2" in text


class TestCompareProfiles:
    def test_table_rows(self, tech):
        circuits = [build_adder(2, name="a2"), build_adder(4, name="a4")]
        text = compare_profiles(circuits)
        assert "a2" in text and "a4" in text
        assert len(text.splitlines()) == 3

    def test_iscas_profile_table(self):
        c = build_iscas85_like("c432")
        text = compare_profiles([c])
        assert "c432" in text
        assert "655" in text
