"""Round-trip and parsing tests for the structural-Verilog subset."""

import pytest

from repro.errors import NetlistError
from repro.netlist.generators import build_adder
from repro.netlist.verilog import read_verilog, write_verilog


class TestRoundTrip:
    def test_adder_round_trip(self, tmp_path, library):
        original = build_adder(4)
        path = tmp_path / "add.v"
        write_verilog(original, path)
        back = read_verilog(path)
        assert back.name == original.name
        assert back.n_cells == original.n_cells
        assert back.n_nets == original.n_nets
        assert back.inputs == original.inputs
        assert back.outputs == original.outputs
        # Functional equivalence on a vector.
        vec = {f"a{i}": (11 >> i) & 1 for i in range(4)}
        vec.update({f"b{i}": (6 >> i) & 1 for i in range(4)})
        vec["cin"] = 1
        assert original.evaluate(vec, library) == back.evaluate(vec, library)

    def test_written_file_is_readable_verilog(self, tmp_path):
        path = tmp_path / "a.v"
        write_verilog(build_adder(2), path)
        text = path.read_text()
        assert text.startswith("module pulpino_add")
        assert text.rstrip().endswith("endmodule")
        assert ".Y(" in text


class TestParsing:
    def test_comments_stripped(self, tmp_path):
        p = tmp_path / "c.v"
        p.write_text(
            "// a comment\nmodule m (a, y);\n"
            "input a; /* block\ncomment */ output y;\n"
            "INVx1 g1 (.A(a), .Y(y));\nendmodule\n")
        c = read_verilog(p)
        assert c.n_cells == 1

    def test_multi_net_declarations(self, tmp_path):
        p = tmp_path / "c.v"
        p.write_text(
            "module m (a, b, y);\ninput a, b;\noutput y;\nwire w1;\n"
            "NAND2x1 g1 (.A(a), .B(b), .Y(w1));\n"
            "INVx1 g2 (.A(w1), .Y(y));\nendmodule\n")
        c = read_verilog(p)
        assert c.n_cells == 2
        assert c.inputs == ["a", "b"]

    def test_missing_output_pin_rejected(self, tmp_path):
        p = tmp_path / "c.v"
        p.write_text("module m (a);\ninput a;\nINVx1 g1 (.A(a));\nendmodule\n")
        with pytest.raises(NetlistError):
            read_verilog(p)

    def test_positional_ports_rejected(self, tmp_path):
        p = tmp_path / "c.v"
        p.write_text("module m (a, y);\ninput a;\noutput y;\n"
                     "INVx1 g1 (a, y);\nendmodule\n")
        with pytest.raises(NetlistError):
            read_verilog(p)

    def test_no_module_rejected(self, tmp_path):
        p = tmp_path / "c.v"
        p.write_text("wire w;\n")
        with pytest.raises(NetlistError):
            read_verilog(p)

    def test_two_modules_rejected(self, tmp_path):
        p = tmp_path / "c.v"
        p.write_text("module a (x); input x; endmodule\n"
                     "module b (y); input y; endmodule\n")
        with pytest.raises(NetlistError):
            read_verilog(p)
