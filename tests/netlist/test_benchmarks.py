"""Tests for the synthetic benchmark family and parasitic attachment."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.benchmarks import (
    ISCAS85_PROFILES,
    attach_parasitics,
    build_iscas85_like,
    build_pulpino_unit,
)
from repro.netlist.circuit import PRIMARY_OUTPUT


class TestISCAS85Like:
    def test_profiles_match_paper_counts(self):
        # Cell/net counts straight from Table III.
        assert ISCAS85_PROFILES["c432"].n_cells == 655
        assert ISCAS85_PROFILES["c432"].n_nets == 734
        assert ISCAS85_PROFILES["c6288"].n_cells == 3246
        assert ISCAS85_PROFILES["c7552"].n_nets == 4536

    @pytest.mark.parametrize("name", ["c432", "c1355", "c1908"])
    def test_generated_counts(self, name):
        profile = ISCAS85_PROFILES[name]
        c = build_iscas85_like(name)
        assert c.n_cells == profile.n_cells
        assert c.n_nets == profile.n_nets
        assert len(c.inputs) == profile.n_inputs

    def test_depth_close_to_profile(self):
        c = build_iscas85_like("c432")
        assert ISCAS85_PROFILES["c432"].depth - 3 <= c.logic_depth()
        assert c.logic_depth() <= ISCAS85_PROFILES["c432"].depth + 3

    def test_deterministic(self):
        a = build_iscas85_like("c1355")
        b = build_iscas85_like("c1355")
        assert [g.cell_name for g in a.gates.values()] == [
            g.cell_name for g in b.gates.values()]

    def test_acyclic_and_valid(self):
        c = build_iscas85_like("c432")
        c.validate()
        assert len(c.topological_gates()) == c.n_cells

    def test_unknown_name_rejected(self):
        with pytest.raises(NetlistError):
            build_iscas85_like("c9999")

    def test_cell_mix_uses_multiple_types(self):
        hist = build_iscas85_like("c2670").cell_histogram()
        types = {name.split("x")[0] for name in hist}
        assert {"NAND2", "NOR2", "INV"}.issubset(types)

    def test_strength_mix(self):
        hist = build_iscas85_like("c3540").cell_histogram()
        strengths = {int(name.split("x")[1]) for name in hist}
        assert {1, 2, 4}.issubset(strengths)

    def test_type_restriction(self):
        c = build_iscas85_like("c432", type_names=("INV", "NAND2"))
        types = {name.split("x")[0] for name in c.cell_histogram()}
        assert types <= {"INV", "NAND2"}
        assert c.n_cells == ISCAS85_PROFILES["c432"].n_cells

    def test_type_restriction_rejects_empty(self):
        with pytest.raises(NetlistError):
            build_iscas85_like("c432", type_names=("XYZ",))


class TestPulpinoUnits:
    @pytest.mark.parametrize("unit", ["ADD", "SUB", "MUL", "DIV"])
    def test_builds(self, unit):
        c = build_pulpino_unit(unit, 4)
        c.validate()
        assert c.n_cells > 0

    def test_case_insensitive(self):
        assert build_pulpino_unit("add", 4).name == "pulpino_add"

    def test_unknown_unit(self):
        with pytest.raises(NetlistError):
            build_pulpino_unit("SQRT")


class TestAttachParasitics:
    def test_every_net_gets_tree(self, tech):
        c = build_pulpino_unit("ADD", 3)
        attach_parasitics(c, tech, seed=1)
        assert all(net.tree is not None for net in c.nets.values())

    def test_sink_leaf_covers_gate_sinks(self, tech):
        c = build_pulpino_unit("ADD", 3)
        attach_parasitics(c, tech, seed=1)
        for net in c.nets.values():
            for sink in net.sinks:
                if sink == PRIMARY_OUTPUT:
                    continue
                leaf = net.sink_leaf[sink]
                assert leaf in net.tree.nodes

    def test_deterministic(self, tech):
        a = build_pulpino_unit("ADD", 3)
        b = build_pulpino_unit("ADD", 3)
        attach_parasitics(a, tech, seed=9)
        attach_parasitics(b, tech, seed=9)
        for name in a.nets:
            assert a.nets[name].tree.total_cap() == pytest.approx(
                b.nets[name].tree.total_cap())

    def test_fanout_scales_length(self, tech):
        c = build_iscas85_like("c432")
        attach_parasitics(c, tech, seed=2)
        high = [n.tree.total_cap() for n in c.nets.values() if n.fanout >= 4]
        low = [n.tree.total_cap() for n in c.nets.values() if n.fanout == 1]
        assert np.mean(high) > np.mean(low)
