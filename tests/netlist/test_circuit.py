"""Unit tests for the gate-level circuit container."""

import pytest

from repro.errors import NetlistError
from repro.netlist.circuit import PRIMARY_OUTPUT, Circuit


def c17_like():
    """A small NAND network reminiscent of ISCAS85 c17."""
    c = Circuit("c17")
    for n in ("n1", "n2", "n3", "n6", "n7"):
        c.add_input(n)
    c.add_gate("g1", "NAND2x1", {"A": "n1", "B": "n3"}, "w10")
    c.add_gate("g2", "NAND2x1", {"A": "n3", "B": "n6"}, "w11")
    c.add_gate("g3", "NAND2x1", {"A": "n2", "B": "w11"}, "w16")
    c.add_gate("g4", "NAND2x1", {"A": "w11", "B": "n7"}, "w19")
    c.add_gate("g5", "NAND2x1", {"A": "w10", "B": "w16"}, "n22")
    c.add_gate("g6", "NAND2x1", {"A": "w16", "B": "w19"}, "n23")
    c.add_output("n22")
    c.add_output("n23")
    return c


class TestConstruction:
    def test_counts(self):
        c = c17_like()
        assert c.n_cells == 6
        assert c.n_nets == 11
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2

    def test_duplicate_gate_rejected(self):
        c = c17_like()
        with pytest.raises(NetlistError):
            c.add_gate("g1", "INVx1", {"A": "n1"}, "zz")

    def test_double_driver_rejected(self):
        c = c17_like()
        with pytest.raises(NetlistError):
            c.add_gate("g9", "INVx1", {"A": "n1"}, "w10")

    def test_driving_primary_input_rejected(self):
        c = c17_like()
        with pytest.raises(NetlistError):
            c.add_gate("g9", "INVx1", {"A": "w10"}, "n1")

    def test_duplicate_io_rejected(self):
        c = c17_like()
        with pytest.raises(NetlistError):
            c.add_input("n1")
        with pytest.raises(NetlistError):
            c.add_output("n22")

    def test_primary_output_sink_marker(self):
        c = c17_like()
        assert PRIMARY_OUTPUT in c.nets["n22"].sinks

    def test_validate_catches_floating(self):
        c = Circuit("bad")
        c.add_gate("g", "INVx1", {"A": "floating"}, "out")
        with pytest.raises(NetlistError):
            c.validate()


class TestAnalysis:
    def test_topological_respects_dependencies(self):
        order = [g.name for g in c17_like().topological_gates()]
        assert order.index("g2") < order.index("g3")
        assert order.index("g3") < order.index("g5")

    def test_cycle_detected(self):
        c = Circuit("cyc")
        c.add_input("a")
        c.add_gate("g1", "NAND2x1", {"A": "a", "B": "w2"}, "w1")
        c.add_gate("g2", "INVx1", {"A": "w1"}, "w2")
        with pytest.raises(NetlistError):
            c.topological_gates()

    def test_logic_depth(self):
        assert c17_like().logic_depth() == 3

    def test_cell_histogram(self):
        assert c17_like().cell_histogram() == {"NAND2x1": 6}

    def test_fanout(self):
        c = c17_like()
        assert c.nets["w16"].fanout == 2
        assert c.nets["w10"].fanout == 1

    def test_evaluate_c17(self, library):
        c = c17_like()
        vec = {"n1": 1, "n2": 0, "n3": 1, "n6": 0, "n7": 1}
        values = c.evaluate(vec, library)
        # hand-evaluated: w10=!(1&1)=0, w11=!(1&0)=1, w16=!(0&1)=1,
        # w19=!(1&1)=0, n22=!(0&1)=1, n23=!(1&0)=1
        assert values["n22"] == 1
        assert values["n23"] == 1

    def test_evaluate_missing_inputs(self, library):
        with pytest.raises(NetlistError):
            c17_like().evaluate({"n1": 1}, library)
