"""Exhaustive functional tests for the arithmetic-unit generators."""

import pytest

from repro.errors import NetlistError
from repro.netlist.generators import (
    CircuitBuilder,
    build_adder,
    build_divider,
    build_multiplier,
    build_subtractor,
)


def bus_vector(prefix, value, width):
    return {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}


def bus_value(values, nets):
    return sum(values[n] << i for i, n in enumerate(nets))


class TestPrimitives:
    @pytest.mark.parametrize("a,b,expected", [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_xor2(self, library, a, b, expected):
        cb = CircuitBuilder("t")
        na, nb = cb.input("a"), cb.input("b")
        cb.output(cb.xor2(na, nb))
        values = cb.circuit.evaluate({"a": a, "b": b}, library)
        assert values[cb.circuit.outputs[0]] == expected

    @pytest.mark.parametrize("d0,d1,s", [(0, 1, 0), (0, 1, 1), (1, 0, 0), (1, 0, 1)])
    def test_mux2(self, library, d0, d1, s):
        cb = CircuitBuilder("t")
        for name in ("d0", "d1", "s"):
            cb.input(name)
        cb.output(cb.mux2("d0", "d1", "s"))
        values = cb.circuit.evaluate({"d0": d0, "d1": d1, "s": s}, library)
        assert values[cb.circuit.outputs[0]] == (d1 if s else d0)

    @pytest.mark.parametrize("a,b,cin", [(a, b, c) for a in (0, 1)
                                         for b in (0, 1) for c in (0, 1)])
    def test_full_adder_truth_table(self, library, a, b, cin):
        cb = CircuitBuilder("t")
        for name in ("a", "b", "cin"):
            cb.input(name)
        s, cout = cb.full_adder("a", "b", "cin")
        cb.output(s)
        cb.output(cout)
        values = cb.circuit.evaluate({"a": a, "b": b, "cin": cin}, library)
        total = a + b + cin
        assert values[s] == total % 2
        assert values[cout] == total // 2

    def test_and_or_gates(self, library):
        cb = CircuitBuilder("t")
        cb.input("a"), cb.input("b")
        and_net = cb.and2("a", "b")
        or_net = cb.or2("a", "b")
        cb.output(and_net)
        cb.output(or_net)
        v = cb.circuit.evaluate({"a": 1, "b": 0}, library)
        assert v[and_net] == 0
        assert v[or_net] == 1


class TestAdder:
    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (5, 3, 0), (15, 1, 0),
                                         (7, 7, 1), (12, 9, 1), (15, 15, 1)])
    def test_adder_4bit(self, library, a, b, cin):
        ckt = build_adder(4)
        vec = {**bus_vector("a", a, 4), **bus_vector("b", b, 4), "cin": cin}
        values = ckt.evaluate(vec, library)
        result = bus_value(values, ckt.outputs[:4]) + (values[ckt.outputs[4]] << 4)
        assert result == a + b + cin

    def test_adder_exhaustive_2bit(self, library):
        ckt = build_adder(2)
        for a in range(4):
            for b in range(4):
                vec = {**bus_vector("a", a, 2), **bus_vector("b", b, 2), "cin": 0}
                values = ckt.evaluate(vec, library)
                result = bus_value(values, ckt.outputs[:2]) + (
                    values[ckt.outputs[2]] << 2)
                assert result == a + b

    def test_width_validation(self):
        with pytest.raises(NetlistError):
            build_adder(0)

    def test_cell_count_scales_linearly(self):
        assert build_adder(8).n_cells == pytest.approx(2 * build_adder(4).n_cells, abs=2)


class TestSubtractor:
    @pytest.mark.parametrize("a,b", [(9, 4), (15, 15), (7, 8), (0, 1), (12, 3)])
    def test_sub_4bit_modular(self, library, a, b):
        ckt = build_subtractor(4)
        vec = {**bus_vector("a", a, 4), **bus_vector("b", b, 4), "one": 1}
        values = ckt.evaluate(vec, library)
        result = bus_value(values, ckt.outputs[:4])
        assert result == (a - b) % 16

    def test_no_borrow_flag(self, library):
        ckt = build_subtractor(4)
        vec = {**bus_vector("a", 9, 4), **bus_vector("b", 4, 4), "one": 1}
        values = ckt.evaluate(vec, library)
        assert values[ckt.outputs[4]] == 1  # a >= b -> carry out set


class TestMultiplier:
    @pytest.mark.parametrize("a,b", [(0, 7), (3, 5), (7, 7), (15, 15),
                                     (9, 12), (1, 14)])
    def test_mul_4bit(self, library, a, b):
        ckt = build_multiplier(4)
        vec = {**bus_vector("a", a, 4), **bus_vector("b", b, 4), "zero": 0}
        values = ckt.evaluate(vec, library)
        result = bus_value(values, ckt.outputs)
        assert result == a * b

    def test_mul_exhaustive_3bit(self, library):
        ckt = build_multiplier(3)
        for a in range(8):
            for b in range(8):
                vec = {**bus_vector("a", a, 3), **bus_vector("b", b, 3), "zero": 0}
                values = ckt.evaluate(vec, library)
                assert bus_value(values, ckt.outputs) == a * b

    def test_width_validation(self):
        with pytest.raises(NetlistError):
            build_multiplier(1)


class TestDivider:
    @pytest.mark.parametrize("a,d", [(13, 3), (15, 1), (7, 7), (9, 2), (5, 6), (0, 3)])
    def test_div_4bit(self, library, a, d):
        ckt = build_divider(4)
        vec = {**bus_vector("a", a, 4), **bus_vector("d", d, 4), "zero": 0}
        values = ckt.evaluate(vec, library)
        q = bus_value(values, ckt.outputs[:4])
        r = bus_value(values, ckt.outputs[4:8])
        assert q == a // d
        assert r == a % d

    def test_div_exhaustive_3bit(self, library):
        ckt = build_divider(3)
        for a in range(8):
            for d in range(1, 8):
                vec = {**bus_vector("a", a, 3), **bus_vector("d", d, 3), "zero": 0}
                values = ckt.evaluate(vec, library)
                assert bus_value(values, ckt.outputs[:3]) == a // d
                assert bus_value(values, ckt.outputs[3:6]) == a % d

    def test_divider_is_deepest_unit(self):
        # Matches the paper's Table III where DIV has the longest path.
        assert build_divider(4).logic_depth() > build_adder(4).logic_depth()
