"""Unit and statistical tests for the Monte-Carlo parameter sampler."""

import numpy as np
import pytest

from repro.variation.parameters import VariationModel
from repro.variation.sampling import GlobalDraws, MonteCarloSampler, ParameterSample


@pytest.fixture()
def sampler(variation):
    return MonteCarloSampler(variation, seed=99)


SIGMAS = np.full(6, 0.02)
IS_PMOS = np.array([False, True, False, True, False, True])


class TestParameterSample:
    def test_nominal_shapes_and_values(self):
        s = ParameterSample.nominal(10, 4)
        assert s.n_samples == 10
        assert s.n_transistors == 4
        assert np.all(s.dvth == 0.0)
        assert np.all(s.mobility_scale == 1.0)
        assert np.all(s.length_scale == 1.0)

    def test_subset(self):
        s = ParameterSample.nominal(10, 4)
        s.dvth[3, :] = 0.5
        sub = s.subset(np.array([3, 5]))
        assert sub.n_samples == 2
        assert np.all(sub.dvth[0] == 0.5)

    def test_cap_scale_nominal_is_one(self):
        s = ParameterSample.nominal(5, 3)
        assert np.allclose(s.cap_scale(1.8, 0.35), 1.0)

    def test_cap_scale_higher_vth_lower_cap(self):
        s = ParameterSample.nominal(1, 2)
        s.dvth[0, 0] = +0.05
        s.dvth[0, 1] = -0.05
        scale = s.cap_scale(1.0, 0.35)
        assert scale[0, 0] < 1.0 < scale[0, 1]

    def test_cap_scale_floor(self):
        s = ParameterSample.nominal(1, 1)
        s.dvth[0, 0] = 10.0  # absurd shift
        assert s.cap_scale(5.0, 0.35)[0, 0] == pytest.approx(0.2)


class TestSampling:
    def test_shapes(self, sampler):
        s = sampler.sample(SIGMAS, IS_PMOS, 500)
        assert s.dvth.shape == (500, 6)
        assert s.mobility_scale.shape == (500, 6)

    def test_reproducible_with_seed(self, variation):
        a = MonteCarloSampler(variation, seed=5).sample(SIGMAS, IS_PMOS, 50)
        b = MonteCarloSampler(variation, seed=5).sample(SIGMAS, IS_PMOS, 50)
        assert np.array_equal(a.dvth, b.dvth)

    def test_different_seeds_differ(self, variation):
        a = MonteCarloSampler(variation, seed=5).sample(SIGMAS, IS_PMOS, 50)
        b = MonteCarloSampler(variation, seed=6).sample(SIGMAS, IS_PMOS, 50)
        assert not np.array_equal(a.dvth, b.dvth)

    def test_dvth_variance_matches_model(self, sampler, variation):
        s = sampler.sample(SIGMAS, IS_PMOS, 20000)
        expected = np.sqrt(variation.sigma_vth_global**2 + 0.02**2)
        assert np.std(s.dvth[:, 0]) == pytest.approx(expected, rel=0.05)

    def test_same_type_devices_share_global(self, sampler):
        # Two NMOS devices with zero local sigma must be identical.
        s = sampler.sample([0.0, 0.0], [False, False], 200)
        assert np.allclose(s.dvth[:, 0], s.dvth[:, 1])

    def test_np_correlation_in_range(self, sampler, variation):
        s = sampler.sample([0.0, 0.0], [False, True], 20000)
        rho = np.corrcoef(s.dvth[:, 0], s.dvth[:, 1])[0, 1]
        assert rho == pytest.approx(variation.global_np_correlation, abs=0.07)

    def test_mobility_and_length_positive(self, sampler):
        s = sampler.sample(SIGMAS, IS_PMOS, 5000)
        assert np.all(s.mobility_scale > 0)
        assert np.all(s.length_scale > 0)

    def test_validates_lengths(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample(SIGMAS, IS_PMOS[:-1], 10)
        with pytest.raises(ValueError):
            sampler.sample(SIGMAS, IS_PMOS, 0)


class TestGlobals:
    def test_shared_globals_correlate_batches(self, sampler):
        g = sampler.draw_globals(2000)
        a = sampler.sample([1e-4], [False], 2000, globals_=g)
        b = sampler.sample([1e-4], [False], 2000, globals_=g)
        rho = np.corrcoef(a.dvth[:, 0], b.dvth[:, 0])[0, 1]
        assert rho > 0.95  # locals are tiny, globals shared

    def test_independent_batches_uncorrelated(self, sampler):
        a = sampler.sample([1e-4], [False], 2000)
        b = sampler.sample([1e-4], [False], 2000)
        rho = np.corrcoef(a.dvth[:, 0], b.dvth[:, 0])[0, 1]
        assert abs(rho) < 0.1

    def test_globals_size_mismatch_rejected(self, sampler):
        g = sampler.draw_globals(10)
        with pytest.raises(ValueError):
            sampler.sample(SIGMAS, IS_PMOS, 20, globals_=g)

    def test_draws_have_unit_variance(self, sampler):
        g = sampler.draw_globals(30000)
        for z in (g.z_vth_n, g.z_vth_p, g.z_mobility, g.z_length):
            assert np.std(z) == pytest.approx(1.0, rel=0.05)
            assert np.mean(z) == pytest.approx(0.0, abs=0.03)


class TestWireScales:
    def test_shapes_and_mean(self, sampler):
        r, c = sampler.sample_wire_scales(7, 10000)
        assert r.shape == (10000, 7)
        assert np.mean(r) == pytest.approx(1.0, abs=0.01)
        assert np.mean(c) == pytest.approx(1.0, abs=0.01)

    def test_variance_matches_model(self, sampler, variation):
        r, c = sampler.sample_wire_scales(3, 30000)
        assert np.std(r[:, 0]) == pytest.approx(variation.sigma_wire_r, rel=0.08)
        assert np.std(c[:, 0]) == pytest.approx(variation.sigma_wire_c, rel=0.08)

    def test_within_net_segments_partially_correlated(self, sampler, variation):
        r, _ = sampler.sample_wire_scales(2, 30000)
        rho = np.corrcoef(r[:, 0], r[:, 1])[0, 1]
        assert rho == pytest.approx(variation.wire_global_fraction, abs=0.08)

    def test_positive(self, sampler):
        r, c = sampler.sample_wire_scales(4, 5000)
        assert np.all(r > 0)
        assert np.all(c > 0)

    def test_rejects_bad_segments(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample_wire_scales(0, 10)
