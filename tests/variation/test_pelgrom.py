"""Unit tests for the Pelgrom mismatch law."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.variation.pelgrom import pelgrom_sigma_vth, stacked_variability_scale


class TestPelgromSigma:
    def test_reference_value(self):
        # 2 mV*um over a 0.1um x 0.03um device.
        sigma = pelgrom_sigma_vth(2e-3 * 1e-6, 100e-9, 30e-9)
        assert sigma == pytest.approx(2e-9 / math.sqrt(3e-15))

    def test_quadruple_area_halves_sigma(self):
        base = pelgrom_sigma_vth(2e-9, 100e-9, 30e-9)
        big = pelgrom_sigma_vth(2e-9, 400e-9, 30e-9)
        assert big == pytest.approx(base / 2.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            pelgrom_sigma_vth(2e-9, 0.0, 30e-9)
        with pytest.raises(ValueError):
            pelgrom_sigma_vth(2e-9, 100e-9, -1e-9)

    @given(
        w=st.floats(min_value=1e-8, max_value=1e-5),
        l=st.floats(min_value=1e-8, max_value=1e-5),
    )
    def test_positive_and_monotone_in_area(self, w, l):
        sigma = pelgrom_sigma_vth(2e-9, w, l)
        assert sigma > 0
        assert pelgrom_sigma_vth(2e-9, 2 * w, l) < sigma


class TestStackedScale:
    def test_unit_reference(self):
        assert stacked_variability_scale(1, 1.0) == pytest.approx(1.0)

    def test_inverter_x4(self):
        assert stacked_variability_scale(1, 4.0) == pytest.approx(0.5)

    def test_nand2_x2(self):
        assert stacked_variability_scale(2, 2.0) == pytest.approx(0.5)

    def test_paper_eq5_combined_scaling(self):
        # Doubling both stack and strength quarters the product,
        # halving the ratio.
        a = stacked_variability_scale(1, 2)
        b = stacked_variability_scale(2, 4)
        assert b == pytest.approx(a / 2.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            stacked_variability_scale(0, 1.0)
        with pytest.raises(ValueError):
            stacked_variability_scale(1, 0.0)

    @given(
        n=st.integers(min_value=1, max_value=8),
        s=st.floats(min_value=0.5, max_value=16),
    )
    def test_inverse_sqrt_property(self, n, s):
        scale = stacked_variability_scale(n, s)
        assert scale == pytest.approx(1.0 / math.sqrt(n * s))
