"""Unit tests for technology and variation parameter containers."""

import dataclasses

import pytest

from repro.units import FF, UM
from repro.variation.parameters import Technology, VariationModel


class TestTechnology:
    def test_defaults_are_near_threshold(self, tech):
        assert tech.vdd == pytest.approx(0.6)
        assert tech.vdd - tech.vt0_n < 0.3  # genuinely near-threshold

    def test_at_vdd_returns_new_instance(self, tech):
        hi = tech.at_vdd(0.8)
        assert hi.vdd == pytest.approx(0.8)
        assert tech.vdd == pytest.approx(0.6)
        assert hi.vt0_n == tech.vt0_n

    def test_frozen(self, tech):
        with pytest.raises(dataclasses.FrozenInstanceError):
            tech.vdd = 1.0

    def test_pmos_wider_than_nmos(self, tech):
        assert tech.unit_pmos_width > tech.unit_nmos_width

    def test_gate_cap_scales_with_width(self, tech):
        assert tech.gate_cap(2e-7) == pytest.approx(2 * tech.gate_cap(1e-7))

    def test_gate_cap_magnitude(self, tech):
        # A unit inverter input should be a fraction of a femtofarad.
        cap = tech.gate_cap(tech.unit_nmos_width + tech.unit_pmos_width)
        assert 0.05 * FF < cap < 2 * FF

    def test_drain_cap_smaller_than_gate_cap(self, tech):
        w = tech.unit_nmos_width
        assert tech.drain_cap(w) < tech.gate_cap(w)


class TestVariationModel:
    def test_scaled_zero_gives_deterministic(self, variation):
        off = variation.scaled(0.0)
        assert off.sigma_vth_global == 0.0
        assert off.avt == 0.0
        assert off.sigma_wire_r == 0.0

    def test_scaled_preserves_correlations(self, variation):
        scaled = variation.scaled(2.0)
        assert scaled.global_np_correlation == variation.global_np_correlation
        assert scaled.wire_global_fraction == variation.wire_global_fraction

    def test_scaled_doubles_sigmas(self, variation):
        scaled = variation.scaled(2.0)
        assert scaled.sigma_vth_global == pytest.approx(2 * variation.sigma_vth_global)
        assert scaled.avt == pytest.approx(2 * variation.avt)

    def test_original_untouched_by_scaled(self, variation):
        before = variation.sigma_vth_global
        variation.scaled(3.0)
        assert variation.sigma_vth_global == before
