"""Tests for the Latin-hypercube sampler extension."""

import numpy as np
import pytest

from repro.variation.lhs import LatinHypercubeSampler, latin_hypercube_normal
from repro.variation.sampling import MonteCarloSampler


class TestLatinHypercubeNormal:
    def test_shape(self, rng):
        z = latin_hypercube_normal(100, 3, rng)
        assert z.shape == (100, 3)

    def test_stratification_exact(self, rng):
        # Exactly one sample per equiprobable stratum on each axis.
        from scipy import stats as sps
        n = 64
        z = latin_hypercube_normal(n, 2, rng)
        u = sps.norm.cdf(z)
        for axis in range(2):
            bins = np.floor(u[:, axis] * n).astype(int)
            assert sorted(bins) == list(range(n))

    def test_moments_tighter_than_iid(self):
        # Stratification should shrink the std error of the sample mean.
        n, reps = 128, 40
        lhs_means, iid_means = [], []
        for seed in range(reps):
            rng = np.random.default_rng(seed)
            lhs_means.append(latin_hypercube_normal(n, 1, rng)[:, 0].mean())
            iid_means.append(np.random.default_rng(seed + 999).standard_normal(n).mean())
        assert np.std(lhs_means) < 0.5 * np.std(iid_means)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            latin_hypercube_normal(0, 1, rng)


class TestLatinHypercubeSampler:
    def test_drop_in_for_mc_sampler(self, variation):
        sampler = LatinHypercubeSampler(variation, seed=1)
        assert isinstance(sampler, MonteCarloSampler)
        s = sampler.sample([0.02, 0.02], [False, True], 200)
        assert s.dvth.shape == (200, 2)

    def test_global_variance_preserved(self, variation):
        sampler = LatinHypercubeSampler(variation, seed=2)
        g = sampler.draw_globals(5000)
        for z in (g.z_vth_n, g.z_vth_p, g.z_mobility, g.z_length):
            assert np.std(z) == pytest.approx(1.0, rel=0.05)

    def test_np_correlation_preserved(self, variation):
        sampler = LatinHypercubeSampler(variation, seed=3)
        g = sampler.draw_globals(20000)
        rho = np.corrcoef(g.z_vth_n, g.z_vth_p)[0, 1]
        assert rho == pytest.approx(variation.global_np_correlation, abs=0.05)

    def test_tail_coverage_guaranteed(self, variation):
        # With n strata, the extreme stratum is always sampled: the
        # minimum is deterministic-ish far in the tail, unlike iid MC.
        sampler = LatinHypercubeSampler(variation, seed=4)
        g = sampler.draw_globals(2000)
        assert g.z_mobility.min() < -2.8
        assert g.z_mobility.max() > 2.8


class TestLatinHypercubeUnit:
    """The uniform-space primitive the surrogate seed design reuses."""

    def test_shape_and_range(self, rng):
        from repro.variation.lhs import latin_hypercube_unit

        u = latin_hypercube_unit(50, 3, rng)
        assert u.shape == (50, 3)
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_one_sample_per_stratum(self, rng):
        from repro.variation.lhs import latin_hypercube_unit

        n = 64
        u = latin_hypercube_unit(n, 2, rng)
        for axis in range(2):
            bins = np.floor(u[:, axis] * n).astype(int)
            assert sorted(bins) == list(range(n))

    def test_deterministic_given_generator_state(self):
        from repro.variation.lhs import latin_hypercube_unit

        a = latin_hypercube_unit(32, 2, np.random.default_rng(77))
        b = latin_hypercube_unit(32, 2, np.random.default_rng(77))
        assert np.array_equal(a, b)

    def test_normal_is_ppf_of_unit(self):
        # The refactor contract: latin_hypercube_normal must stay
        # bit-identical to the inverse-CDF map of the uniform design
        # drawn from the same generator state.
        from scipy import stats as sps

        from repro.variation.lhs import latin_hypercube_unit

        z = latin_hypercube_normal(40, 3, np.random.default_rng(123))
        u = latin_hypercube_unit(40, 3, np.random.default_rng(123))
        assert np.array_equal(z, sps.norm.ppf(u))

    def test_validation(self, rng):
        from repro.variation.lhs import latin_hypercube_unit

        with pytest.raises(ValueError):
            latin_hypercube_unit(10, 0, rng)
        with pytest.raises(ValueError):
            latin_hypercube_unit(0, 2, rng)
