"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "c432", "--samples", "50", "--width", "8"])
        assert args.circuit == "c432"
        assert args.samples == 50

    def test_robustness_flag_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.max_retries == 0
        assert args.task_timeout is None
        assert args.quarantine_budget == 0
        assert args.resume is True
        assert args.journal == ""

    def test_robustness_flags_parse(self):
        args = build_parser().parse_args([
            "characterize", "--max-retries", "2", "--task-timeout", "30",
            "--quarantine-budget", "-1", "--no-resume",
            "--journal", "run.jsonl",
        ])
        assert args.max_retries == 2
        assert args.task_timeout == 30.0
        assert args.quarantine_budget == -1
        assert args.resume is False
        assert args.journal == "run.jsonl"

    def test_pack_args(self):
        args = build_parser().parse_args(
            ["pack", "c432", "ADD", "-o", "out", "--library"])
        assert args.circuits == ["c432", "ADD"]
        assert args.output == "out"
        assert args.library is True

    def test_unpack_and_inspect_args(self):
        args = build_parser().parse_args(["unpack", "d.rpk", "-o", "d.json"])
        assert args.file == "d.rpk"
        assert args.output == "d.json"
        assert args.no_verify is False
        args = build_parser().parse_args(["inspect", "d.rpk"])
        assert args.file == "d.rpk"

    def test_serve_pack_defaults_off(self):
        args = build_parser().parse_args(["serve", "ADD"])
        assert args.pack == ""
        args = build_parser().parse_args(["serve", "ADD", "--pack", "packs"])
        assert args.pack == "packs"


class TestInspectUnpack:
    @pytest.fixture()
    def rpk(self, tmp_path):
        import numpy as np

        from repro.pack import write_pack

        path = tmp_path / "unit.rpk"
        write_pack(path, "unit", {"grid": np.arange(6, dtype=float),
                                  "label": "cli"},
                   meta={"who": "test"})
        return path

    def test_inspect_prints_manifest_and_verifies(self, rpk, capsys):
        assert main(["inspect", str(rpk)]) == 0
        out = capsys.readouterr().out
        assert "repro-pack v1 kind=unit" in out
        assert "meta.who = test" in out
        assert "grid" in out
        assert "digests OK" in out

    def test_inspect_fails_on_corruption(self, rpk, capsys):
        blob = bytearray(rpk.read_bytes())
        blob[-1] ^= 0xFF
        rpk.write_bytes(bytes(blob))
        assert main(["inspect", str(rpk)]) == 1
        assert "digest" in capsys.readouterr().err

    def test_unpack_emits_equivalent_json(self, rpk, tmp_path, capsys):
        out_json = tmp_path / "unit.json"
        assert main(["unpack", str(rpk), "-o", str(out_json)]) == 0
        doc = json.loads(out_json.read_text())
        assert doc == {"grid": [0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
                       "label": "cli"}

    def test_unpack_to_stdout(self, rpk, capsys):
        assert main(["unpack", str(rpk)]) == 0
        assert json.loads(capsys.readouterr().out)["label"] == "cli"

    def test_unpack_refuses_corrupt_pack(self, rpk, capsys):
        blob = bytearray(rpk.read_bytes())
        blob[-1] ^= 0xFF
        rpk.write_bytes(bytes(blob))
        assert main(["unpack", str(rpk)]) == 1


class TestCells:
    def test_lists_library(self, capsys):
        assert main(["cells"]) == 0
        out = capsys.readouterr().out
        assert "INVx1" in out
        assert "AOI21x8" in out
        assert "Pelgrom" in out


@pytest.mark.slow
class TestEndToEnd:
    def test_characterize_writes_tables(self, tmp_path, capsys):
        out_file = tmp_path / "lib.json"
        code = main([
            "characterize", "-o", str(out_file),
            "--samples", "60", "--cells", "INVx1", "--fast",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["format"] == "repro-lvf-json"
        assert len(doc["tables"]) == 2  # both edges of pin A

    def test_characterize_emits_lintable_journal(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        code = main([
            "characterize", "-o", str(tmp_path / "lib.json"),
            "--samples", "60", "--cells", "INVx1", "--fast",
            "--cache-dir", str(tmp_path / "cache"),
            "--max-retries", "1", "--journal", str(journal),
        ])
        assert code == 0
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert names[0] == "run_start" and names[-1] == "run_finish"
        assert "task_start" in names and "task_finish" in names
        assert "checkpoint" in names
        capsys.readouterr()
        # The emitted journal passes its own lint rules.
        assert main(["lint", str(journal)]) == 0

    def test_analyze_unknown_circuit(self, capsys):
        assert main(["analyze", "not_a_circuit_xyz"]) == 2

    def test_analyze_small_unit(self, tmp_path, capsys):
        code = main([
            "analyze", "ADD", "--width", "2", "--samples", "80", "--fast",
            "--cells", "INVx1,INVx2,INVx4,INVx8,NAND2x1",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "+3σ" in out
        assert "% of path" in out


def _mini_flow_cli_args():
    """CLI knobs matching the session-cached mini flow of conftest.py.

    ``--fast`` reproduces the mini grid exactly, so these hit the
    ``.pytest_repro_cache`` artifacts the fixtures already built
    instead of re-characterizing.
    """
    from tests.conftest import CACHE_DIR, MINI_CELLS

    return [
        "--fast", "--seed", "7", "--samples", "250",
        "--cells", ",".join(MINI_CELLS),
        "--cache-dir", CACHE_DIR,
    ]


@pytest.mark.slow
class TestPackEndToEnd:
    def test_pack_inspect_unpack_round_trip(
        self, tmp_path, capsys, mini_models
    ):
        packs = tmp_path / "packs"
        code = main(
            ["pack", "ADD", "--width", "2", "-o", str(packs)]
            + _mini_flow_cli_args()
        )
        assert code == 0
        rpk = packs / "pulpino_add.rpk"
        assert rpk.exists()
        capsys.readouterr()

        assert main(["inspect", str(rpk)]) == 0
        out = capsys.readouterr().out
        assert "kind=sta_compiled" in out
        assert "digests OK" in out

        out_json = tmp_path / "design.json"
        assert main(["unpack", str(rpk), "-o", str(out_json)]) == 0
        doc = json.loads(out_json.read_text())
        assert doc["circuit_name"] == "pulpino_add"
        assert doc["levels"]

    def test_pack_writes_library_bundle(self, tmp_path, capsys, mini_charac):
        packs = tmp_path / "packs"
        code = main(
            ["pack", "ADD", "--width", "2", "-o", str(packs), "--library"]
            + _mini_flow_cli_args()
        )
        assert code == 0
        from repro.cells.liberty import load_library_characterization

        loaded = load_library_characterization(packs / "library.rpk")
        assert set(loaded.tables) == set(mini_charac.tables)


@pytest.mark.slow
class TestServeReadyFileCleanup:
    def test_sigterm_drain_removes_ready_file(self, tmp_path, mini_models):
        import signal
        import subprocess
        import sys
        import time

        ready = tmp_path / "sta.ready"
        sock = tmp_path / "sta.sock"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "ADD", "--width", "2",
             "--socket", str(sock), "--ready-file", str(ready)]
            + _mini_flow_cli_args(),
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and not ready.exists():
                if proc.poll() is not None:
                    pytest.fail(f"server exited early: rc={proc.returncode}")
                time.sleep(0.1)
            assert ready.exists(), "server never signalled readiness"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            # The graceful drain must remove its readiness marker — a
            # stale ready file would make a supervisor route traffic to
            # a server that is gone.
            assert not ready.exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
