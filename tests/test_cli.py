"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "c432", "--samples", "50", "--width", "8"])
        assert args.circuit == "c432"
        assert args.samples == 50

    def test_robustness_flag_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.max_retries == 0
        assert args.task_timeout is None
        assert args.quarantine_budget == 0
        assert args.resume is True
        assert args.journal == ""

    def test_robustness_flags_parse(self):
        args = build_parser().parse_args([
            "characterize", "--max-retries", "2", "--task-timeout", "30",
            "--quarantine-budget", "-1", "--no-resume",
            "--journal", "run.jsonl",
        ])
        assert args.max_retries == 2
        assert args.task_timeout == 30.0
        assert args.quarantine_budget == -1
        assert args.resume is False
        assert args.journal == "run.jsonl"


class TestCells:
    def test_lists_library(self, capsys):
        assert main(["cells"]) == 0
        out = capsys.readouterr().out
        assert "INVx1" in out
        assert "AOI21x8" in out
        assert "Pelgrom" in out


@pytest.mark.slow
class TestEndToEnd:
    def test_characterize_writes_tables(self, tmp_path, capsys):
        out_file = tmp_path / "lib.json"
        code = main([
            "characterize", "-o", str(out_file),
            "--samples", "60", "--cells", "INVx1", "--fast",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["format"] == "repro-lvf-json"
        assert len(doc["tables"]) == 2  # both edges of pin A

    def test_characterize_emits_lintable_journal(self, tmp_path, capsys):
        journal = tmp_path / "run.jsonl"
        code = main([
            "characterize", "-o", str(tmp_path / "lib.json"),
            "--samples", "60", "--cells", "INVx1", "--fast",
            "--cache-dir", str(tmp_path / "cache"),
            "--max-retries", "1", "--journal", str(journal),
        ])
        assert code == 0
        events = [json.loads(line) for line in journal.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert names[0] == "run_start" and names[-1] == "run_finish"
        assert "task_start" in names and "task_finish" in names
        assert "checkpoint" in names
        capsys.readouterr()
        # The emitted journal passes its own lint rules.
        assert main(["lint", str(journal)]) == 0

    def test_analyze_unknown_circuit(self, capsys):
        assert main(["analyze", "not_a_circuit_xyz"]) == 2

    def test_analyze_small_unit(self, tmp_path, capsys):
        code = main([
            "analyze", "ADD", "--width", "2", "--samples", "80", "--fast",
            "--cells", "INVx1,INVx2,INVx4,INVx8,NAND2x1",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "+3σ" in out
        assert "% of path" in out
