"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "c432", "--samples", "50", "--width", "8"])
        assert args.circuit == "c432"
        assert args.samples == 50


class TestCells:
    def test_lists_library(self, capsys):
        assert main(["cells"]) == 0
        out = capsys.readouterr().out
        assert "INVx1" in out
        assert "AOI21x8" in out
        assert "Pelgrom" in out


@pytest.mark.slow
class TestEndToEnd:
    def test_characterize_writes_tables(self, tmp_path, capsys):
        out_file = tmp_path / "lib.json"
        code = main([
            "characterize", "-o", str(out_file),
            "--samples", "60", "--cells", "INVx1", "--fast",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["format"] == "repro-lvf-json"
        assert len(doc["tables"]) == 2  # both edges of pin A

    def test_analyze_unknown_circuit(self, capsys):
        assert main(["analyze", "not_a_circuit_xyz"]) == 2

    def test_analyze_small_unit(self, tmp_path, capsys):
        code = main([
            "analyze", "ADD", "--width", "2", "--samples", "80", "--fast",
            "--cells", "INVx1,INVx2,INVx4,INVx8,NAND2x1",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "+3σ" in out
        assert "% of path" in out
