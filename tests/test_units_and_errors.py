"""Tests for the unit helpers and the exception hierarchy."""

import pytest

from repro import errors, units


class TestUnits:
    def test_prefix_chain(self):
        assert units.PS == pytest.approx(1e-12)
        assert units.FF == pytest.approx(1e-15)
        assert units.NS / units.PS == pytest.approx(1000)
        assert units.UM / units.NM == pytest.approx(1000)

    def test_thermal_voltage_room_temperature(self):
        # ~25.85 mV at 27 C, ~25.68 mV at 25 C.
        assert units.thermal_voltage(25.0) == pytest.approx(0.02569, rel=1e-3)

    def test_thermal_voltage_scales_with_temperature(self):
        assert units.thermal_voltage(125.0) > units.thermal_voltage(-40.0)

    def test_report_conversions(self):
        assert units.to_ps(2.5e-11) == pytest.approx(25.0)
        assert units.to_ff(3e-15) == pytest.approx(3.0)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.SimulationError,
        errors.NetlistError,
        errors.CharacterizationError,
        errors.CalibrationError,
        errors.InterconnectError,
        errors.TimingError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")

    def test_catching_base_does_not_mask_programming_errors(self):
        with pytest.raises(ValueError):
            try:
                raise ValueError("not ours")
            except errors.ReproError:  # pragma: no cover
                pytest.fail("ReproError must not catch ValueError")
