"""Unit tests for netlist construction and compilation."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice.netlist import (
    Capacitor,
    Mosfet,
    PiecewiseLinearSource,
    Resistor,
    SampledWaveformSource,
    TransistorNetlist,
)
from repro.units import FF, PS
from repro.variation.sampling import ParameterSample


def inverter_netlist(tech, load=1 * FF):
    net = TransistorNetlist()
    net.fix("vdd", tech.vdd)
    net.fix("in", 0.0)
    net.add_mosfet("mp", "p", drain="out", gate="in", source="vdd",
                   width=tech.unit_pmos_width)
    net.add_mosfet("mn", "n", drain="out", gate="in", source="gnd",
                   width=tech.unit_nmos_width)
    net.add_capacitor("cl", "out", load)
    return net


class TestElements:
    def test_mosfet_validation(self):
        with pytest.raises(NetlistError):
            Mosfet("m", "x", "d", "g", "s", 1e-7)
        with pytest.raises(NetlistError):
            Mosfet("m", "n", "d", "g", "s", -1.0)

    def test_resistor_validation(self):
        with pytest.raises(NetlistError):
            Resistor("r", "a", "b", 0.0)

    def test_capacitor_validation(self):
        with pytest.raises(NetlistError):
            Capacitor("c", "a", -1e-15)
        Capacitor("c", "a", 0.0)  # zero allowed

    def test_duplicate_names_rejected(self, tech):
        net = inverter_netlist(tech)
        with pytest.raises(NetlistError):
            net.add_capacitor("cl", "out", 1 * FF)


class TestPWLSource:
    def test_constant(self):
        src = PiecewiseLinearSource.constant(0.6)
        assert src(0.0) == 0.6
        assert src(1e-9) == 0.6

    def test_ramp_interpolates(self):
        src = PiecewiseLinearSource.ramp(0.0, 1.0, 1e-12, 2e-12)
        assert src(0.0) == 0.0
        assert src(2e-12) == pytest.approx(0.5)
        assert src(5e-12) == 1.0

    def test_ramp_rejects_zero_time(self):
        with pytest.raises(NetlistError):
            PiecewiseLinearSource.ramp(0.0, 1.0, 0.0, 0.0)

    def test_saturated_edge_slew(self):
        src = PiecewiseLinearSource.saturated_edge(0.0, 1.0, 0.0, 20 * PS)
        t = np.linspace(0, 60 * PS, 3000)
        v = np.array([src(x) for x in t])
        t20 = t[np.argmax(v >= 0.2)]
        t80 = t[np.argmax(v >= 0.8)]
        assert (t80 - t20) == pytest.approx(20 * PS, rel=0.02)

    def test_saturated_edge_has_slow_tail(self):
        src = PiecewiseLinearSource.saturated_edge(0.0, 1.0, 0.0, 20 * PS)
        t = np.linspace(0, 80 * PS, 4000)
        v = np.array([src(x) for x in t])
        t50 = t[np.argmax(v >= 0.5)]
        t95 = t[np.argmax(v >= 0.95)]
        # Tail (50->95%) slower than head would predict for a pure ramp.
        assert (t95 - t50) > 0.9 * t50

    def test_falling_edge(self):
        src = PiecewiseLinearSource.saturated_edge(1.0, 0.0, 0.0, 20 * PS)
        assert src(0.0) == 1.0
        assert src(1e-9) == 0.0


class TestSampledWaveformSource:
    def test_per_sample_interpolation(self):
        times = np.array([0.0, 1.0, 2.0])
        waves = np.array([[0.0, 1.0, 1.0], [0.0, 0.0, 1.0]])
        src = SampledWaveformSource(times, waves)
        out = src(0.5)
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(0.0)

    def test_clamps_outside_range(self):
        src = SampledWaveformSource([0.0, 1.0], np.array([[0.0, 1.0]]))
        assert src(-5.0)[0] == 0.0
        assert src(5.0)[0] == 1.0

    def test_activity_interval(self):
        times = np.linspace(0, 10, 11)
        waves = np.zeros((2, 11))
        waves[0, 4:7] = [0.5, 1.0, 1.0]
        waves[0, 7:] = 1.0
        waves[1, 5:] = 1.0
        src = SampledWaveformSource(times, waves)
        t0, t1 = src.activity_interval()
        assert 2.0 <= t0 <= 4.0
        # The last sample reaches its final value between t=4 and t=5.
        assert 4.0 <= t1 <= 6.0

    def test_activity_interval_flat_waveform(self):
        src = SampledWaveformSource([0.0, 1.0], np.array([[0.3, 0.3]]))
        t0, t1 = src.activity_interval()
        assert t0 == t1 == 0.0

    def test_rejects_bad_shapes(self):
        with pytest.raises(NetlistError):
            SampledWaveformSource([0.0, 1.0], np.zeros((2, 3)))
        with pytest.raises(NetlistError):
            SampledWaveformSource([1.0, 0.0], np.zeros((1, 2)))


class TestCompile:
    def test_unknown_node_indexing(self, tech):
        compiled = inverter_netlist(tech).compile(tech)
        assert compiled.n_unknown == 1
        assert "out" in compiled.node_index

    def test_capacitance_includes_device_parasitics(self, tech):
        net = inverter_netlist(tech, load=1 * FF)
        compiled = net.compile(tech)
        i = compiled.node_index["out"]
        expected_extra = tech.drain_cap(tech.unit_pmos_width) + tech.drain_cap(
            tech.unit_nmos_width
        )
        assert compiled.cdiag[i] == pytest.approx(1 * FF + expected_extra)

    def test_no_device_caps_option(self, tech):
        net = inverter_netlist(tech, load=1 * FF)
        compiled = net.compile(tech, add_device_caps=False)
        assert compiled.cdiag[compiled.node_index["out"]] == pytest.approx(1 * FF)

    def test_resistor_stamps(self, tech):
        net = TransistorNetlist()
        net.fix("vdd", tech.vdd)
        net.add_resistor("r1", "a", "b", 1000.0)
        net.add_resistor("r2", "b", "vdd", 2000.0)
        net.add_capacitor("ca", "a", 1 * FF)
        net.add_capacitor("cb", "b", 1 * FF)
        compiled = net.compile(tech)
        ia, ib = compiled.node_index["a"], compiled.node_index["b"]
        g = compiled.g_const
        assert g[ia, ia] == pytest.approx(1e-3)
        assert g[ia, ib] == pytest.approx(-1e-3)
        assert g[ib, ib] == pytest.approx(1e-3 + 5e-4)
        assert compiled.g_known == [(ib, pytest.approx(5e-4), "vdd")]

    def test_empty_netlist_rejected(self, tech):
        net = TransistorNetlist()
        net.fix("in", 0.0)
        with pytest.raises(NetlistError):
            net.compile(tech)

    def test_bind_sample_count_mismatch(self, tech):
        compiled = inverter_netlist(tech).compile(tech)
        with pytest.raises(NetlistError):
            compiled.bind_sample(ParameterSample.nominal(4, 5))

    def test_mismatch_sigmas_order(self, tech, variation):
        net = inverter_netlist(tech)
        sigmas, is_pmos = net.mismatch_sigmas(variation, tech)
        assert sigmas.shape == (2,)
        assert list(is_pmos) == [True, False]
        # PMOS is wider -> smaller sigma.
        assert sigmas[0] < sigmas[1]


class TestBuildLinear:
    def _rc_netlist(self, tech):
        net = TransistorNetlist()
        net.fix("drv", 0.0)
        net.add_resistor("r1", "drv", "n1", 100.0)
        net.add_resistor("r2", "n1", "n2", 200.0)
        net.add_capacitor("c1", "n1", 1 * FF)
        net.add_capacitor("c2", "n2", 2 * FF)
        return net.compile(tech)

    def test_nominal_matches_batched_identity(self, tech):
        compiled = self._rc_netlist(tech)
        g0, pulls0, c0 = compiled.build_linear()
        ones_r = np.ones((3, len(compiled.res_stamps)))
        ones_c = np.ones((3, len(compiled.explicit_caps)))
        g1, pulls1, c1 = compiled.build_linear(ones_r, ones_c)
        assert g1.shape == (3, 2, 2)
        assert np.allclose(g1[0], g0)
        assert np.allclose(c1[0], c0)

    def test_r_scale_scales_conductance(self, tech):
        compiled = self._rc_netlist(tech)
        r_scale = np.full((1, 2), 2.0)
        g, pulls, _ = compiled.build_linear(r_scale=r_scale)
        i1 = compiled.node_index["n1"]
        # Doubled resistance -> halved conductances everywhere.
        assert g[0, i1, i1] == pytest.approx(compiled.g_const[i1, i1] / 2)

    def test_c_scale_only_touches_explicit_caps(self, tech):
        compiled = self._rc_netlist(tech)
        c_scale = np.full((1, 2), 3.0)
        _, _, c = compiled.build_linear(c_scale=c_scale)
        i2 = compiled.node_index["n2"]
        assert c[0, i2] == pytest.approx(6 * FF)

    def test_dev_cap_scale(self, tech):
        net = TransistorNetlist()
        net.fix("vdd", tech.vdd)
        net.fix("in", 0.0)
        net.add_mosfet("mp", "p", "out", "in", "vdd", tech.unit_pmos_width)
        net.add_mosfet("mn", "n", "out", "in", "gnd", tech.unit_nmos_width)
        compiled = net.compile(tech)
        scale = np.full((1, 2), 0.5)
        _, _, c = compiled.build_linear(dev_cap_scale=scale)
        i = compiled.node_index["out"]
        assert c[0, i] == pytest.approx(compiled.device_cdiag[i] * 0.5)

    def test_shape_validation(self, tech):
        compiled = self._rc_netlist(tech)
        from repro.errors import NetlistError
        with pytest.raises(NetlistError):
            compiled.build_linear(r_scale=np.ones((2, 5)))
        with pytest.raises(NetlistError):
            compiled.build_linear(c_scale=np.ones((2, 9)))
