"""Unit tests for the EKV MOSFET model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.spice.mosfet import MosfetParams, ekv_ids, ekv_ids_and_derivatives
from repro.variation.parameters import Technology


@pytest.fixture()
def params(tech):
    return MosfetParams.from_technology(
        tech,
        is_pmos=False,
        width=tech.unit_nmos_width,
        dvth=np.array([0.0]),
        mobility_scale=np.array([1.0]),
        length_scale=np.array([1.0]),
    )


class TestCurrentRegions:
    def test_zero_vds_zero_current(self, params):
        assert ekv_ids(0.6, 0.3, 0.3, params) == pytest.approx(0.0, abs=1e-15)

    def test_off_device_leaks_little(self, params, tech):
        i_off = ekv_ids(0.0, tech.vdd, 0.0, params)
        i_on = ekv_ids(tech.vdd, tech.vdd, 0.0, params)
        assert 0 < i_off < 1e-3 * i_on

    def test_subthreshold_exponential_slope(self, params, tech):
        # Below Vt, current should multiply ~e per n*phi_t of Vgs.
        n_phi = params.n_slope * params.phi_t
        i1 = ekv_ids(0.20, tech.vdd, 0.0, params)
        i2 = ekv_ids(0.20 + n_phi, tech.vdd, 0.0, params)
        assert i2 / i1 == pytest.approx(np.e, rel=0.15)

    def test_strong_inversion_square_law(self, tech):
        # Far above threshold the current grows ~quadratically in overdrive.
        p = MosfetParams.from_technology(
            tech.at_vdd(2.0), False, tech.unit_nmos_width,
            np.array([0.0]), np.array([1.0]), np.array([1.0]),
        )
        i1 = ekv_ids(tech.vt0_n + 0.8, 2.0, 0.0, p)
        i2 = ekv_ids(tech.vt0_n + 1.6, 2.0, 0.0, p)
        ratio = float(np.asarray(i2 / i1).reshape(-1)[0])
        assert 3.0 < ratio < 5.0

    def test_higher_vth_lower_current(self, tech):
        lo = MosfetParams.from_technology(
            tech, False, tech.unit_nmos_width,
            np.array([-0.03]), np.array([1.0]), np.array([1.0]))
        hi = MosfetParams.from_technology(
            tech, False, tech.unit_nmos_width,
            np.array([+0.03]), np.array([1.0]), np.array([1.0]))
        assert ekv_ids(0.6, 0.6, 0.0, lo) > ekv_ids(0.6, 0.6, 0.0, hi)

    def test_near_threshold_vth_sensitivity_is_strong(self, params, tech):
        # The paper's premise: at 0.6 V a 1-sigma Vth shift moves the
        # current by tens of percent.
        base = ekv_ids(tech.vdd, tech.vdd, 0.0, params)
        p_hi = MosfetParams.from_technology(
            tech, False, tech.unit_nmos_width,
            np.array([0.03]), np.array([1.0]), np.array([1.0]))
        shifted = ekv_ids(tech.vdd, tech.vdd, 0.0, p_hi)
        assert shifted < 0.9 * base

    def test_mobility_scales_current_linearly(self, tech):
        p2 = MosfetParams.from_technology(
            tech, False, tech.unit_nmos_width,
            np.array([0.0]), np.array([2.0]), np.array([1.0]))
        p1 = MosfetParams.from_technology(
            tech, False, tech.unit_nmos_width,
            np.array([0.0]), np.array([1.0]), np.array([1.0]))
        assert ekv_ids(0.6, 0.6, 0.0, p2) == pytest.approx(
            2 * ekv_ids(0.6, 0.6, 0.0, p1), rel=1e-9
        )

    def test_reverse_conduction_negative(self, params):
        # Drain below source: current flows the other way.
        assert ekv_ids(0.6, 0.0, 0.6, params) < 0


def _scalar(value) -> float:
    return float(np.asarray(value).reshape(-1)[0])


class TestDerivatives:
    @pytest.mark.parametrize("vg,vd,vs", [
        (0.6, 0.6, 0.0),
        (0.3, 0.1, 0.0),
        (0.45, 0.6, 0.2),
        (0.0, 0.6, 0.0),
        (0.6, 0.05, 0.0),
    ])
    def test_matches_finite_differences(self, params, vg, vd, vs):
        h = 1e-6
        _, gg, gd, gs = ekv_ids_and_derivatives(vg, vd, vs, params)
        num_g = (ekv_ids(vg + h, vd, vs, params) - ekv_ids(vg - h, vd, vs, params)) / (2 * h)
        num_d = (ekv_ids(vg, vd + h, vs, params) - ekv_ids(vg, vd - h, vs, params)) / (2 * h)
        num_s = (ekv_ids(vg, vd, vs + h, params) - ekv_ids(vg, vd, vs - h, params)) / (2 * h)
        assert _scalar(gg) == pytest.approx(_scalar(num_g), rel=1e-4, abs=1e-12)
        assert _scalar(gd) == pytest.approx(_scalar(num_d), rel=1e-4, abs=1e-12)
        assert _scalar(gs) == pytest.approx(_scalar(num_s), rel=1e-4, abs=1e-12)

    def test_vectorized_over_samples(self, tech):
        n = 64
        p = MosfetParams.from_technology(
            tech, False, tech.unit_nmos_width,
            dvth=np.linspace(-0.05, 0.05, n),
            mobility_scale=np.ones(n),
            length_scale=np.ones(n),
        )
        ids, gg, gd, gs = ekv_ids_and_derivatives(
            np.full(n, 0.6), np.full(n, 0.6), np.zeros(n), p
        )
        assert ids.shape == (n,)
        # Monotone decreasing in Vth.
        assert np.all(np.diff(ids) < 0)

    @given(
        vg=st.floats(min_value=-0.2, max_value=0.8),
        vd=st.floats(min_value=0.0, max_value=0.8),
        vs=st.floats(min_value=0.0, max_value=0.8),
    )
    def test_current_finite_everywhere(self, tech, vg, vd, vs):
        p = MosfetParams.from_technology(
            tech, False, tech.unit_nmos_width,
            np.array([0.0]), np.array([1.0]), np.array([1.0]))
        out = ekv_ids_and_derivatives(vg, vd, vs, p)
        for arr in out:
            assert np.all(np.isfinite(arr))

    def test_gm_positive_when_on(self, params):
        _, gg, _, _ = ekv_ids_and_derivatives(0.5, 0.6, 0.0, params)
        assert _scalar(gg) > 0
