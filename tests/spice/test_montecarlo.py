"""Integration tests of the Monte-Carlo transient driver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice.measure import ramp_time_for_slew
from repro.spice.montecarlo import DelaySamples, MonteCarloEngine, SimulationSetup
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.units import FF, PS


def inverter_setup(tech, slew=20 * PS, load=1.5 * FF, rising_in=True):
    net = TransistorNetlist()
    net.fix("vdd", tech.vdd)
    v0 = 0.0 if rising_in else tech.vdd
    net.fix("in", PiecewiseLinearSource.ramp(
        v0, tech.vdd - v0, 5 * PS, ramp_time_for_slew(slew)))
    net.add_mosfet("mp", "p", "out", "in", "vdd", tech.unit_pmos_width)
    net.add_mosfet("mn", "n", "out", "in", "gnd", tech.unit_nmos_width)
    net.add_capacitor("cl", "out", load)
    return SimulationSetup(
        netlist=net, input_node="in", output_node="out",
        input_rising=rising_in, output_rising=not rising_in,
        initial_voltages={"out": tech.vdd if rising_in else 0.0},
    )


class TestSimulate:
    def test_full_yield_and_positive_delay(self, engine, tech):
        res = engine.simulate(inverter_setup(tech), 200)
        assert res.yield_fraction == 1.0
        assert np.all(res.delay[res.valid] > 0)
        assert np.all(res.output_slew[res.valid] > 0)

    def test_delay_magnitude_reasonable(self, engine, tech):
        res = engine.simulate(inverter_setup(tech), 200)
        mean = np.mean(res.delay[res.valid])
        assert 5 * PS < mean < 200 * PS

    def test_distribution_right_skewed(self, engine, tech):
        # The paper's core near-threshold observation.
        res = engine.simulate(inverter_setup(tech), 1500)
        d = res.delay[res.valid]
        skew = float(np.mean((d - d.mean()) ** 3) / d.std() ** 3)
        assert skew > 0.3

    def test_deterministic_given_seed(self, tech, variation):
        a = MonteCarloEngine(tech, variation, seed=3).simulate(
            inverter_setup(tech), 100)
        b = MonteCarloEngine(tech, variation, seed=3).simulate(
            inverter_setup(tech), 100)
        assert np.allclose(a.delay, b.delay, equal_nan=True)

    def test_more_load_more_delay(self, engine, tech):
        light = engine.simulate(inverter_setup(tech, load=0.3 * FF), 150)
        heavy = engine.simulate(inverter_setup(tech, load=4 * FF), 150)
        assert np.mean(heavy.delay[heavy.valid]) > 2 * np.mean(light.delay[light.valid])

    def test_more_slew_more_delay(self, engine, tech):
        fast = engine.simulate(inverter_setup(tech, slew=10 * PS), 150)
        slow = engine.simulate(inverter_setup(tech, slew=200 * PS), 150)
        assert np.mean(slow.delay[slow.valid]) > np.mean(fast.delay[fast.valid])

    def test_falling_input_arc(self, engine, tech):
        res = engine.simulate(inverter_setup(tech, rising_in=False), 150)
        assert res.yield_fraction == 1.0

    def test_keep_waveforms(self, engine, tech):
        res = engine.simulate(inverter_setup(tech), 50, keep_waveforms=True)
        assert res.result is not None
        assert res.result.voltage("out").shape[0] == 50

    def test_waveforms_dropped_by_default(self, engine, tech):
        res = engine.simulate(inverter_setup(tech), 50)
        assert res.result is None

    def test_variation_off_collapses_spread(self, tech, variation):
        frozen = MonteCarloEngine(tech, variation.scaled(0.0), seed=3)
        res = frozen.simulate(inverter_setup(tech), 60)
        d = res.delay[res.valid]
        assert np.std(d) < 1e-3 * np.mean(d)

    def test_finite_filters_invalid(self):
        s = DelaySamples(
            delay=np.array([1.0, np.nan, 2.0]),
            output_slew=np.array([1.0, 1.0, np.nan]),
            t_launch=np.zeros(3),
            t_capture=np.ones(3),
        )
        assert s.yield_fraction == pytest.approx(1 / 3)
        assert s.finite().delay.tolist() == [1.0]


class TestWindowing:
    def test_generic_callable_needs_hint(self, engine, tech):
        setup = inverter_setup(tech)
        setup.netlist.fix("in", lambda t: tech.vdd if t > 10 * PS else 0.0)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="input_end_hint"):
            engine.simulate(setup, 10)

    def test_generic_callable_with_hint(self, engine, tech):
        setup = inverter_setup(tech)
        # A step through a callable, with an explicit activity hint.
        setup.netlist.fix(
            "in", lambda t: tech.vdd * min(1.0, max(0.0, (t - 5 * PS) / (20 * PS))))
        setup.input_end_hint = 25 * PS
        res = engine.simulate(setup, 20)
        assert res.yield_fraction > 0.9

    def test_unfixed_input_rejected(self, engine, tech):
        setup = inverter_setup(tech)
        setup.input_node = "nonexistent"
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="not fixed"):
            engine.simulate(setup, 5)

    def test_window_truncation_yields_nan(self, tech, variation):
        # With window extension disabled and a huge load, the slowest
        # samples cannot settle: they must come back NaN, not wrong.
        from repro.spice.montecarlo import MonteCarloEngine
        engine = MonteCarloEngine(tech, variation, seed=8, max_windows=1,
                                  settle_fraction=1.0)
        setup = inverter_setup(tech, load=40 * FF)
        res = engine.simulate(setup, 40)
        assert res.yield_fraction < 1.0


class TestShapedVsRampEdges:
    def test_global_draws_correlate_two_arcs(self, tech, variation):
        engine = MonteCarloEngine(tech, variation, seed=10)
        g = engine.sampler.draw_globals(400)
        a = engine.simulate(inverter_setup(tech), 400, globals_=g)
        b = engine.simulate(inverter_setup(tech), 400, globals_=g)
        m = a.valid & b.valid
        rho = np.corrcoef(a.delay[m], b.delay[m])[0, 1]
        assert rho > 0.4  # shared die-to-die component

    def test_independent_draws_less_correlated(self, tech, variation):
        engine = MonteCarloEngine(tech, variation, seed=10)
        a = engine.simulate(inverter_setup(tech), 400)
        b = engine.simulate(inverter_setup(tech), 400)
        m = a.valid & b.valid
        rho = np.corrcoef(a.delay[m], b.delay[m])[0, 1]
        assert abs(rho) < 0.25


# ----------------------------------------------------------------------
# DelaySamples validity invariant (property-based)
# ----------------------------------------------------------------------
_measurement = st.one_of(
    st.floats(min_value=-1e-6, max_value=1e-6, allow_nan=False),
    st.just(float("nan")),
    st.just(float("inf")),
    st.just(float("-inf")),
)


class TestDelaySamplesInvariant:
    """valid / finite() / yield_fraction must agree on one mask: a sample
    counts iff *both* delay and slew are finite — NaN and ±inf rejected
    alike, whatever kernel backend produced the measurements."""

    @given(
        delay=st.lists(_measurement, min_size=0, max_size=40),
        slew_or_none=st.lists(_measurement, min_size=0, max_size=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_mask_consistency(self, delay, slew_or_none):
        n = min(len(delay), len(slew_or_none))
        d = np.array(delay[:n], dtype=float)
        s = np.array(slew_or_none[:n], dtype=float)
        samples = DelaySamples(
            delay=d, output_slew=s, t_launch=np.zeros(n), t_capture=np.zeros(n))
        want_valid = np.isfinite(d) & np.isfinite(s)
        np.testing.assert_array_equal(samples.valid, want_valid)
        finite = samples.finite()
        assert np.all(np.isfinite(finite.delay))
        assert np.all(np.isfinite(finite.output_slew))
        # the three views agree exactly
        assert finite.delay.size == int(want_valid.sum())
        assert finite.delay.size == round(samples.yield_fraction * max(n, 1)) \
            or n == 0
        if n == 0:
            assert samples.yield_fraction == 1.0  # vacuous success
        else:
            assert samples.yield_fraction == pytest.approx(want_valid.mean())

    @given(frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_yield_roundtrip(self, frac):
        n = 32
        k = int(round(frac * n))
        d = np.full(n, 1e-11)
        d[:n - k] = np.nan
        samples = DelaySamples(
            delay=d, output_slew=np.full(n, 1e-11),
            t_launch=np.zeros(n), t_capture=np.zeros(n))
        assert samples.finite().delay.size == k
        assert samples.finite().delay.size == round(
            samples.yield_fraction * samples.delay.size)

    def test_infinities_rejected_like_nan(self):
        samples = DelaySamples(
            delay=np.array([1e-11, np.inf, -np.inf, np.nan]),
            output_slew=np.full(4, 1e-11),
            t_launch=np.zeros(4), t_capture=np.zeros(4))
        assert samples.valid.tolist() == [True, False, False, False]
        assert samples.yield_fraction == pytest.approx(0.25)
