"""Tests for the batched transient solver, including analytic RC checks."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.spice.transient import TransientSolver
from repro.units import FF, PS
from repro.variation.sampling import ParameterSample


def rc_circuit(tech, r=1000.0, c=10 * FF, v_src=0.6):
    """A driven RC low-pass: analytic solution available."""
    net = TransistorNetlist()
    net.fix("src", v_src)
    net.add_resistor("r", "src", "out", r)
    net.add_capacitor("c", "out", c)
    return net.compile(tech)


class TestLinearRC:
    def test_step_response_matches_analytic(self, tech):
        r, c = 1000.0, 10 * FF
        compiled = rc_circuit(tech, r, c)
        solver = TransientSolver(compiled, ParameterSample.nominal(1, 0))
        tau = r * c
        v0 = np.zeros((1, 1))
        res = solver.run(v0, 0.0, 5 * tau, 500, record=["out"])
        wave = res.voltage("out")[0]
        analytic = 0.6 * (1 - np.exp(-res.times / tau))
        assert np.max(np.abs(wave - analytic)) < 0.01  # BE error < 10 mV

    def test_step_halving_converges(self, tech):
        compiled = rc_circuit(tech)
        solver = TransientSolver(compiled, ParameterSample.nominal(1, 0))
        tau = 1000.0 * 10 * FF
        errs = []
        for steps in (50, 100, 200):
            res = solver.run(np.zeros((1, 1)), 0.0, 3 * tau, steps, record=["out"])
            analytic = 0.6 * (1 - np.exp(-res.times / tau))
            errs.append(np.max(np.abs(res.voltage("out")[0] - analytic)))
        assert errs[1] < errs[0]
        assert errs[2] < errs[1]
        # First-order convergence: halving dt ~halves the error.
        assert errs[0] / errs[1] == pytest.approx(2.0, rel=0.3)

    def test_batched_samples_independent(self, tech):
        compiled = rc_circuit(tech)
        n = 8
        solver = TransientSolver(
            compiled,
            ParameterSample.nominal(n, 0),
            r_scale=np.linspace(0.5, 2.0, n)[:, None],
        )
        tau0 = 1000.0 * 10 * FF
        res = solver.run(np.zeros((n, 1)), 0.0, 2 * tau0, 300, record=["out"])
        final = res.voltage("out")[:, -1]
        # Slower RC (larger r_scale) -> lower voltage at fixed time.
        assert np.all(np.diff(final) < 0)

    def test_dc_settle_reaches_equilibrium(self, tech):
        compiled = rc_circuit(tech)
        solver = TransientSolver(compiled, ParameterSample.nominal(1, 0))
        v = solver.dc_settle(np.zeros((1, 1)))
        assert v[0, 0] == pytest.approx(0.6, abs=1e-4)

    def test_run_validates_inputs(self, tech):
        compiled = rc_circuit(tech)
        solver = TransientSolver(compiled, ParameterSample.nominal(1, 0))
        with pytest.raises(SimulationError):
            solver.run(np.zeros((1, 1)), 0.0, 1e-9, 0, record=["out"])
        with pytest.raises(SimulationError):
            solver.run(np.zeros((1, 1)), 1e-9, 0.0, 10, record=["out"])
        with pytest.raises(SimulationError):
            solver.run(np.zeros((2, 1)), 0.0, 1e-9, 10, record=["out"])

    def test_records_fixed_nodes(self, tech):
        compiled = rc_circuit(tech)
        solver = TransientSolver(compiled, ParameterSample.nominal(3, 0))
        res = solver.run(np.zeros((3, 1)), 0.0, 1e-10, 10, record=["out", "src"])
        assert np.all(res.voltage("src") == 0.6)

    def test_extended_with_concatenates(self, tech):
        compiled = rc_circuit(tech)
        solver = TransientSolver(compiled, ParameterSample.nominal(1, 0))
        a = solver.run(np.zeros((1, 1)), 0.0, 1e-10, 10, record=["out"])
        b = solver.run(a.final_state, 1e-10, 2e-10, 10, record=["out"])
        joined = a.extended_with(b)
        assert joined.times.shape == (22,)
        assert joined.voltage("out").shape == (1, 22)


class TestNonlinear:
    def _inverter(self, tech, src):
        net = TransistorNetlist()
        net.fix("vdd", tech.vdd)
        net.fix("in", src)
        net.add_mosfet("mp", "p", "out", "in", "vdd", tech.unit_pmos_width)
        net.add_mosfet("mn", "n", "out", "in", "gnd", tech.unit_nmos_width)
        net.add_capacitor("cl", "out", 1 * FF)
        return net.compile(tech)

    def test_inverter_static_levels(self, tech):
        for v_in, v_expected in ((0.0, tech.vdd), (tech.vdd, 0.0)):
            compiled = self._inverter(tech, v_in)
            solver = TransientSolver(compiled, ParameterSample.nominal(1, 2))
            v = solver.dc_settle(np.full((1, 1), 0.3))
            assert v[0, 0] == pytest.approx(v_expected, abs=0.01)

    def test_inverter_transition_is_monotone(self, tech):
        ramp = PiecewiseLinearSource.ramp(0.0, tech.vdd, 10 * PS, 20 * PS)
        compiled = self._inverter(tech, ramp)
        solver = TransientSolver(compiled, ParameterSample.nominal(1, 2))
        v0 = solver.dc_settle(np.full((1, 1), tech.vdd), t=0.0)
        res = solver.run(v0, 0.0, 200 * PS, 400, record=["out"])
        wave = res.voltage("out")[0]
        assert wave[0] == pytest.approx(tech.vdd, abs=0.01)
        assert wave[-1] == pytest.approx(0.0, abs=0.01)
        # Falling output never significantly overshoots the rails.
        assert np.all(wave < tech.vdd + 0.02)
        assert np.all(wave > -0.02)

    def test_newton_converges_with_fast_edge(self, tech):
        ramp = PiecewiseLinearSource.ramp(0.0, tech.vdd, 1 * PS, 1 * PS)
        compiled = self._inverter(tech, ramp)
        solver = TransientSolver(compiled, ParameterSample.nominal(4, 2))
        v0 = solver.dc_settle(np.full((4, 1), tech.vdd), t=0.0)
        res = solver.run(v0, 0.0, 100 * PS, 300, record=["out"])
        assert np.all(np.isfinite(res.voltage("out")))

    def test_slower_sample_stays_higher(self, tech):
        # Two samples: nominal and one with +50 mV on the NMOS Vth; the
        # slow one must lag on a falling output.
        ramp = PiecewiseLinearSource.ramp(0.0, tech.vdd, 5 * PS, 10 * PS)
        compiled = self._inverter(tech, ramp)
        sample = ParameterSample.nominal(2, 2)
        sample.dvth[1, 1] = 0.05  # device order: mp, mn
        solver = TransientSolver(compiled, sample)
        v0 = solver.dc_settle(np.full((2, 1), tech.vdd), t=0.0)
        res = solver.run(v0, 0.0, 150 * PS, 300, record=["out"])
        wave = res.voltage("out")
        mid = np.argmax(wave[0] < 0.3)
        assert wave[1, mid] > wave[0, mid]
