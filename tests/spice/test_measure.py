"""Unit and property tests for waveform measurement."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.spice.measure import (
    SLEW_HIGH,
    SLEW_LOW,
    crossing_time,
    fraction_settled,
    measure_delay,
    measure_slew,
    ramp_time_for_slew,
    threshold_crossings,
)


@pytest.fixture()
def ramp_waves():
    times = np.linspace(0.0, 10.0, 101)
    rising = np.clip((times - 2.0) / 4.0, 0.0, 1.0)[None, :]
    falling = 1.0 - rising
    return times, rising, falling


class TestCrossingTime:
    def test_rising_crossing_interpolated(self, ramp_waves):
        times, rising, _ = ramp_waves
        t = crossing_time(times, rising, 0.5, rising=True)
        assert t[0] == pytest.approx(4.0, abs=1e-9)

    def test_falling_crossing(self, ramp_waves):
        times, _, falling = ramp_waves
        t = crossing_time(times, falling, 0.5, rising=False)
        assert t[0] == pytest.approx(4.0, abs=1e-9)

    def test_no_crossing_gives_nan(self, ramp_waves):
        times, rising, _ = ramp_waves
        t = crossing_time(times, rising, 2.0, rising=True)
        assert np.isnan(t[0])

    def test_direction_matters(self, ramp_waves):
        times, rising, _ = ramp_waves
        t = crossing_time(times, rising, 0.5, rising=False)
        assert np.isnan(t[0])  # monotone rising never crosses downward

    def test_first_crossing_of_nonmonotone(self):
        times = np.arange(7.0)
        wave = np.array([[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0]])
        t = crossing_time(times, wave, 0.5, rising=True)
        assert t[0] == pytest.approx(0.5)

    def test_batched(self, ramp_waves):
        times, rising, falling = ramp_waves
        both = np.vstack([rising, rising * 0.4])
        t = crossing_time(times, both, 0.5, rising=True)
        assert t[0] == pytest.approx(4.0, abs=1e-9)
        assert np.isnan(t[1])

    @given(level=st.floats(min_value=0.05, max_value=0.95))
    def test_linear_ramp_exact(self, level):
        times = np.linspace(0, 1, 50)
        wave = times[None, :]
        t = crossing_time(times, wave, level, rising=True)
        assert t[0] == pytest.approx(level, abs=1e-9)


class TestSlewAndDelay:
    def test_ramp_time_round_trip(self):
        slew = 30e-12
        t_ramp = ramp_time_for_slew(slew)
        assert (SLEW_HIGH - SLEW_LOW) * t_ramp == pytest.approx(slew)

    def test_measure_slew_rising(self, ramp_waves):
        times, rising, _ = ramp_waves
        s = measure_slew(times, rising, vdd=1.0, rising=True)
        # 20% at t=2.8, 80% at t=5.2
        assert s[0] == pytest.approx(2.4, abs=1e-6)

    def test_measure_slew_falling_positive(self, ramp_waves):
        times, _, falling = ramp_waves
        s = measure_slew(times, falling, vdd=1.0, rising=False)
        assert s[0] == pytest.approx(2.4, abs=1e-6)

    def test_measure_delay(self, ramp_waves):
        times, rising, falling = ramp_waves
        shifted = np.clip((times - 3.0) / 4.0, 0, 1)[None, :]
        d = measure_delay(times, rising, shifted, vdd=1.0,
                          in_rising=True, out_rising=True)
        assert d[0] == pytest.approx(1.0, abs=1e-9)

    def test_measure_delay_opposite_edges(self, ramp_waves):
        times, rising, falling = ramp_waves
        d = measure_delay(times, rising, falling, vdd=1.0,
                          in_rising=True, out_rising=False)
        assert d[0] == pytest.approx(0.0, abs=1e-9)

    def test_threshold_crossings_keys(self, ramp_waves):
        times, rising, _ = ramp_waves
        out = threshold_crossings(times, rising, vdd=1.0, rising=True)
        assert set(out) == {SLEW_LOW, 0.5, SLEW_HIGH}


class TestFractionSettled:
    def test_all_settled(self):
        waves = np.array([[0.0, 1.0], [0.0, 0.97]])
        assert fraction_settled(waves, vdd=1.0, rising=True) == 1.0

    def test_half_settled(self):
        waves = np.array([[0.0, 1.0], [0.0, 0.5]])
        assert fraction_settled(waves, vdd=1.0, rising=True) == 0.5

    def test_falling_direction(self):
        waves = np.array([[1.0, 0.01], [1.0, 0.5]])
        assert fraction_settled(waves, vdd=1.0, rising=False) == 0.5
