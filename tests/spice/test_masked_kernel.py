"""Masked-Newton kernel vs the reference kernel, fast path, perf counters."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.perf import PerfCounters
from repro.spice.measure import ramp_time_for_slew
from repro.spice.montecarlo import MonteCarloEngine, SimulationSetup
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.spice.transient import TransientSolver
from repro.units import FF, PS
from repro.variation.sampling import ParameterSample


def inverter_setup(tech, load=1 * FF):
    net = TransistorNetlist()
    net.fix("vdd", tech.vdd)
    net.fix("in", PiecewiseLinearSource.ramp(0, tech.vdd, 5 * PS,
                                             ramp_time_for_slew(20 * PS)))
    net.add_mosfet("mp", "p", "out", "in", "vdd", tech.unit_pmos_width)
    net.add_mosfet("mn", "n", "out", "in", "gnd", tech.unit_nmos_width)
    net.add_resistor("rw", "out", "leaf", 400.0)
    net.add_capacitor("cw", "leaf", 0.5 * FF)
    net.add_capacitor("cl", "leaf", load)
    return SimulationSetup(
        netlist=net, input_node="in", output_node="leaf",
        input_rising=True, output_rising=False,
        initial_voltages={"out": tech.vdd, "leaf": tech.vdd},
    )


class TestMaskedVsReference:
    @pytest.mark.parametrize("n_samples", [16, 256])
    def test_delays_match_reference_kernel(self, tech, variation, n_samples):
        setup = inverter_setup(tech)
        res = {}
        for masked in (False, True):
            engine = MonteCarloEngine(tech, variation, seed=11, masked=masked)
            res[masked] = engine.simulate(setup, n_samples)
        dev = np.nanmax(np.abs(res[True].delay - res[False].delay))
        assert dev < 1e-12
        slew_dev = np.nanmax(np.abs(res[True].output_slew - res[False].output_slew))
        assert slew_dev < 1e-12

    def test_masked_skips_converged_samples(self, tech, variation):
        engine = MonteCarloEngine(tech, variation, seed=11, masked=True)
        engine.simulate(inverter_setup(tech), 256)
        perf = engine.perf
        assert perf.full_sample_solves > 0
        assert perf.sample_solves < perf.full_sample_solves
        assert 0.0 < perf.active_sample_fraction < 1.0

    def test_predictor_reduces_newton_iterations(self, tech, variation):
        # The extrapolated starting iterate collapses smooth-segment
        # steps to one iteration; the reference kernel always needs the
        # solve-then-confirm pair at minimum wherever the state moves.
        iters = {}
        for masked in (False, True):
            engine = MonteCarloEngine(tech, variation, seed=11, masked=masked)
            engine.simulate(inverter_setup(tech), 64)
            iters[masked] = engine.perf.newton_iterations
        assert iters[True] < iters[False]

    def test_reference_kernel_counts_full_batch(self, tech, variation):
        engine = MonteCarloEngine(tech, variation, seed=11, masked=False)
        engine.simulate(inverter_setup(tech), 64)
        assert engine.perf.sample_solves == engine.perf.full_sample_solves
        assert engine.perf.active_sample_fraction == 1.0


class TestFastLinearPath:
    def _compiled_rc(self, tech):
        net = TransistorNetlist()
        net.fix("src", PiecewiseLinearSource.ramp(0, tech.vdd, 5 * PS, 20 * PS))
        net.add_resistor("r", "src", "mid", 1000.0)
        net.add_resistor("r2", "mid", "out", 500.0)
        net.add_capacitor("cm", "mid", 4 * FF)
        net.add_capacitor("c", "out", 10 * FF)
        return net.compile(tech)

    def test_fast_path_selected_for_linear_circuit(self, tech):
        compiled = self._compiled_rc(tech)
        perf = PerfCounters()
        solver = TransientSolver(compiled, ParameterSample.nominal(8, 0), perf=perf)
        assert solver._fast_linear
        solver.run(np.zeros((8, 2)), 0.0, 100 * PS, 50, record=["out"])
        assert perf.fast_solves > 0
        assert perf.fast_solves == perf.linear_solves

    def test_fast_path_matches_stacked_solver(self, tech):
        compiled = self._compiled_rc(tech)
        n = 8
        fast = TransientSolver(compiled, ParameterSample.nominal(n, 0))
        assert fast._fast_linear
        # Per-sample (but unit) resistor scales force the general stacked
        # kernel, which must agree with the shared-factorization path.
        stacked = TransientSolver(
            compiled, ParameterSample.nominal(n, 0),
            r_scale=np.ones((n, 2)),
        )
        assert not stacked._fast_linear
        v0 = np.zeros((n, 2))
        a = fast.run(v0, 0.0, 200 * PS, 100, record=["out"]).voltage("out")
        b = stacked.run(v0, 0.0, 200 * PS, 100, record=["out"]).voltage("out")
        assert np.max(np.abs(a - b)) < 1e-9

    def test_factorization_reused_across_steps(self, tech):
        compiled = self._compiled_rc(tech)
        solver = TransientSolver(compiled, ParameterSample.nominal(4, 0))
        solver.run(np.zeros((4, 2)), 0.0, 100 * PS, 80, record=["out"])
        assert len(solver._fast_factors) == 1  # one dt -> one factorization


class TestDcSettlePerf:
    def test_dc_settle_early_exit_counted(self, tech):
        net = TransistorNetlist()
        net.fix("src", 0.3)
        net.add_resistor("r", "src", "out", 1000.0)
        net.add_capacitor("c", "out", 10 * FF)
        compiled = net.compile(tech)
        perf = PerfCounters()
        solver = TransientSolver(compiled, ParameterSample.nominal(4, 0), perf=perf)
        v = solver.dc_settle(np.zeros((4, 1)))
        assert np.allclose(v, 0.3, atol=1e-3)
        assert perf.dc_early_exits == 1
        assert 0 < perf.dc_steps < 60  # converged before the step budget


class TestSingularDiagnostics:
    def _floating_solver(self, tech, masked=True):
        # Two nodes joined only by a resistor; per-sample stamps force
        # the stacked (non-fast) kernel.
        net = TransistorNetlist()
        net.add_resistor("r", "float_a", "float_b", 1000.0)
        compiled = net.compile(tech)
        return TransientSolver(
            compiled, ParameterSample.nominal(4, 0),
            r_scale=np.ones((4, 1)), masked=masked,
        )

    def test_singular_message_names_pivot_nodes(self, tech):
        solver = self._floating_solver(tech)
        jac = np.zeros((4, 2, 2))
        jac[:, 0, 0] = 1.0  # row for float_b is all-zero -> named
        msg = solver._singular_message(jac, t_new=3e-12)
        assert "singular Jacobian" in msg
        assert "float_b" in msg
        assert "3e-12" in msg

    def test_linalg_error_becomes_simulation_error(self, tech, monkeypatch):
        # The reference kernel always goes through the batched LAPACK
        # solve; its LinAlgError must surface as a SimulationError.
        solver = self._floating_solver(tech, masked=False)
        assert not solver._fast_linear

        def raise_singular(*args, **kwargs):
            raise np.linalg.LinAlgError("Singular matrix")

        monkeypatch.setattr(np.linalg, "solve", raise_singular)
        with pytest.raises(SimulationError, match="singular Jacobian"):
            solver.run(np.zeros((4, 2)), 0.0, 1 * PS, 2, record=[])

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_adjugate_solve_detects_singular_stack(self, tech, n):
        # A resistor chain with n unknown nodes, so the stack size
        # matches the solver's node table for the diagnostic message.
        net = TransistorNetlist()
        prev = "gnd"
        for i in range(n):
            net.add_resistor(f"r{i}", prev, f"f{i}", 1000.0)
            prev = f"f{i}"
        solver = TransientSolver(
            net.compile(tech), ParameterSample.nominal(4, 0),
            r_scale=np.ones((4, n)), masked=True,
        )
        jac = np.zeros((4, n, n))  # det == 0 for every sample
        resid = np.ones((4, n))
        with pytest.raises(SimulationError, match="singular Jacobian"):
            solver._solve_stack(jac, resid, t_new=1e-12)

    def test_large_stack_falls_back_to_lapack(self, tech, monkeypatch):
        solver = self._floating_solver(tech)

        def raise_singular(*args, **kwargs):
            raise np.linalg.LinAlgError("Singular matrix")

        monkeypatch.setattr(np.linalg, "solve", raise_singular)
        jac = np.eye(4)[None].repeat(2, axis=0)  # n = 4 > adjugate limit
        with pytest.raises(SimulationError, match="singular Jacobian"):
            solver._solve_stack(jac, np.ones((2, 4)), t_new=1e-12)


class TestAdjugateSolve:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_matches_lapack_on_random_stacks(self, tech, n):
        net = TransistorNetlist()
        net.add_resistor("r", "float_a", "float_b", 1000.0)
        solver = TransientSolver(
            net.compile(tech), ParameterSample.nominal(8, 0),
            r_scale=np.ones((8, 1)),
        )
        rng = np.random.default_rng(3)
        # Diagonally dominated stacks, like a C/dt-augmented Jacobian.
        jac = rng.normal(size=(8, n, n)) + 4.0 * np.eye(n)
        resid = rng.normal(size=(8, n))
        got = solver._solve_stack(jac, resid, t_new=0.0)
        want = np.linalg.solve(jac, -resid[..., None])[..., 0]
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-14)
