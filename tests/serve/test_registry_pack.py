"""Registry + packs: attach, mmap cold loads, reload-after-eviction."""

from __future__ import annotations

import pytest

from repro.core.sta_compiled import (
    CompiledSTA,
    Scenario,
    compile_design,
    design_cache_key,
)
from repro.errors import ReproError
from repro.journal import RunJournal, read_journal
from repro.netlist.benchmarks import attach_parasitics
from repro.netlist.generators import build_adder
from repro.pack import pack_compiled_design
from repro.perf import PerfCounters
from repro.serve.registry import DesignRegistry, _SINK_ENTRY_BYTES, design_nbytes
from repro.units import PS

SCENARIOS = [
    Scenario(input_slew=s * PS, launch_rising=e)
    for s in (10.0, 40.0)
    for e in (True, False)
]


@pytest.fixture(scope="module")
def second_circuit(tech):
    """A second distinct design so eviction has something to choose."""
    circuit = build_adder(2, name="adder2")
    attach_parasitics(circuit, tech, seed=11)
    return circuit


@pytest.fixture()
def adder_pack(adder_circuit, mini_models, tmp_path):
    """A valid ``.rpk`` for ``adder_circuit`` under its live key."""
    design = compile_design(adder_circuit, mini_models)
    key = design_cache_key(adder_circuit, mini_models)
    return pack_compiled_design(
        design, tmp_path / "adder3.rpk", design_key=key
    )


def flip_last_byte(path) -> None:
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestAttachPack:
    def test_cold_load_comes_from_the_pack(
        self, adder_circuit, mini_models, adder_pack, tmp_path
    ):
        perf = PerfCounters()
        journal = RunJournal(tmp_path / "serve.jsonl")
        registry = DesignRegistry(perf=perf, journal=journal)
        registry.register("adder3", adder_circuit, mini_models)
        assert registry.attach_pack("adder3", adder_pack) is True
        # Attach validates without counting as a load.
        assert perf.pack_loads == 0

        engine = registry.engine("adder3")
        assert perf.pack_loads == 1
        assert engine.design.pack is not None
        stats = registry.stats()["designs"][0]
        assert stats["mmap"] is True
        assert stats["pack"] == str(adder_pack)

        journal.close()
        loads = [
            e for e in read_journal(journal.path)
            if e["event"] == "serve_design_load"
        ]
        assert [e["source"] for e in loads] == ["pack"]

    def test_pack_served_answers_are_bit_identical(
        self, adder_circuit, mini_models, adder_pack
    ):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        assert registry.attach_pack("adder3", adder_pack)
        packed = registry.engine("adder3").analyze_batch(SCENARIOS)

        design = compile_design(adder_circuit, mini_models)
        direct = CompiledSTA(
            adder_circuit, mini_models, design=design
        ).analyze_batch(SCENARIOS)
        for a, b in zip(packed, direct):
            assert a.critical_delay == b.critical_delay
            for level in (-3, -1, 1, 3):
                assert a.critical_path.total(level) == b.critical_path.total(level)

    def test_attach_to_unregistered_design_raises(self, adder_pack):
        registry = DesignRegistry()
        with pytest.raises(ReproError, match="not registered"):
            registry.attach_pack("ghost", adder_pack)

    def test_stale_pack_is_refused_and_design_still_serves(
        self, adder_circuit, mini_models, tmp_path
    ):
        design = compile_design(adder_circuit, mini_models)
        rpk = pack_compiled_design(
            design, tmp_path / "stale.rpk", design_key="some-older-key"
        )
        journal = RunJournal(tmp_path / "serve.jsonl")
        registry = DesignRegistry(journal=journal)
        registry.register("adder3", adder_circuit, mini_models)
        assert registry.attach_pack("adder3", rpk) is False

        engine = registry.engine("adder3")  # compiles as before
        assert engine.design.pack is None
        assert engine.analyze().critical_delay > 0
        assert registry.stats()["designs"][0]["mmap"] is False

        journal.close()
        refusals = [
            e for e in read_journal(journal.path)
            if e["event"] == "pack_verify" and not e["ok"]
        ]
        assert len(refusals) == 1
        assert "stale" in refusals[0]["error"]

    def test_corrupt_pack_is_refused_at_attach(
        self, adder_circuit, mini_models, adder_pack
    ):
        flip_last_byte(adder_pack)
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        assert registry.attach_pack("adder3", adder_pack) is False
        assert registry.stats()["designs"][0]["pack"] is None

    def test_pack_corrupted_after_attach_falls_back_to_compile(
        self, adder_circuit, mini_models, adder_pack, tmp_path
    ):
        journal = RunJournal(tmp_path / "serve.jsonl")
        registry = DesignRegistry(journal=journal)
        registry.register("adder3", adder_circuit, mini_models)
        assert registry.attach_pack("adder3", adder_pack) is True
        flip_last_byte(adder_pack)  # rot after the attach-time check

        engine = registry.engine("adder3")
        assert engine.design.pack is None  # compiled, not mmap'd
        assert engine.analyze().critical_delay > 0
        assert registry.stats()["designs"][0]["mmap"] is False

        journal.close()
        events = read_journal(journal.path)
        assert any(
            e["event"] == "pack_verify" and not e["ok"] for e in events
        )
        loads = [e for e in events if e["event"] == "serve_design_load"]
        assert [e["source"] for e in loads] == ["compile"]


class TestReloadAfterEviction:
    def test_reload_is_bit_identical_and_counts_exactly_once(
        self, adder_circuit, second_circuit, mini_models, adder_pack, tmp_path
    ):
        perf = PerfCounters()
        journal = RunJournal(tmp_path / "serve.jsonl")
        registry = DesignRegistry(
            perf=perf, journal=journal, budget_bytes=1
        )
        registry.register("adder3", adder_circuit, mini_models)
        registry.register("adder2", second_circuit, mini_models)
        assert registry.attach_pack("adder3", adder_pack)

        baseline = registry.engine("adder3").analyze_batch(SCENARIOS)
        registry.engine("adder2")  # evicts adder3 (budget fits one)
        stats = {d["name"]: d for d in registry.stats()["designs"]}
        assert stats["adder3"]["resident"] is False
        assert stats["adder3"]["mmap"] is False
        assert stats["adder3"]["pack"] == str(adder_pack)  # path survives

        loads_before = perf.sta_serve_design_loads
        packs_before = perf.pack_loads
        reloaded = registry.engine("adder3").analyze_batch(SCENARIOS)
        # The reload mmap'd the pack exactly once — no recompile, no
        # double-count from validation.
        assert perf.pack_loads - packs_before == 1
        assert perf.sta_serve_design_loads - loads_before == 1

        for a, b in zip(baseline, reloaded):
            assert a.critical_delay == b.critical_delay
            for level in (-3, -1, 1, 3):
                assert a.critical_path.total(level) == b.critical_path.total(level)

        # And bit-identical to a compile-from-scratch engine.
        fresh = CompiledSTA(
            adder_circuit,
            mini_models,
            design=compile_design(adder_circuit, mini_models),
        ).analyze_batch(SCENARIOS)
        for a, b in zip(reloaded, fresh):
            assert a.critical_delay == b.critical_delay

        journal.close()
        loads = [
            e for e in read_journal(journal.path)
            if e["event"] == "serve_design_load" and e["design"] == "adder3"
        ]
        assert [e["source"] for e in loads] == ["pack", "pack"]


class TestResidentAccounting:
    def test_flat_parasitics_are_counted(self, adder_circuit, mini_models):
        # Regression: the LRU must charge the flat parasitic arrays
        # (net_load / end_elmore / per-level elm_in), not only the arc
        # tensor bank — they are the same order of magnitude.
        design = compile_design(adder_circuit, mini_models)
        nbytes = design_nbytes(design)
        parasitics = (
            design.net_load.nbytes
            + design.end_elmore.nbytes
            + sum(level.elm_in.nbytes for level in design.levels)
        )
        arcs_only = sum(
            getattr(design.arcs, f).nbytes
            for f in ("ref", "mu_coef", "sigma_coef", "skew_coef", "kurt_coef")
        )
        assert parasitics > 0
        assert nbytes >= arcs_only + parasitics

    def test_pack_backed_design_is_charged_resident_size(
        self, adder_circuit, mini_models, adder_pack
    ):
        from repro.pack import load_compiled_design

        full = compile_design(adder_circuit, mini_models)
        mapped = load_compiled_design(adder_pack)
        side = (
            len(mapped.sink_elmore) + len(mapped.sink_xw)
        ) * _SINK_ENTRY_BYTES
        assert design_nbytes(mapped) == side
        assert design_nbytes(mapped) < design_nbytes(full)

    def test_registry_budget_uses_resident_size(
        self, adder_circuit, mini_models, adder_pack
    ):
        full_cost = design_nbytes(compile_design(adder_circuit, mini_models))
        # A budget too small for the full tensors but large enough for
        # the mmap-resident side tables keeps the pack-backed design
        # resident instead of thrashing.
        registry = DesignRegistry(budget_bytes=full_cost - 1)
        registry.register("adder3", adder_circuit, mini_models)
        assert registry.attach_pack("adder3", adder_pack)
        registry.engine("adder3")
        stats = registry.stats()
        assert stats["designs"][0]["resident"] is True
        assert stats["resident_bytes"] < full_cost
