"""Design-registry tests: residency, bytes-budgeted LRU, build races."""

from __future__ import annotations

import threading

import pytest

from repro.core.sta_compiled import design_cache_key
from repro.errors import ReproError
from repro.journal import RunJournal, read_journal
from repro.netlist.benchmarks import attach_parasitics
from repro.netlist.generators import build_adder
from repro.perf import PerfCounters
from repro.serve.registry import DesignRegistry, design_nbytes


@pytest.fixture(scope="module")
def second_circuit(tech):
    """A second distinct design so eviction has something to choose."""
    circuit = build_adder(2, name="adder2")
    attach_parasitics(circuit, tech, seed=11)
    return circuit


class TestRegistration:
    def test_register_returns_content_key(self, adder_circuit, mini_models):
        registry = DesignRegistry()
        key = registry.register("adder3", adder_circuit, mini_models)
        assert key == design_cache_key(adder_circuit, mini_models)
        assert "adder3" in registry
        assert registry.names() == ["adder3"]
        assert registry.key("adder3") == key

    def test_unknown_design_raises(self, adder_circuit, mini_models):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        with pytest.raises(ReproError, match="not registered"):
            registry.engine("nope")
        with pytest.raises(ReproError, match="not registered"):
            registry.key("nope")

    def test_reregister_same_content_is_idempotent(
        self, adder_circuit, mini_models
    ):
        registry = DesignRegistry()
        k1 = registry.register("adder3", adder_circuit, mini_models)
        engine = registry.engine("adder3")
        k2 = registry.register("adder3", adder_circuit, mini_models)
        assert k1 == k2
        assert registry.engine("adder3") is engine


class TestResidency:
    def test_engine_is_warm_on_second_call(self, adder_circuit, mini_models):
        perf = PerfCounters()
        registry = DesignRegistry(perf=perf)
        registry.register("adder3", adder_circuit, mini_models)
        first = registry.engine("adder3")
        second = registry.engine("adder3")
        assert first is second
        assert perf.sta_serve_design_loads == 1
        assert registry.resident_bytes == design_nbytes(first.design) > 0

    def test_concurrent_cold_queries_build_once(
        self, adder_circuit, mini_models
    ):
        perf = PerfCounters()
        registry = DesignRegistry(perf=perf)
        registry.register("adder3", adder_circuit, mini_models)
        engines = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            engines.append(registry.engine("adder3"))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(e) for e in engines}) == 1
        assert perf.sta_serve_design_loads == 1

    def test_stats_snapshot(self, adder_circuit, mini_models):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        cold = registry.stats()
        assert cold["designs"][0]["resident"] is False
        assert cold["resident_bytes"] == 0
        registry.engine("adder3")
        warm = registry.stats()
        assert warm["designs"][0]["resident"] is True
        assert warm["designs"][0]["queries"] == 1
        assert warm["resident_bytes"] > 0


class TestEviction:
    def test_lru_evicts_least_recently_queried(
        self, adder_circuit, second_circuit, mini_models, tmp_path
    ):
        perf = PerfCounters()
        journal = RunJournal(tmp_path / "serve.jsonl")
        # Budget fits exactly one design: loading the second must evict
        # the first.
        registry = DesignRegistry(perf=perf, journal=journal, budget_bytes=1)
        registry.register("adder3", adder_circuit, mini_models)
        registry.register("adder2", second_circuit, mini_models)

        registry.engine("adder3")
        registry.engine("adder2")
        stats = {d["name"]: d for d in registry.stats()["designs"]}
        assert stats["adder3"]["resident"] is False
        assert stats["adder2"]["resident"] is True
        assert perf.sta_serve_evictions == 1

        # The evicted design is still registered and still serves — it
        # reloads, evicting the other in turn.
        engine = registry.engine("adder3")
        assert engine.analyze().critical_delay > 0
        assert perf.sta_serve_design_loads == 3
        assert perf.sta_serve_evictions == 2

        journal.close()
        events = [e["event"] for e in read_journal(journal.path)]
        assert events.count("serve_design_load") == 3
        assert events.count("serve_evict") == 2

    def test_design_being_served_is_never_evicted(
        self, adder_circuit, mini_models
    ):
        perf = PerfCounters()
        registry = DesignRegistry(perf=perf, budget_bytes=1)
        registry.register("adder3", adder_circuit, mini_models)
        # Alone and over budget: it must stay resident anyway.
        engine = registry.engine("adder3")
        assert registry.stats()["designs"][0]["resident"] is True
        assert perf.sta_serve_evictions == 0
        assert registry.engine("adder3") is engine

    def test_no_budget_means_no_eviction(
        self, adder_circuit, second_circuit, mini_models
    ):
        perf = PerfCounters()
        registry = DesignRegistry(perf=perf)
        registry.register("adder3", adder_circuit, mini_models)
        registry.register("adder2", second_circuit, mini_models)
        registry.engine("adder3")
        registry.engine("adder2")
        assert all(d["resident"] for d in registry.stats()["designs"])
        assert perf.sta_serve_evictions == 0


class TestDesignNbytes:
    def test_counts_tensors(self, adder_circuit, mini_models):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        design = registry.engine("adder3").design
        nbytes = design_nbytes(design)
        # At least the obvious dense arrays are counted.
        floor = (
            design.net_load.nbytes
            + design.end_elmore.nbytes
            + design.arcs.mu_coef.nbytes
        )
        assert nbytes >= floor > 0
