"""Wire-schema tests: round trips, expansion order, float exactness."""

from __future__ import annotations

import json

import pytest

from repro.moments.stats import SIGMA_LEVELS
from repro.serve.protocol import (
    QueryRequest,
    QueryResponse,
    REJECT_CODES,
    ScenarioResult,
    reject,
)
from repro.units import PS


class TestQueryRequest:
    def test_defaults(self):
        req = QueryRequest(design="d")
        assert req.slews_ps == (20.0,)
        assert req.edges == ("rise",)
        assert req.levels == SIGMA_LEVELS
        assert req.correlations == (None,)
        assert req.n_scenarios == 1

    def test_scenario_expansion_order_is_slew_major(self):
        req = QueryRequest(
            design="d",
            slews_ps=(10.0, 50.0),
            edges=("rise", "fall"),
            correlations=(None, 0.5),
        )
        scenarios = req.scenarios()
        assert len(scenarios) == req.n_scenarios == 8
        combos = [
            (s.input_slew / PS, s.launch_rising, s.stage_correlation)
            for s in scenarios
        ]
        assert combos == [
            (10.0, True, None), (10.0, True, 0.5),
            (10.0, False, None), (10.0, False, 0.5),
            (50.0, True, None), (50.0, True, 0.5),
            (50.0, False, None), (50.0, False, 0.5),
        ]

    def test_scenarios_carry_levels_and_units(self):
        req = QueryRequest(design="d", slews_ps=(30.0,), levels=(-3, 0, 3))
        (scenario,) = req.scenarios()
        assert scenario.input_slew == 30.0 * PS
        assert scenario.levels == (-3, 0, 3)

    def test_dict_round_trip(self):
        req = QueryRequest(
            design="adder3",
            slews_ps=(10.0, 1.0 / 3.0),
            edges=("fall",),
            levels=(-2, 2),
            correlations=(0.25, None),
            deadline_s=1.5,
            request_id="r1",
        )
        # through real JSON, as the transports do
        doc = json.loads(json.dumps(req.to_dict()))
        assert QueryRequest.from_dict(doc) == req

    def test_round_trip_omits_optional_fields(self):
        doc = QueryRequest(design="d").to_dict()
        assert "deadline_s" not in doc
        assert "request_id" not in doc
        assert QueryRequest.from_dict(doc) == QueryRequest(design="d")


class TestScenarioResult:
    def _result(self) -> ScenarioResult:
        # Deliberately awkward floats: exactness must survive JSON.
        return ScenarioResult(
            slew_ps=1.0 / 3.0,
            edge="rise",
            correlation=0.1 + 0.2,
            endpoint="nd_7",
            n_stages=13,
            critical_delay_s=8.442973912038e-10,
            quantiles_s={-3: 4.667e-10, 0: 8.44e-10, 3: 1.4715e-09},
            correlated_quantiles_s={-3: 4.7e-10, 0: 8.44e-10, 3: 1.44e-09},
        )

    def test_json_round_trip_is_bit_exact(self):
        result = self._result()
        doc = json.loads(json.dumps(result.to_dict()))
        back = ScenarioResult.from_dict(doc)
        assert back == result
        assert back.critical_delay_s == result.critical_delay_s
        assert back.quantiles_s[-3] == result.quantiles_s[-3]

    def test_quantile_keys_are_ints_after_round_trip(self):
        doc = json.loads(json.dumps(self._result().to_dict()))
        back = ScenarioResult.from_dict(doc)
        assert set(back.quantiles_s) == {-3, 0, 3}
        assert all(isinstance(k, int) for k in back.correlated_quantiles_s)


class TestQueryResponse:
    def test_ok_round_trip(self):
        response = QueryResponse(
            ok=True,
            design="d",
            key="abc123",
            request_id="q9",
            results=[
                ScenarioResult(
                    slew_ps=20.0, edge="rise", correlation=None,
                    endpoint="n1", n_stages=3, critical_delay_s=1e-10,
                    quantiles_s={0: 1e-10},
                    correlated_quantiles_s={0: 1e-10},
                )
            ],
            served_s=0.0123,
        )
        doc = json.loads(json.dumps(response.to_dict()))
        back = QueryResponse.from_dict(doc)
        assert back == response
        assert back.n_scenarios == 1

    def test_reject_round_trip(self):
        response = reject(
            "invalid", "2 validation error(s)", design="d",
            request_id="q1", diagnostics=["a: error SRV002: bad slew"],
        )
        doc = json.loads(json.dumps(response.to_dict()))
        back = QueryResponse.from_dict(doc)
        assert not back.ok
        assert back.code == "invalid"
        assert back.diagnostics == ["a: error SRV002: bad slew"]
        assert "results" not in doc

    @pytest.mark.parametrize("code", REJECT_CODES)
    def test_reject_codes_enumerated(self, code):
        assert reject(code, "why").code == code
