"""Server tests: concurrency, bit-identity, admission, deadlines, audit."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.sta_compiled import CompiledSTA
from repro.journal import RunJournal, read_journal
from repro.lint import lint_journal
from repro.netlist.benchmarks import attach_parasitics
from repro.netlist.generators import build_adder
from repro.perf import PerfCounters
from repro.serve import (
    DesignRegistry,
    QueryRequest,
    ServeClient,
    ServeConfig,
    STAServer,
    start_in_thread,
)

GRID = dict(slews_ps=(10.0, 50.0), edges=("rise", "fall"))


@pytest.fixture(scope="module")
def direct_results(adder_circuit, mini_models):
    """Ground truth: the same grid straight through analyze_batch."""
    engine = CompiledSTA(adder_circuit, mini_models)
    return engine.analyze_batch(QueryRequest(design="adder3", **GRID).scenarios())


@pytest.fixture()
def served(adder_circuit, mini_models, tmp_path):
    """A live server on a unix socket with a journal; yields the parts."""
    journal = RunJournal(tmp_path / "serve.jsonl")
    perf = PerfCounters()
    registry = DesignRegistry(perf=perf, journal=journal)
    registry.register("adder3", adder_circuit, mini_models)
    server = STAServer(
        registry,
        ServeConfig(max_concurrency=4, queue_depth=64),
        journal=journal,
        perf=perf,
    )
    socket_path = str(tmp_path / "sta.sock")
    handle = start_in_thread(server, socket_path=socket_path)
    client = ServeClient(socket_path=socket_path)
    yield client, server, perf, journal
    handle.stop()
    journal.close()


def _assert_bit_identical(response, direct, levels):
    assert response.ok, (response.code, response.error, response.diagnostics)
    assert len(response.results) == len(direct)
    for served_r, direct_r in zip(response.results, direct):
        assert served_r.critical_delay_s == direct_r.critical_delay
        for n in levels:
            assert served_r.quantiles_s[n] == direct_r.critical_path.total(n)
            assert (
                served_r.correlated_quantiles_s[n]
                == direct_r.correlated_quantiles[n]
            )


class TestConcurrentQueries:
    N_QUERIES = 32

    def test_concurrent_burst_is_bit_identical_and_loses_no_counts(
        self, served, direct_results
    ):
        client, server, perf, _ = served
        request = QueryRequest(design="adder3", **GRID)

        with ThreadPoolExecutor(max_workers=16) as pool:
            responses = list(
                pool.map(lambda _: client.query(request), range(self.N_QUERIES))
            )

        for response in responses:
            _assert_bit_identical(response, direct_results, request.levels)

        # Counter exactness under concurrency: nothing lost to races.
        n_scenarios = request.n_scenarios
        assert perf.sta_serve_requests == self.N_QUERIES
        assert perf.sta_serve_scenarios == self.N_QUERIES * n_scenarios
        assert perf.sta_scenarios == self.N_QUERIES * n_scenarios
        assert perf.sta_serve_rejects == 0
        stats = client.stats()
        assert stats["served"] == self.N_QUERIES
        assert stats["peak_active"] <= server.config.max_concurrency

    def test_journal_audit_trail_lints_clean(self, served, tmp_path):
        client, _, _, journal = served
        request = QueryRequest(design="adder3", **GRID)
        with ThreadPoolExecutor(max_workers=8) as pool:
            responses = list(pool.map(lambda _: client.query(request), range(8)))
        assert all(r.ok for r in responses)
        # A reject shows up in the same trail.
        bad = client.request({"op": "query", "design": "adder3", "slews_ps": [-1.0]})
        assert bad["code"] == "invalid"

        report = lint_journal(journal.path)
        assert not report.errors, [d.render() for d in report.errors]
        events = [e["event"] for e in read_journal(journal.path)]
        assert events.count("serve_admit") == 8
        assert events.count("serve_start") == 8
        assert events.count("serve_finish") == 8
        assert events.count("serve_reject") == 1


class TestRejects:
    def test_invalid_request_carries_lint_diagnostics(self, served):
        client, _, perf, _ = served
        doc = {
            "op": "query",
            "design": "adder3",
            "slews_ps": [-5.0],
            "edges": ["sideways"],
            "bogus_field": 1,
        }
        response = client.request(doc)
        assert response["ok"] is False
        assert response["code"] == "invalid"
        rendered = "\n".join(response["diagnostics"])
        assert "SRV001" in rendered  # unknown field
        assert "SRV002" in rendered  # bad slew / bad edge
        assert perf.sta_serve_rejects >= 1

    def test_unknown_design(self, served):
        client, _, _, _ = served
        response = client.request({"op": "query", "design": "missing"})
        assert response["code"] == "unknown_design"
        assert "adder3" in response["error"]

    def test_unknown_op_and_malformed_json(self, served):
        client, _, _, _ = served
        assert client.request({"op": "frobnicate"})["code"] == "invalid"
        # Raw garbage down the socket still gets a structured answer.
        import socket as socket_mod

        with socket_mod.socket(socket_mod.AF_UNIX) as sock:
            sock.connect(client.socket_path)
            sock.sendall(b"{not json}\n")
            raw = sock.recv(65536)
        assert json.loads(raw.decode())["code"] == "invalid"

    def test_oversized_scenario_grid_is_rejected(
        self, adder_circuit, mini_models, tmp_path
    ):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        server = STAServer(registry, ServeConfig(max_scenarios=4))
        handle = start_in_thread(
            server, socket_path=str(tmp_path / "s.sock")
        )
        try:
            client = ServeClient(socket_path=str(tmp_path / "s.sock"))
            response = client.query(
                QueryRequest(design="adder3", slews_ps=(1.0, 2.0, 3.0),
                             edges=("rise", "fall"))
            )
            assert response.code == "invalid"
            assert any("SRV003" in d for d in response.diagnostics)
        finally:
            handle.stop()


class TestAdmissionControl:
    def _run(self, server, coro_fn):
        """Run coro_fn() against a started server inside one event loop."""

        async def main():
            await server.start(socket_path=None, host="127.0.0.1", port=0)
            try:
                return await coro_fn()
            finally:
                server.stop()
                await server.serve_until_stopped()

        return asyncio.run(main())

    def test_full_queue_rejects_busy(
        self, adder_circuit, mini_models, monkeypatch
    ):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        perf = PerfCounters()
        server = STAServer(
            registry, ServeConfig(max_concurrency=1, queue_depth=1), perf=perf
        )
        release = threading.Event()
        entered = threading.Event()
        real_run = server._run_query

        def slow_run(request):
            entered.set()
            release.wait(timeout=10.0)
            return real_run(request)

        monkeypatch.setattr(server, "_run_query", slow_run)
        doc = {"op": "query", "design": "adder3"}

        async def scenario():
            loop = asyncio.get_running_loop()
            first = asyncio.ensure_future(server.handle(dict(doc)))
            await loop.run_in_executor(None, entered.wait, 10.0)
            second = asyncio.ensure_future(server.handle(dict(doc)))
            await asyncio.sleep(0.05)  # let the second reach the queue
            third = await server.handle(dict(doc))
            release.set()
            return third, await first, await second

        third, first, second = self._run(server, scenario)
        assert first["ok"] and second["ok"]
        assert third["ok"] is False
        assert third["code"] == "busy"
        assert perf.sta_serve_rejects == 1

    def test_deadline_miss_answers_immediately(
        self, adder_circuit, mini_models, monkeypatch
    ):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        perf = PerfCounters()
        server = STAServer(registry, ServeConfig(max_concurrency=1), perf=perf)
        release = threading.Event()

        def stuck_run(request):
            release.wait(timeout=10.0)
            raise AssertionError("result after deadline must be discarded")

        monkeypatch.setattr(server, "_run_query", stuck_run)

        async def scenario():
            out = await server.handle(
                {"op": "query", "design": "adder3", "deadline_s": 0.05}
            )
            release.set()
            return out

        response = self._run(server, scenario)
        assert response["code"] == "deadline"
        assert perf.sta_serve_deadline_misses == 1

    def test_worker_exception_returns_error_code(
        self, adder_circuit, mini_models, monkeypatch
    ):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        server = STAServer(registry, ServeConfig(max_concurrency=1))

        def broken_run(request):
            raise RuntimeError("tensor bank went missing")

        monkeypatch.setattr(server, "_run_query", broken_run)

        async def scenario():
            return await server.handle({"op": "query", "design": "adder3"})

        response = self._run(server, scenario)
        assert response["code"] == "error"
        assert "tensor bank went missing" in response["error"]


class TestEvictionMidFlight:
    def test_concurrent_queries_survive_lru_thrash(
        self, adder_circuit, mini_models, tech, direct_results
    ):
        second = build_adder(2, name="adder2")
        attach_parasitics(second, tech, seed=11)
        perf = PerfCounters()
        # Budget of one byte: every cross-design load evicts the other,
        # so queries race against eviction of the engine they just used.
        registry = DesignRegistry(perf=perf, budget_bytes=1)
        registry.register("adder3", adder_circuit, mini_models)
        registry.register("adder2", second, mini_models)
        server = STAServer(registry, ServeConfig(max_concurrency=4))

        request3 = QueryRequest(design="adder3", **GRID)
        request2 = QueryRequest(design="adder2", **GRID)
        direct2 = CompiledSTA(second, mini_models).analyze_batch(
            request2.scenarios()
        )

        async def scenario():
            jobs = []
            for i in range(16):
                doc = (request3 if i % 2 == 0 else request2).to_dict()
                doc["op"] = "query"
                jobs.append(server.handle(doc))
            return await asyncio.gather(*jobs)

        responses = TestAdmissionControl()._run(server, scenario)
        for i, doc in enumerate(responses):
            assert doc["ok"], doc
            expected = direct_results if i % 2 == 0 else direct2
            for served_r, direct_r in zip(doc["results"], expected):
                assert served_r["critical_delay_s"] == direct_r.critical_delay
        assert perf.sta_serve_evictions >= 1


class TestHttpTransport:
    @pytest.fixture()
    def http_served(self, adder_circuit, mini_models):
        registry = DesignRegistry()
        registry.register("adder3", adder_circuit, mini_models)
        server = STAServer(registry, ServeConfig(max_concurrency=2))
        handle = start_in_thread(server, host="127.0.0.1", port=0)
        yield server
        handle.stop()

    def test_query_and_stats_over_http(
        self, http_served, direct_results
    ):
        client = ServeClient(host="127.0.0.1", port=http_served.port)
        response = client.query(QueryRequest(design="adder3", **GRID))
        _assert_bit_identical(
            response, direct_results, QueryRequest(design="adder3").levels
        )
        assert client.designs() == ["adder3"]
        assert client.ping()
        assert client.stats()["served"] == 1

    def test_http_status_codes(self, http_served):
        conn = http.client.HTTPConnection("127.0.0.1", http_served.port)
        conn.request("POST", "/query", body=json.dumps({"design": "nope"}),
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status == 404
        conn = http.client.HTTPConnection("127.0.0.1", http_served.port)
        conn.request("GET", "/healthz")
        assert conn.getresponse().status == 200
        conn = http.client.HTTPConnection("127.0.0.1", http_served.port)
        conn.request("GET", "/no-such-route")
        assert conn.getresponse().status == 400
