"""Tests for the π-model and effective-capacitance reductions."""

import numpy as np
import pytest

from repro.errors import InterconnectError
from repro.interconnect.rctree import RCTree
from repro.interconnect.reduction import (
    PiModel,
    effective_capacitance,
    pi_model,
)
from repro.units import FF, PS


def ladder(n=5, r=200.0, c=1 * FF):
    t = RCTree("root")
    parent = "root"
    for k in range(n):
        t.add_segment(f"n{k}", parent, r, c)
        parent = f"n{k}"
    return t


class TestPiModel:
    def test_total_cap_preserved(self):
        tree = ladder()
        pi = pi_model(tree)
        assert pi.total_cap == pytest.approx(tree.total_cap(), rel=1e-9)

    def test_pure_cap_tree_degenerates(self):
        t = RCTree("root", root_cap=3 * FF)
        pi = pi_model(t)
        assert pi.resistance == 0.0
        assert pi.c_far == 0.0
        assert pi.c_near == pytest.approx(3 * FF)

    def test_single_rc_exact(self):
        # A single RC segment *is* a π with c_near = 0-ish split; the
        # admittance moments of the reduction must match the original.
        t = RCTree("root")
        t.add_segment("a", "root", 500.0, 2 * FF)
        pi = pi_model(t)
        # y1 = C, y2 = -R C^2, y3 = R^2 C^3 -> c_far = C, r = R, c_near = 0.
        assert pi.c_far == pytest.approx(2 * FF, rel=1e-9)
        assert pi.resistance == pytest.approx(500.0, rel=1e-9)
        assert pi.c_near == pytest.approx(0.0, abs=1e-20)

    def test_shielding_puts_cap_behind_resistance(self):
        pi = pi_model(ladder(n=8, r=500.0))
        assert pi.c_far > pi.c_near
        assert pi.resistance > 0

    def test_empty_tree_rejected(self):
        with pytest.raises(InterconnectError):
            pi_model(RCTree("root"))


class TestEffectiveCapacitance:
    def test_bounded_by_near_and_total(self):
        tree = ladder()
        pi = pi_model(tree)
        for t in (1 * PS, 10 * PS, 100 * PS):
            ceff = effective_capacitance(tree, t)
            assert pi.c_near - 1e-20 <= ceff <= tree.total_cap() + 1e-20

    def test_slow_edge_sees_everything(self):
        tree = ladder()
        ceff = effective_capacitance(tree, 1e-6)
        assert ceff == pytest.approx(tree.total_cap(), rel=1e-3)

    def test_fast_edge_sees_near_cap(self):
        tree = ladder(n=8, r=2000.0)
        pi = pi_model(tree)
        ceff = effective_capacitance(tree, 1e-15)
        assert ceff == pytest.approx(pi.c_near, rel=0.05)

    def test_monotone_in_transition_time(self):
        tree = ladder(n=6, r=800.0)
        times = np.geomspace(0.1 * PS, 1000 * PS, 12)
        ceffs = [effective_capacitance(tree, t) for t in times]
        assert all(b >= a - 1e-22 for a, b in zip(ceffs, ceffs[1:]))

    def test_validation(self):
        with pytest.raises(InterconnectError):
            effective_capacitance(ladder(), 0.0)
