"""Tests for the synthetic net generator."""

import pytest

from repro.errors import InterconnectError
from repro.interconnect.generate import NetGenerator
from repro.units import FF, UM


class TestChain:
    def test_totals_match_length(self, tech):
        gen = NetGenerator(tech, seed=0)
        tree = gen.chain(50 * UM)
        assert tree.total_resistance() == pytest.approx(
            tech.wire_r_per_m * 50 * UM, rel=1e-9)
        assert tree.total_cap() == pytest.approx(
            tech.wire_c_per_m * 50 * UM, rel=1e-9)

    def test_segment_cap(self, tech):
        gen = NetGenerator(tech, seed=0, segment_length=10 * UM)
        tree = gen.chain(50 * UM)
        assert tree.n_segments() == 5

    def test_max_segments_cap(self, tech):
        gen = NetGenerator(tech, seed=0, segment_length=1 * UM, max_segments=8)
        tree = gen.chain(500 * UM)
        assert tree.n_segments() == 8
        # Totals preserved despite coarser discretization.
        assert tree.total_resistance() == pytest.approx(
            tech.wire_r_per_m * 500 * UM, rel=1e-9)

    def test_single_leaf(self, tech):
        gen = NetGenerator(tech, seed=0)
        assert len(gen.chain(30 * UM).leaves()) == 1

    def test_rejects_nonpositive_length(self, tech):
        with pytest.raises(InterconnectError):
            NetGenerator(tech, seed=0).chain(0.0)


class TestRandomNet:
    def test_deterministic_per_seed(self, tech):
        a = NetGenerator(tech, seed=11).random_net()
        b = NetGenerator(tech, seed=11).random_net()
        assert a.total_cap() == pytest.approx(b.total_cap())
        assert len(a.nodes) == len(b.nodes)

    def test_seeds_differ(self, tech):
        a = NetGenerator(tech, seed=11).random_net()
        b = NetGenerator(tech, seed=12).random_net()
        assert (a.total_cap() != b.total_cap()) or (len(a.nodes) != len(b.nodes))

    def test_branch_count_bounded(self, tech):
        gen = NetGenerator(tech, seed=3)
        for _ in range(20):
            tree = gen.random_net(max_branches=2)
            assert 1 <= len(tree.leaves()) <= 3

    def test_length_scales_with_mean(self, tech):
        import numpy as np
        short = [NetGenerator(tech, seed=s).random_net(mean_length=10 * UM)
                 .total_cap() for s in range(30)]
        long = [NetGenerator(tech, seed=s).random_net(mean_length=100 * UM)
                .total_cap() for s in range(30)]
        assert np.mean(long) > 3 * np.mean(short)

    def test_paper_example_net(self, tech):
        tree = NetGenerator(tech, seed=0).paper_example_net()
        assert tree.total_cap() > 1 * FF
        assert len(tree.leaves()) == 1
