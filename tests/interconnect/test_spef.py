"""Round-trip and error-handling tests for the SPEF subset."""

import pytest

from repro.errors import InterconnectError
from repro.interconnect.generate import NetGenerator
from repro.interconnect.metrics import elmore_delay
from repro.interconnect.rctree import RCTree
from repro.interconnect.spef import read_spef, write_spef
from repro.units import FF, UM


class TestRoundTrip:
    def test_single_net(self, tech, tmp_path):
        gen = NetGenerator(tech, seed=3)
        tree = gen.random_net(name="n1")
        path = tmp_path / "one.spef"
        write_spef({"n1": tree}, path)
        back = read_spef(path)["n1"]
        assert back.total_cap() == pytest.approx(tree.total_cap(), rel=1e-5)
        assert back.total_resistance() == pytest.approx(
            tree.total_resistance(), rel=1e-5)
        leaf = tree.leaves()[0]
        assert elmore_delay(back, leaf) == pytest.approx(
            elmore_delay(tree, leaf), rel=1e-5)

    def test_many_nets(self, tech, tmp_path):
        gen = NetGenerator(tech, seed=4)
        nets = {f"net{i}": gen.random_net(name=f"net{i}") for i in range(5)}
        path = tmp_path / "many.spef"
        write_spef(nets, path)
        back = read_spef(path)
        assert set(back) == set(nets)

    def test_header_present(self, tech, tmp_path):
        gen = NetGenerator(tech, seed=5)
        path = tmp_path / "h.spef"
        write_spef({"n": gen.chain(20 * UM)}, path, design="mydesign")
        text = path.read_text()
        assert '*DESIGN "mydesign"' in text
        assert "*C_UNIT 1 FF" in text

    def test_branchy_tree_reconstructed(self, tmp_path):
        t = RCTree("drv")
        t.add_segment("a", "drv", 100.0, 1 * FF)
        t.add_segment("b", "a", 50.0, 0.5 * FF)
        t.add_segment("c", "a", 60.0, 0.7 * FF)
        path = tmp_path / "b.spef"
        write_spef({"n": t}, path)
        back = read_spef(path)["n"]
        assert set(back.leaves()) == {"b", "c"}
        assert back.root == "drv"


class TestErrors:
    def test_missing_res_section(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text("*D_NET n 1.0\n*CAP\n1 a 1.0\n*END\n")
        with pytest.raises(InterconnectError):
            read_spef(p)

    def test_unterminated_net(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text("*D_NET n 1.0\n*RES\n1 a b 10.0\n")
        with pytest.raises(InterconnectError):
            read_spef(p)

    def test_coupling_cap_rejected(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text("*D_NET n 1.0\n*CAP\n1 a b 0.5\n*RES\n1 a b 10.0\n*END\n")
        with pytest.raises(InterconnectError):
            read_spef(p)

    def test_disconnected_resistors_rejected(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text(
            "*D_NET n 1.0\n*CONN\n*I a O\n*RES\n1 a b 10.0\n2 x y 10.0\n*END\n")
        with pytest.raises(InterconnectError):
            read_spef(p)

    def test_truncated_cap_line(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text("*D_NET n 1.0\n*CAP\n1 b\n*RES\n1 a b 10.0\n*END\n")
        with pytest.raises(InterconnectError, match=r"net n: malformed \(truncated\?\) \*CAP"):
            read_spef(p)

    def test_truncated_res_line(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text("*D_NET n 1.0\n*CAP\n1 b 1.0\n*RES\n1 a b\n*END\n")
        with pytest.raises(InterconnectError, match=r"net n: malformed \(truncated\?\) \*RES"):
            read_spef(p)

    def test_duplicate_cap_entry(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text(
            "*D_NET n 1.0\n*CONN\n*I a O\n"
            "*CAP\n1 b 0.4\n2 b 0.6\n*RES\n1 a b 10.0\n*END\n")
        with pytest.raises(InterconnectError, match="duplicate \\*CAP entry for node 'b'"):
            read_spef(p)

    def test_unknown_driver_reference(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text(
            "*D_NET n 1.0\n*CONN\n*I ghost O\n"
            "*CAP\n1 b 1.0\n*RES\n1 a b 10.0\n*END\n")
        with pytest.raises(InterconnectError,
                           match="driver 'ghost' not in the resistor network"):
            read_spef(p)

    def test_non_numeric_value(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text(
            "*D_NET n 1.0\n*CONN\n*I a O\n"
            "*CAP\n1 b twelve\n*RES\n1 a b 10.0\n*END\n")
        with pytest.raises(InterconnectError,
                           match="net n: non-numeric \\*CAP value 'twelve'"):
            read_spef(p)

    def test_cap_budget_mismatch(self, tmp_path):
        p = tmp_path / "bad.spef"
        p.write_text(
            "*D_NET n 9.0\n*CONN\n*I a O\n"
            "*CAP\n1 b 1.0\n2 c 2.0\n*RES\n1 a b 10.0\n2 b c 10.0\n*END\n")
        with pytest.raises(InterconnectError,
                           match="cap total 9.* does not match the sum"):
            read_spef(p)

    def test_matching_cap_budget_accepted(self, tmp_path):
        p = tmp_path / "ok.spef"
        p.write_text(
            "*D_NET n 3.0\n*CONN\n*I a O\n"
            "*CAP\n1 b 1.0\n2 c 2.0\n*RES\n1 a b 10.0\n2 b c 10.0\n*END\n")
        assert read_spef(p)["n"].total_cap() == pytest.approx(3 * FF)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        p = tmp_path / "ok.spef"
        p.write_text(
            "// header comment\n\n*D_NET n 1.0\n*CONN\n*I a O\n"
            "*CAP\n1 b 1.0\n*RES\n1 a b 10.0\n*END\n")
        net = read_spef(p)["n"]
        assert net.root == "a"
        assert net.total_cap() == pytest.approx(1 * FF)
