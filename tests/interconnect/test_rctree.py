"""Unit and property tests for the RC tree structure."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InterconnectError
from repro.interconnect.rctree import RCTree
from repro.spice.netlist import TransistorNetlist
from repro.units import FF


def simple_tree():
    """root -- a -- b, with branch a -- c."""
    t = RCTree("root", root_cap=0.5 * FF)
    t.add_segment("a", "root", 100.0, 1 * FF)
    t.add_segment("b", "a", 200.0, 2 * FF)
    t.add_segment("c", "a", 300.0, 3 * FF)
    return t


class TestConstruction:
    def test_duplicate_node_rejected(self):
        t = simple_tree()
        with pytest.raises(InterconnectError):
            t.add_segment("a", "root", 1.0, 0.0)

    def test_unknown_parent_rejected(self):
        t = simple_tree()
        with pytest.raises(InterconnectError):
            t.add_segment("x", "nope", 1.0, 0.0)

    def test_nonpositive_resistance_rejected(self):
        t = simple_tree()
        with pytest.raises(InterconnectError):
            t.add_segment("x", "a", 0.0, 0.0)

    def test_add_cap_accumulates(self):
        t = simple_tree()
        t.add_cap("b", 1 * FF)
        assert t.nodes["b"].cap == pytest.approx(3 * FF)

    def test_add_cap_unknown_node(self):
        with pytest.raises(InterconnectError):
            simple_tree().add_cap("zz", 1 * FF)


class TestTopology:
    def test_leaves(self):
        assert set(simple_tree().leaves()) == {"b", "c"}

    def test_path_to(self):
        assert simple_tree().path_to("b") == ["root", "a", "b"]

    def test_path_to_unknown(self):
        with pytest.raises(InterconnectError):
            simple_tree().path_to("zz")

    def test_topological_root_first(self):
        order = list(simple_tree().topological())
        assert order[0] == "root"
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")

    def test_totals(self):
        t = simple_tree()
        assert t.total_cap() == pytest.approx(6.5 * FF)
        assert t.total_resistance() == pytest.approx(600.0)
        assert t.n_segments() == 3

    def test_downstream_cap(self):
        down = simple_tree().downstream_cap()
        assert down["b"] == pytest.approx(2 * FF)
        assert down["a"] == pytest.approx(6 * FF)
        assert down["root"] == pytest.approx(6.5 * FF)

    def test_copy_is_deep(self):
        t = simple_tree()
        c = t.copy()
        c.add_cap("b", 5 * FF)
        assert t.nodes["b"].cap == pytest.approx(2 * FF)


class TestEmbed:
    def test_embed_creates_elements(self, tech):
        t = simple_tree()
        net = TransistorNetlist()
        net.fix("drv", 0.0)
        mapping = t.embed(net, "w", "drv")
        assert mapping["root"] == "drv"
        assert len(net.resistors) == 3
        # root cap + three node caps
        assert len(net.capacitors) == 4

    def test_embedded_elmore_matches_metric(self, tech):
        from repro.interconnect.metrics import elmore_delay
        from repro.spice.transient import TransientSolver
        from repro.spice.netlist import PiecewiseLinearSource
        from repro.variation.sampling import ParameterSample

        # Drive the tree with an ideal step and check the 63.2% point of
        # the farthest sink is near its Elmore delay (within the usual
        # multi-pole tolerance).
        t = simple_tree()
        net = TransistorNetlist()
        net.fix("drv", PiecewiseLinearSource([0.0, 1e-15], [0.0, 1.0]))
        mapping = t.embed(net, "w", "drv")
        compiled = net.compile(tech)
        solver = TransientSolver(compiled, ParameterSample.nominal(1, 0))
        res = solver.run(np.zeros((1, compiled.n_unknown)), 0.0, 20e-12, 2000,
                         record=[mapping["b"]])
        wave = res.voltage(mapping["b"])[0]
        t632 = res.times[np.argmax(wave >= 0.632)]
        elm = elmore_delay(t, "b")
        assert t632 == pytest.approx(elm, rel=0.35)


@given(
    rs=st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=8),
    cs=st.lists(st.floats(min_value=0.0, max_value=1e-14), min_size=1, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_chain_invariants(rs, cs):
    """Property: chain totals equal sums; downstream decreasing."""
    n = min(len(rs), len(cs))
    t = RCTree("root")
    parent = "root"
    for k in range(n):
        t.add_segment(f"n{k}", parent, rs[k], cs[k])
        parent = f"n{k}"
    assert t.total_resistance() == pytest.approx(sum(rs[:n]))
    assert t.total_cap() == pytest.approx(sum(cs[:n]))
    down = t.downstream_cap()
    chain = ["root"] + [f"n{k}" for k in range(n)]
    values = [down[x] for x in chain]
    assert all(a >= b - 1e-30 for a, b in zip(values, values[1:]))
