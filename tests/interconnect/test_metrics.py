"""Tests for Elmore / moment / D2M metrics against hand calculations."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InterconnectError
from repro.interconnect.metrics import d2m_delay, elmore_delay, impulse_moments
from repro.interconnect.rctree import RCTree
from repro.units import FF


def single_rc(r=1000.0, c=1 * FF):
    t = RCTree("root")
    t.add_segment("a", "root", r, c)
    return t


def ladder(n=4, r=100.0, c=1 * FF):
    t = RCTree("root")
    parent = "root"
    for k in range(n):
        t.add_segment(f"n{k}", parent, r, c)
        parent = f"n{k}"
    return t


class TestElmore:
    def test_single_rc(self):
        assert elmore_delay(single_rc(), "a") == pytest.approx(1000.0 * 1 * FF)

    def test_ladder_hand_computed(self):
        # Elmore at last node of an n-ladder: r*c * sum_{i=1..n} i ... computed
        # as sum over edges of R_edge * downstream cap.
        t = ladder(3)
        # edges: root-n0 (down 3c), n0-n1 (down 2c), n1-n2 (down c)
        expected = 100.0 * (3 + 2 + 1) * 1 * FF
        assert elmore_delay(t, "n2") == pytest.approx(expected)

    def test_branching(self):
        t = RCTree("root")
        t.add_segment("a", "root", 100.0, 1 * FF)
        t.add_segment("b", "a", 200.0, 1 * FF)
        t.add_segment("c", "a", 300.0, 1 * FF)
        # To b: edge root-a carries all 3 caps; edge a-b carries only cb.
        assert elmore_delay(t, "b") == pytest.approx(100 * 3 * FF + 200 * 1 * FF)
        # Side branch cap delays b but its resistance does not.
        assert elmore_delay(t, "c") == pytest.approx(100 * 3 * FF + 300 * 1 * FF)

    def test_all_nodes_dict(self):
        t = ladder(3)
        d = elmore_delay(t)
        assert d["root"] == 0.0
        assert set(d) == {"root", "n0", "n1", "n2"}
        assert d["n0"] < d["n1"] < d["n2"]

    def test_unknown_sink(self):
        with pytest.raises(InterconnectError):
            elmore_delay(ladder(), "zz")


class TestMomentsAndD2M:
    def test_single_pole_moments(self):
        # For one RC: m1 = RC, m2 = (RC)^2.
        t = single_rc()
        m1, m2 = impulse_moments(t, "a")
        rc = 1000.0 * 1 * FF
        assert m1 == pytest.approx(rc)
        assert m2 == pytest.approx(rc * rc)

    def test_single_pole_d2m_is_ln2_rc(self):
        t = single_rc()
        rc = 1000.0 * 1 * FF
        assert d2m_delay(t, "a") == pytest.approx(math.log(2) * rc)

    def test_d2m_at_far_sink_below_elmore(self):
        # D2M tightens Elmore's pessimism on distributed lines.
        t = ladder(10)
        sink = "n9"
        assert d2m_delay(t, sink) < elmore_delay(t, sink)

    def test_m2_positive(self):
        t = ladder(5)
        _, m2 = impulse_moments(t, "n4")
        assert m2 > 0

    @given(
        n=st.integers(min_value=1, max_value=10),
        r=st.floats(min_value=10, max_value=1e4),
        c=st.floats(min_value=1e-16, max_value=1e-14),
    )
    @settings(max_examples=40, deadline=None)
    def test_elmore_monotone_along_chain(self, n, r, c):
        t = ladder(n, r, c)
        delays = elmore_delay(t)
        chain = [f"n{k}" for k in range(n)]
        values = [delays[x] for x in chain]
        assert all(b > a for a, b in zip(values, values[1:])) or n == 1

    @given(scale=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_elmore_scales_linearly_with_r(self, scale):
        base = elmore_delay(ladder(4, 100.0), "n3")
        scaled = elmore_delay(ladder(4, 100.0 * scale), "n3")
        assert scaled == pytest.approx(base * scale, rel=1e-9)
