"""Property-based round-trip tests over randomly generated artifacts.

Hypothesis drives random circuit and net construction; the properties
assert that the I/O layers (Verilog, SPEF, Liberty-JSON, model
serialization) are lossless for everything the generators can produce.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.interconnect.metrics import elmore_delay
from repro.interconnect.rctree import RCTree
from repro.interconnect.spef import read_spef, write_spef
from repro.netlist.circuit import Circuit
from repro.netlist.verilog import read_verilog, write_verilog

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_CELLS_1IN = ["INVx1", "INVx2", "BUFx1"]
_CELLS_2IN = ["NAND2x1", "NAND2x4", "NOR2x2"]


@st.composite
def random_circuit(draw):
    """A random small DAG circuit over the library's 1/2-input cells."""
    n_inputs = draw(st.integers(min_value=1, max_value=4))
    n_gates = draw(st.integers(min_value=1, max_value=12))
    circuit = Circuit("rand")
    nets = []
    for i in range(n_inputs):
        circuit.add_input(f"pi{i}")
        nets.append(f"pi{i}")
    for g in range(n_gates):
        two_input = draw(st.booleans())
        if two_input:
            cell = draw(st.sampled_from(_CELLS_2IN))
            a = nets[draw(st.integers(0, len(nets) - 1))]
            b = nets[draw(st.integers(0, len(nets) - 1))]
            pins = {"A": a, "B": b}
        else:
            cell = draw(st.sampled_from(_CELLS_1IN))
            pins = {"A": nets[draw(st.integers(0, len(nets) - 1))]}
        out = f"w{g}"
        circuit.add_gate(f"g{g}", cell, pins, out)
        nets.append(out)
    # Every sink-less net becomes an output.
    for name, net in circuit.nets.items():
        if not net.sinks:
            circuit.add_output(name)
    return circuit


@st.composite
def random_rctree(draw):
    """A random RC tree (chain with random branch points)."""
    n = draw(st.integers(min_value=1, max_value=10))
    tree = RCTree("drv")
    nodes = ["drv"]
    for k in range(n):
        parent = nodes[draw(st.integers(0, len(nodes) - 1))]
        r = draw(st.floats(min_value=1.0, max_value=5e3))
        c = draw(st.floats(min_value=0.0, max_value=5e-15))
        tree.add_segment(f"n{k}", parent, r, c)
        nodes.append(f"n{k}")
    return tree


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(circuit=random_circuit())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_verilog_round_trip_preserves_structure(circuit, tmp_path):
    path = tmp_path / "c.v"
    write_verilog(circuit, path)
    back = read_verilog(path)
    assert back.n_cells == circuit.n_cells
    assert back.n_nets == circuit.n_nets
    assert back.inputs == circuit.inputs
    assert sorted(back.outputs) == sorted(circuit.outputs)
    for name, gate in circuit.gates.items():
        other = back.gates[name]
        assert other.cell_name == gate.cell_name
        assert other.pins == gate.pins
        assert other.output_net == gate.output_net


@given(circuit=random_circuit(), vector_seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_verilog_round_trip_preserves_function(circuit, vector_seed, tmp_path,
                                               library):
    path = tmp_path / "c.v"
    write_verilog(circuit, path)
    back = read_verilog(path)
    rng = np.random.default_rng(vector_seed)
    vec = {n: int(rng.integers(0, 2)) for n in circuit.inputs}
    assert circuit.evaluate(vec, library) == back.evaluate(vec, library)


@given(tree=random_rctree())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_spef_round_trip_preserves_delays(tree, tmp_path):
    path = tmp_path / "n.spef"
    write_spef({"net": tree}, path)
    back = read_spef(path)["net"]
    assert back.total_cap() == pytest.approx(tree.total_cap(), rel=1e-5, abs=1e-21)
    assert back.total_resistance() == pytest.approx(tree.total_resistance(), rel=1e-5)
    for leaf in tree.leaves():
        assert elmore_delay(back, leaf) == pytest.approx(
            elmore_delay(tree, leaf), rel=1e-5, abs=1e-18)


@given(tree=random_rctree())
@settings(max_examples=40, deadline=None)
def test_elmore_dominates_every_upstream_node(tree):
    """Elmore is monotone along any root-to-leaf path."""
    delays = elmore_delay(tree)
    for leaf in tree.leaves():
        path_nodes = tree.path_to(leaf)
        values = [delays[n] for n in path_nodes]
        assert all(b >= a - 1e-25 for a, b in zip(values, values[1:]))


@given(tree=random_rctree(), scale=st.floats(min_value=0.25, max_value=4.0))
@settings(max_examples=30, deadline=None)
def test_pi_model_total_cap_invariant_under_r_scaling(tree, scale):
    """π reduction always conserves total capacitance."""
    from repro.interconnect.reduction import pi_model
    if tree.total_cap() <= 0:
        return
    scaled = RCTree(tree.root, root_cap=tree.nodes[tree.root].cap)
    for name in tree.topological():
        node = tree.nodes[name]
        if node.parent is not None:
            scaled.add_segment(name, node.parent, node.resistance * scale, node.cap)
    pi = pi_model(scaled)
    assert pi.total_cap == pytest.approx(tree.total_cap(), rel=1e-9)
