"""End-to-end integration: characterize → calibrate → STA → golden MC.

This is the whole paper flow in miniature on a real arithmetic circuit,
checking the headline claims at reduced fidelity:

* the N-sigma model's path quantiles track golden Monte-Carlo;
* the model orders the comparison methods the way Table III does;
* the model is orders of magnitude faster than Monte-Carlo.
"""

import numpy as np
import pytest

from repro.baselines.correction import CorrectionBasedSTA
from repro.baselines.golden import GoldenPathMC
from repro.baselines.primetime import CornerSTA
from repro.core.sta import StatisticalSTA
from repro.interconnect.generate import NetGenerator
from repro.moments.stats import SIGMA_LEVELS
from repro.netlist.benchmarks import attach_parasitics, build_pulpino_unit
from repro.units import UM


@pytest.fixture(scope="module")
def full_run(mini_flow, mini_models):
    circuit = build_pulpino_unit("SUB", 3)
    attach_parasitics(circuit, mini_flow.tech, seed=17)
    sta = StatisticalSTA(circuit, mini_models)
    result = sta.analyze()
    golden = GoldenPathMC(
        circuit, mini_flow.library, mini_flow.tech, mini_flow.variation, seed=99)
    mc = golden.run(result.critical_path, n_samples=300)
    return circuit, result, mc


@pytest.mark.slow
class TestEndToEnd:
    def test_golden_mc_healthy(self, full_run):
        _, _, mc = full_run
        assert mc.valid_fraction > 0.95
        d = mc.delay[np.isfinite(mc.delay)]
        assert 0.03 < np.std(d) / np.mean(d) < 0.5

    def test_mean_delay_within_10pct(self, full_run):
        _, result, mc = full_run
        assert result.critical_path.total(0) == pytest.approx(
            mc.quantiles[0], rel=0.10)

    def test_plus3_sigma_within_paper_band(self, full_run):
        # Paper: avg +3 sigma error 3.6%; allow slack at test fidelity.
        _, result, mc = full_run
        err = abs(result.critical_path.total(3) - mc.quantiles[3]) / mc.quantiles[3]
        assert err < 0.25

    def test_minus3_sigma_reasonable(self, full_run):
        _, result, mc = full_run
        err = abs(result.critical_path.total(-3) - mc.quantiles[-3]) / mc.quantiles[-3]
        assert err < 0.35

    def test_table3_method_ordering(self, full_run, mini_models, mini_flow, engine):
        """Ours closest to MC; correction-based next; corner STA worst."""
        _, result, mc = full_run
        path = result.critical_path
        truth = mc.quantiles[3]

        ours = abs(path.total(3) - truth) / truth
        corner = CornerSTA(mini_models).analyze_path(path)
        pt_err = abs(corner.late - truth) / truth

        gen = NetGenerator(mini_flow.tech, seed=23)
        corr = CorrectionBasedSTA.calibrate(
            mini_models, engine, [gen.chain(50 * UM)], n_samples=200)
        corr_late, _, _ = corr.analyze_path(path)
        corr_err = abs(corr_late - truth) / truth

        assert ours < pt_err
        assert corr_err < pt_err

    def test_speedup_over_mc(self, full_run):
        _, result, mc = full_run
        assert mc.runtime_s / max(result.runtime_s, 1e-9) > 20

    def test_path_identification_stable(self, full_run, mini_models):
        circuit, result, _ = full_run
        again = StatisticalSTA(circuit, mini_models).analyze()
        assert [s.gate for s in again.critical_path.stages] == [
            s.gate for s in result.critical_path.stages]
