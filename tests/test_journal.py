"""Tests of the JSONL run journal and its lint rules (RUN001–RUN003)."""

import json

import pytest

from repro.journal import KNOWN_EVENTS, RunJournal, read_journal
from repro.lint import lint_artifact, lint_journal
from repro.perf import PerfCounters


class TestRunJournal:
    def test_events_carry_monotonic_seq_and_offsets(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path, run_id="r1") as journal:
            journal.run_start(seed=7, workers=4)
            journal.event("task_finish", task=0, label="a", attempts=1)
            journal.event("checkpoint", key="abc", arc=["INVx1", "A", "fall"])
            journal.run_finish(arcs=1)
        events = read_journal(path)
        assert [e["event"] for e in events] == [
            "run_start", "task_finish", "checkpoint", "run_finish"]
        assert [e["seq"] for e in events] == [0, 1, 2, 3]
        assert all(e["t_s"] >= 0 for e in events)
        assert events[0]["run_id"] == "r1" and events[0]["seed"] == 7
        assert events[-1]["status"] == "ok"

    def test_append_mode_stacks_resume_runs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as first:
            first.run_start()
        with RunJournal(path) as second:  # a resume run appends
            second.run_start()
            second.run_finish()
        events = read_journal(path)
        assert len(events) == 3
        assert [e["seq"] for e in events] == [0, 0, 1]  # seq resets per run

    def test_closed_journal_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.event("note", text="too late")

    def test_perf_snapshot_round_trips_counters(self, tmp_path):
        path = tmp_path / "run.jsonl"
        perf = PerfCounters()
        perf.task_retries = 3
        perf.cache_corrupt = 1
        with RunJournal(path) as journal:
            journal.perf_snapshot(perf, stage="characterize")
        (event,) = read_journal(path)
        restored = PerfCounters.from_dict(event["counters"])
        assert restored.task_retries == 3
        assert restored.cache_corrupt == 1
        assert event["stage"] == "characterize"

    def test_read_journal_raises_on_corrupt_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"seq": 0, "event": "note"}\n{"seq": 1, "even\n')
        with pytest.raises(ValueError, match="corrupt journal line"):
            read_journal(path)

    def test_concurrent_writers_never_tear_or_duplicate_seq(self, tmp_path):
        # The serving path journals from the event-loop thread and its
        # worker threads at once. Unlocked, two threads could read the
        # same `seq` (the flush between read and increment drops the
        # GIL) or interleave partial lines — both RUN002 violations.
        import threading

        path = tmp_path / "run.jsonl"
        n_threads, n_events = 8, 50
        barrier = threading.Barrier(n_threads)
        with RunJournal(path) as journal:

            def writer(tid: int) -> None:
                barrier.wait()
                for i in range(n_events):
                    journal.event("note", thread=tid, i=i)

            threads = [
                threading.Thread(target=writer, args=(t,))
                for t in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        events = read_journal(path)  # raises on any torn line
        assert [e["seq"] for e in events] == list(range(n_threads * n_events))
        report = lint_journal(path)
        assert not report.errors, [d.render() for d in report.errors]

    def test_all_emitted_events_are_known(self, tmp_path):
        # The executor/flow emit only vocabulary events; a typo here
        # would make every journal fail lint.
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            for name in sorted(KNOWN_EVENTS):
                journal.event(name)
        report = lint_journal(path)
        assert not [d for d in report.diagnostics if d.rule_id == "RUN002"]


class TestExecutorJournaling:
    def test_parallel_map_event_stream(self, tmp_path):
        from repro.parallel import RetryPolicy, parallel_map
        from tests.test_failure_injection import _always_fail, _fail_until_sentinel

        path = tmp_path / "run.jsonl"
        tasks = [(0, str(tmp_path / "sentinel"))]
        with RunJournal(path) as journal:
            parallel_map(
                _fail_until_sentinel, tasks, workers=1,
                policy=RetryPolicy(max_retries=1, backoff_s=0.01),
                journal=journal)
            parallel_map(
                _always_fail, ["bad"], workers=1, quarantine=[],
                labels=["the-bad-one"], journal=journal)
        names = [e["event"] for e in read_journal(path)]
        assert names == ["task_start", "task_retry", "task_finish",
                         "task_start", "task_quarantine"]
        assert lint_journal(path).ok
    def _write(self, tmp_path, lines):
        path = tmp_path / "run.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in lines))
        return path

    def test_healthy_journal_is_clean(self, tmp_path):
        path = self._write(tmp_path, [
            {"seq": 0, "t_s": 0.0, "event": "run_start", "run_id": "r"},
            {"seq": 1, "t_s": 0.1, "event": "task_finish", "task": 0},
            {"seq": 2, "t_s": 0.2, "event": "run_finish", "status": "ok"},
        ])
        report = lint_journal(path)
        assert report.ok and len(report.diagnostics) == 0

    def test_unparseable_line_is_run002_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"seq": 0, "event": "note"}\nnot json at all\n')
        report = lint_journal(path)
        assert not report.ok
        assert [d.rule_id for d in report.errors] == ["RUN002"]

    def test_unknown_event_and_bad_seq_are_run002(self, tmp_path):
        path = self._write(tmp_path, [
            {"seq": 0, "event": "mystery_event"},
            {"seq": 5, "event": "note"},  # jumps from 0 to 5
            {"event": "note"},  # no seq at all
        ])
        report = lint_journal(path)
        messages = [d.message for d in report.diagnostics]
        assert any("unknown journal event" in m for m in messages)
        assert any("non-monotonic" in m for m in messages)
        assert any("no integer 'seq'" in m for m in messages)

    def test_seq_reset_after_resume_is_legal(self, tmp_path):
        path = self._write(tmp_path, [
            {"seq": 0, "event": "run_start"},
            {"seq": 1, "event": "run_finish", "status": "error"},
            {"seq": 0, "event": "run_start"},  # resume run appended
            {"seq": 1, "event": "run_finish", "status": "ok"},
        ])
        report = lint_journal(path)
        assert report.ok and len(report.diagnostics) == 0

    def test_quarantine_events_surface_as_run001(self, tmp_path):
        path = self._write(tmp_path, [
            {"seq": 0, "event": "arc_quarantine", "cell": "INVx2", "pin": "A",
             "edge": "fall", "error_type": "CharacterizationError",
             "message": "injected"},
        ])
        report = lint_journal(path)
        assert report.ok  # warning, not error
        (diag,) = report.diagnostics
        assert diag.rule_id == "RUN001"
        assert "INVx2/A/fall" in diag.message

    def test_interrupted_run_is_run003(self, tmp_path):
        path = self._write(tmp_path, [
            {"seq": 0, "event": "run_start", "run_id": "doomed"},
            {"seq": 1, "event": "task_finish", "task": 0},
        ])
        report = lint_journal(path)
        assert report.ok
        (diag,) = report.diagnostics
        assert diag.rule_id == "RUN003"
        assert "doomed" in diag.message

    def test_lint_artifact_dispatches_jsonl(self, tmp_path):
        path = self._write(tmp_path, [{"seq": 0, "event": "run_start"}])
        report = lint_artifact(path)
        assert any(d.rule_id == "RUN003" for d in report.diagnostics)


class TestJournalCli:
    def test_repro_lint_accepts_clean_journal(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "run.jsonl"
        with RunJournal(path, run_id="cli") as journal:
            journal.run_start(seed=1)
            journal.run_finish()
        assert main(["lint", str(path)]) == 0
        capsys.readouterr()

    def test_repro_lint_fails_on_corrupt_journal(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "run.jsonl"
        path.write_text("garbage that is not json\n")
        assert main(["lint", str(path)]) == 1
        assert "RUN002" in capsys.readouterr().out
