"""Round-trip tests for the Liberty-like JSON store."""

import json

import numpy as np
import pytest

from repro.cells.liberty import (
    load_library_characterization,
    save_library_characterization,
)
from repro.errors import CharacterizationError


class TestRoundTrip:
    def test_full_round_trip(self, mini_charac, tmp_path):
        path = tmp_path / "lib.json"
        save_library_characterization(mini_charac, path)
        back = load_library_characterization(path)
        assert len(back) == len(mini_charac)
        for key, table in mini_charac.tables.items():
            other = back.tables[key]
            assert np.allclose(other.moments, table.moments)
            assert np.allclose(other.quantiles, table.quantiles)
            assert np.allclose(other.out_slew, table.out_slew)
            assert other.n_samples == table.n_samples

    def test_creates_directories(self, mini_charac, tmp_path):
        path = tmp_path / "deep" / "nested" / "lib.json"
        save_library_characterization(mini_charac, path)
        assert path.exists()

    def test_format_header(self, mini_charac, tmp_path):
        path = tmp_path / "lib.json"
        save_library_characterization(mini_charac, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-lvf-json"
        assert doc["version"] == 1
        table = doc["tables"][0]
        assert "index_1_slew_s" in table
        assert "index_2_load_f" in table

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else", "tables": []}')
        with pytest.raises(CharacterizationError):
            load_library_characterization(path)

    def test_malformed_record_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "repro-lvf-json", "version": 1, "tables": [{"cell": "X"}]}')
        with pytest.raises(CharacterizationError):
            load_library_characterization(path)
