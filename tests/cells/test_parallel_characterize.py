"""Parallel characterization: worker-count invariance and arc caching."""

import numpy as np
import pytest

from repro.cache import JsonCache
from repro.cells.characterize import (
    ArcCharacterizer,
    arc_cache_payload,
    characterize_library,
)
from repro.cache import content_key
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import FF, PS

TINY_SLEWS = (20 * PS, 120 * PS)
TINY_LOADS = (0.3 * FF, 2.0 * FF)
N_TINY = 40


def _fresh_engine(tech, variation, **kw):
    return MonteCarloEngine(tech, variation, seed=7, steps_per_window=120, **kw)


def _tables_equal(a, b):
    return (
        np.array_equal(a.moments, b.moments)
        and np.array_equal(a.quantiles, b.quantiles)
        and np.array_equal(a.out_slew, b.out_slew)
    )


class TestWorkerInvariance:
    def test_parallel_bit_identical_to_serial(self, tech, variation, library):
        tables = {}
        for workers in (1, 2):
            engine = _fresh_engine(tech, variation)
            charac = characterize_library(
                ArcCharacterizer(engine), library, cells=["INVx1"],
                slews=TINY_SLEWS, loads=TINY_LOADS, n_samples=N_TINY,
                workers=workers,
            )
            tables[workers] = charac.get("INVx1", "A", False)
        assert _tables_equal(tables[1], tables[2])

    def test_single_arc_characterize_deterministic(self, tech, variation, library):
        cell = library.get("INVx1")
        runs = []
        for workers in (1, 2):
            engine = _fresh_engine(tech, variation)
            runs.append(
                ArcCharacterizer(engine).characterize(
                    cell, "A", TINY_SLEWS, TINY_LOADS, N_TINY, workers=workers
                )
            )
        assert _tables_equal(runs[0], runs[1])

    def test_worker_perf_merged_into_engine(self, tech, variation, library):
        engine = _fresh_engine(tech, variation)
        ArcCharacterizer(engine).characterize(
            library.get("INVx1"), "A", TINY_SLEWS, TINY_LOADS, N_TINY, workers=2
        )
        # 4 grid points simulated in workers, merged back into the parent.
        assert engine.perf.simulations == 4
        assert engine.perf.newton_iterations > 0
        assert engine.perf.wall_s.get("simulate", 0.0) > 0.0


class TestArcCache:
    def _run(self, tech, variation, library, cache, n_samples=N_TINY):
        engine = _fresh_engine(tech, variation)
        charac = characterize_library(
            ArcCharacterizer(engine), library, cells=["INVx1"],
            slews=TINY_SLEWS, loads=TINY_LOADS, n_samples=n_samples,
            workers=1, cache=cache,
        )
        return charac.get("INVx1", "A", False), engine

    def test_second_run_hits_and_skips_simulation(
        self, tech, variation, library, tmp_path
    ):
        cache = JsonCache(tmp_path)
        first, engine1 = self._run(tech, variation, library, cache)
        assert engine1.perf.simulations == 4
        assert (cache.hits, cache.misses) == (0, 1)
        second, engine2 = self._run(tech, variation, library, cache)
        assert engine2.perf.simulations == 0  # served from cache
        assert cache.hits == 1
        assert _tables_equal(first, second)

    def test_sample_count_change_misses(self, tech, variation, library, tmp_path):
        cache = JsonCache(tmp_path)
        self._run(tech, variation, library, cache)
        _, engine = self._run(
            tech, variation, library, cache, n_samples=N_TINY + 1
        )
        assert engine.perf.simulations == 4  # re-simulated, no stale hit

    def test_payload_covers_engine_fidelity(self, tech, variation, library):
        cell = library.get("INVx1")
        slews = np.asarray(TINY_SLEWS)
        loads = np.asarray(TINY_LOADS)
        base = _fresh_engine(tech, variation)
        other = _fresh_engine(tech, variation, masked=False)
        k_base = content_key(
            arc_cache_payload(base, cell, "A", False, slews, loads, N_TINY)
        )
        k_other = content_key(
            arc_cache_payload(other, cell, "A", False, slews, loads, N_TINY)
        )
        assert k_base != k_other
