"""Tests for cells and the library container."""

import pytest

from repro.cells.library import Cell, CellLibrary, build_default_library
from repro.cells.templates import CELL_TYPES
from repro.errors import NetlistError
from repro.units import FF


class TestCell:
    def test_naming_convention(self):
        cell = Cell(CELL_TYPES["NAND2"], 4)
        assert cell.name == "NAND2x4"

    def test_strength_validation(self):
        with pytest.raises(NetlistError):
            Cell(CELL_TYPES["INV"], 0)

    def test_input_cap_positive_and_scales(self, tech):
        c1 = Cell(CELL_TYPES["INV"], 1)
        c4 = Cell(CELL_TYPES["INV"], 4)
        assert c1.input_cap("A", tech) > 0.01 * FF
        assert c4.input_cap("A", tech) == pytest.approx(
            4 * c1.input_cap("A", tech))

    def test_input_cap_unknown_pin(self, tech):
        with pytest.raises(NetlistError):
            Cell(CELL_TYPES["INV"], 1).input_cap("B", tech)

    def test_stacked_inputs_heavier(self, tech):
        # NAND2's A pin drives a stack-compensated NMOS: more cap than INV's.
        inv = Cell(CELL_TYPES["INV"], 1).input_cap("A", tech)
        nand = Cell(CELL_TYPES["NAND2"], 1).input_cap("A", tech)
        assert nand > inv

    def test_variability_scale(self):
        assert Cell(CELL_TYPES["INV"], 4).variability_scale() == pytest.approx(0.5)
        assert Cell(CELL_TYPES["NAND2"], 2).variability_scale() == pytest.approx(0.5)

    def test_arc_lookup(self):
        cell = Cell(CELL_TYPES["NAND2"], 1)
        assert cell.arc("A").static == {"B": 1}
        with pytest.raises(NetlistError):
            cell.arc("Z")

    def test_logic_delegates(self):
        cell = Cell(CELL_TYPES["NOR2"], 2)
        assert cell.logic({"A": 0, "B": 0}) == 1


class TestLibrary:
    def test_default_contents(self, library):
        assert len(library) == len(CELL_TYPES) * 4
        assert "INVx1" in library
        assert "AOI21x8" in library

    def test_get_error_lists_candidates(self, library):
        with pytest.raises(KeyError, match="NAND2"):
            library.get("NAND2x16")

    def test_duplicate_rejected(self, tech, library):
        lib = CellLibrary(tech, [Cell(CELL_TYPES["INV"], 1)])
        with pytest.raises(NetlistError):
            lib.add(Cell(CELL_TYPES["INV"], 1))

    def test_cells_of_type_sorted(self, library):
        strengths = [c.strength for c in library.cells_of_type("NOR2")]
        assert strengths == [1, 2, 4, 8]

    def test_strongest(self, library):
        assert library.strongest("INV").name == "INVx8"
        with pytest.raises(KeyError):
            library.strongest("XYZ")

    def test_iteration_deterministic(self, tech):
        a = [c.name for c in build_default_library(tech)]
        b = [c.name for c in build_default_library(tech)]
        assert a == b

    def test_subset_build(self, tech):
        lib = build_default_library(tech, type_names=["INV"], strengths=[1, 2])
        assert lib.names == ["INVx1", "INVx2"]

    def test_unknown_type_rejected(self, tech):
        with pytest.raises(KeyError):
            build_default_library(tech, type_names=["FOO"])
