"""Template-level tests: structure, duals, sensitization, logic."""

import itertools

import pytest

from repro.cells.templates import CELL_TYPES
from repro.errors import NetlistError
from repro.spice.netlist import TransistorNetlist


def build_scratch(type_name, tech, strength=1.0):
    ct = CELL_TYPES[type_name]
    net = TransistorNetlist()
    nodes = {p: f"pin_{p}" for p in (*ct.inputs, "Y")}
    ct.build(net, "u", nodes, strength, tech)
    return ct, net, nodes


class TestStructure:
    @pytest.mark.parametrize("name", list(CELL_TYPES))
    def test_balanced_pn_counts(self, tech, name):
        _, net, _ = build_scratch(name, tech)
        n = sum(1 for m in net.mosfets if not m.is_pmos)
        p = sum(1 for m in net.mosfets if m.is_pmos)
        assert n == p  # static CMOS duality

    @pytest.mark.parametrize("name,count", [
        ("INV", 2), ("BUF", 4), ("NAND2", 4), ("NOR2", 4),
        ("NAND3", 6), ("NOR3", 6), ("AOI21", 6), ("OAI21", 6),
        ("XOR2", 16), ("XNOR2", 18),
    ])
    def test_transistor_counts(self, tech, name, count):
        _, net, _ = build_scratch(name, tech)
        assert len(net.mosfets) == count

    @pytest.mark.parametrize("name", list(CELL_TYPES))
    def test_every_input_reaches_a_gate(self, tech, name):
        ct, net, nodes = build_scratch(name, tech)
        gate_nodes = {m.gate for m in net.mosfets}
        for pin in ct.inputs:
            assert nodes[pin] in gate_nodes

    @pytest.mark.parametrize("name", list(CELL_TYPES))
    def test_output_connected_to_drains(self, tech, name):
        ct, net, nodes = build_scratch(name, tech)
        drain_nodes = {m.drain for m in net.mosfets}
        assert nodes["Y"] in drain_nodes

    def test_strength_scales_widths(self, tech):
        _, net1, _ = build_scratch("NAND2", tech, 1.0)
        _, net4, _ = build_scratch("NAND2", tech, 4.0)
        for m1, m4 in zip(net1.mosfets, net4.mosfets):
            assert m4.width == pytest.approx(4 * m1.width)

    def test_series_devices_upsized(self, tech):
        _, net, _ = build_scratch("NAND2", tech)
        widths = {m.name: m.width for m in net.mosfets}
        # Stacked NMOS twice as wide as a lone INV NMOS would be.
        assert widths["u_mna"] == pytest.approx(2 * tech.unit_nmos_width)

    def test_missing_pin_rejected(self, tech):
        ct = CELL_TYPES["NAND2"]
        net = TransistorNetlist()
        with pytest.raises(NetlistError):
            ct.build(net, "u", {"A": "a", "Y": "y"}, 1.0, tech)


class TestLogicFunctions:
    CASES = {
        "INV": lambda v: 1 - v["A"],
        "BUF": lambda v: v["A"],
        "NAND2": lambda v: 1 - (v["A"] & v["B"]),
        "NOR2": lambda v: 1 - (v["A"] | v["B"]),
        "NAND3": lambda v: 1 - (v["A"] & v["B"] & v["C"]),
        "NOR3": lambda v: 1 - (v["A"] | v["B"] | v["C"]),
        "AOI21": lambda v: 1 - ((v["A"] & v["B"]) | v["C"]),
        "OAI21": lambda v: 1 - ((v["A"] | v["B"]) & v["C"]),
        "XOR2": lambda v: v["A"] ^ v["B"],
        "XNOR2": lambda v: 1 - (v["A"] ^ v["B"]),
    }

    @pytest.mark.parametrize("name", list(CELL_TYPES))
    def test_truth_tables(self, name):
        ct = CELL_TYPES[name]
        reference = self.CASES[name]
        for bits in itertools.product((0, 1), repeat=len(ct.inputs)):
            v = dict(zip(ct.inputs, bits))
            assert ct.logic(v) == reference(v), f"{name} at {v}"


class TestSensitization:
    @pytest.mark.parametrize("name", list(CELL_TYPES))
    def test_arcs_cover_all_pins(self, name):
        ct = CELL_TYPES[name]
        assert set(ct.arcs) == set(ct.inputs)

    @pytest.mark.parametrize("name", list(CELL_TYPES))
    def test_static_values_make_pin_controlling(self, name):
        # With the arc's side-input values applied, toggling the pin
        # must toggle the output, with the declared inversion.
        ct = CELL_TYPES[name]
        for pin, arc in ct.arcs.items():
            for value in (0, 1):
                v = {**arc.static, pin: value}
                out = ct.logic(v)
                expected = (1 - value) if arc.inverting else value
                assert out == expected, f"{name}/{pin} input={value}"

    def test_stack_counts(self):
        expected = {"INV": 1, "BUF": 1, "NAND2": 2, "NOR2": 2,
                    "NAND3": 3, "NOR3": 3, "AOI21": 2, "OAI21": 2,
                    "XOR2": 2, "XNOR2": 2}
        for name, n in expected.items():
            assert CELL_TYPES[name].n_stack == n
