"""Grid-axis hygiene: strict validation at every characterization entry."""

import numpy as np
import pytest

from repro.cells.characterize import validate_grid_axes
from repro.errors import CharacterizationError
from repro.units import FF, PS

GOOD_SLEWS = [10 * PS, 30 * PS, 60 * PS]
GOOD_LOADS = [1 * FF, 2 * FF, 4 * FF]


class TestValidateGridAxes:
    def test_valid_axes_returned_as_arrays(self):
        slews, loads = validate_grid_axes(GOOD_SLEWS, GOOD_LOADS)
        assert isinstance(slews, np.ndarray)
        assert isinstance(loads, np.ndarray)
        assert np.array_equal(slews, np.asarray(GOOD_SLEWS))

    def test_descending_axis_rejected(self):
        with pytest.raises(CharacterizationError, match="increasing"):
            validate_grid_axes(list(reversed(GOOD_SLEWS)), GOOD_LOADS)

    def test_duplicate_values_rejected(self):
        with pytest.raises(CharacterizationError, match="increasing"):
            validate_grid_axes([10 * PS, 10 * PS, 60 * PS], GOOD_LOADS)

    def test_nan_rejected(self):
        with pytest.raises(CharacterizationError, match="finite"):
            validate_grid_axes([10 * PS, np.nan, 60 * PS], GOOD_LOADS)

    def test_inf_rejected(self):
        with pytest.raises(CharacterizationError, match="finite"):
            validate_grid_axes(GOOD_SLEWS, [1 * FF, np.inf, 4 * FF])

    def test_empty_axis_rejected(self):
        with pytest.raises(CharacterizationError):
            validate_grid_axes([], GOOD_LOADS)

    def test_2d_axis_rejected(self):
        with pytest.raises(CharacterizationError):
            validate_grid_axes(np.ones((2, 2)), GOOD_LOADS)

    def test_characterize_library_rejects_bad_grid(
        self, characterizer, library
    ):
        from repro.cells.characterize import characterize_library

        with pytest.raises(CharacterizationError):
            characterize_library(
                characterizer, library, cells=["INVx1"],
                slews=list(reversed(GOOD_SLEWS)), loads=GOOD_LOADS,
                n_samples=16,
            )
