"""Characterization-engine tests (Monte-Carlo backed, kept small)."""

import numpy as np
import pytest

from repro.cells.characterize import (
    REFERENCE_LOAD,
    REFERENCE_SLEW,
    CharacterizationTable,
    LibraryCharacterization,
    fanout_load,
)
from repro.errors import CharacterizationError
from repro.moments.stats import SIGMA_LEVELS
from repro.units import FF, PS


@pytest.fixture(scope="module")
def inv_table(mini_charac):
    return mini_charac.get("INVx1", "A", output_rising=False)


class TestTables:
    def test_shapes(self, inv_table):
        n_s, n_c = inv_table.slews.size, inv_table.loads.size
        assert inv_table.moments.shape == (n_s, n_c, 4)
        assert inv_table.quantiles.shape == (n_s, n_c, len(SIGMA_LEVELS))
        assert inv_table.out_slew.shape == (n_s, n_c)

    def test_moments_physical(self, inv_table):
        mu = inv_table.moments[..., 0]
        sigma = inv_table.moments[..., 1]
        assert np.all(mu > 0)
        assert np.all(sigma > 0)
        assert np.all(sigma < mu)

    def test_positive_skew_at_near_threshold(self, inv_table):
        # The near-threshold signature the paper builds on.
        assert np.mean(inv_table.moments[..., 2]) > 0.2

    def test_delay_monotone_in_load(self, inv_table):
        mu = inv_table.moments[..., 0]
        assert np.all(np.diff(mu, axis=1) > 0)

    def test_quantiles_monotone_in_level(self, inv_table):
        assert np.all(np.diff(inv_table.quantiles, axis=2) >= 0)

    def test_out_slew_monotone_in_load(self, inv_table):
        assert np.all(np.diff(inv_table.out_slew, axis=1) > 0)

    def test_bilinear_interpolation_exact_at_grid(self, inv_table):
        s, c = inv_table.slews[1], inv_table.loads[1]
        m = inv_table.moments_at(s, c)
        assert m.mu == pytest.approx(inv_table.moments[1, 1, 0])
        assert m.kurt == pytest.approx(inv_table.moments[1, 1, 3])

    def test_interpolation_between_grid_points(self, inv_table):
        s = 0.5 * (inv_table.slews[0] + inv_table.slews[1])
        c = inv_table.loads[0]
        m = inv_table.moments_at(s, c)
        lo = inv_table.moments[0, 0, 0]
        hi = inv_table.moments[1, 0, 0]
        assert min(lo, hi) <= m.mu <= max(lo, hi)

    def test_clamping_outside_grid(self, inv_table):
        inside = inv_table.moments_at(inv_table.slews[0], inv_table.loads[-1])
        outside = inv_table.moments_at(inv_table.slews[0] / 10, 100 * FF)
        assert outside.mu == pytest.approx(inside.mu)

    def test_quantile_at(self, inv_table):
        q3 = inv_table.quantile_at(REFERENCE_SLEW, REFERENCE_LOAD, 3)
        q0 = inv_table.quantile_at(REFERENCE_SLEW, REFERENCE_LOAD, 0)
        assert q3 > q0

    def test_shape_validation(self, inv_table):
        with pytest.raises(CharacterizationError):
            CharacterizationTable(
                cell_name="X", pin="A", output_rising=False,
                slews=inv_table.slews, loads=inv_table.loads,
                moments=inv_table.moments[:, :1],
                quantiles=inv_table.quantiles,
                out_slew=inv_table.out_slew,
                n_samples=10,
            )


class TestArcSimulation:
    def test_rise_and_fall_differ(self, mini_charac):
        fall = mini_charac.get("INVx1", "A", output_rising=False)
        rise = mini_charac.get("INVx1", "A", output_rising=True)
        mu_f = fall.moments_at(REFERENCE_SLEW, REFERENCE_LOAD).mu
        mu_r = rise.moments_at(REFERENCE_SLEW, REFERENCE_LOAD).mu
        assert mu_f != pytest.approx(mu_r, rel=0.02)

    def test_nand_slower_than_inv(self, mini_charac):
        inv = mini_charac.get("INVx1", "A", False)
        nand = mini_charac.get("NAND2x1", "A", False)
        c = 1 * FF
        assert nand.moments_at(20 * PS, c).mu > inv.moments_at(20 * PS, c).mu

    def test_stronger_cell_faster(self, mini_charac):
        x1 = mini_charac.get("INVx1", "A", False)
        x4 = mini_charac.get("INVx4", "A", False)
        c = 2 * FF
        assert x4.moments_at(20 * PS, c).mu < x1.moments_at(20 * PS, c).mu

    def test_xor2_compound_arc_simulates(self, characterizer, library, tech):
        # The 4-NAND XOR template: non-inverting arc, real transition.
        from repro.cells.characterize import fanout_load
        cell = library.get("XOR2x1")
        res = characterizer.simulate_arc(
            cell, "A", 20e-12, fanout_load(cell, tech), 120,
            output_rising=True)
        assert res.yield_fraction > 0.95
        import numpy as np
        assert np.nanmean(res.delay) > 0

    def test_pelgrom_trend_in_variability(self, mini_charac):
        # Stronger cells have lower sigma/mu at the reference point.
        ratios = []
        for name in ("INVx1", "INVx2", "INVx4", "INVx8"):
            table = mini_charac.get(name, "A", False)
            ratios.append(table.reference_moments.variability)
        assert ratios[0] > ratios[1] > ratios[2] > ratios[3]


class TestContainers:
    def test_fanout_load(self, library, tech):
        cell = library.get("INVx1")
        assert fanout_load(cell, tech, 4) == pytest.approx(
            4 * cell.input_cap("A", tech))

    def test_get_missing_raises_with_hint(self, mini_charac):
        with pytest.raises(KeyError, match="cells present"):
            mini_charac.get("XORx1", "A", False)

    def test_has(self, mini_charac):
        assert mini_charac.has("INVx1", "A", False)
        assert not mini_charac.has("INVx1", "Z", False)

    def test_len_counts_arcs(self, mini_charac):
        # 6 cells x 1 pin x 2 edges
        assert len(mini_charac) == 12
