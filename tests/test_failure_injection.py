"""Failure-injection tests: the stack must fail loudly — or degrade gracefully.

Two families live here. The first constructs pathological-but-plausible
*inputs* (a non-switching bench, absurd process parameters, corrupt
model inputs) and asserts the library reports them as the documented
error or NaN rather than producing a quietly wrong number. The second
injects *infrastructure* faults — killed worker processes, interrupted
characterization runs, concurrent cache writers, corrupt cache files,
hung tasks — and asserts the fault-tolerance layer recovers with
bit-identical results instead of aborting or silently dropping data.
"""

import glob
import json
import multiprocessing
import os
import time

import numpy as np
import pytest

import repro.cells.characterize as _chz
from repro.cache import JsonCache
from repro.cells.characterize import ArcCharacterizer, characterize_library
from repro.errors import (
    CalibrationError,
    CharacterizationError,
    ExecutionError,
    SimulationError,
)
from repro.parallel import QuarantinedTask, RetryPolicy, parallel_map
from repro.perf import PerfCounters
from repro.spice.montecarlo import SimulationSetup
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.spice.measure import ramp_time_for_slew
from repro.units import FF, PS


class TestNonSwitchingBenches:
    def test_blocked_gate_yields_nan_not_garbage(self, engine, tech):
        # NAND2 with the side input LOW: the output never falls.
        net = TransistorNetlist()
        net.fix("vdd", tech.vdd)
        net.fix("in", PiecewiseLinearSource.ramp(
            0, tech.vdd, 5 * PS, ramp_time_for_slew(20 * PS)))
        net.fix("blocked", 0.0)  # non-sensitizing value
        from repro.cells.templates import CELL_TYPES
        CELL_TYPES["NAND2"].build(
            net, "u", {"A": "in", "B": "blocked", "Y": "out"}, 1.0, tech)
        net.add_capacitor("cl", "out", 1 * FF)
        setup = SimulationSetup(
            netlist=net, input_node="in", output_node="out",
            input_rising=True, output_rising=False,
            initial_voltages={"out": tech.vdd})
        res = engine.simulate(setup, 30)
        assert res.yield_fraction == 0.0
        assert np.all(np.isnan(res.delay))

    def test_characterize_rejects_low_yield(self, engine, library, tech):
        # Force the non-switching situation through a characterizer whose
        # arc spec we corrupt.
        import dataclasses
        from repro.cells.templates import ArcSpec
        characterizer = ArcCharacterizer(engine)
        cell = library.get("NAND2x1")
        bad_arc = ArcSpec(static={"B": 0}, inverting=True)  # blocks the arc
        bad_type = dataclasses.replace(
            cell.cell_type, arcs={"A": bad_arc, "B": cell.cell_type.arcs["B"]})
        bad_cell = dataclasses.replace(cell, cell_type=bad_type)
        with pytest.raises(CharacterizationError, match="measurable"):
            characterizer.characterize(
                bad_cell, "A", slews=[10 * PS, 50 * PS, 200 * PS],
                loads=[0.2 * FF, 1 * FF, 3 * FF], n_samples=20)


class TestAbsurdProcess:
    def test_extreme_variation_still_finite_or_nan(self, tech, variation):
        from repro.spice.montecarlo import MonteCarloEngine
        wild = variation.scaled(10.0)  # 10x every sigma
        engine = MonteCarloEngine(tech, wild, seed=4, max_windows=3)
        net = TransistorNetlist()
        net.fix("vdd", tech.vdd)
        net.fix("in", PiecewiseLinearSource.ramp(
            0, tech.vdd, 5 * PS, ramp_time_for_slew(20 * PS)))
        net.add_mosfet("mp", "p", "out", "in", "vdd", tech.unit_pmos_width)
        net.add_mosfet("mn", "n", "out", "in", "gnd", tech.unit_nmos_width)
        net.add_capacitor("cl", "out", 1 * FF)
        setup = SimulationSetup(
            netlist=net, input_node="in", output_node="out",
            input_rising=True, output_rising=False,
            initial_voltages={"out": tech.vdd})
        res = engine.simulate(setup, 50)
        # Finite measurements or NaN, never inf / unbounded garbage.
        # (Mildly negative delays are physical at 10x sigma: a -300 mV
        # threshold sample flips before the input reaches 50%.)
        d = res.delay[np.isfinite(res.delay)]
        assert np.all(d > -1e-9)
        assert np.all(d < 1e-6)


class TestCorruptModelInputs:
    def test_nsigma_rejects_nan_moments(self, mini_models):
        from repro.moments.stats import Moments
        bad = Moments(mu=float("nan"), sigma=1e-12, skew=0.5, kurt=4.0)
        # NaN propagates visibly rather than silently becoming a number.
        out = mini_models.nsigma.quantile(bad, 3)
        assert np.isnan(out)

    def test_calibration_monotone_after_clamp_abuse(self, mini_models):
        arc = mini_models.calibrated.get("INVx1", "A", False)
        # Absurd operating points clamp; results must stay physical.
        for slew, load in ((1e-3, 1e-9), (-1.0, -1.0), (0.0, 1e3)):
            m = arc.moments_at(slew, load)
            assert m.sigma > 0
            assert m.mu > 0
            assert np.isfinite(m.kurt)

    def test_wire_model_rejects_insane_correlation(self, adder_circuit,
                                                   mini_models):
        from repro.core.sta import StatisticalSTA
        from repro.errors import TimingError
        path = StatisticalSTA(adder_circuit, mini_models).analyze().critical_path
        with pytest.raises(TimingError):
            path.total_correlated(3, -0.1)
        with pytest.raises(TimingError):
            path.total_correlated(3, 2.0)

    def test_burr_moment_match_on_impossible_target(self):
        # Negative skew target is outside Burr XII's (loc=0) reach for
        # small CV; fit must still return finite parameters.
        from repro.moments.distributions import BurrXII
        burr = BurrXII.from_moments(1e-11, 1e-12, -1.5)
        assert np.isfinite(burr.quantile(0.5))


# ======================================================================
# Infrastructure faults: dead workers, interrupts, concurrent writers.
# ======================================================================
# Task functions live at module level so they pickle into pool workers.

def _fail_until_sentinel(task):
    """Raise on the first attempt, succeed once the sentinel file exists."""
    x, sentinel = task
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("attempted")
        raise RuntimeError(f"injected first-attempt failure for task {x}")
    return x * x


def _die_once(task):
    """Kill the worker outright on task 0 (every time if sentinel is '')."""
    x, sentinel = task
    if x == 0 and not (sentinel and os.path.exists(sentinel)):
        if sentinel:
            with open(sentinel, "w") as fh:
                fh.write("dying")
        os._exit(13)  # simulates an OOM kill: no exception, no cleanup
    return x + 100


def _always_fail(task):
    raise ValueError(f"task {task} is unfixable")


def _sleep_task(seconds):
    time.sleep(seconds)
    return seconds


# The pre-patch characterization point function, captured so injected
# replacements (which must be module-level to pickle into workers) can
# delegate to the real physics.
_real_characterize_point = _chz._characterize_point


def _die_point_once(task):
    """Hard-kill the worker on the first grid point, once (satellite c)."""
    sentinel = os.environ.get("REPRO_TEST_DIE_SENTINEL", "")
    if sentinel and task["i"] == 0 and task["j"] == 0 \
            and not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("dying")
        os._exit(13)
    return _real_characterize_point(task)


def _poison_invx2_point(task):
    """Fail every INVx2 point — forcing the arc-quarantine path while
    exercising the shared-memory payload load in pooled workers."""
    bank = task.get("bank")
    shared = bank.load() if bank is not None else task
    if shared["cell"].name == "INVx2":
        raise CharacterizationError("injected pooled arc failure")
    return _real_characterize_point(task)


def _hammer_put(directory, tag, n_iter):
    """Repeatedly store the same cache key (run in a separate process)."""
    cache = JsonCache(directory)
    doc = {"tag": tag, "payload": list(range(500))}
    for _ in range(n_iter):
        cache.put("arc", "contested", doc)


class TestExecutorRetry:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_transient_failure_retried_to_success(self, tmp_path, workers):
        tasks = [(x, str(tmp_path / f"sentinel_{x}")) for x in range(6)]
        perf = PerfCounters()
        out = parallel_map(
            _fail_until_sentinel, tasks, workers=workers,
            policy=RetryPolicy(max_retries=2, backoff_s=0.01), perf=perf)
        assert out == [x * x for x in range(6)]
        assert perf.task_retries == 6  # one retry per task
        assert perf.task_quarantines == 0

    def test_exhausted_retries_raise_original_exception(self):
        with pytest.raises(ValueError, match="unfixable"):
            parallel_map(_always_fail, [1, 2], workers=1,
                         policy=RetryPolicy(max_retries=1, backoff_s=0.01))

    def test_exhausted_retries_quarantine_when_sunk(self):
        sink = []
        perf = PerfCounters()
        out = parallel_map(
            _always_fail, [1, 2], workers=1,
            policy=RetryPolicy(max_retries=1, backoff_s=0.01),
            quarantine=sink, labels=["a", "b"], perf=perf)
        assert out == [None, None]
        assert [q.label for q in sink] == ["a", "b"]
        assert all(q.attempts == 2 for q in sink)
        assert all(q.error_type == "ValueError" for q in sink)
        assert perf.task_quarantines == 2

    @pytest.mark.parametrize("workers", [1, 2])
    def test_task_timeout_quarantines_hung_task(self, workers):
        sink = []
        t0 = time.perf_counter()
        out = parallel_map(
            _sleep_task, [0.01, 30.0], workers=workers,
            policy=RetryPolicy(max_retries=0, task_timeout=0.25),
            quarantine=sink)
        assert time.perf_counter() - t0 < 10.0  # never waited out the sleep
        assert out == [0.01, None]
        assert [q.index for q in sink] == [1]
        assert sink[0].error_type == "TaskTimeoutError"


class TestWorkerDeath:
    def test_killed_worker_does_not_abort_the_run(self, tmp_path):
        """A worker hard-killed mid-task must not raise BrokenProcessPool.

        Satellite (c): completed results are kept, the lost chunk is
        re-executed, and the run finishes with correct results.
        """
        sentinel = str(tmp_path / "died_once")
        tasks = [(x, sentinel) for x in range(8)]
        perf = PerfCounters()
        out = parallel_map(_die_once, tasks, workers=4, perf=perf)
        assert out == [x + 100 for x in range(8)]
        assert perf.pool_crashes >= 1
        assert perf.task_quarantines == 0

    def test_permanently_dying_task_is_quarantined_alone(self, tmp_path):
        """A task that kills its worker on every attempt is given up on
        after three pool crashes — and takes no innocent tasks with it."""
        tasks = [(x, "") for x in range(4)]  # only x == 0 dies, always
        sink = []
        out = parallel_map(_die_once, tasks, workers=2, quarantine=sink)
        assert out == [None, 101, 102, 103]
        assert [q.index for q in sink] == [0]
        assert sink[0].error_type == "WorkerDeath"
        assert sink[0].pool_crashes == 3


class TestCacheCrashSafety:
    def test_concurrent_same_key_put_never_tears(self, tmp_path):
        """Satellite (a): two processes hammering one key must leave a
        complete, parseable artifact and no stray temp files."""
        procs = [
            multiprocessing.Process(
                target=_hammer_put, args=(str(tmp_path), tag, 50))
            for tag in ("writer_a", "writer_b")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        doc = json.load((tmp_path / "arc_contested.json").open())
        assert doc["tag"] in ("writer_a", "writer_b")
        assert doc["payload"] == list(range(500))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_corrupt_artifact_is_a_miss_and_unlinked(self, tmp_path):
        """Satellite (b): a truncated artifact is recomputed, not crashed on."""
        perf = PerfCounters()
        cache = JsonCache(tmp_path, perf=perf)
        path = cache.put("arc", "k1", {"good": 1})
        path.write_text('{"good": 1')  # truncated by a crashed writer
        assert cache.get("arc", "k1") is None
        assert not path.exists()
        assert cache.corrupt == 1 and cache.misses == 1 and cache.hits == 0
        assert perf.cache_corrupt == 1 and perf.cache_misses == 1
        # The key is reusable immediately.
        cache.put("arc", "k1", {"good": 2})
        assert cache.get("arc", "k1") == {"good": 2}
        assert perf.cache_hits == 1

    def test_orphaned_tmp_files_swept_on_init(self, tmp_path):
        (tmp_path / "arc_dead.12345.abc.tmp").write_text('{"partial"')
        cache = JsonCache(tmp_path)
        assert list(tmp_path.glob("*.tmp")) == []
        assert cache.get("arc", "dead") is None


class TestInterruptAndResume:
    GRID = dict(slews=(10 * PS, 50 * PS), loads=(0.5 * FF, 2.0 * FF),
                n_samples=40)

    def _characterize(self, library, tech, variation, cache, **kw):
        from repro.spice.montecarlo import MonteCarloEngine
        engine = MonteCarloEngine(tech, variation, seed=11)
        return characterize_library(
            ArcCharacterizer(engine), library, cells=["INVx1", "INVx2"],
            workers=1, cache=cache, **self.GRID, **kw)

    def test_interrupted_run_resumes_bit_identically(
            self, tmp_path, library, tech, variation, monkeypatch):
        """The acceptance test: interrupt after the first arc, resume,
        and compare every table bit-for-bit against an uninterrupted run."""
        import repro.cells.characterize as chz
        cache_dir = tmp_path / "ckpt"
        real_map = chz.parallel_map
        points = self.GRID["slews"].__len__() * self.GRID["loads"].__len__()

        def interrupted_map(fn, tasks, **kw):
            real_map(fn, list(tasks)[:points], **kw)  # first arc only
            raise KeyboardInterrupt

        with monkeypatch.context() as m:
            m.setattr(chz, "parallel_map", interrupted_map)
            with pytest.raises(KeyboardInterrupt):
                self._characterize(library, tech, variation,
                                   JsonCache(cache_dir))
        # Exactly the finished arc was checkpointed before the interrupt.
        assert len(list(cache_dir.glob("arc_*.json"))) == 1

        resume_cache = JsonCache(cache_dir)
        resumed = self._characterize(library, tech, variation, resume_cache)
        assert resume_cache.hits == 1  # INVx1 restored, not recomputed
        golden = self._characterize(library, tech, variation, cache=None)

        assert sorted(resumed.tables) == sorted(golden.tables)
        for key, want in golden.tables.items():
            got = resumed.tables[key]
            for attr in ("slews", "loads", "moments", "quantiles", "out_slew"):
                assert np.array_equal(getattr(got, attr), getattr(want, attr)), \
                    f"{key}.{attr} differs between resumed and golden run"

    def test_resume_false_ignores_checkpoints(
            self, tmp_path, library, tech, variation):
        cache = JsonCache(tmp_path)
        self._characterize(library, tech, variation, cache)
        assert cache.hits == 0
        self._characterize(library, tech, variation, cache, resume=False)
        assert cache.hits == 0  # checkpoints present but not consulted


class TestArcQuarantine:
    GRID = TestInterruptAndResume.GRID

    def _characterize(self, library, tech, variation, **kw):
        from repro.spice.montecarlo import MonteCarloEngine
        engine = MonteCarloEngine(tech, variation, seed=11)
        return characterize_library(
            ArcCharacterizer(engine), library, cells=["INVx1", "INVx2"],
            workers=1, **self.GRID, **kw)

    def test_failing_arc_quarantined_within_budget(
            self, library, tech, variation, monkeypatch):
        import repro.cells.characterize as chz
        real_point = chz._characterize_point

        def poisoned_point(task):
            if task["cell"].name == "INVx2":
                raise CharacterizationError("injected arc failure")
            return real_point(task)

        monkeypatch.setattr(chz, "_characterize_point", poisoned_point)
        out = self._characterize(library, tech, variation,
                                 quarantine_budget=None)
        assert out.has("INVx1", "A", False)
        assert not out.has("INVx2", "A", False)
        assert len(out.quarantined) == 1
        q = out.quarantined[0]
        assert q.arc_key == ("INVx2", "A", "fall")
        assert q.error_type == "CharacterizationError"
        points = len(self.GRID["slews"]) * len(self.GRID["loads"])
        assert q.failed_points == points

        # Lint surfaces the quarantine as RUN001 (warning, not error).
        from repro.lint import lint_characterization
        report = lint_characterization(out)
        assert report.ok
        assert any(d.rule_id == "RUN001" for d in report.diagnostics)

    def test_quarantine_over_budget_fails_the_run(
            self, library, tech, variation, monkeypatch):
        import repro.cells.characterize as chz
        monkeypatch.setattr(chz, "_characterize_point", _always_fail)
        with pytest.raises(CharacterizationError, match="quarantined"):
            self._characterize(library, tech, variation, quarantine_budget=0)


@pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="no /dev/shm here")
class TestSharedMemoryLifecycle:
    """Satellite (3): shm payload banks must never leak /dev/shm segments
    — not on success, not when a worker is hard-killed, not when an arc
    is quarantined."""

    GRID = dict(slews=(10 * PS, 50 * PS), loads=(0.5 * FF, 2.0 * FF),
                n_samples=40)

    @pytest.fixture(autouse=True)
    def no_shm_leaks(self):
        before = set(glob.glob("/dev/shm/repro_*"))
        yield
        after = set(glob.glob("/dev/shm/repro_*"))
        assert after - before == set(), f"leaked shared memory: {after - before}"

    def _characterize(self, library, tech, variation, cells, **kw):
        from repro.spice.montecarlo import MonteCarloEngine
        engine = MonteCarloEngine(tech, variation, seed=11)
        return characterize_library(
            ArcCharacterizer(engine), library, cells=cells,
            **self.GRID, **kw)

    def test_pooled_run_publishes_banks_and_cleans_up(
            self, library, tech, variation):
        pooled = self._characterize(library, tech, variation,
                                    ["INVx1"], workers=2)
        serial = self._characterize(library, tech, variation,
                                    ["INVx1"], workers=1)
        # same physics through the shared-memory payload path
        assert sorted(pooled.tables) == sorted(serial.tables)
        for key, want in serial.tables.items():
            got = pooled.tables[key]
            for attr in ("slews", "loads", "moments", "quantiles", "out_slew"):
                assert np.array_equal(getattr(got, attr), getattr(want, attr)), \
                    f"{key}.{attr} differs between pooled and serial run"

    def test_tasks_carry_handles_not_payloads(
            self, characterizer, library):
        import pickle
        from repro.parallel import SharedPayloadBank, SharedPayloadHandle
        cell = library.get("INVx1")
        payload = characterizer.arc_payload(cell, "A")
        with SharedPayloadBank(payload) as bank:
            tasks = characterizer.point_tasks(
                cell, "A", self.GRID["slews"], self.GRID["loads"],
                self.GRID["n_samples"], False, payload=bank.handle)
            inline = characterizer.point_tasks(
                cell, "A", self.GRID["slews"], self.GRID["loads"],
                self.GRID["n_samples"], False)
            for task in tasks:
                assert isinstance(task["bank"], SharedPayloadHandle)
            # the payload (tech + variation + cell) dominates task size;
            # banked tasks must be dramatically smaller than inline ones
            assert len(pickle.dumps(tasks[0])) < len(pickle.dumps(inline[0])) / 5

    def test_killed_worker_leaves_no_segments(
            self, tmp_path, library, tech, variation, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DIE_SENTINEL", str(tmp_path / "died"))
        monkeypatch.setattr(_chz, "_characterize_point", _die_point_once)
        out = self._characterize(library, tech, variation,
                                 ["INVx1"], workers=2)
        assert out.has("INVx1", "A", False)
        assert os.path.exists(tmp_path / "died")  # the kill really happened

    def test_quarantined_arc_leaves_no_segments(
            self, library, tech, variation, monkeypatch):
        monkeypatch.setattr(_chz, "_characterize_point", _poison_invx2_point)
        out = self._characterize(library, tech, variation,
                                 ["INVx1", "INVx2"], workers=2,
                                 quarantine_budget=None)
        assert out.has("INVx1", "A", False)
        assert not out.has("INVx2", "A", False)
        assert len(out.quarantined) == 1
