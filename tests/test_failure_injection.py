"""Failure-injection tests: the stack must fail loudly, not silently.

Each test constructs a pathological-but-plausible situation (a
non-switching bench, absurd process parameters, corrupt model inputs)
and asserts the library reports it as the documented error or NaN
rather than producing a quietly wrong number.
"""

import numpy as np
import pytest

from repro.cells.characterize import ArcCharacterizer
from repro.errors import (
    CalibrationError,
    CharacterizationError,
    SimulationError,
)
from repro.spice.montecarlo import SimulationSetup
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.spice.measure import ramp_time_for_slew
from repro.units import FF, PS


class TestNonSwitchingBenches:
    def test_blocked_gate_yields_nan_not_garbage(self, engine, tech):
        # NAND2 with the side input LOW: the output never falls.
        net = TransistorNetlist()
        net.fix("vdd", tech.vdd)
        net.fix("in", PiecewiseLinearSource.ramp(
            0, tech.vdd, 5 * PS, ramp_time_for_slew(20 * PS)))
        net.fix("blocked", 0.0)  # non-sensitizing value
        from repro.cells.templates import CELL_TYPES
        CELL_TYPES["NAND2"].build(
            net, "u", {"A": "in", "B": "blocked", "Y": "out"}, 1.0, tech)
        net.add_capacitor("cl", "out", 1 * FF)
        setup = SimulationSetup(
            netlist=net, input_node="in", output_node="out",
            input_rising=True, output_rising=False,
            initial_voltages={"out": tech.vdd})
        res = engine.simulate(setup, 30)
        assert res.yield_fraction == 0.0
        assert np.all(np.isnan(res.delay))

    def test_characterize_rejects_low_yield(self, engine, library, tech):
        # Force the non-switching situation through a characterizer whose
        # arc spec we corrupt.
        import dataclasses
        from repro.cells.templates import ArcSpec
        characterizer = ArcCharacterizer(engine)
        cell = library.get("NAND2x1")
        bad_arc = ArcSpec(static={"B": 0}, inverting=True)  # blocks the arc
        bad_type = dataclasses.replace(
            cell.cell_type, arcs={"A": bad_arc, "B": cell.cell_type.arcs["B"]})
        bad_cell = dataclasses.replace(cell, cell_type=bad_type)
        with pytest.raises(CharacterizationError, match="measurable"):
            characterizer.characterize(
                bad_cell, "A", slews=[10 * PS, 50 * PS, 200 * PS],
                loads=[0.2 * FF, 1 * FF, 3 * FF], n_samples=20)


class TestAbsurdProcess:
    def test_extreme_variation_still_finite_or_nan(self, tech, variation):
        from repro.spice.montecarlo import MonteCarloEngine
        wild = variation.scaled(10.0)  # 10x every sigma
        engine = MonteCarloEngine(tech, wild, seed=4, max_windows=3)
        net = TransistorNetlist()
        net.fix("vdd", tech.vdd)
        net.fix("in", PiecewiseLinearSource.ramp(
            0, tech.vdd, 5 * PS, ramp_time_for_slew(20 * PS)))
        net.add_mosfet("mp", "p", "out", "in", "vdd", tech.unit_pmos_width)
        net.add_mosfet("mn", "n", "out", "in", "gnd", tech.unit_nmos_width)
        net.add_capacitor("cl", "out", 1 * FF)
        setup = SimulationSetup(
            netlist=net, input_node="in", output_node="out",
            input_rising=True, output_rising=False,
            initial_voltages={"out": tech.vdd})
        res = engine.simulate(setup, 50)
        # Finite measurements or NaN, never inf / unbounded garbage.
        # (Mildly negative delays are physical at 10x sigma: a -300 mV
        # threshold sample flips before the input reaches 50%.)
        d = res.delay[np.isfinite(res.delay)]
        assert np.all(d > -1e-9)
        assert np.all(d < 1e-6)


class TestCorruptModelInputs:
    def test_nsigma_rejects_nan_moments(self, mini_models):
        from repro.moments.stats import Moments
        bad = Moments(mu=float("nan"), sigma=1e-12, skew=0.5, kurt=4.0)
        # NaN propagates visibly rather than silently becoming a number.
        out = mini_models.nsigma.quantile(bad, 3)
        assert np.isnan(out)

    def test_calibration_monotone_after_clamp_abuse(self, mini_models):
        arc = mini_models.calibrated.get("INVx1", "A", False)
        # Absurd operating points clamp; results must stay physical.
        for slew, load in ((1e-3, 1e-9), (-1.0, -1.0), (0.0, 1e3)):
            m = arc.moments_at(slew, load)
            assert m.sigma > 0
            assert m.mu > 0
            assert np.isfinite(m.kurt)

    def test_wire_model_rejects_insane_correlation(self, adder_circuit,
                                                   mini_models):
        from repro.core.sta import StatisticalSTA
        from repro.errors import TimingError
        path = StatisticalSTA(adder_circuit, mini_models).analyze().critical_path
        with pytest.raises(TimingError):
            path.total_correlated(3, -0.1)
        with pytest.raises(TimingError):
            path.total_correlated(3, 2.0)

    def test_burr_moment_match_on_impossible_target(self):
        # Negative skew target is outside Burr XII's (loc=0) reach for
        # small CV; fit must still return finite parameters.
        from repro.moments.distributions import BurrXII
        burr = BurrXII.from_moments(1e-11, 1e-12, -1.5)
        assert np.isfinite(burr.quantile(0.5))
