"""PerfCounters: thread-safety, kernel-op attribution, round-trips."""

from __future__ import annotations

import pickle
import threading

from repro.perf import PerfCounters


class TestThreadSafety:
    def test_concurrent_incr_is_lossless(self):
        perf = PerfCounters()
        n_threads, n_iter = 8, 2000

        def hammer():
            for _ in range(n_iter):
                perf.incr(newton_iterations=1, sample_solves=3)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert perf.newton_iterations == n_threads * n_iter
        assert perf.sample_solves == 3 * n_threads * n_iter

    def test_concurrent_kernel_ops_are_lossless(self):
        perf = PerfCounters()
        n_threads, n_iter = 8, 2000

        def hammer(tid):
            for _ in range(n_iter):
                perf.add_kernel_op("numpy", "solve_stack", 2)
                perf.add_kernel_op("numpy", f"thread_{tid}")

        threads = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert perf.kernel_ops["numpy.solve_stack"] == 2 * n_threads * n_iter
        for tid in range(n_threads):
            assert perf.kernel_ops[f"numpy.thread_{tid}"] == n_iter

    def test_concurrent_wall_accumulation(self):
        perf = PerfCounters()

        def hammer():
            for _ in range(1000):
                perf.add_wall("stage", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert abs(perf.wall_s["stage"] - 4.0) < 1e-6


class TestRoundTrips:
    def test_pickle_recreates_lock(self):
        perf = PerfCounters()
        perf.incr(linear_solves=5)
        perf.add_kernel_op("cnative", "device_eval", 7)
        clone = pickle.loads(pickle.dumps(perf))
        assert clone.linear_solves == 5
        assert clone.kernel_ops == {"cnative.device_eval": 7}
        clone.incr(linear_solves=1)  # the recreated lock must work
        assert clone.linear_solves == 6

    def test_merge_folds_kernel_ops(self):
        a, b = PerfCounters(), PerfCounters()
        a.add_kernel_op("numpy", "solve_stack", 10)
        b.add_kernel_op("numpy", "solve_stack", 5)
        b.add_kernel_op("fused", "device_eval", 3)
        a.merge(b)
        assert a.kernel_ops == {
            "numpy.solve_stack": 15,
            "fused.device_eval": 3,
        }

    def test_to_from_dict_keeps_kernel_ops(self):
        perf = PerfCounters()
        perf.add_kernel_op("numpy", "device_eval", 4)
        doc = perf.to_dict()
        assert doc["kernel_ops"] == {"numpy.device_eval": 4}
        back = PerfCounters.from_dict(doc)
        assert back.kernel_ops == {"numpy.device_eval": 4}
