"""Tests for the dependency-free Gaussian-process core."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.surrogate.gp import (
    GaussianProcess,
    GPHyperparameters,
    LENGTHSCALE_BOUNDS,
    NUGGET_BOUNDS,
)


def smooth_surface(x):
    """A smooth 2-D test function on the unit square."""
    return np.sin(3.0 * x[:, 0]) + 0.5 * x[:, 1] ** 2 + 0.3 * x[:, 0] * x[:, 1]


def grid_points(n=5):
    u = np.linspace(0.0, 1.0, n)
    uu, vv = np.meshgrid(u, u, indexing="ij")
    return np.column_stack([uu.ravel(), vv.ravel()])


class TestPosterior:
    def test_exact_interpolation_small_nugget(self):
        x = grid_points(4)
        y = smooth_surface(x)
        hyper = GPHyperparameters(lengthscales=(0.5, 0.5), nugget=1e-10, lml=0.0)
        gp = GaussianProcess(x, y, hyper)
        pred, var = gp.predict(x)
        assert np.allclose(pred, y, atol=1e-6 * np.ptp(y))
        assert np.all(var >= 0.0)

    def test_variance_zero_at_train_large_away(self):
        x = grid_points(3)
        y = smooth_surface(x)
        hyper = GPHyperparameters(lengthscales=(0.3, 0.3), nugget=1e-10, lml=0.0)
        gp = GaussianProcess(x, y, hyper)
        _, var_train = gp.predict(x)
        _, var_far = gp.predict(np.array([[0.17, 0.83]]))
        assert var_train.max() < var_far[0]

    def test_variance_shrinks_as_points_added(self):
        # With FIXED hyperparameters, conditioning on more data can only
        # reduce the *latent* posterior variance everywhere (information
        # never hurts a GP). Divide out the per-fit target scaling,
        # which is data-dependent.
        x = grid_points(5)
        y = smooth_surface(x)
        hyper = GPHyperparameters(lengthscales=(0.4, 0.4), nugget=1e-6, lml=0.0)
        probe = np.column_stack([
            np.linspace(0.05, 0.95, 9), np.linspace(0.95, 0.05, 9)
        ])
        prev = np.full(9, np.inf)
        for n in (3, 6, 12, 25):
            gp = GaussianProcess(x[:n], y[:n], hyper)
            _, var = gp.predict(probe)
            latent = var / gp.y_std**2
            assert np.all(latent <= prev + 1e-12)
            prev = latent

    def test_degenerate_constant_targets(self):
        x = grid_points(3)
        y = np.full(x.shape[0], 42.0)
        gp = GaussianProcess.fit(x, y, seed=0)
        pred, var = gp.predict(np.array([[0.5, 0.5]]))
        assert pred[0] == pytest.approx(42.0)
        assert var[0] == pytest.approx(0.0)

    def test_loo_residuals_small_on_smooth_surface(self):
        x = grid_points(5)
        y = smooth_surface(x)
        gp = GaussianProcess.fit(x, y, seed=3)
        loo = gp.loo_residuals()
        assert loo.shape == (x.shape[0],)
        # Interior points of a dense smooth design cross-validate well.
        assert np.median(np.abs(loo)) < 0.05 * np.ptp(y)


class TestFit:
    def test_fit_is_deterministic(self):
        x = grid_points(4)
        y = smooth_surface(x)
        a = GaussianProcess.fit(x, y, seed=11)
        b = GaussianProcess.fit(x, y, seed=11)
        assert a.hyper == b.hyper
        pa, va = a.predict(grid_points(7))
        pb, vb = b.predict(grid_points(7))
        assert np.array_equal(pa, pb)
        assert np.array_equal(va, vb)

    def test_fit_seed_changes_restarts_not_validity(self):
        x = grid_points(4)
        y = smooth_surface(x)
        for seed in (0, 1, 99):
            gp = GaussianProcess.fit(x, y, seed=seed)
            lo, hi = LENGTHSCALE_BOUNDS
            for ls in gp.hyper.lengthscales:
                assert lo * (1 - 1e-9) <= ls <= hi * (1 + 1e-9)
            assert NUGGET_BOUNDS[0] * (1 - 1e-9) <= gp.hyper.nugget
            assert gp.hyper.nugget <= NUGGET_BOUNDS[1] * (1 + 1e-9)

    def test_noise_floor_respected(self):
        rng = np.random.default_rng(5)
        x = grid_points(5)
        y = smooth_surface(x) + rng.normal(0.0, 0.05, x.shape[0])
        noise_var = 0.05**2
        gp = GaussianProcess.fit(x, y, seed=2, noise_var=noise_var)
        # Nugget is expressed in standardized-target units.
        assert gp.hyper.nugget >= noise_var / np.std(y) ** 2 - 1e-12

    def test_noise_floor_ignored_when_zero(self):
        x = grid_points(4)
        y = smooth_surface(x)
        gp = GaussianProcess.fit(x, y, seed=2, noise_var=0.0)
        assert gp.hyper.nugget >= NUGGET_BOUNDS[0]

    def test_as_dict_roundtrippable_fields(self):
        x = grid_points(3)
        gp = GaussianProcess.fit(x, smooth_surface(x), seed=1)
        d = gp.hyper.as_dict()
        assert set(d) >= {"lengthscales", "nugget", "lml", "signal_var"}


class TestHypothesisProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_refit_bit_identical(self, seed):
        x = grid_points(4)
        y = smooth_surface(x)
        a = GaussianProcess.fit(x, y, seed=seed, n_restarts=2, refine_steps=4)
        b = GaussianProcess.fit(x, y, seed=seed, n_restarts=2, refine_steps=4)
        assert a.hyper == b.hyper
        probe = grid_points(6)
        assert np.array_equal(a.predict(probe)[0], b.predict(probe)[0])

    @given(
        amp=st.floats(min_value=0.1, max_value=50.0),
        offset=st.floats(min_value=-10.0, max_value=10.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_interpolation_property(self, amp, offset):
        # Fixed hyperparameters with a tiny nugget reproduce the
        # training targets for any (scaled, shifted) smooth surface.
        x = grid_points(4)
        y = amp * smooth_surface(x) + offset
        hyper = GPHyperparameters(
            lengthscales=(0.5, 0.5), nugget=1e-10, lml=0.0
        )
        gp = GaussianProcess(x, y, hyper)
        pred, _ = gp.predict(x)
        scale = max(np.ptp(y), 1e-12)
        assert np.max(np.abs(pred - y)) < 1e-5 * scale

    @given(n_extra=st.integers(min_value=1, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_variance_monotone_property(self, n_extra):
        x = grid_points(5)
        y = smooth_surface(x)
        hyper = GPHyperparameters(
            lengthscales=(0.4, 0.4), nugget=1e-6, lml=0.0
        )
        probe = np.array([[0.21, 0.47], [0.68, 0.11], [0.93, 0.88]])
        base = GaussianProcess(x[:6], y[:6], hyper)
        more = GaussianProcess(x[: 6 + n_extra], y[: 6 + n_extra], hyper)
        _, v0 = base.predict(probe)
        _, v1 = more.predict(probe)
        assert np.all(v1 / more.y_std**2 <= v0 / base.y_std**2 + 1e-12)
