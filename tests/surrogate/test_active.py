"""Tests for the active-learning loop against synthetic surfaces."""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.moments.stats import SIGMA_LEVELS
from repro.surrogate import (
    DEFAULT_BUDGETS,
    STATISTIC_NAMES,
    SURROGATE_ENV,
    SurrogateConfig,
    budget_family,
    estimator_noise_var,
    normalize_grid,
    resolve_surrogate,
    run_active_learning,
    seed_indices,
    validate_provenance,
)
from repro.units import FF, PS

SLEWS = np.linspace(10 * PS, 100 * PS, 6)
LOADS = np.linspace(1 * FF, 8 * FF, 6)


def synthetic_runner(slews=SLEWS, loads=LOADS, calls=None):
    """Smooth, physical moment surfaces over the grid (no noise)."""

    def record(i, j):
        s = (slews[i] - slews[0]) / (slews[-1] - slews[0])
        c = (loads[j] - loads[0]) / (loads[-1] - loads[0])
        mu = (20.0 + 60.0 * c + 15.0 * s + 10.0 * s * c) * PS
        sigma = (2.0 + 1.5 * c + 0.5 * s) * PS
        skew = 0.3 + 0.1 * s
        kurt = 3.2 + 0.05 * c
        quantiles = np.array([mu + lvl * sigma for lvl in SIGMA_LEVELS])
        return {
            "moments": np.array([mu, sigma, skew, kurt]),
            "quantiles": quantiles,
            "out_slew": (30.0 + 20.0 * c) * PS,
        }

    def runner(points):
        if calls is not None:
            calls.append(list(points))
        return {ij: record(*ij) for ij in points}

    return runner


class TestRunActiveLearning:
    def test_converges_and_saves_points(self):
        res = run_active_learning(
            SLEWS, LOADS, synthetic_runner(), seed=42,
            config=SurrogateConfig(), reference=(0, 1), n_samples=2000,
        )
        assert res.fallback is None
        assert res.moments is not None
        assert len(res.simulated) < SLEWS.size * LOADS.size
        assert validate_provenance(res.provenance) == []

    def test_simulated_entries_exact(self):
        runner = synthetic_runner()
        res = run_active_learning(
            SLEWS, LOADS, runner, seed=42,
            config=SurrogateConfig(), reference=(0, 1), n_samples=2000,
        )
        truth = runner(res.simulated)
        for (i, j) in res.simulated:
            assert np.array_equal(res.moments[i, j], truth[(i, j)]["moments"])
            assert np.array_equal(res.quantiles[i, j], truth[(i, j)]["quantiles"])
            assert res.out_slew[i, j] == truth[(i, j)]["out_slew"]

    def test_predictions_accurate_on_smooth_surface(self):
        runner = synthetic_runner()
        res = run_active_learning(
            SLEWS, LOADS, runner, seed=42,
            config=SurrogateConfig(), reference=(0, 1), n_samples=2000,
        )
        truth = runner([(i, j) for i in range(6) for j in range(6)])
        mu_true = np.array([[truth[(i, j)]["moments"][0] for j in range(6)]
                            for i in range(6)])
        err = np.abs(res.moments[..., 0] - mu_true) / np.ptp(mu_true)
        assert err.max() < 0.05

    def test_deterministic(self):
        kwargs = dict(seed=7, config=SurrogateConfig(), reference=(2, 3),
                      n_samples=500)
        a = run_active_learning(SLEWS, LOADS, synthetic_runner(), **kwargs)
        b = run_active_learning(SLEWS, LOADS, synthetic_runner(), **kwargs)
        assert a.simulated == b.simulated
        assert np.array_equal(a.moments, b.moments)
        assert np.array_equal(a.quantiles, b.quantiles)
        assert a.provenance == b.provenance

    def test_cv_breach_falls_back(self):
        res = run_active_learning(
            SLEWS, LOADS, synthetic_runner(), seed=42,
            config=SurrogateConfig(cv_budget=1e-12), reference=(0, 1),
            n_samples=2000,
        )
        assert res.fallback == "cv_residual"
        assert res.moments is None
        assert res.provenance["fallback"] == "cv_residual"
        # Already-simulated records are handed back for reuse.
        assert set(res.point_records) == set(res.simulated)

    def test_small_grid_falls_back(self):
        slews = np.linspace(10 * PS, 50 * PS, 2)
        loads = np.linspace(1 * FF, 4 * FF, 3)
        res = run_active_learning(
            slews, loads, synthetic_runner(slews, loads), seed=1,
            config=SurrogateConfig(), n_samples=100,
        )
        assert res.fallback == "grid_too_small"
        assert res.simulated == []

    def test_cap_respected(self):
        calls = []
        res = run_active_learning(
            SLEWS, LOADS, synthetic_runner(calls=calls), seed=9,
            config=SurrogateConfig(max_points=10, budgets={"mu": 1e-9}),
            n_samples=2000,
        )
        if res.fallback is None:
            assert len(res.simulated) <= 10
            assert res.converged is False  # unattainable budget, SUR002 path
            assert res.provenance["converged"] is False

    def test_journal_events(self, tmp_path):
        from repro.journal import RunJournal, read_journal

        with RunJournal(tmp_path / "j.jsonl") as journal:
            run_active_learning(
                SLEWS, LOADS, synthetic_runner(), seed=42,
                config=SurrogateConfig(), reference=(0, 1), n_samples=2000,
                journal=journal, arc=["INVx1", "A", "fall"],
            )
        events = [e["event"] for e in read_journal(tmp_path / "j.jsonl")]
        assert "surrogate_fit" in events


class TestSeedDesign:
    def test_anchors_always_present(self):
        rng = np.random.default_rng(0)
        idx = seed_indices(5, 6, 3, rng, reference=(2, 3))
        for corner in ((0, 0), (0, 5), (4, 0), (4, 5)):
            assert corner in idx
        assert (2, 3) in idx

    def test_dedup(self):
        rng = np.random.default_rng(0)
        idx = seed_indices(5, 6, 50, rng)
        assert len(idx) == len(set(idx))
        assert len(idx) <= 30

    def test_normalize_grid_unit_square(self):
        coords = normalize_grid(SLEWS, LOADS)
        assert coords.shape == (36, 2)
        assert coords.min() == 0.0
        assert coords.max() == 1.0


class TestEstimatorNoise:
    def test_mu_noise_is_standard_error(self):
        assert estimator_noise_var("mu", 2.0, 3.0, 100) == pytest.approx(
            2.0**2 / 100
        )

    def test_tail_quantiles_noisier_than_median(self):
        v0 = estimator_noise_var("q+0", 2.0, 3.0, 100)
        v3 = estimator_noise_var("q+3", 2.0, 3.0, 100)
        assert v3 > 10 * v0

    def test_symmetric_in_level_sign(self):
        assert estimator_noise_var("q-2", 2.0, 3.0, 100) == pytest.approx(
            estimator_noise_var("q+2", 2.0, 3.0, 100)
        )

    def test_zero_without_samples(self):
        assert estimator_noise_var("mu", 2.0, 3.0, 0) == 0.0
        assert estimator_noise_var("mu", 0.0, 3.0, 100) == 0.0

    def test_dimensionless_moments(self):
        assert estimator_noise_var("skew", 2.0, 3.0, 96) == pytest.approx(6 / 96)
        assert estimator_noise_var("kurt", 2.0, 3.0, 96) == pytest.approx(24 / 96)


class TestConfig:
    def test_parse_gp(self):
        cfg = SurrogateConfig.parse("gp")
        assert cfg is not None and cfg.enabled

    @pytest.mark.parametrize("token", ["", "off", "none", "0", "false", None])
    def test_parse_disabled(self, token):
        assert SurrogateConfig.parse(token) is None

    def test_parse_unknown_raises(self):
        with pytest.raises(CharacterizationError):
            SurrogateConfig.parse("kriging")

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(SURROGATE_ENV, "gp")
        assert SurrogateConfig.from_env() is not None
        monkeypatch.setenv(SURROGATE_ENV, "off")
        assert SurrogateConfig.from_env() is None

    def test_resolve_passthrough_and_errors(self):
        cfg = SurrogateConfig()
        assert resolve_surrogate(cfg) is cfg
        assert resolve_surrogate(SurrogateConfig(mode="off")) is None
        assert resolve_surrogate("gp") == SurrogateConfig()
        with pytest.raises(CharacterizationError):
            resolve_surrogate(123)

    def test_identity_covers_all_knobs(self):
        ident = SurrogateConfig().identity()
        assert set(ident) == {
            "mode", "n_seed", "max_points", "batch", "budgets",
            "cv_budget", "breakpoint_tol", "n_restarts",
        }

    def test_budget_family(self):
        assert budget_family("q+3") == "quantile"
        assert budget_family("q-1") == "quantile"
        assert budget_family("mu") == "mu"
        assert budget_family("out_slew") == "out_slew"

    def test_statistic_names_cover_table(self):
        assert STATISTIC_NAMES[:4] == ("mu", "sigma", "skew", "kurt")
        assert STATISTIC_NAMES[-1] == "out_slew"
        assert len(STATISTIC_NAMES) == 4 + len(SIGMA_LEVELS) + 1
        for fam in DEFAULT_BUDGETS:
            assert fam in {"mu", "sigma", "quantile", "out_slew"}


class TestValidateProvenance:
    def _valid(self):
        res = run_active_learning(
            SLEWS, LOADS, synthetic_runner(), seed=42,
            config=SurrogateConfig(), reference=(0, 1), n_samples=2000,
        )
        return dict(res.provenance)

    def test_valid_record_passes(self):
        assert validate_provenance(self._valid()) == []

    def test_missing_key(self):
        prov = self._valid()
        del prov["cv"]
        assert any("cv" in p for p in validate_provenance(prov))

    def test_count_mismatch(self):
        prov = self._valid()
        prov["n_simulated"] = prov["n_simulated"] + 1
        assert validate_provenance(prov) != []

    def test_unknown_method(self):
        prov = self._valid()
        prov["method"] = "spline"
        assert any("method" in p for p in validate_provenance(prov))

    def test_missing_mu_statistics(self):
        prov = self._valid()
        prov["statistics"] = {}
        assert any("mu" in p for p in validate_provenance(prov))
