"""Integration of the surrogate with the real Monte-Carlo pipeline.

Kept cheap: one arc, a coarse grid, few samples. The points that ARE
simulated must be bit-identical to a dense run, dense-mode cache keys
must not move when the surrogate is off, and checkpoint resume must
restore surrogate tables bit-for-bit.
"""

import numpy as np
import pytest

from repro.cache import JsonCache, content_key
from repro.cells.characterize import (
    ArcCharacterizer,
    arc_cache_payload,
    characterize_library,
)
from repro.core.flow import DelayCalibrationFlow
from repro.perf import PerfCounters
from repro.spice.montecarlo import MonteCarloEngine
from repro.surrogate import SurrogateConfig, validate_provenance
from repro.units import FF, PS

N_SAMPLES = 48
GRID = dict(
    slews=tuple(np.linspace(10 * PS, 80 * PS, 5)),
    loads=tuple(np.linspace(1 * FF, 6 * FF, 6)),
)


@pytest.fixture()
def local_charz(tech, variation):
    """A characterizer with private perf counters (resettable)."""
    return ArcCharacterizer(MonteCarloEngine(tech, variation, seed=5))


@pytest.fixture(scope="module")
def dense_and_surrogate(characterizer, library):
    dense = characterize_library(
        characterizer, library, cells=["INVx1"], n_samples=N_SAMPLES,
        workers=1, **GRID,
    )
    surro = characterize_library(
        characterizer, library, cells=["INVx1"], n_samples=N_SAMPLES,
        workers=1, surrogate=SurrogateConfig(), **GRID,
    )
    return dense, surro


class TestSurrogateVsDense:
    def test_provenance_attached_and_valid(self, dense_and_surrogate):
        _, surro = dense_and_surrogate
        table = next(iter(surro.tables.values()))
        assert table.provenance is not None
        if table.provenance.get("fallback") is None:
            assert validate_provenance(table.provenance) == []
            assert table.provenance["n_simulated"] < table.provenance["n_grid"]

    def test_simulated_points_bit_identical(self, dense_and_surrogate):
        dense, surro = dense_and_surrogate
        for key, table in surro.tables.items():
            ref = dense.tables[key]
            for (i, j) in (tuple(ij) for ij in table.provenance["simulated"]):
                assert np.array_equal(table.moments[i, j], ref.moments[i, j])
                assert np.array_equal(table.quantiles[i, j], ref.quantiles[i, j])
                assert table.out_slew[i, j] == ref.out_slew[i, j]

    def test_dense_table_has_no_provenance(self, dense_and_surrogate):
        dense, _ = dense_and_surrogate
        assert all(t.provenance is None for t in dense.tables.values())

    def test_predicted_entries_physical(self, dense_and_surrogate):
        _, surro = dense_and_surrogate
        table = next(iter(surro.tables.values()))
        assert np.all(table.moments[..., 1] > 0)  # sigma
        assert np.all(np.diff(table.quantiles, axis=-1) >= 0)
        assert np.all(table.out_slew > 0)


class TestCacheKeyCompatibility:
    def test_dense_payload_unchanged_by_surrogate_arg(
        self, engine, library
    ):
        cell = library.get("INVx1")
        slews = np.asarray(GRID["slews"])
        loads = np.asarray(GRID["loads"])
        legacy = arc_cache_payload(
            engine, cell, "A", False, slews, loads, N_SAMPLES
        )
        off = arc_cache_payload(
            engine, cell, "A", False, slews, loads, N_SAMPLES, surrogate=None
        )
        assert content_key(legacy) == content_key(off)
        assert "surrogate" not in off

    def test_surrogate_payload_salted(self, engine, library):
        cell = library.get("INVx1")
        slews = np.asarray(GRID["slews"])
        loads = np.asarray(GRID["loads"])
        on = arc_cache_payload(
            engine, cell, "A", False, slews, loads, N_SAMPLES,
            surrogate=SurrogateConfig(),
        )
        off = arc_cache_payload(
            engine, cell, "A", False, slews, loads, N_SAMPLES
        )
        assert on["surrogate"] == SurrogateConfig().identity()
        assert content_key(on) != content_key(off)

    def test_flow_cache_key_stable_when_off(self, tmp_path):
        base = DelayCalibrationFlow(seed=3, cache_dir=tmp_path / "a")
        off = DelayCalibrationFlow(
            seed=3, cache_dir=tmp_path / "b", surrogate="off"
        )
        assert base._cache_key() == off._cache_key()

    def test_flow_cache_key_salted_when_on(self, tmp_path):
        base = DelayCalibrationFlow(seed=3, cache_dir=tmp_path / "a")
        on = DelayCalibrationFlow(
            seed=3, cache_dir=tmp_path / "b", surrogate="gp"
        )
        assert base._cache_key() != on._cache_key()


class TestCheckpointResume:
    def test_resume_restores_bit_identical(
        self, local_charz, library, tmp_path
    ):
        cache = JsonCache(tmp_path / "ckpt")
        cfg = SurrogateConfig()
        first = characterize_library(
            local_charz, library, cells=["INVx1"], n_samples=N_SAMPLES,
            workers=1, surrogate=cfg, cache=cache, **GRID,
        )
        local_charz.engine.perf = PerfCounters()
        second = characterize_library(
            local_charz, library, cells=["INVx1"], n_samples=N_SAMPLES,
            workers=1, surrogate=cfg, cache=cache, **GRID,
        )
        for key, table in first.tables.items():
            restored = second.tables[key]
            assert np.array_equal(table.moments, restored.moments)
            assert np.array_equal(table.quantiles, restored.quantiles)
            assert np.array_equal(table.out_slew, restored.out_slew)
            assert table.provenance == restored.provenance
        # The resumed run simulated nothing.
        assert local_charz.engine.perf.points_simulated == 0
        assert local_charz.engine.perf.points_predicted == 0


class TestFallbackPath:
    def test_cv_breach_produces_dense_table(self, characterizer, library):
        strict = SurrogateConfig(cv_budget=1e-12)
        res = characterize_library(
            characterizer, library, cells=["INVx1"], n_samples=N_SAMPLES,
            workers=1, surrogate=strict, **GRID,
        )
        dense = characterize_library(
            characterizer, library, cells=["INVx1"], n_samples=N_SAMPLES,
            workers=1, **GRID,
        )
        for key, table in res.tables.items():
            ref = dense.tables[key]
            assert table.provenance is not None
            assert table.provenance.get("fallback") == "cv_residual"
            assert np.array_equal(table.moments, ref.moments)
            assert np.array_equal(table.quantiles, ref.quantiles)
            assert np.array_equal(table.out_slew, ref.out_slew)


class TestPerfAttribution:
    def test_point_counters_and_arc_attribution(self, local_charz, library):
        res = characterize_library(
            local_charz, library, cells=["INVx1"], n_samples=N_SAMPLES,
            workers=1, surrogate=SurrogateConfig(), **GRID,
        )
        perf = local_charz.engine.perf
        table = next(iter(res.tables.values()))
        n_grid = table.moments[..., 0].size
        assert perf.points_simulated + perf.points_predicted == n_grid
        if table.provenance.get("fallback") is None:
            assert perf.points_predicted > 0
        assert any("INVx1" in arc for arc in perf.arc_samples)
        assert all(v >= 0 for v in perf.arc_wall_s.values())
        d = perf.to_dict()
        assert "arc_wall_s" in d and "arc_samples" in d
