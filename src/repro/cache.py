"""Content-hashed on-disk JSON cache for expensive simulation artifacts.

Characterizing a library point takes seconds; a full grid takes minutes.
The artifacts are pure functions of their inputs (netlist, variation
model, grid, sample count, seed), so they are cached on disk keyed by a
SHA-256 hash of a canonical-JSON payload describing exactly those
inputs — change any knob and the key changes, touch nothing and the
cache hits forever.

This module was promoted out of the benchmark harness so the CLI,
examples and tests all share one cache. The default location is
``.repro_cache/`` in the working directory, overridable with the
``REPRO_CACHE_DIR`` environment variable. Purge by deleting the
directory or calling :meth:`JsonCache.purge`.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Fallback cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro_cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, "") or DEFAULT_CACHE_DIR)


def version_salt() -> Dict[str, str]:
    """Identity of the code that produces cached artifacts.

    Folding the package version into every content key means a release
    that changes the physics (device model, solver, calibration math)
    invalidates all previously cached characterization tables instead
    of replaying stale data forever. The resolved kernel backend
    identity (``repro.kernels.backend_identity``) is part of the salt
    for the same reason: artifacts simulated by different numeric
    backends must never alias, even though accelerated backends are
    held to the documented equivalence envelope.
    """
    from repro import __version__
    from repro.kernels import backend_identity
    from repro.pack import PACK_FORMAT_VERSION

    return {
        "repro_version": __version__,
        "kernel": backend_identity(),
        # Pack identity: a format bump re-keys every content-addressed
        # artifact, so a `.rpk` written by an old layout can never be
        # looked up (let alone served) by a new reader.
        "pack_format": f"rpk-v{PACK_FORMAT_VERSION}",
    }


def content_key(payload: Any, length: int = 16, versioned: bool = True) -> str:
    """Stable hex digest of a JSON-serializable payload.

    The payload is serialized with sorted keys and repr-fallback for
    non-JSON values (tuples become lists, dataclasses should be passed
    through ``asdict`` by the caller), then hashed with SHA-256.

    ``versioned=True`` (the default) mixes :func:`version_salt` into the
    digest so artifacts cached by one package version are never reused
    by another; pass ``False`` only for keys that must survive releases.
    """
    import hashlib

    doc: Any = payload
    if versioned:
        doc = {"salt": version_salt(), "payload": payload}
    blob = json.dumps(doc, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:length]


class JsonCache:
    """A directory of ``<kind>_<key>.json`` artifacts with hit/miss stats.

    Safe under concurrent writers: every :meth:`put` writes to a
    process-unique temp file (two processes storing the same key can
    never truncate each other mid-write), fsyncs it, and atomically
    renames it over the final path — last writer wins with a complete
    artifact. Orphaned ``*.tmp`` files from crashed writers are swept
    on construction. A truncated or otherwise corrupt artifact is
    treated as a miss: the bad file is unlinked and counted in
    ``corrupt`` (and the ``cache_corrupt`` perf counter).

    Parameters
    ----------
    directory:
        Cache root; created lazily on first :meth:`put`. ``None`` uses
        :func:`default_cache_dir`.
    perf:
        Optional :class:`~repro.perf.PerfCounters` receiving
        ``cache_hits`` / ``cache_misses`` / ``cache_corrupt``.
    """

    #: Whether artifacts are binary packs (ndarray leaves allowed in
    #: :meth:`put` documents). Producers key their ``to_dict(arrays=...)``
    #: call on this so one code path serves both cache flavors.
    binary = False

    def __init__(self, directory: Optional[Union[str, Path]] = None, perf=None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.perf = perf
        self.sweep_orphans()

    # ------------------------------------------------------------------
    def sweep_orphans(self) -> int:
        """Delete leftover ``*.tmp`` files from crashed writers; returns count.

        Called on construction. A temp file belonging to a concurrent
        live writer may be swept too; :meth:`put` recovers from that by
        rewriting (its atomic rename simply fails and is retried with a
        fresh temp file), so the sweep is always safe.
        """
        if not self.directory.exists():
            return 0
        removed = 0
        for orphan in self.directory.glob("*.tmp"):
            try:
                orphan.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced with another sweep
                pass
        return removed

    # ------------------------------------------------------------------
    def path(self, kind: str, key: str) -> Path:
        """File path of an artifact (may not exist yet)."""
        return self.directory / f"{kind}_{key}.json"

    def _count_miss(self) -> None:
        self.misses += 1
        if self.perf is not None:
            self.perf.cache_misses += 1

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """Load an artifact, or ``None`` on miss (or unreadable file).

        A file that exists but does not parse (truncated by a crashed
        writer, bit-rot) is *corrupt*: it is unlinked so it cannot keep
        shadowing the key, counted separately from plain misses, and
        reported as a miss to the caller — the artifact is simply
        recomputed and re-stored.

        A file that vanishes between the existence check and the open —
        a concurrent reader's corrupt-unlink, or a purge — is a plain
        miss, not corruption: this reader never saw the bytes, so it has
        no grounds to count (or unlink) anything.
        """
        path = self.path(kind, key)
        if not path.exists():
            self._count_miss()
            return None
        try:
            with path.open() as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self._count_miss()
            return None
        except (OSError, json.JSONDecodeError):
            self.corrupt += 1
            if self.perf is not None:
                self.perf.cache_corrupt += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another reader
                pass
            self._count_miss()
            return None
        self.hits += 1
        if self.perf is not None:
            self.perf.cache_hits += 1
        return doc

    def put(self, kind: str, key: str, doc: Dict[str, Any]) -> Path:
        """Store an artifact atomically (unique temp file, fsync, rename).

        The temp name embeds the PID plus a random suffix, so concurrent
        writers of the *same* key each write their own complete file and
        the atomic ``os.replace`` serializes them — a reader sees either
        the old artifact or a complete new one, never a torn write.
        """
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(doc)
        # Retry once if a concurrent cache construction swept our live
        # temp file between write and rename (see sweep_orphans).
        for attempt in (0, 1):
            fd, tmp_name = tempfile.mkstemp(
                prefix=f"{kind}_{key}.{os.getpid()}.",
                suffix=".tmp",
                dir=str(path.parent),
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp_name, path)
                return path
            except FileNotFoundError:
                if attempt:
                    raise
            finally:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        raise OSError(f"could not store cache artifact {path}")  # pragma: no cover

    def purge(self, kind: Optional[str] = None) -> int:
        """Delete cached artifacts (optionally only one ``kind``); returns count."""
        if not self.directory.exists():
            return 0
        pattern = f"{kind}_*.json" if kind else "*.json"
        removed = 0
        for path in self.directory.glob(pattern):
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JsonCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


class PackCache(JsonCache):
    """Binary sibling of :class:`JsonCache`: ``<kind>_<key>.rpk`` packs.

    Drop-in for the compile cache and per-arc checkpoints: identical
    ``get``/``put`` dict interface, but documents whose leaves are
    numpy arrays are stored as memory-mappable packs
    (:mod:`repro.pack`) instead of JSON. :meth:`get` returns the packed
    document with every tensor as a **read-only zero-copy mmap view**
    (plus the open :class:`~repro.pack.PackFile` under the
    ``"__pack__"`` key), so ``from_dict``-style consumers — whose
    ``np.asarray`` calls pass matching arrays through uncopied —
    reconstruct artifacts without parsing or materializing tensor data.

    Corruption handling matches :class:`JsonCache`: a pack that fails
    header or digest validation is unlinked, counted in ``corrupt`` /
    ``cache_corrupt``, and reported as a miss.

    Parameters
    ----------
    directory / perf:
        As for :class:`JsonCache`.
    verify:
        Re-hash every segment on :meth:`get` (default). ``False``
        trusts the header checks only; use it for same-process
        read-after-write paths where the digest cost is pure overhead.
    """

    binary = True

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        perf=None,
        verify: bool = True,
    ):
        super().__init__(directory, perf=perf)
        self.verify = verify

    def path(self, kind: str, key: str) -> Path:
        """File path of an artifact (may not exist yet)."""
        from repro.pack import PACK_SUFFIX

        return self.directory / f"{kind}_{key}{PACK_SUFFIX}"

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """Load a packed artifact zero-copy, or ``None`` on miss.

        The returned dict is the stored document plus ``"__pack__"``
        (the open :class:`~repro.pack.PackFile`); arrays in it are
        views into the mapping and stay valid for their own lifetime
        (the views' ``base`` chain pins the mmap).
        """
        from repro.pack import PackError, PackFile

        path = self.path(kind, key)
        if not path.exists():
            self._count_miss()
            return None
        try:
            pack = PackFile.open(path, verify=self.verify, perf=self.perf)
        except PackError:
            self.corrupt += 1
            if self.perf is not None:
                self.perf.cache_corrupt += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another reader
                pass
            self._count_miss()
            return None
        doc = pack.document()
        doc["__pack__"] = pack
        self.hits += 1
        if self.perf is not None:
            self.perf.cache_hits += 1
        return doc

    def put(self, kind: str, key: str, doc: Dict[str, Any]) -> Path:
        """Store a document as a pack (atomic temp-write + rename)."""
        from repro.pack import write_pack

        doc = {k: v for k, v in doc.items() if k != "__pack__"}
        return write_pack(
            self.path(kind, key),
            kind,
            doc,
            meta={"cache_key": key},
            perf=self.perf,
        )

    def purge(self, kind: Optional[str] = None) -> int:
        """Delete cached packs (optionally only one ``kind``); returns count."""
        if not self.directory.exists():
            return 0
        pattern = f"{kind}_*.rpk" if kind else "*.rpk"
        removed = 0
        for path in self.directory.glob(pattern):
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
