"""Transistor-level templates of the standard-cell types.

Each :class:`CellType` knows how to instantiate its CMOS network into a
:class:`~repro.spice.netlist.TransistorNetlist`, which side-input values
sensitize a given input pin, and its stack depth (the ``n`` of the
paper's Eq. (5)).

Sizing follows standard practice: PMOS widths carry the technology's
P/N ratio, and series ("stacked") devices are up-sized by the stack
count so every cell type delivers roughly inverter-equivalent drive at
equal strength — which is exactly why stacked cells have *lower* delay
variability (more, larger devices averaging their mismatch), the effect
the paper's wire model exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.errors import NetlistError
from repro.spice.netlist import TransistorNetlist
from repro.variation.parameters import Technology


@dataclass(frozen=True)
class ArcSpec:
    """How to sensitize a timing arc through one input pin.

    Attributes
    ----------
    static:
        Logic values (0/1) to hold on the *other* input pins so a
        transition on this pin propagates to the output.
    inverting:
        True when a rising input produces a falling output.
    """

    static: Mapping[str, int]
    inverting: bool


BuilderFn = Callable[[TransistorNetlist, str, Mapping[str, str], float, Technology], None]


@dataclass(frozen=True)
class CellType:
    """A standard-cell type (function + topology), independent of strength.

    Attributes
    ----------
    name:
        Type name, e.g. ``"NAND2"``.
    inputs:
        Ordered input pin names.
    output:
        Output pin name (always ``"Y"`` in this library).
    n_stack:
        Stack depth on the critical switching path — the ``n`` in the
        paper's Pelgrom argument (Eq. 5).
    arcs:
        Per-input-pin sensitization (see :class:`ArcSpec`).
    builder:
        Function that instantiates the transistors.
    logic:
        Boolean function of the input values, used by the gate-level
        simulator and netlist generators.
    """

    name: str
    inputs: Tuple[str, ...]
    output: str
    n_stack: int
    arcs: Mapping[str, ArcSpec]
    builder: BuilderFn
    logic: Callable[[Mapping[str, int]], int]

    def build(
        self,
        net: TransistorNetlist,
        prefix: str,
        nodes: Mapping[str, str],
        strength: float,
        tech: Technology,
    ) -> None:
        """Instantiate this cell into ``net``.

        Parameters
        ----------
        prefix:
            Unique instance prefix for device and internal node names.
        nodes:
            Pin name → circuit node mapping. Must cover every input pin,
            the output pin, and may omit ``vdd``/``gnd`` (defaulting to
            the global rails).
        strength:
            Drive-strength multiplier.
        """
        missing = [p for p in (*self.inputs, self.output) if p not in nodes]
        if missing:
            raise NetlistError(f"{self.name} instance {prefix}: missing pins {missing}")
        self.builder(net, prefix, nodes, strength, tech)


def _wn(tech: Technology, strength: float, series: int = 1) -> float:
    return tech.unit_nmos_width * strength * series


def _wp(tech: Technology, strength: float, series: int = 1) -> float:
    return tech.unit_pmos_width * strength * series


def _rail(nodes: Mapping[str, str], pin: str, default: str) -> str:
    return nodes.get(pin, default)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _build_inv(net, prefix, nodes, strength, tech):
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, y = nodes["A"], nodes["Y"]
    net.add_mosfet(f"{prefix}_mp", "p", drain=y, gate=a, source=vdd, width=_wp(tech, strength))
    net.add_mosfet(f"{prefix}_mn", "n", drain=y, gate=a, source=gnd, width=_wn(tech, strength))


def _build_buf(net, prefix, nodes, strength, tech):
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, y = nodes["A"], nodes["Y"]
    mid = f"{prefix}_mid"
    s1 = max(1.0, strength / 2.0)
    net.add_mosfet(f"{prefix}_mp1", "p", drain=mid, gate=a, source=vdd, width=_wp(tech, s1))
    net.add_mosfet(f"{prefix}_mn1", "n", drain=mid, gate=a, source=gnd, width=_wn(tech, s1))
    net.add_mosfet(f"{prefix}_mp2", "p", drain=y, gate=mid, source=vdd, width=_wp(tech, strength))
    net.add_mosfet(f"{prefix}_mn2", "n", drain=y, gate=mid, source=gnd, width=_wn(tech, strength))


def _build_nand2(net, prefix, nodes, strength, tech):
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, b, y = nodes["A"], nodes["B"], nodes["Y"]
    n1 = f"{prefix}_n1"
    net.add_mosfet(f"{prefix}_mpa", "p", drain=y, gate=a, source=vdd, width=_wp(tech, strength))
    net.add_mosfet(f"{prefix}_mpb", "p", drain=y, gate=b, source=vdd, width=_wp(tech, strength))
    net.add_mosfet(f"{prefix}_mna", "n", drain=y, gate=a, source=n1, width=_wn(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mnb", "n", drain=n1, gate=b, source=gnd, width=_wn(tech, strength, 2))


def _build_nand3(net, prefix, nodes, strength, tech):
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, b, c, y = nodes["A"], nodes["B"], nodes["C"], nodes["Y"]
    n1, n2 = f"{prefix}_n1", f"{prefix}_n2"
    for pin, node in (("a", a), ("b", b), ("c", c)):
        net.add_mosfet(
            f"{prefix}_mp{pin}", "p", drain=y, gate=node, source=vdd, width=_wp(tech, strength)
        )
    net.add_mosfet(f"{prefix}_mna", "n", drain=y, gate=a, source=n1, width=_wn(tech, strength, 3))
    net.add_mosfet(f"{prefix}_mnb", "n", drain=n1, gate=b, source=n2, width=_wn(tech, strength, 3))
    net.add_mosfet(f"{prefix}_mnc", "n", drain=n2, gate=c, source=gnd, width=_wn(tech, strength, 3))


def _build_nor2(net, prefix, nodes, strength, tech):
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, b, y = nodes["A"], nodes["B"], nodes["Y"]
    p1 = f"{prefix}_p1"
    net.add_mosfet(f"{prefix}_mpa", "p", drain=p1, gate=a, source=vdd, width=_wp(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mpb", "p", drain=y, gate=b, source=p1, width=_wp(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mna", "n", drain=y, gate=a, source=gnd, width=_wn(tech, strength))
    net.add_mosfet(f"{prefix}_mnb", "n", drain=y, gate=b, source=gnd, width=_wn(tech, strength))


def _build_nor3(net, prefix, nodes, strength, tech):
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, b, c, y = nodes["A"], nodes["B"], nodes["C"], nodes["Y"]
    p1, p2 = f"{prefix}_p1", f"{prefix}_p2"
    net.add_mosfet(f"{prefix}_mpa", "p", drain=p1, gate=a, source=vdd, width=_wp(tech, strength, 3))
    net.add_mosfet(f"{prefix}_mpb", "p", drain=p2, gate=b, source=p1, width=_wp(tech, strength, 3))
    net.add_mosfet(f"{prefix}_mpc", "p", drain=y, gate=c, source=p2, width=_wp(tech, strength, 3))
    for pin, node in (("a", a), ("b", b), ("c", c)):
        net.add_mosfet(
            f"{prefix}_mn{pin}", "n", drain=y, gate=node, source=gnd, width=_wn(tech, strength)
        )


def _build_aoi21(net, prefix, nodes, strength, tech):
    # Y = !(A*B + C)
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, b, c, y = nodes["A"], nodes["B"], nodes["C"], nodes["Y"]
    n1, p1 = f"{prefix}_n1", f"{prefix}_p1"
    # Pull-down: A-B series branch parallel with C.
    net.add_mosfet(f"{prefix}_mna", "n", drain=y, gate=a, source=n1, width=_wn(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mnb", "n", drain=n1, gate=b, source=gnd, width=_wn(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mnc", "n", drain=y, gate=c, source=gnd, width=_wn(tech, strength))
    # Pull-up: (A parallel B) in series with C.
    net.add_mosfet(f"{prefix}_mpa", "p", drain=p1, gate=a, source=vdd, width=_wp(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mpb", "p", drain=p1, gate=b, source=vdd, width=_wp(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mpc", "p", drain=y, gate=c, source=p1, width=_wp(tech, strength, 2))


def _build_oai21(net, prefix, nodes, strength, tech):
    # Y = !((A + B) * C)
    vdd = _rail(nodes, "vdd", "vdd")
    gnd = _rail(nodes, "gnd", "gnd")
    a, b, c, y = nodes["A"], nodes["B"], nodes["C"], nodes["Y"]
    n1, p1 = f"{prefix}_n1", f"{prefix}_p1"
    # Pull-down: (A parallel B) in series with C.
    net.add_mosfet(f"{prefix}_mna", "n", drain=n1, gate=a, source=gnd, width=_wn(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mnb", "n", drain=n1, gate=b, source=gnd, width=_wn(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mnc", "n", drain=y, gate=c, source=n1, width=_wn(tech, strength, 2))
    # Pull-up: A-B series branch parallel with C.
    net.add_mosfet(f"{prefix}_mpa", "p", drain=p1, gate=a, source=vdd, width=_wp(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mpb", "p", drain=y, gate=b, source=p1, width=_wp(tech, strength, 2))
    net.add_mosfet(f"{prefix}_mpc", "p", drain=y, gate=c, source=vdd, width=_wp(tech, strength))


def _build_xor2(net, prefix, nodes, strength, tech):
    # Four-NAND XOR: y = a ^ b (no transmission gates in this library).
    a, b, y = nodes["A"], nodes["B"], nodes["Y"]
    t1, t2, t3 = f"{prefix}_t1", f"{prefix}_t2", f"{prefix}_t3"
    sub = {"vdd": _rail(nodes, "vdd", "vdd"), "gnd": _rail(nodes, "gnd", "gnd")}
    _build_nand2(net, f"{prefix}_n1", {**sub, "A": a, "B": b, "Y": t1}, strength, tech)
    _build_nand2(net, f"{prefix}_n2", {**sub, "A": a, "B": t1, "Y": t2}, strength, tech)
    _build_nand2(net, f"{prefix}_n3", {**sub, "A": b, "B": t1, "Y": t3}, strength, tech)
    _build_nand2(net, f"{prefix}_n4", {**sub, "A": t2, "B": t3, "Y": y}, strength, tech)


def _build_xnor2(net, prefix, nodes, strength, tech):
    # XOR followed by an output inverter: y = !(a ^ b).
    mid = f"{prefix}_x"
    _build_xor2(net, f"{prefix}_c", {**nodes, "Y": mid}, strength, tech)
    _build_inv(net, f"{prefix}_i", {**nodes, "A": mid}, strength, tech)


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------
# Logic functions are named module-level callables (not lambdas) so
# CellType/Cell objects pickle cleanly — characterization tasks carry
# cells across process boundaries when fanned out over a worker pool.
def _logic_inv(v):
    return 1 - v["A"]


def _logic_buf(v):
    return v["A"]


def _logic_nand2(v):
    return 1 - (v["A"] & v["B"])


def _logic_nand3(v):
    return 1 - (v["A"] & v["B"] & v["C"])


def _logic_nor2(v):
    return 1 - (v["A"] | v["B"])


def _logic_nor3(v):
    return 1 - (v["A"] | v["B"] | v["C"])


def _logic_aoi21(v):
    return 1 - ((v["A"] & v["B"]) | v["C"])


def _logic_oai21(v):
    return 1 - ((v["A"] | v["B"]) & v["C"])


def _logic_xor2(v):
    return v["A"] ^ v["B"]


def _logic_xnor2(v):
    return 1 - (v["A"] ^ v["B"])


def _make(name, inputs, n_stack, arcs, builder, logic) -> CellType:
    return CellType(
        name=name,
        inputs=tuple(inputs),
        output="Y",
        n_stack=n_stack,
        arcs=arcs,
        builder=builder,
        logic=logic,
    )


#: All cell types of the synthetic library, keyed by type name.
CELL_TYPES: Dict[str, CellType] = {
    "INV": _make(
        "INV", ("A",), 1,
        {"A": ArcSpec(static={}, inverting=True)},
        _build_inv,
        _logic_inv,
    ),
    "BUF": _make(
        "BUF", ("A",), 1,
        {"A": ArcSpec(static={}, inverting=False)},
        _build_buf,
        _logic_buf,
    ),
    "NAND2": _make(
        "NAND2", ("A", "B"), 2,
        {
            "A": ArcSpec(static={"B": 1}, inverting=True),
            "B": ArcSpec(static={"A": 1}, inverting=True),
        },
        _build_nand2,
        _logic_nand2,
    ),
    "NAND3": _make(
        "NAND3", ("A", "B", "C"), 3,
        {
            "A": ArcSpec(static={"B": 1, "C": 1}, inverting=True),
            "B": ArcSpec(static={"A": 1, "C": 1}, inverting=True),
            "C": ArcSpec(static={"A": 1, "B": 1}, inverting=True),
        },
        _build_nand3,
        _logic_nand3,
    ),
    "NOR2": _make(
        "NOR2", ("A", "B"), 2,
        {
            "A": ArcSpec(static={"B": 0}, inverting=True),
            "B": ArcSpec(static={"A": 0}, inverting=True),
        },
        _build_nor2,
        _logic_nor2,
    ),
    "NOR3": _make(
        "NOR3", ("A", "B", "C"), 3,
        {
            "A": ArcSpec(static={"B": 0, "C": 0}, inverting=True),
            "B": ArcSpec(static={"A": 0, "C": 0}, inverting=True),
            "C": ArcSpec(static={"A": 0, "B": 0}, inverting=True),
        },
        _build_nor3,
        _logic_nor3,
    ),
    "AOI21": _make(
        "AOI21", ("A", "B", "C"), 2,
        {
            "A": ArcSpec(static={"B": 1, "C": 0}, inverting=True),
            "B": ArcSpec(static={"A": 1, "C": 0}, inverting=True),
            "C": ArcSpec(static={"A": 0, "B": 1}, inverting=True),
        },
        _build_aoi21,
        _logic_aoi21,
    ),
    "OAI21": _make(
        "OAI21", ("A", "B", "C"), 2,
        {
            "A": ArcSpec(static={"B": 0, "C": 1}, inverting=True),
            "B": ArcSpec(static={"A": 0, "C": 1}, inverting=True),
            "C": ArcSpec(static={"A": 1, "B": 0}, inverting=True),
        },
        _build_oai21,
        _logic_oai21,
    ),
    "XOR2": _make(
        "XOR2", ("A", "B"), 2,
        {
            # With the other input at 0, an XOR passes the pin through.
            "A": ArcSpec(static={"B": 0}, inverting=False),
            "B": ArcSpec(static={"A": 0}, inverting=False),
        },
        _build_xor2,
        _logic_xor2,
    ),
    "XNOR2": _make(
        "XNOR2", ("A", "B"), 2,
        {
            "A": ArcSpec(static={"B": 0}, inverting=True),
            "B": ArcSpec(static={"A": 0}, inverting=True),
        },
        _build_xnor2,
        _logic_xnor2,
    ),
}
