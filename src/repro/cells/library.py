"""Cells (type × strength) and the library container.

Cell names follow the paper's convention: type name + ``x`` + strength,
e.g. ``NAND2x4``. The paper's "AOI2" family maps to ``AOI21`` here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import NetlistError
from repro.cells.templates import CELL_TYPES, ArcSpec, CellType
from repro.spice.netlist import TransistorNetlist
from repro.variation.parameters import Technology
from repro.variation.pelgrom import stacked_variability_scale


@dataclass(frozen=True)
class Cell:
    """A concrete library cell: a type at a drive strength.

    Attributes
    ----------
    cell_type:
        The :class:`~repro.cells.templates.CellType`.
    strength:
        Drive-strength multiplier (1, 2, 4, 8, ...).
    """

    cell_type: CellType
    strength: int

    def __post_init__(self) -> None:
        if self.strength < 1:
            raise NetlistError(f"strength must be >= 1, got {self.strength}")

    @property
    def name(self) -> str:
        """Library name, e.g. ``"NOR2x4"``."""
        return f"{self.cell_type.name}x{self.strength}"

    @property
    def inputs(self) -> Tuple[str, ...]:
        """Input pin names."""
        return self.cell_type.inputs

    @property
    def output(self) -> str:
        """Output pin name."""
        return self.cell_type.output

    @property
    def n_stack(self) -> int:
        """Stack depth used by the paper's Eq. (5)."""
        return self.cell_type.n_stack

    def arc(self, pin: str) -> ArcSpec:
        """Sensitization of the timing arc through ``pin``."""
        try:
            return self.cell_type.arcs[pin]
        except KeyError:
            raise NetlistError(f"{self.name} has no input pin {pin!r}") from None

    def variability_scale(self) -> float:
        """Pelgrom scale ``1/sqrt(n_stack * strength)`` relative to unit INV."""
        return stacked_variability_scale(self.n_stack, self.strength)

    def build(
        self,
        net: TransistorNetlist,
        prefix: str,
        nodes: Mapping[str, str],
        tech: Technology,
    ) -> None:
        """Instantiate into a transistor netlist (see :meth:`CellType.build`)."""
        self.cell_type.build(net, prefix, nodes, float(self.strength), tech)

    def input_cap(self, pin: str, tech: Technology) -> float:
        """Input capacitance of ``pin`` in farads.

        Computed from the template itself: the sum of the gate
        capacitances of every transistor whose gate connects to the pin.
        """
        if pin not in self.inputs:
            raise NetlistError(f"{self.name} has no input pin {pin!r}")
        scratch = TransistorNetlist()
        nodes = {p: f"pin_{p}" for p in (*self.inputs, self.output)}
        self.build(scratch, "u0", nodes, tech)
        pin_node = nodes[pin]
        return sum(tech.gate_cap(m.width) for m in scratch.mosfets if m.gate == pin_node)

    def max_input_cap(self, tech: Technology) -> float:
        """Largest per-pin input capacitance (for FO-N load constraints)."""
        return max(self.input_cap(p, tech) for p in self.inputs)

    def logic(self, values: Mapping[str, int]) -> int:
        """Boolean output for the given input values."""
        return self.cell_type.logic(values)


class CellLibrary:
    """A named collection of :class:`Cell` objects.

    Iteration order is deterministic (insertion order), which keeps
    characterization runs and benchmark tables reproducible.
    """

    def __init__(self, tech: Technology, cells: Optional[Iterable[Cell]] = None):
        self.tech = tech
        self._cells: Dict[str, Cell] = {}
        for cell in cells or ():
            self.add(cell)

    def add(self, cell: Cell) -> None:
        """Add a cell; duplicate names are rejected."""
        if cell.name in self._cells:
            raise NetlistError(f"duplicate cell {cell.name}")
        self._cells[cell.name] = cell

    def get(self, name: str) -> Cell:
        """Look a cell up by name (``KeyError`` message lists near misses)."""
        try:
            return self._cells[name]
        except KeyError:
            candidates = [c for c in self._cells if c.startswith(name.split("x")[0])]
            raise KeyError(f"no cell {name!r}; available: {candidates}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> List[str]:
        """All cell names in insertion order."""
        return list(self._cells)

    def cells_of_type(self, type_name: str) -> List[Cell]:
        """All strengths of one cell type, ascending."""
        found = [c for c in self._cells.values() if c.cell_type.name == type_name]
        return sorted(found, key=lambda c: c.strength)

    def strongest(self, type_name: str) -> Cell:
        """The highest-strength variant of a type."""
        cells = self.cells_of_type(type_name)
        if not cells:
            raise KeyError(f"no cells of type {type_name!r}")
        return cells[-1]


#: Strengths instantiated by :func:`build_default_library`.
DEFAULT_STRENGTHS: Tuple[int, ...] = (1, 2, 4, 8)


def build_default_library(
    tech: Technology,
    type_names: Optional[Iterable[str]] = None,
    strengths: Iterable[int] = DEFAULT_STRENGTHS,
) -> CellLibrary:
    """Build the default synthetic library.

    Parameters
    ----------
    type_names:
        Cell types to include (default: every type in
        :data:`~repro.cells.templates.CELL_TYPES`).
    strengths:
        Drive strengths per type (default x1/x2/x4/x8, matching the
        paper's Table II sweep).
    """
    names = list(type_names) if type_names is not None else list(CELL_TYPES)
    lib = CellLibrary(tech)
    for name in names:
        if name not in CELL_TYPES:
            raise KeyError(f"unknown cell type {name!r}; known: {list(CELL_TYPES)}")
        for s in strengths:
            lib.add(Cell(cell_type=CELL_TYPES[name], strength=int(s)))
    return lib
