"""Synthetic standard-cell library and moment characterization.

Replaces the paper's proprietary TSMC 28 nm cell library with
transistor-level templates (INV/BUF/NAND/NOR/AOI/OAI at drive strengths
x1–x8) built on :mod:`repro.spice`, plus the characterization engine
that extracts the first four delay moments over an (input slew × output
load) grid — the data the paper's Fig. 4 / Fig. 5 flow consumes.
"""

from repro.cells.templates import ArcSpec, CellType, CELL_TYPES
from repro.cells.library import Cell, CellLibrary, build_default_library
from repro.cells.characterize import (
    ArcCharacterizer,
    CharacterizationTable,
    LibraryCharacterization,
)
from repro.cells.liberty import load_library_characterization, save_library_characterization

__all__ = [
    "ArcSpec",
    "CellType",
    "CELL_TYPES",
    "Cell",
    "CellLibrary",
    "build_default_library",
    "ArcCharacterizer",
    "CharacterizationTable",
    "LibraryCharacterization",
    "save_library_characterization",
    "load_library_characterization",
]
