"""Liberty-like JSON persistence of characterization data.

Industrial flows store this data in Liberty files with LVF
(Liberty Variation Format) extensions; here the same content —
per-arc lookup tables of moments, sigma-level quantiles and output
slews, indexed by input slew and output load — is serialized as JSON,
which keeps the repository dependency-free while staying faithful to
the LVF structure (``index_1`` = slews, ``index_2`` = loads, one
``values`` block per quantity).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import CharacterizationError
from repro.cells.characterize import (
    CharacterizationTable,
    LibraryCharacterization,
    QuarantinedArc,
)
from repro.moments.stats import SIGMA_LEVELS

#: Format identifier written into every file.
FORMAT = "repro-lvf-json"
FORMAT_VERSION = 1


def table_to_dict(table: CharacterizationTable, arrays: bool = False) -> dict:
    """One arc table as a plain-JSON record (inverse of :func:`table_from_dict`).

    ``arrays=True`` keeps ndarray leaves (for the binary pack writer;
    the per-moment slices are made contiguous so they segment cleanly).
    """
    keep = (
        (lambda a: np.ascontiguousarray(a)) if arrays else (lambda a: a.tolist())
    )
    record = {
        "cell": table.cell_name,
        "pin": table.pin,
        "edge": "rise" if table.output_rising else "fall",
        "n_samples": table.n_samples,
        "index_1_slew_s": keep(table.slews),
        "index_2_load_f": keep(table.loads),
        "moments": {
            name: keep(table.moments[..., k])
            for k, name in enumerate(("mu", "sigma", "skew", "kurt"))
        },
        "sigma_levels": list(SIGMA_LEVELS),
        "quantiles": keep(table.quantiles),
        "out_slew": keep(table.out_slew),
    }
    # Dense tables keep the historical record layout bit-for-bit; the
    # key exists only on surrogate-produced tables (lint rule SUR003).
    if table.provenance is not None:
        record["provenance"] = table.provenance
    return record


def table_from_dict(data: dict) -> CharacterizationTable:
    """Rebuild a :class:`CharacterizationTable` from its JSON record."""
    try:
        moments = np.stack(
            [np.asarray(data["moments"][name]) for name in ("mu", "sigma", "skew", "kurt")],
            axis=-1,
        )
        return CharacterizationTable(
            cell_name=data["cell"],
            pin=data["pin"],
            output_rising=data["edge"] == "rise",
            slews=np.asarray(data["index_1_slew_s"]),
            loads=np.asarray(data["index_2_load_f"]),
            moments=moments,
            quantiles=np.asarray(data["quantiles"]),
            out_slew=np.asarray(data["out_slew"]),
            n_samples=int(data["n_samples"]),
            provenance=data.get("provenance"),
        )
    except KeyError as exc:
        raise CharacterizationError(f"malformed table record: missing {exc}") from exc


def save_library_characterization(
    charac: LibraryCharacterization, path: Union[str, Path]
) -> None:
    """Write all tables to disk (directories are created as needed).

    The format follows the suffix: a ``.rpk`` path stores the bundle as
    a memory-mappable binary pack
    (:func:`repro.pack.pack_library_characterization`); anything else
    writes the historical JSON document.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".rpk":
        from repro.pack import pack_library_characterization

        pack_library_characterization(charac, path)
        return
    doc = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "tables": [table_to_dict(t) for t in charac.tables.values()],
    }
    if any(t.provenance is not None for t in charac.tables.values()):
        # Top-level marker so readers (and lint) need not scan every
        # table to learn that surrogate data is present.
        doc["surrogate"] = True
    if charac.quarantined:
        doc["quarantined"] = [q.as_dict() for q in charac.quarantined]
    with path.open("w") as fh:
        json.dump(doc, fh)


def load_library_characterization(path: Union[str, Path]) -> LibraryCharacterization:
    """Read tables back from :func:`save_library_characterization` output.

    A ``.rpk`` path loads by mmap with zero-copy table grids (and the
    open :class:`~repro.pack.PackFile` on the bundle's ``pack``
    attribute, which lets shared-payload publication short-circuit to
    the file instead of copying into POSIX shared memory).
    """
    path = Path(path)
    if path.suffix == ".rpk":
        from repro.pack import load_library_characterization_pack

        return load_library_characterization_pack(path)
    with path.open() as fh:
        doc = json.load(fh)
    if doc.get("format") != FORMAT:
        raise CharacterizationError(
            f"{path} is not a {FORMAT} file (format={doc.get('format')!r})"
        )
    out = LibraryCharacterization()
    for record in doc["tables"]:
        out.put(table_from_dict(record))
    for record in doc.get("quarantined", ()):
        out.quarantined.append(QuarantinedArc.from_dict(record))
    return out
