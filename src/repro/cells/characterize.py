"""Moment characterization of cell timing arcs.

This is the reproduction of the paper's characterization step (Fig. 5,
left column): "for each cell type and input pin, the moments of cell
delay are calculated based on the samples extracted from 10k MC
analysis" over a grid of operating conditions (input slew × output
load). The result — :class:`CharacterizationTable` — stores the first
four moments, the empirical sigma-level quantiles, and the mean output
slew (needed by the STA engine to propagate slews along a path).

Every (slew, load) grid point is an independent Monte-Carlo run, so the
grid fans out over :func:`repro.parallel.parallel_map`. Determinism
does not depend on worker count: each point gets its own seed derived
from ``(engine seed, arc identity, grid indices)`` via
:func:`repro.parallel.task_seed`, and workers rebuild a fresh
:class:`~repro.spice.montecarlo.MonteCarloEngine` from that seed — the
serial path runs the exact same per-point function in a loop, so
``workers=4`` is bit-identical to ``workers=1``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CharacterizationError
from repro.cache import JsonCache, content_key
from repro.cells.library import Cell, CellLibrary
from repro.moments.stats import SIGMA_LEVELS, Moments, empirical_sigma_quantiles
from repro.parallel import (
    QuarantinedTask,
    RetryPolicy,
    SharedPayloadBank,
    SharedPayloadHandle,
    parallel_map,
    resolve_workers,
    task_seed,
)
from repro.perf import PerfCounters
from repro.spice.measure import ramp_time_for_slew
from repro.spice.montecarlo import DelaySamples, MonteCarloEngine, SimulationSetup
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.units import FF, PS

#: Reference operating condition of the paper (Section III.B).
REFERENCE_SLEW = 10 * PS
REFERENCE_LOAD = 0.4 * FF

#: Default characterization grid (coarser than the paper's, tuned for
#: minutes-not-hours turnaround; benchmarks can densify).
DEFAULT_SLEWS = tuple(s * PS for s in (10, 40, 90, 160, 300))
DEFAULT_LOADS = tuple(c * FF for c in (0.1, 0.4, 1.2, 3.0, 6.0, 10.0))


def fanout_load(cell: Cell, tech, fanout: int = 4) -> float:
    """FO-``n`` load in farads: ``fanout`` copies of the cell's own input pin."""
    return fanout * cell.max_input_cap(tech)


def validate_grid_axes(
    slews: Sequence[float], loads: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate characterization grid axes at entry.

    Axes must be one-dimensional, non-empty, finite and strictly
    increasing — a shuffled or duplicated grid would silently produce a
    mis-ordered table whose bilinear interpolation is garbage, so the
    old silent ``sorted()`` coercion is now a hard
    :class:`~repro.errors.CharacterizationError`. Returns the axes as
    float arrays.
    """
    out = []
    for name, axis in (("slew", slews), ("load", loads)):
        arr = np.asarray(list(axis), dtype=float)
        if arr.ndim != 1 or arr.size < 1:
            raise CharacterizationError(
                f"{name} grid must be a non-empty 1-D sequence, "
                f"got shape {arr.shape}"
            )
        if not np.isfinite(arr).all():
            raise CharacterizationError(
                f"{name} grid contains non-finite values: {arr.tolist()}"
            )
        if arr.size > 1 and not np.all(np.diff(arr) > 0):
            raise CharacterizationError(
                f"{name} grid must be strictly increasing, "
                f"got {arr.tolist()}"
            )
        out.append(arr)
    return out[0], out[1]


@dataclass
class CharacterizationTable:
    """Moment/quantile tables of one timing arc over the (slew, load) grid.

    Attributes
    ----------
    cell_name / pin / output_rising:
        Arc identity (``output_rising=False`` is the falling-output arc).
    slews / loads:
        Grid axes in seconds / farads (ascending).
    moments:
        ``(n_slews, n_loads, 4)`` array of ``[mu, sigma, skew, kurt]``.
    quantiles:
        ``(n_slews, n_loads, 7)`` empirical quantiles at
        :data:`~repro.moments.stats.SIGMA_LEVELS`.
    out_slew:
        ``(n_slews, n_loads)`` mean 20–80 output transition time.
    n_samples:
        Monte-Carlo samples per grid point.
    provenance:
        Surrogate provenance record when the table was produced by
        active-learning GP characterization (:mod:`repro.surrogate`);
        ``None`` for dense tables. Validated by lint rules SUR001–003.
    """

    cell_name: str
    pin: str
    output_rising: bool
    slews: np.ndarray
    loads: np.ndarray
    moments: np.ndarray
    quantiles: np.ndarray
    out_slew: np.ndarray
    n_samples: int
    provenance: Optional[dict] = None

    def __post_init__(self) -> None:
        self.slews = np.asarray(self.slews, dtype=float)
        self.loads = np.asarray(self.loads, dtype=float)
        expected = (self.slews.size, self.loads.size)
        if self.moments.shape != (*expected, 4):
            raise CharacterizationError(
                f"moments shape {self.moments.shape} != {(*expected, 4)}"
            )
        if self.quantiles.shape != (*expected, len(SIGMA_LEVELS)):
            raise CharacterizationError(
                f"quantiles shape {self.quantiles.shape} != {(*expected, len(SIGMA_LEVELS))}"
            )
        if self.out_slew.shape != expected:
            raise CharacterizationError(
                f"out_slew shape {self.out_slew.shape} != {expected}"
            )

    # ------------------------------------------------------------------
    def _bilinear(self, grid: np.ndarray, slew: float, load: float) -> np.ndarray:
        """Bilinear interpolation on the grid, clamped to its bounds."""
        s = float(np.clip(slew, self.slews[0], self.slews[-1]))
        c = float(np.clip(load, self.loads[0], self.loads[-1]))
        i = int(np.clip(np.searchsorted(self.slews, s) - 1, 0, self.slews.size - 2))
        j = int(np.clip(np.searchsorted(self.loads, c) - 1, 0, self.loads.size - 2))
        fs = (s - self.slews[i]) / (self.slews[i + 1] - self.slews[i])
        fc = (c - self.loads[j]) / (self.loads[j + 1] - self.loads[j])
        v00, v01 = grid[i, j], grid[i, j + 1]
        v10, v11 = grid[i + 1, j], grid[i + 1, j + 1]
        return (
            v00 * (1 - fs) * (1 - fc)
            + v01 * (1 - fs) * fc
            + v10 * fs * (1 - fc)
            + v11 * fs * fc
        )

    def moments_at(self, slew: float, load: float) -> Moments:
        """Table-interpolated moments at an operating point.

        This is the raw LUT view of the characterization data (used for
        comparison/ablation); the paper's parametric calibration lives
        in :mod:`repro.core.calibration`.
        """
        mu, sigma, skew, kurt = self._bilinear(self.moments, slew, load)
        return Moments(mu=float(mu), sigma=float(sigma), skew=float(skew),
                       kurt=float(kurt), n=self.n_samples)

    def quantile_at(self, slew: float, load: float, level: int) -> float:
        """Table-interpolated empirical sigma-level quantile."""
        idx = SIGMA_LEVELS.index(level)
        return float(self._bilinear(self.quantiles[..., idx], slew, load))

    def out_slew_at(self, slew: float, load: float) -> float:
        """Table-interpolated mean output slew (for slew propagation)."""
        return float(self._bilinear(self.out_slew, slew, load))

    @property
    def reference_moments(self) -> Moments:
        """Moments at the paper's reference condition (10 ps, 0.4 fF)."""
        return self.moments_at(REFERENCE_SLEW, REFERENCE_LOAD)


class ArcCharacterizer:
    """Runs Monte-Carlo characterization of cell arcs.

    Parameters
    ----------
    engine:
        The Monte-Carlo transient engine (fixes technology, variation
        model, seed and fidelity knobs).
    """

    def __init__(self, engine: MonteCarloEngine):
        self.engine = engine
        self.tech = engine.tech

    # ------------------------------------------------------------------
    def arc_setup(
        self,
        cell: Cell,
        pin: str,
        input_slew: float,
        load: float,
        output_rising: bool = False,
    ) -> SimulationSetup:
        """Build the single-cell test bench for one arc.

        The cell drives an ideal load capacitor; side inputs are held at
        the arc's sensitizing values; the input pin is driven by an
        ideal ramp of the requested 20–80 slew.
        """
        arc = cell.arc(pin)
        # Inverting arcs: the input edge is the opposite of the output's.
        input_rising = (not output_rising) if arc.inverting else output_rising

        vdd = self.tech.vdd
        net = TransistorNetlist()
        net.fix("vdd", vdd)
        v_from = 0.0 if input_rising else vdd
        v_to = vdd - v_from
        # Saturated (cell-shaped) edge rather than a plain ramp: the LUTs
        # must describe cells driven by other cells, not by ideal sources.
        stimulus = PiecewiseLinearSource.saturated_edge(
            v_from, v_to, t_start=5 * PS, slew=input_slew
        )
        net.fix("in", stimulus)
        nodes = {pin: "in", cell.output: "out"}
        for side, value in arc.static.items():
            node = f"static_{side}"
            net.fix(node, vdd * value)
            nodes[side] = node
        cell.build(net, "dut", nodes, self.tech)
        net.add_capacitor("cl", "out", load)
        return SimulationSetup(
            netlist=net,
            input_node="in",
            output_node="out",
            input_rising=input_rising,
            output_rising=output_rising,
            initial_voltages={"out": 0.0 if output_rising else vdd},
            wire_variation=False,
        )

    def simulate_arc(
        self,
        cell: Cell,
        pin: str,
        input_slew: float,
        load: float,
        n_samples: int,
        output_rising: bool = False,
    ) -> DelaySamples:
        """Monte-Carlo delay/slew samples of one arc at one operating point."""
        setup = self.arc_setup(cell, pin, input_slew, load, output_rising)
        return self.engine.simulate(setup, n_samples)

    # ------------------------------------------------------------------
    def arc_payload(self, cell: Cell, pin: str) -> dict:
        """The heavy per-arc task payload shared by every grid point.

        Identical for all (slew, load) points of one arc; pooled
        fan-outs publish it once via
        :class:`~repro.parallel.SharedPayloadBank` instead of pickling
        it into every task message.
        """
        return {
            "tech": self.tech,
            "variation": self.engine.variation,
            "fidelity": self.engine.fidelity_opts(),
            "cell": cell,
            "pin": pin,
        }

    def point_tasks(
        self,
        cell: Cell,
        pin: str,
        slews: np.ndarray,
        loads: np.ndarray,
        n_samples: int,
        output_rising: bool,
        payload: Optional[SharedPayloadHandle] = None,
        points: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> List[dict]:
        """Self-contained task descriptions for (slew, load) grid points.

        Each task carries everything a worker process needs to rebuild
        an equivalent engine and simulate one grid point, plus its own
        deterministic seed — see :func:`_characterize_point`. When
        ``payload`` is given, the heavy shared fields travel as that
        shared-memory handle instead of inline objects; results are
        identical either way. ``points`` restricts the fan-out to a
        subset of grid indices (the surrogate's acquisition batches);
        a point's seed depends only on its grid indices, so a subset
        task is bit-identical to the same point in a full dense sweep.
        """
        edge = "rise" if output_rising else "fall"
        shared = self.arc_payload(cell, pin) if payload is None else None
        if points is None:
            indices: Iterable[Tuple[int, int]] = (
                (i, j) for i in range(len(slews)) for j in range(len(loads))
            )
        else:
            indices = [(int(i), int(j)) for i, j in points]
        tasks = []
        for i, j in indices:
            task = {
                "seed": task_seed(self.engine.seed, cell.name, pin, edge, i, j),
                "output_rising": output_rising,
                "slew": float(slews[i]),
                "load": float(loads[j]),
                "n_samples": n_samples,
                "arc": (cell.name, pin, edge),
                "i": i,
                "j": j,
            }
            if payload is not None:
                task["bank"] = payload
            else:
                task.update(shared)
            tasks.append(task)
        return tasks

    def characterize(
        self,
        cell: Cell,
        pin: str,
        slews: Sequence[float] = DEFAULT_SLEWS,
        loads: Sequence[float] = DEFAULT_LOADS,
        n_samples: int = 2000,
        output_rising: bool = False,
        workers: Optional[int] = None,
    ) -> CharacterizationTable:
        """Characterize one arc over the full (slew × load) grid.

        ``workers`` fans the grid points out over a process pool (see
        :func:`repro.parallel.parallel_map`); results are independent of
        worker count.
        """
        slews, loads = validate_grid_axes(slews, loads)
        bank = None
        if resolve_workers(workers) > 1:
            bank = SharedPayloadBank.publish(self.arc_payload(cell, pin))
        try:
            tasks = self.point_tasks(
                cell, pin, slews, loads, n_samples, output_rising,
                payload=bank.handle if bank is not None else None,
            )
            results = parallel_map(_characterize_point, tasks, workers=workers)
        finally:
            if bank is not None:
                bank.close()
        for res in results:
            self.engine.perf.merge(PerfCounters.from_dict(res["perf"]))
        return _assemble_table(
            cell.name, pin, output_rising, slews, loads, n_samples, results
        )


# ----------------------------------------------------------------------
# Per-point worker (module-level so it pickles for the process pool)
# ----------------------------------------------------------------------
def _characterize_point(task: Mapping[str, object]) -> dict:
    """Simulate one (slew, load) grid point in a fresh engine.

    Runs identically in-process (serial path) and in a pool worker: the
    engine is rebuilt from the task's derived seed, so the result stream
    never depends on execution order or worker count. The heavy shared
    fields arrive either inline or as a shared-memory ``bank`` handle
    (see :meth:`ArcCharacterizer.point_tasks`).
    """
    bank = task.get("bank")
    shared = bank.load() if bank is not None else task
    engine = MonteCarloEngine(
        shared["tech"], shared["variation"], seed=task["seed"], **shared["fidelity"]
    )
    cell, pin = shared["cell"], shared["pin"]
    charac = ArcCharacterizer(engine)
    res = charac.simulate_arc(
        cell,
        pin,
        task["slew"],
        task["load"],
        task["n_samples"],
        task["output_rising"],
    )
    if res.yield_fraction < 0.98:
        raise CharacterizationError(
            f"{cell.name}/{pin} at slew={task['slew'] / PS:.0f}ps "
            f"load={task['load'] / FF:.2f}fF: "
            f"only {res.yield_fraction:.1%} of samples measurable"
        )
    d = res.delay[res.valid]
    q = empirical_sigma_quantiles(d)
    arc_label = "/".join(str(part) for part in task["arc"])
    return {
        "arc": tuple(task["arc"]),
        "i": task["i"],
        "j": task["j"],
        "moments": Moments.from_samples(d, context=f"arc {arc_label}").as_array().tolist(),
        "quantiles": [q[n] for n in SIGMA_LEVELS],
        "out_slew": float(np.mean(res.output_slew[res.valid])),
        "yield_fraction": res.yield_fraction,
        "perf": engine.perf.to_dict(),
    }


def _assemble_table(
    cell_name: str,
    pin: str,
    output_rising: bool,
    slews: np.ndarray,
    loads: np.ndarray,
    n_samples: int,
    results: Iterable[Mapping[str, object]],
) -> CharacterizationTable:
    """Reassemble scattered per-point results into one arc table."""
    moments = np.empty((slews.size, loads.size, 4))
    quantiles = np.empty((slews.size, loads.size, len(SIGMA_LEVELS)))
    out_slew = np.empty((slews.size, loads.size))
    filled = np.zeros((slews.size, loads.size), dtype=bool)
    for res in results:
        i, j = res["i"], res["j"]
        moments[i, j] = res["moments"]
        quantiles[i, j] = res["quantiles"]
        out_slew[i, j] = res["out_slew"]
        filled[i, j] = True
    if not filled.all():
        missing = np.argwhere(~filled).tolist()
        raise CharacterizationError(
            f"{cell_name}/{pin}: grid points {missing} missing from results"
        )
    return CharacterizationTable(
        cell_name=cell_name,
        pin=pin,
        output_rising=output_rising,
        slews=slews,
        loads=loads,
        moments=moments,
        quantiles=quantiles,
        out_slew=out_slew,
        n_samples=n_samples,
    )


def arc_cache_payload(
    engine: MonteCarloEngine,
    cell: Cell,
    pin: str,
    output_rising: bool,
    slews: np.ndarray,
    loads: np.ndarray,
    n_samples: int,
    surrogate=None,
) -> dict:
    """Content-hash payload identifying one arc characterization.

    Any change to the technology, variation model, engine fidelity,
    seed, cell topology, grid, or sample count changes the hash — so a
    cached table can never be silently reused for different physics.
    The variation-model *identity* (class name) is included alongside
    its values, and :func:`repro.cache.content_key` further salts the
    digest with the package version, so swapping in a different model
    class or upgrading the code also invalidates stale tables.

    ``surrogate`` (a :class:`repro.surrogate.SurrogateConfig`) is salted
    in *only when enabled*, so dense-mode keys are bit-identical to
    pre-surrogate releases and a surrogate table can never shadow a
    dense one (or vice versa).
    """
    payload = {
        "tech": asdict(engine.tech),
        "variation": asdict(engine.variation),
        "variation_model": type(engine.variation).__qualname__,
        "fidelity": engine.fidelity_opts(),
        "seed": engine.seed,
        "cell": cell.name,
        "cell_type": cell.cell_type.name,
        "n_stack": cell.n_stack,
        "strength": cell.strength,
        "pin": pin,
        "edge": "rise" if output_rising else "fall",
        "slews": [float(s) for s in slews],
        "loads": [float(c) for c in loads],
        "n_samples": n_samples,
    }
    if surrogate is not None and getattr(surrogate, "enabled", False):
        payload["surrogate"] = surrogate.identity()
    return payload


@dataclass
class QuarantinedArc:
    """A timing arc excluded from a characterization run after failures.

    The structured diagnostic of graceful degradation: the arc identity,
    why it failed (last error of the exhausted retry budget), and how
    hard the executor tried. Lint rule RUN001 surfaces these; the flow
    fails the run only when their count exceeds the quarantine budget.
    """

    cell_name: str
    pin: str
    edge: str
    error_type: str
    message: str
    attempts: int = 1
    failed_points: int = 1

    @property
    def arc_key(self) -> Tuple[str, str, str]:
        return (self.cell_name, self.pin, self.edge)

    def as_dict(self) -> dict:
        return {
            "cell": self.cell_name,
            "pin": self.pin,
            "edge": self.edge,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "failed_points": self.failed_points,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QuarantinedArc":
        return cls(
            cell_name=str(data["cell"]),
            pin=str(data["pin"]),
            edge=str(data["edge"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            attempts=int(data.get("attempts", 1)),  # type: ignore[arg-type]
            failed_points=int(data.get("failed_points", 1)),  # type: ignore[arg-type]
        )


@dataclass
class LibraryCharacterization:
    """Characterization tables for a set of arcs, keyed by (cell, pin, edge).

    ``quarantined`` lists arcs that failed characterization after
    retries and were excluded instead of aborting the run (empty for a
    fully healthy run). ``pack`` holds the open
    :class:`~repro.pack.PackFile` when the bundle was mmap'd from a
    ``.rpk`` (tables are then read-only zero-copy views, and
    shared-payload publication short-circuits to the file).
    """

    tables: Dict[Tuple[str, str, str], CharacterizationTable] = field(default_factory=dict)
    quarantined: List[QuarantinedArc] = field(default_factory=list)
    pack: Optional[object] = field(default=None, repr=False, compare=False)

    @staticmethod
    def _key(cell_name: str, pin: str, output_rising: bool) -> Tuple[str, str, str]:
        return (cell_name, pin, "rise" if output_rising else "fall")

    def put(self, table: CharacterizationTable) -> None:
        """Store a table (overwrites an identical arc key)."""
        self.tables[self._key(table.cell_name, table.pin, table.output_rising)] = table

    def get(self, cell_name: str, pin: str, output_rising: bool) -> CharacterizationTable:
        """Fetch a table; raises ``KeyError`` with the known arcs listed."""
        key = self._key(cell_name, pin, output_rising)
        try:
            return self.tables[key]
        except KeyError:
            known = sorted({k[0] for k in self.tables})
            raise KeyError(f"no characterization for {key}; cells present: {known}") from None

    def has(self, cell_name: str, pin: str, output_rising: bool) -> bool:
        """Whether an arc table is present."""
        return self._key(cell_name, pin, output_rising) in self.tables

    def __len__(self) -> int:
        return len(self.tables)


def characterize_library(
    characterizer: ArcCharacterizer,
    library: CellLibrary,
    cells: Optional[Iterable[str]] = None,
    first_pin_only: bool = True,
    both_edges: bool = False,
    slews: Sequence[float] = DEFAULT_SLEWS,
    loads: Sequence[float] = DEFAULT_LOADS,
    n_samples: int = 2000,
    workers: Optional[int] = None,
    cache: Optional[JsonCache] = None,
    resume: bool = True,
    max_retries: int = 0,
    task_timeout: Optional[float] = None,
    quarantine_budget: Optional[int] = 0,
    journal=None,
    surrogate=None,
) -> LibraryCharacterization:
    """Characterize many arcs of a library in one sweep.

    Fault-tolerant and resumable: every finished arc is *checkpointed*
    into ``cache`` the moment its grid completes, so an interrupted run
    restarted with the same knobs restores those arcs bit-identically
    and only simulates the remainder. Grid points that fail after
    ``max_retries`` re-attempts quarantine their whole arc (recorded in
    ``LibraryCharacterization.quarantined``) instead of aborting the
    sweep — unless the quarantine budget is exceeded.

    Parameters
    ----------
    cells:
        Cell names to include (default: the whole library).
    first_pin_only:
        Characterize only pin ``A`` of each cell (the paper
        characterizes per input pin; pin A is representative and keeps
        the default runtime sane).
    both_edges:
        Also characterize the rising-output arc (default: falling only).
    workers:
        Process-pool width for the grid points of *all* arcs pooled
        together (better load balance than per-arc fan-out). ``None``
        reads ``REPRO_WORKERS``; 1 runs serially in-process.
    cache:
        Content-hashed on-disk cache of finished arc tables; doubles as
        the checkpoint store. Hits skip simulation entirely; the key
        covers technology, variation, fidelity, seed, cell, grid and
        sample count, so a restored checkpoint can never belong to
        different physics.
    resume:
        Consult existing checkpoints (default). ``False`` forces
        recomputation of every arc; checkpoints are still (re)written.
    max_retries / task_timeout:
        Per-grid-point retry budget and per-attempt timeout (seconds),
        see :class:`repro.parallel.RetryPolicy`. Retries reuse the
        point's own derived seed, so a retried run stays bit-identical.
    quarantine_budget:
        Maximum number of quarantined arcs tolerated before the sweep
        raises :class:`~repro.errors.CharacterizationError` (0 — the
        default — keeps the historical fail-fast behavior; ``None``
        never fails on quarantine alone).
    journal:
        Optional :class:`~repro.journal.RunJournal` receiving task,
        checkpoint and quarantine events.
    surrogate:
        Optional :class:`repro.surrogate.SurrogateConfig` switching
        arcs to active-learning GP characterization
        (:mod:`repro.surrogate`): a few real grid points are simulated,
        the rest are GP posterior means, and any arc whose
        cross-validation residual breaches the budget automatically
        falls back to the full dense grid. ``None`` (the default) is
        the dense path, bit-identical to previous releases.
    """
    from repro.cells.liberty import table_from_dict, table_to_dict
    from repro.errors import CharacterizationError
    from repro.lint import lint_characterization

    if surrogate is not None and not getattr(surrogate, "enabled", True):
        surrogate = None
    out = LibraryCharacterization()
    slews_arr, loads_arr = validate_grid_axes(slews, loads)
    names = list(cells) if cells is not None else library.names
    pending: List[Tuple[Cell, str, bool, Optional[str]]] = []
    for name in names:
        cell = library.get(name)
        pins = cell.inputs[:1] if first_pin_only else cell.inputs
        edges = (False, True) if both_edges else (False,)
        for pin in pins:
            for rising in edges:
                key = None
                if cache is not None:
                    key = content_key(
                        arc_cache_payload(
                            characterizer.engine, cell, pin, rising,
                            slews_arr, loads_arr, n_samples,
                            surrogate=surrogate,
                        )
                    )
                    if resume:
                        record = cache.get("arc", key)
                        if record is not None:
                            out.put(table_from_dict(record))
                            if journal is not None:
                                journal.event(
                                    "checkpoint_restore", key=key,
                                    arc=[cell.name, pin,
                                         "rise" if rising else "fall"],
                                )
                            continue
                pending.append((cell, pin, rising, key))

    if surrogate is not None:
        # Active-learning surrogate path: arcs run sequentially, each
        # fanning its acquisition batches over the worker pool. Tables,
        # checkpoints and quarantines land in ``out`` exactly as the
        # dense path's would; the dense machinery below then no-ops.
        _surrogate_characterize_pending(
            characterizer, pending, slews_arr, loads_arr, n_samples,
            workers, cache, surrogate, out, max_retries, task_timeout,
            journal,
        )
        pending = []

    # Pooled runs publish each arc's heavy payload once in shared
    # memory; serial runs keep direct object references (no pickling at
    # all, preserving the serial-fallback guarantee). Banks are owned
    # here and unlinked in the ``finally`` below, which also covers
    # quarantine and pool-crash exits.
    pooled = resolve_workers(workers) > 1
    banks: List[SharedPayloadBank] = []
    tasks: List[dict] = []
    for cell, pin, rising, _ in pending:
        handle = None
        if pooled:
            bank = SharedPayloadBank.publish(characterizer.arc_payload(cell, pin))
            if bank is not None:
                banks.append(bank)
                handle = bank.handle
        tasks.extend(
            characterizer.point_tasks(
                cell, pin, slews_arr, loads_arr, n_samples, rising, payload=handle
            )
        )
    labels = [
        "/".join(str(p) for p in t["arc"]) + f"[{t['i']},{t['j']}]" for t in tasks
    ]
    perf = getattr(characterizer.engine, "perf", None)
    checkpoint_keys = {
        (cell.name, pin, "rise" if rising else "fall"): key
        for cell, pin, rising, key in pending
    }
    points_per_arc = slews_arr.size * loads_arr.size
    collected: Dict[Tuple[str, str, str], List[dict]] = {}
    assembled: Dict[Tuple[str, str, str], CharacterizationTable] = {}

    def _checkpoint_arc(arc_key: Tuple[str, str, str]) -> None:
        """Assemble a finished arc and persist it immediately."""
        cell_name, pin, edge = arc_key
        table = _assemble_table(
            cell_name, pin, edge == "rise", slews_arr, loads_arr, n_samples,
            collected[arc_key],
        )
        assembled[arc_key] = table
        key = checkpoint_keys.get(arc_key)
        if cache is not None and key is not None:
            # Never checkpoint a table that violates lint invariants: a
            # poisoned checkpoint would be restored forever.
            if lint_characterization(table).ok:
                cache.put(
                    "arc",
                    key,
                    table_to_dict(table, arrays=getattr(cache, "binary", False)),
                )
                if journal is not None:
                    journal.event("checkpoint", key=key, arc=list(arc_key))

    def _on_point(index: int, res: dict) -> None:
        arc_key = tuple(res["arc"])
        if perf is not None:
            # Per-arc wall-time / sample attribution: the point's own
            # engine already timed its "simulate" stage.
            point_wall = res.get("perf", {}).get("wall_s", {})
            perf.add_arc(
                "/".join(str(p) for p in arc_key),
                wall_s=float(point_wall.get("simulate", 0.0)),
                samples=int(res.get("n_samples", n_samples)),
            )
        bucket = collected.setdefault(arc_key, [])
        bucket.append(res)
        if len(bucket) == points_per_arc:
            _checkpoint_arc(arc_key)

    quarantined_points: List[QuarantinedTask] = []
    try:
        results = parallel_map(
            _characterize_point, tasks, workers=workers,
            policy=RetryPolicy(max_retries=max_retries, task_timeout=task_timeout),
            quarantine=quarantined_points, journal=journal, labels=labels,
            on_result=_on_point, perf=perf,
        )
    finally:
        for bank in banks:
            bank.close()
    for res in results:
        if res is not None and perf is not None:
            perf.merge(PerfCounters.from_dict(res["perf"]))
            perf.incr(points_simulated=1)

    # Map failed points onto their arcs: one structured diagnostic per
    # quarantined arc, however many of its points failed.
    bad_arcs: Dict[Tuple[str, str, str], QuarantinedArc] = {}
    for q in quarantined_points:
        arc = tuple(tasks[q.index]["arc"])
        if arc in bad_arcs:
            bad_arcs[arc].failed_points += 1
            bad_arcs[arc].attempts = max(bad_arcs[arc].attempts, q.attempts)
        else:
            bad_arcs[arc] = QuarantinedArc(
                cell_name=arc[0], pin=arc[1], edge=arc[2],
                error_type=q.error_type, message=q.message,
                attempts=q.attempts, failed_points=1,
            )
    for arc, record in bad_arcs.items():
        out.quarantined.append(record)
        if journal is not None:
            journal.event("arc_quarantine", **record.as_dict())

    for cell, pin, rising, _key in pending:
        arc_key = (cell.name, pin, "rise" if rising else "fall")
        if arc_key in bad_arcs:
            continue
        if arc_key not in assembled:
            # Zero-point grids (degenerate callers) never trip the
            # completion callback; assemble whatever was collected.
            assembled[arc_key] = _assemble_table(
                cell.name, pin, rising, slews_arr, loads_arr, n_samples,
                collected.get(arc_key, ()),
            )
        out.put(assembled[arc_key])

    if quarantine_budget is not None and len(out.quarantined) > quarantine_budget:
        details = "; ".join(
            f"{'/'.join(q.arc_key)}: {q.error_type}: {q.message}"
            for q in out.quarantined[:5]
        )
        raise CharacterizationError(
            f"{len(out.quarantined)} arc(s) quarantined, exceeding the "
            f"budget of {quarantine_budget}: {details}"
        )

    # Fail fast on lint invariants (non-finite entries, impossible
    # moments, crossing quantiles) before the tables are cached further
    # downstream or consumed by the model fits.
    lint_characterization(out).raise_if_errors(
        CharacterizationError, context="characterized library"
    )
    return out


class _ArcPointFailure(Exception):
    """A surrogate acquisition point exhausted its retry budget."""

    def __init__(self, task: QuarantinedTask, n_failed: int):
        super().__init__(task.message)
        self.task = task
        self.n_failed = n_failed


def _surrogate_characterize_pending(
    characterizer: ArcCharacterizer,
    pending: List[Tuple[Cell, str, bool, Optional[str]]],
    slews_arr: np.ndarray,
    loads_arr: np.ndarray,
    n_samples: int,
    workers: Optional[int],
    cache: Optional[JsonCache],
    config,
    out: LibraryCharacterization,
    max_retries: int,
    task_timeout: Optional[float],
    journal,
) -> None:
    """Characterize pending arcs with the active-learning surrogate.

    One arc at a time: the acquisition loop
    (:func:`repro.surrogate.active.run_active_learning`) decides which
    grid points get a real Monte-Carlo run; each batch fans out over the
    worker pool with the same retry policy as the dense path. A point
    that exhausts its retries quarantines the whole arc. Fallback arcs
    (cross-validation breach, tiny grid) simulate their remaining
    points — simulated points reuse their dense per-point seeds, so a
    fully-fallen-back arc is bit-identical to a dense run of it.
    Finished tables (with provenance) are checkpointed immediately,
    exactly like dense arcs.
    """
    from repro.cells.liberty import table_to_dict
    from repro.lint import lint_characterization
    from repro.surrogate.active import run_active_learning

    engine = characterizer.engine
    perf = getattr(engine, "perf", None)
    policy = RetryPolicy(max_retries=max_retries, task_timeout=task_timeout)
    n_grid = slews_arr.size * loads_arr.size

    # Reference-condition grid index (forced into the seed design so the
    # Eq. 2/3 calibration anchor is always real data), when on-grid.
    reference = None
    ref_i = np.where(np.isclose(slews_arr, REFERENCE_SLEW))[0]
    ref_j = np.where(np.isclose(loads_arr, REFERENCE_LOAD))[0]
    if ref_i.size and ref_j.size:
        reference = (int(ref_i[0]), int(ref_j[0]))

    for cell, pin, rising, key in pending:
        edge = "rise" if rising else "fall"
        arc_key = (cell.name, pin, edge)
        arc_label = "/".join(arc_key)
        quarantined: List[QuarantinedTask] = []

        def runner(points, _cell=cell, _pin=pin, _rising=rising,
                   _label=arc_label, _q=quarantined):
            tasks = characterizer.point_tasks(
                _cell, _pin, slews_arr, loads_arr, n_samples, _rising,
                points=points,
            )
            labels = [f"{_label}[{t['i']},{t['j']}]" for t in tasks]
            results = parallel_map(
                _characterize_point, tasks, workers=workers, policy=policy,
                quarantine=_q, journal=journal, labels=labels, perf=perf,
            )
            if _q:
                raise _ArcPointFailure(_q[0], len(_q))
            records = {}
            for res in results:
                if perf is not None:
                    point_perf = PerfCounters.from_dict(res["perf"])
                    perf.merge(point_perf)
                    perf.add_arc(
                        _label,
                        wall_s=point_perf.wall_s.get("simulate", 0.0),
                        samples=n_samples,
                    )
                records[(res["i"], res["j"])] = res
            return records

        seed = task_seed(engine.seed, "surrogate", cell.name, pin, edge)
        try:
            res = run_active_learning(
                slews_arr, loads_arr, runner, seed=seed, config=config,
                reference=reference, n_samples=n_samples, journal=journal,
                arc=list(arc_key),
            )
            if res.fallback is not None:
                # Dense per-arc fallback: simulate whatever the loop did
                # not; already-simulated points are reused, not re-run.
                remaining = [
                    (i, j)
                    for i in range(slews_arr.size)
                    for j in range(loads_arr.size)
                    if (i, j) not in res.point_records
                ]
                records = dict(res.point_records)
                if remaining:
                    records.update(runner(remaining))
                table = _assemble_table(
                    cell.name, pin, rising, slews_arr, loads_arr,
                    n_samples, list(records.values()),
                )
                if res.provenance:
                    table.provenance = res.provenance
                if perf is not None:
                    perf.incr(points_simulated=n_grid)
            else:
                table = CharacterizationTable(
                    cell_name=cell.name, pin=pin, output_rising=rising,
                    slews=slews_arr, loads=loads_arr, moments=res.moments,
                    quantiles=res.quantiles, out_slew=res.out_slew,
                    n_samples=n_samples, provenance=res.provenance,
                )
                if perf is not None:
                    perf.incr(
                        points_simulated=len(res.simulated),
                        points_predicted=n_grid - len(res.simulated),
                    )
        except _ArcPointFailure as exc:
            record = QuarantinedArc(
                cell_name=cell.name, pin=pin, edge=edge,
                error_type=exc.task.error_type, message=exc.task.message,
                attempts=exc.task.attempts, failed_points=exc.n_failed,
            )
            out.quarantined.append(record)
            if journal is not None:
                journal.event("arc_quarantine", **record.as_dict())
            continue
        out.put(table)
        if cache is not None and key is not None:
            if lint_characterization(table).ok:
                cache.put(
                    "arc",
                    key,
                    table_to_dict(table, arrays=getattr(cache, "binary", False)),
                )
                if journal is not None:
                    journal.event("checkpoint", key=key, arc=list(arc_key))
