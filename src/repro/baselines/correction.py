"""Correction-factor timing — the "correction-based [8]" comparator.

Sharma et al. calibrate cheap Elmore wire delays with per-RC-tree
multiplicative correction factors referenced to a sign-off timer, and
take cell delays from corner LUTs. The method is fast and much better
than raw corners, but the factor is calibrated on *reference* nets and
transferred to every net regardless of its driver/load cells — the very
interaction the paper's Eq. (7) models. That transfer error is why the
paper measures ~12 % average path error for it.

The proxy here:

* calibrates one late and one early wire factor per *fanout bucket*
  against golden wire Monte-Carlo on reference nets driven by the FO4
  inverter (the typical calibration fixture);
* cell delays at per-cell ±3σ LUT quantiles (better than a global
  corner, as [8] refines per-cell);
* path delay = Σ cell quantile + Σ Elmore × factor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.library import CellLibrary
from repro.core.calibration import CalibratedCellLibrary
from repro.core.nsigma_wire import measure_wire_variability
from repro.core.sta import PathTiming, TimingModels
from repro.interconnect.metrics import elmore_delay
from repro.interconnect.rctree import RCTree
from repro.moments.stats import empirical_sigma_quantiles
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import PS

#: Cell used to drive/load the calibration fixtures.
CALIBRATION_CELL = "INVx4"


@dataclass
class CorrectionBasedSTA:
    """Elmore-with-correction-factor path analysis.

    Attributes
    ----------
    models:
        Fitted timing models (for LUT cell quantiles and Elmore).
    factor_late / factor_early:
        Wire correction factors (``T_w(+3σ)/Elmore`` and
        ``T_w(-3σ)/Elmore`` on the calibration nets).
    """

    models: TimingModels
    factor_late: float = 1.0
    factor_early: float = 1.0

    @classmethod
    def calibrate(
        cls,
        models: TimingModels,
        engine: MonteCarloEngine,
        reference_trees: Sequence[RCTree],
        n_samples: int = 600,
        input_slew: float = 20 * PS,
    ) -> "CorrectionBasedSTA":
        """Fit the wire factors on FO4-driven reference nets."""
        from repro.core.nsigma_wire import annotated_elmore

        lates: List[float] = []
        earlies: List[float] = []
        for tree in reference_trees:
            sink = tree.leaves()[0]
            elmore = annotated_elmore(
                engine.tech, models.library, tree, sink, CALIBRATION_CELL
            )
            _, samples = measure_wire_variability(
                engine,
                models.library,
                CALIBRATION_CELL,
                CALIBRATION_CELL,
                tree,
                sink=sink,
                input_slew=input_slew,
                n_samples=n_samples,
            )
            q = empirical_sigma_quantiles(samples.delay[samples.valid], (-3, 3))
            lates.append(q[3] / elmore)
            earlies.append(q[-3] / elmore)
        return cls(
            models=models,
            factor_late=float(np.mean(lates)),
            factor_early=float(np.mean(earlies)),
        )

    def analyze_path(self, path: PathTiming) -> "Tuple[float, float, float]":
        """Return ``(late, early, runtime_s)`` for a traced path."""
        t0 = time.perf_counter()
        late = 0.0
        early = 0.0
        for stage in path.stages:
            if stage.cell_moments is not None:
                m = stage.cell_moments
                # Per-cell Gaussian corner LUT quantiles ([8] has no
                # skew/kurtosis handling).
                late += m.mu + 3.0 * m.sigma
                early += m.mu - 3.0 * m.sigma
            late += stage.wire_elmore * self.factor_late
            early += stage.wire_elmore * self.factor_early
        return late, early, time.perf_counter() - t0
