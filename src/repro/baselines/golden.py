"""Golden path Monte-Carlo: stage-chained transistor-level simulation.

This is the reproduction's "SPICE MC" reference for path delays
(Table III's MC columns): every cell and wire of a critical path is
simulated at transistor level for every Monte-Carlo sample, with

* **correlated globals** — one die-to-die draw shared by all stages
  (via :meth:`~repro.variation.sampling.MonteCarloSampler.draw_globals`);
* **independent locals** — fresh Pelgrom mismatch per physical gate;
* **waveform chaining** — each stage's input node is driven by the
  *per-sample* output waveforms of the previous stage
  (:class:`~repro.spice.netlist.SampledWaveformSource`), so slew and
  shape propagate exactly, per sample, in absolute time.

Simulating the whole path as one flat netlist would be O(nodes³) per
step; chaining exploits the one-directional signal flow to keep each
solve at cell-sized node counts while preserving the statistics
(loading of stage k by stage k+1's input is included: the receiving
cell is instantiated in stage k's netlist as a nonlinear load).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError, TimingError
from repro.cells.library import CellLibrary
from repro.core.sta import PathStage, PathTiming
from repro.moments.stats import SIGMA_LEVELS, empirical_sigma_quantiles
from repro.netlist.circuit import PRIMARY_OUTPUT, Circuit
from repro.spice.measure import crossing_time, ramp_time_for_slew
from repro.spice.montecarlo import MonteCarloEngine, SimulationSetup
from repro.spice.netlist import (
    PiecewiseLinearSource,
    SampledWaveformSource,
    TransistorNetlist,
)
from repro.parallel import parallel_map
from repro.units import PS
from repro.variation.parameters import Technology, VariationModel


@dataclass
class PathSampleResult:
    """Monte-Carlo result of one path.

    Attributes
    ----------
    delay:
        ``(n_samples,)`` total path delays (launch 50 % to final sink
        50 %), NaN where a sample failed to transition.
    quantiles:
        Sigma level → empirical path-delay quantile.
    runtime_s:
        Wall-clock seconds spent simulating.
    stage_delays:
        Optional per-stage mean delays (diagnostics).
    """

    delay: np.ndarray
    quantiles: Dict[int, float]
    runtime_s: float
    stage_delays: List[float] = field(default_factory=list)

    @property
    def valid_fraction(self) -> float:
        """Fraction of successfully measured samples."""
        return float(np.mean(np.isfinite(self.delay)))


class GoldenPathMC:
    """Simulates a :class:`~repro.core.sta.PathTiming` path at transistor level.

    Parameters
    ----------
    circuit:
        The annotated circuit the path came from.
    library / tech / variation:
        Process and cell description (must match what the models used).
    seed:
        Sampler seed (independent of the characterization seed so the
        golden data is out-of-sample).
    input_slew:
        Launch edge slew at the path's primary input.
    """

    def __init__(
        self,
        circuit: Circuit,
        library: CellLibrary,
        tech: Technology,
        variation: VariationModel,
        seed: int = 12345,
        input_slew: float = 20 * PS,
    ):
        self.circuit = circuit
        self.library = library
        self.tech = tech
        self.variation = variation
        self.seed = seed
        self.input_slew = input_slew

    # ------------------------------------------------------------------
    def run(
        self,
        path: PathTiming,
        n_samples: int = 500,
        levels: Sequence[int] = SIGMA_LEVELS,
        keep_stage_means: bool = True,
    ) -> PathSampleResult:
        """Monte-Carlo simulate the path and return empirical quantiles."""
        t0 = time.perf_counter()
        engine = MonteCarloEngine(self.tech, self.variation, seed=self.seed)
        globals_ = engine.sampler.draw_globals(n_samples)

        stages = [s for s in path.stages if s.cell_name]
        if not stages:
            raise TimingError("path has no cell stages to simulate")
        launch_stages = [s for s in path.stages if not s.cell_name]
        launch_stage = launch_stages[0] if launch_stages else None

        # Launch stimulus: ideal ramp at the PI, plus the PI net's wire
        # inside the first stage's netlist. The launch edge is derived
        # from the path's own (STA-assigned) edge polarity so model and
        # golden MC simulate the same event.
        vdd = self.tech.vdd
        first_arc = self.library.get(stages[0].cell_name).arc(stages[0].input_pin)
        input_rising = (
            (not stages[0].output_rising)
            if first_arc.inverting
            else stages[0].output_rising
        )
        t_launch_ref: Optional[np.ndarray] = None

        source: "PiecewiseLinearSource | SampledWaveformSource" = (
            PiecewiseLinearSource.ramp(
                0.0 if input_rising else vdd,
                vdd if input_rising else 0.0,
                t_start=5 * PS,
                ramp_time=ramp_time_for_slew(self.input_slew),
            )
        )
        t_begin = 0.0
        edge_rising = input_rising
        stage_means: List[float] = []
        prev_cross = None

        for k, stage in enumerate(stages):
            cell = self.library.get(stage.cell_name)
            out_rising = stage.output_rising
            next_stage = stages[k + 1] if k + 1 < len(stages) else None
            setup, out_node = self._stage_setup(
                stage,
                cell,
                source,
                edge_rising,
                out_rising,
                next_stage,
                launch_stage=launch_stage if k == 0 else None,
            )
            samples = engine.simulate(
                setup,
                n_samples,
                globals_=globals_,
                t_begin=t_begin,
                keep_waveforms=True,
            )
            result = samples.result
            assert result is not None
            wave = result.voltage(out_node)

            if t_launch_ref is None:
                t_launch_ref = samples.t_launch
            if keep_stage_means:
                finite = samples.delay[np.isfinite(samples.delay)]
                stage_means.append(float(np.mean(finite)) if finite.size else np.nan)
            prev_cross = crossing_time(result.times, wave, 0.5 * vdd, out_rising)

            # Chain: the sink waveform drives the next stage, starting
            # just before it begins to move.
            source = SampledWaveformSource(result.times, wave)
            t_begin = source.activity_interval()[0]
            edge_rising = out_rising

        assert t_launch_ref is not None and prev_cross is not None
        delay = prev_cross - t_launch_ref
        finite = delay[np.isfinite(delay)]
        if finite.size < max(16, n_samples // 4):
            raise SimulationError(
                f"golden path MC: only {finite.size}/{n_samples} samples measured"
            )
        quantiles = empirical_sigma_quantiles(finite, levels)
        return PathSampleResult(
            delay=delay,
            quantiles=quantiles,
            runtime_s=time.perf_counter() - t0,
            stage_delays=stage_means,
        )

    # ------------------------------------------------------------------
    def _stage_setup(
        self,
        stage: PathStage,
        cell,
        source,
        in_rising: bool,
        out_rising: bool,
        next_stage: Optional[PathStage],
        launch_stage: Optional[PathStage] = None,
    ) -> Tuple[SimulationSetup, str]:
        """Netlist of one stage: path cell + its output net + receiving cell.

        For the first stage, the primary-input net's RC tree
        (``launch_stage``) is embedded between the ideal source and the
        gate input so the launch wire is part of the golden simulation,
        matching the model's Eq. (10) accounting.
        """
        vdd = self.tech.vdd
        net = TransistorNetlist()
        net.fix("vdd", vdd)
        net.fix("in", source)

        gate_in = "in"
        launch_initials: Dict[str, float] = {}
        if launch_stage is not None:
            pi_net = self.circuit.nets[launch_stage.net]
            if pi_net.tree is not None:
                mapping = pi_net.tree.embed(net, "launch", "in")
                leaf = pi_net.sink_leaf.get(launch_stage.sink)
                if leaf is None:
                    leaf = pi_net.tree.leaves()[0]
                gate_in = mapping[leaf]
                rail = 0.0 if in_rising else vdd
                for name, cnode in mapping.items():
                    if cnode != "in":
                        launch_initials[cnode] = rail

        nodes = {stage.input_pin: gate_in, cell.output: "out"}
        arc = cell.arc(stage.input_pin)
        for side, value in arc.static.items():
            node = f"static_{side}"
            net.fix(node, vdd * value)
            nodes[side] = node
        cell.build(net, "dut", nodes, self.tech)

        circuit_net = self.circuit.nets[stage.net]
        sink_node = "out"
        initial: Dict[str, float] = {
            "out": 0.0 if out_rising else vdd,
            **launch_initials,
        }
        if circuit_net.tree is not None:
            mapping = circuit_net.tree.embed(net, "w", "out")
            rail = 0.0 if out_rising else vdd
            for name, cnode in mapping.items():
                initial.setdefault(cnode, rail)
            # Side sinks load their taps with the receiver pin caps.
            for sink, leaf in circuit_net.sink_leaf.items():
                if sink == stage.sink or sink == PRIMARY_OUTPUT:
                    continue
                gate = self.circuit.gates[sink[0]]
                pin_cap = self.library.get(gate.cell_name).input_cap(
                    sink[1], self.tech
                )
                net.add_capacitor(f"cs_{sink[0]}_{sink[1]}", mapping[leaf], pin_cap)
            leaf = circuit_net.sink_leaf.get(stage.sink)
            if leaf is None:
                leaves = circuit_net.tree.leaves()
                leaf = leaves[0]
            sink_node = mapping[leaf]

        # The receiving cell sits at the sink tap as a nonlinear load.
        if next_stage is not None:
            nxt = self.library.get(next_stage.cell_name)
            nxt_nodes = {next_stage.input_pin: sink_node, nxt.output: "nxt_out"}
            nxt_arc = nxt.arc(next_stage.input_pin)
            for side, value in nxt_arc.static.items():
                node = f"nxt_static_{side}"
                net.fix(node, vdd * value)
                nxt_nodes[side] = node
            nxt.build(net, "nxt", nxt_nodes, self.tech)
            sink_rail = initial["out"]
            initial["nxt_out"] = (vdd - sink_rail) if nxt_arc.inverting else sink_rail

        setup = SimulationSetup(
            netlist=net,
            input_node="in",
            output_node=sink_node,
            input_rising=in_rising,
            output_rising=out_rising,
            initial_voltages=initial,
            record_extra=("out",),
        )
        return setup, sink_node


# ----------------------------------------------------------------------
# Multi-path fan-out
# ----------------------------------------------------------------------
def _run_path_task(task: dict) -> PathSampleResult:
    """Worker: simulate one path in a fresh :class:`GoldenPathMC`."""
    golden = GoldenPathMC(
        task["circuit"],
        task["library"],
        task["tech"],
        task["variation"],
        seed=task["seed"],
        input_slew=task["input_slew"],
    )
    return golden.run(
        task["path"], n_samples=task["n_samples"], levels=task["levels"]
    )


def run_paths(
    circuit: Circuit,
    library: CellLibrary,
    tech: Technology,
    variation: VariationModel,
    paths: Sequence[PathTiming],
    n_samples: int = 500,
    seed: int = 12345,
    input_slew: float = 20 * PS,
    levels: Sequence[int] = SIGMA_LEVELS,
    workers: Optional[int] = None,
) -> List[PathSampleResult]:
    """Golden-MC several paths, optionally fanned over a process pool.

    Each path builds its own :class:`GoldenPathMC` with the same seed
    (:meth:`GoldenPathMC.run` creates its engine per call, so path
    results never depend on simulation order) — results are bit-identical
    for any ``workers`` value. Order of the returned list matches
    ``paths``.
    """
    tasks = [
        {
            "circuit": circuit,
            "library": library,
            "tech": tech,
            "variation": variation,
            "seed": seed,
            "input_slew": input_slew,
            "path": path,
            "n_samples": n_samples,
            "levels": tuple(levels),
        }
        for path in paths
    ]
    return parallel_map(_run_path_task, tasks, workers=workers)

