"""Comparators of the paper's evaluation plus the golden reference.

* :mod:`repro.baselines.golden` — transistor-level Monte-Carlo of a
  whole critical path (stage-chained, correlated globals): the "SPICE
  MC" column of Tables II/III;
* :mod:`repro.baselines.primetime` — corner-derated deterministic STA
  (the PrimeTime [7] column);
* :mod:`repro.baselines.correction` — per-tree Elmore correction factors
  referenced to a golden net (the correction-based [8] column);
* :mod:`repro.baselines.ml_wire` — learned wire-delay regression on
  moment/topology features (the ML-based [9] column);
* the LSN [12] and Burr [13] *cell* models live in
  :mod:`repro.moments.distributions` and are re-exported here.
"""

from repro.moments.distributions import BurrXII, LogSkewNormal

from repro.baselines.golden import GoldenPathMC, PathSampleResult
from repro.baselines.primetime import CornerSTA, CornerReport
from repro.baselines.correction import CorrectionBasedSTA
from repro.baselines.ml_wire import MLWireModel, MLPRegressor, wire_features

__all__ = [
    "LogSkewNormal",
    "BurrXII",
    "GoldenPathMC",
    "PathSampleResult",
    "CornerSTA",
    "CornerReport",
    "CorrectionBasedSTA",
    "MLWireModel",
    "MLPRegressor",
    "wire_features",
]
