"""Corner-derated deterministic STA — the "PrimeTime [7]" comparator.

The paper's PrimeTime column is a conventional sign-off run: nominal
LUT delays pushed to a slow/fast corner with global derates, Elmore
wires, and *linear* accumulation of the per-stage guardband. Without
per-stage statistical modeling the guardband must cover the worst cell
in the library, which makes the ±3σ estimate systematically pessimistic
by tens of percent at near-threshold — exactly the ~31 % average error
Table III reports.

The proxy here does precisely that:

* per-stage mean delays from the calibrated LUTs (so the comparison
  isolates the *statistical* treatment, not table accuracy);
* late corner = ``mean * (1 + 3 * margin * X_lib)`` and early corner =
  ``mean * (1 - 3 * margin * X_lib)``, where ``X_lib`` is the worst
  reference variability in the library and ``margin`` the sign-off
  guardband factor;
* wires at Elmore with the same derate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.sta import PathTiming, TimingModels

#: Default sign-off guardband factor. Industrial near-threshold sign-off
#: stacks the corner library with OCV derates and setup margins; 2.2x of
#: the worst-cell 3-sigma excursion reproduces the ~30% pessimism the
#: paper measures for the PrimeTime flow (Table III).
DEFAULT_MARGIN = 2.2


@dataclass
class CornerReport:
    """Late/early corner path delays from the corner STA."""

    late: float
    early: float
    nominal: float
    derate_late: float
    derate_early: float
    runtime_s: float


class CornerSTA:
    """Corner-based deterministic analysis of an already-traced path.

    Parameters
    ----------
    models:
        The fitted timing models (for LUT means and the library's worst
        variability ratio).
    margin:
        Guardband multiplier on the 3-sigma corner.
    """

    def __init__(self, models: TimingModels, margin: float = DEFAULT_MARGIN):
        self.models = models
        self.margin = margin
        self._derates: Optional[tuple] = None

    @property
    def corner_derates(self) -> "tuple[float, float]":
        """(late, early) global derates sized for the worst library cell.

        A slow/fast corner library is characterized with every device
        pushed to its ±3σ point *simultaneously*; at near-threshold the
        resulting delay ratio is large and — because the delay
        distribution is right-skewed — very asymmetric. We size the
        corner from the worst characterized cell's ±3σ-to-mean delay
        ratios (including skew, which the corner "sees" in silicon),
        times the sign-off guardband.
        """
        if self._derates is None:
            arcs = list(self.models.calibrated.arcs.values())
            if not arcs:
                raise ValueError("no calibrated arcs to derive a corner from")
            late = max(
                self.models.nsigma.quantile(a.ref, 3) / a.ref.mu for a in arcs
            )
            early = min(
                self.models.nsigma.quantile(a.ref, -3) / a.ref.mu for a in arcs
            )
            derate_late = 1.0 + self.margin * (late - 1.0)
            derate_early = max(0.0, 1.0 - self.margin * (1.0 - early))
            self._derates = (derate_late, derate_early)
        return self._derates

    def analyze_path(self, path: PathTiming) -> CornerReport:
        """Late/early corner delays of a traced path."""
        t0 = time.perf_counter()
        nominal = 0.0
        for stage in path.stages:
            cell_mu = stage.cell_moments.mu if stage.cell_moments is not None else 0.0
            nominal += cell_mu + stage.wire_elmore
        derate_late, derate_early = self.corner_derates
        return CornerReport(
            late=nominal * derate_late,
            early=nominal * derate_early,
            nominal=nominal,
            derate_late=derate_late,
            derate_early=derate_early,
            runtime_s=time.perf_counter() - t0,
        )
