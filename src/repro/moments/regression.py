"""Small regression helpers used by the calibration fits.

The paper fits its Table I coefficients "through linear regression ...
through MATLAB"; here :func:`fit_linear` is the equivalent (ordinary
least squares with optional ridge damping), and
:func:`polynomial_features` builds the ``[ΔS, ΔC, ΔS², ...]`` feature
columns of the Eq. (2)/(3) interpolators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import CalibrationError


@dataclass(frozen=True)
class LinearFit:
    """Result of an ordinary-least-squares fit ``y ≈ X @ coef``.

    Attributes
    ----------
    coef:
        Coefficient vector, one entry per feature column.
    residual_rms:
        Root-mean-square residual on the training data.
    r_squared:
        Coefficient of determination on the training data.
    """

    coef: np.ndarray
    residual_rms: float
    r_squared: float

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Evaluate the fit on new feature rows."""
        return np.asarray(features, dtype=float) @ self.coef


def fit_linear(
    features: np.ndarray,
    targets: np.ndarray,
    ridge: float = 0.0,
    weights: Optional[np.ndarray] = None,
) -> LinearFit:
    """Least-squares fit of ``targets`` on ``features``.

    Parameters
    ----------
    features:
        ``(n_obs, n_features)`` design matrix (build an explicit
        constant column if an intercept is wanted).
    targets:
        ``(n_obs,)`` response vector.
    ridge:
        Tikhonov damping added to the normal equations; stabilizes
        nearly collinear designs such as the ``σκ`` / ``γκ`` columns of
        Table I when the characterization grid is small.
    weights:
        Optional per-observation weights (e.g. inverse quantile
        standard errors).
    """
    x = np.asarray(features, dtype=float)
    y = np.asarray(targets, dtype=float)
    if x.ndim != 2:
        raise CalibrationError(f"features must be 2-D, got shape {x.shape}")
    if y.shape != (x.shape[0],):
        raise CalibrationError(
            f"targets shape {y.shape} does not match {x.shape[0]} observations"
        )
    if x.shape[0] < x.shape[1]:
        raise CalibrationError(
            f"underdetermined fit: {x.shape[0]} observations, {x.shape[1]} features"
        )
    if weights is not None:
        w = np.sqrt(np.asarray(weights, dtype=float))
        x = x * w[:, None]
        y = y * w
    if ridge > 0.0:
        # Scale-aware damping: normalize by each column's RMS so ridge
        # strength is dimensionless.
        col_rms = np.sqrt(np.mean(x**2, axis=0))
        col_rms[col_rms == 0.0] = 1.0
        a = x.T @ x + ridge * np.diag(col_rms**2)
        coef = np.linalg.solve(a, x.T @ y)
    else:
        coef, *_ = np.linalg.lstsq(x, y, rcond=None)
    resid = y - x @ coef
    rms = float(np.sqrt(np.mean(resid**2)))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - float(np.sum(resid**2)) / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(coef=np.asarray(coef), residual_rms=rms, r_squared=r2)


def polynomial_features(
    ds: np.ndarray,
    dc: np.ndarray,
    degree: int,
    cross: bool = True,
) -> np.ndarray:
    """Feature columns of the Eq. (2)/(3) operating-condition interpolators.

    For ``degree = 1`` (Eq. 2): ``[ΔS, ΔC]`` (+ ``ΔS·ΔC`` if ``cross``).
    For ``degree = 3`` (Eq. 3): ``[ΔS, ΔC, ΔS², ΔC², ΔS³, ΔC³]``
    (+ cross term). No constant column — the reference moments are the
    intercept by construction.

    Parameters
    ----------
    ds, dc:
        Operating-condition deviations ``ΔS = S - S_ref`` and
        ``ΔC = C - C_ref``; arrays broadcast to a common shape.
    degree:
        Highest pure power of each deviation (1, 2 or 3).
    cross:
        Include the ``ΔS·ΔC`` interaction column (the paper keeps it in
        both interpolators "to ensure the accuracy").
    """
    if degree not in (1, 2, 3):
        raise CalibrationError(f"degree must be 1, 2 or 3, got {degree}")
    ds = np.atleast_1d(np.asarray(ds, dtype=float))
    dc = np.atleast_1d(np.asarray(dc, dtype=float))
    ds, dc = np.broadcast_arrays(ds, dc)
    cols = []
    for p in range(1, degree + 1):
        cols.append(ds**p)
        cols.append(dc**p)
    if cross:
        cols.append(ds * dc)
    return np.stack(cols, axis=-1)
