"""Streaming (single-pass, mergeable) estimation of the first four moments.

Characterizing a large library at 10k+ samples per point need not hold
every delay sample in memory: :class:`StreamingMoments` accumulates the
first four central moments online using the numerically stable
Pébay/Chan update formulas, and two accumulators can be merged — which
also makes chunked or distributed Monte-Carlo trivially reducible.

The quantile side (which genuinely needs order statistics) is covered
by :class:`ReservoirQuantiles`, a fixed-size uniform reservoir whose
sigma-level quantile estimates converge to the population's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.moments.stats import SIGMA_LEVELS, Moments, sigma_level_fraction


class StreamingMoments:
    """Single-pass accumulator of ``[mu, sigma, skew, kurt]``.

    Update/merge formulas follow Pébay (2008); results match the batch
    estimator of :meth:`repro.moments.stats.Moments.from_samples` to
    floating-point accuracy (tested).
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._m3 = 0.0
        self._m4 = 0.0

    def add(self, value: float) -> None:
        """Add one observation (NaN values are ignored)."""
        if not np.isfinite(value):
            return
        n1 = self.n
        self.n += 1
        delta = value - self._mean
        delta_n = delta / self.n
        delta_n2 = delta_n * delta_n
        term1 = delta * delta_n * n1
        self._mean += delta_n
        self._m4 += (
            term1 * delta_n2 * (self.n * self.n - 3 * self.n + 3)
            + 6 * delta_n2 * self._m2
            - 4 * delta_n * self._m3
        )
        self._m3 += term1 * delta_n * (self.n - 2) - 3 * delta_n * self._m2
        self._m2 += term1

    def add_many(self, values: Iterable[float]) -> "StreamingMoments":
        """Add a batch (returns self for chaining)."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=float)
        for v in arr.ravel():
            self.add(float(v))
        return self

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two accumulators (Chan parallel update); returns a new one."""
        if self.n == 0:
            out = StreamingMoments()
            out.__dict__.update(other.__dict__)
            return out
        if other.n == 0:
            out = StreamingMoments()
            out.__dict__.update(self.__dict__)
            return out
        a, b = self, other
        n = a.n + b.n
        delta = b._mean - a._mean
        delta2 = delta * delta
        out = StreamingMoments()
        out.n = n
        out._mean = a._mean + delta * b.n / n
        out._m2 = a._m2 + b._m2 + delta2 * a.n * b.n / n
        out._m3 = (
            a._m3 + b._m3
            + delta**3 * a.n * b.n * (a.n - b.n) / (n * n)
            + 3.0 * delta * (a.n * b._m2 - b.n * a._m2) / n
        )
        out._m4 = (
            a._m4 + b._m4
            + delta2 * delta2 * a.n * b.n * (a.n * a.n - a.n * b.n + b.n * b.n) / (n**3)
            + 6.0 * delta2 * (a.n * a.n * b._m2 + b.n * b.n * a._m2) / (n * n)
            + 4.0 * delta * (a.n * b._m3 - b.n * a._m3) / n
        )
        return out

    def moments(self) -> Moments:
        """Finalize into a :class:`~repro.moments.stats.Moments`.

        Raises
        ------
        ValueError
            With fewer than 8 observations (matching the batch API).
        """
        if self.n < 8:
            raise ValueError(f"need >= 8 observations, have {self.n}")
        variance = self._m2 / self.n
        sigma = float(np.sqrt(variance))
        if sigma == 0.0:
            return Moments(mu=self._mean, sigma=0.0, skew=0.0, kurt=3.0, n=self.n)
        skew = (self._m3 / self.n) / sigma**3
        kurt = (self._m4 / self.n) / sigma**4
        return Moments(mu=self._mean, sigma=sigma, skew=float(skew),
                       kurt=float(kurt), n=self.n)


class ReservoirQuantiles:
    """Fixed-memory quantile estimation via uniform reservoir sampling.

    Holds at most ``capacity`` samples; each incoming observation
    replaces a random slot with the classical reservoir probability, so
    the retained set is a uniform subsample of the stream and its
    empirical quantiles are consistent estimators.
    """

    def __init__(self, capacity: int = 4096, seed: Optional[int] = None):
        if capacity < 16:
            raise ValueError("capacity must be >= 16")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._buffer = np.empty(capacity)
        self.n_seen = 0

    def add(self, value: float) -> None:
        """Offer one observation to the reservoir (NaNs ignored)."""
        if not np.isfinite(value):
            return
        if self.n_seen < self.capacity:
            self._buffer[self.n_seen] = value
        else:
            j = int(self._rng.integers(0, self.n_seen + 1))
            if j < self.capacity:
                self._buffer[j] = value
        self.n_seen += 1

    def add_many(self, values: Iterable[float]) -> "ReservoirQuantiles":
        """Offer a batch; returns self."""
        for v in np.asarray(list(values) if not isinstance(values, np.ndarray)
                            else values, dtype=float).ravel():
            self.add(float(v))
        return self

    def sigma_quantiles(self, levels=SIGMA_LEVELS) -> "dict[int, float]":
        """Empirical sigma-level quantiles of the retained sample."""
        if self.n_seen == 0:
            raise ValueError("no observations")
        data = self._buffer[: min(self.n_seen, self.capacity)]
        return {
            n: float(np.quantile(data, sigma_level_fraction(n))) for n in levels
        }
