"""Moments and sigma-level quantiles.

Conventions
-----------
* ``skewness`` is the third standardized central moment
  (0 for symmetric distributions).
* ``kurtosis`` is the *raw* fourth standardized central moment
  (3 for a Gaussian) — the paper's Fig. 3 uses this convention
  ("different from a Gaussian distribution with … kurtosis = 3").
* The sigma level ``n`` names the quantile a Gaussian would put at
  ``mu + n*sigma``, i.e. the ``Phi(n)`` quantile: -3σ → 0.14 %,
  +3σ → 99.86 % (Table I's "percent defective" column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np
from scipy import stats as sps

#: The sigma levels the paper models, in ascending order.
SIGMA_LEVELS: "tuple[int, ...]" = (-3, -2, -1, 0, 1, 2, 3)

#: Numerical slack for the moment inequality ``kurt >= skew**2 + 1``
#: (sample moments satisfy it exactly; the tolerance absorbs float
#: round-off in serialized/interpolated tables).
MOMENT_VALIDITY_TOL = 1e-9  # repro-lint: disable=UNIT001 (tolerance, unitless)


def moment_validity_margin(skew: float, kurt: float) -> float:
    """Slack of the Pearson moment inequality, ``kurt - skew**2 - 1``.

    Every real distribution satisfies ``kurt >= skew**2 + 1`` (with the
    raw-kurtosis convention used throughout this package); a negative
    margin means the (skew, kurt) pair is not realizable by *any*
    distribution, i.e. the moment table is corrupt.
    """
    return kurt - (skew * skew + 1.0)


def moments_valid(
    skew: float, kurt: float, tol: float = MOMENT_VALIDITY_TOL
) -> bool:
    """Whether a (skew, kurt) pair is realizable, within ``tol``."""
    return moment_validity_margin(skew, kurt) >= -tol


def check_moment_validity(
    skew: float, kurt: float, context: str = "moments",
    tol: float = MOMENT_VALIDITY_TOL,
) -> None:
    """Raise ``ValueError`` when ``kurt < skew**2 + 1`` (impossible moments).

    ``context`` names the offending object (e.g. the timing arc) so the
    error message points at the artifact that produced the bad values.
    This is the single source of truth for the validity check — used by
    :meth:`Moments.from_samples` and the :mod:`repro.lint` domain rules.
    """
    if not moments_valid(skew, kurt, tol=tol):
        raise ValueError(
            f"{context}: kurtosis {kurt:.6g} violates the moment inequality "
            f"kurt >= skew**2 + 1 (= {skew * skew + 1.0:.6g} for skew "
            f"{skew:.6g}); no real distribution has these moments"
        )


def sigma_level_fraction(n: float) -> float:
    """Cumulative probability of sigma level ``n`` (e.g. +3 → 0.99865)."""
    return float(sps.norm.cdf(n))


@dataclass(frozen=True)
class Moments:
    """First four moments of a delay distribution.

    Attributes
    ----------
    mu:
        Mean (seconds, for delay data).
    sigma:
        Standard deviation.
    skew:
        Standardized third central moment.
    kurt:
        Standardized fourth central moment (Gaussian = 3).
    n:
        Sample count the estimates came from (0 for analytic moments).
    """

    mu: float
    sigma: float
    skew: float
    kurt: float
    n: int = 0

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], context: str = "sample moments"
    ) -> "Moments":
        """Estimate moments from data, ignoring NaNs.

        ``context`` names the data source (e.g. a timing arc) in error
        messages.

        Raises
        ------
        ValueError
            If fewer than 8 finite samples remain (four moments cannot
            be meaningfully estimated), or if the estimates violate the
            moment inequality ``kurt >= skew**2 + 1`` (possible only
            through numerical degeneracy — see
            :func:`check_moment_validity`).
        """
        x = np.asarray(samples, dtype=float)
        x = x[np.isfinite(x)]
        if x.size < 8:
            raise ValueError(
                f"{context}: need >= 8 finite samples for four moments, got {x.size}"
            )
        mu = float(np.mean(x))
        c = x - mu
        sigma = float(np.sqrt(np.mean(c**2)))
        if sigma == 0.0:
            return cls(mu=mu, sigma=0.0, skew=0.0, kurt=3.0, n=int(x.size))
        skew = float(np.mean(c**3) / sigma**3)
        kurt = float(np.mean(c**4) / sigma**4)
        check_moment_validity(skew, kurt, context=context)
        return cls(mu=mu, sigma=sigma, skew=skew, kurt=kurt, n=int(x.size))

    def as_array(self) -> np.ndarray:
        """``[mu, sigma, skew, kurt]`` as a vector (regression input order)."""
        return np.array([self.mu, self.sigma, self.skew, self.kurt])

    @property
    def variability(self) -> float:
        """The coefficient of variation ``sigma / mu`` (the paper's ``X``)."""
        if self.mu == 0.0:
            raise ZeroDivisionError("variability undefined for zero mean")
        return self.sigma / self.mu

    def gaussian_quantile(self, n: float) -> float:
        """The naive Gaussian estimate ``mu + n*sigma`` of sigma level ``n``."""
        return self.mu + n * self.sigma


def empirical_sigma_quantiles(
    samples: Sequence[float],
    levels: Iterable[int] = SIGMA_LEVELS,
) -> Dict[int, float]:
    """Empirical quantiles of the data at the requested sigma levels.

    NaNs are dropped; raises ``ValueError`` when no finite data remains.
    """
    x = np.asarray(samples, dtype=float)
    x = x[np.isfinite(x)]
    if x.size == 0:
        raise ValueError("no finite samples")
    levels = tuple(levels)
    fractions = [sigma_level_fraction(n) for n in levels]
    values = np.quantile(x, fractions)
    return {n: float(v) for n, v in zip(levels, values)}


def quantile_standard_error(
    samples: Sequence[float], level: float, bandwidth_points: int = 50
) -> float:
    """Approximate standard error of an empirical sigma-level quantile.

    Uses the asymptotic order-statistic formula
    ``se = sqrt(p(1-p)/n) / f(q)`` with the density ``f(q)`` estimated
    from the spacing of nearby order statistics. Benchmarks report this
    alongside accuracy numbers so "2 % error" claims can be judged
    against ~finite-sample noise.
    """
    x = np.sort(np.asarray(samples, dtype=float))
    x = x[np.isfinite(x)]
    n = x.size
    if n < 100:
        raise ValueError("need >= 100 samples for a quantile standard error")
    p = sigma_level_fraction(level)
    k = int(round(p * (n - 1)))
    lo = max(0, k - bandwidth_points)
    hi = min(n - 1, k + bandwidth_points)
    span = x[hi] - x[lo]
    if span <= 0:
        return 0.0
    density = (hi - lo) / (n * span)
    return float(np.sqrt(p * (1 - p) / n) / density)
