"""Comparison delay distributions: skew-normal, log-skew-normal, Burr XII.

These are the baselines Table II compares the N-sigma model against:

* **LSN** [12] — fit a skew-normal density to the *logarithm* of the
  delay ("all-region" model: the log transform absorbs the
  near-threshold tail);
* **Burr XII** [13] — a three-parameter heavy-tail family fitted
  directly to the delay samples.

Each class exposes ``fit`` (from samples), ``quantile`` and
``sigma_quantile`` so the Table II benchmark can query the same sigma
levels from every model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize, stats as sps

from repro.errors import CalibrationError
from repro.moments.stats import sigma_level_fraction

#: Maximum |skewness| a skew-normal can represent (delta → 1 limit).
_SKEWNORM_MAX_SKEW = 0.9952717


@dataclass(frozen=True)
class SkewNormal:
    """Azzalini skew-normal distribution with location/scale/shape.

    ``pdf(x) = 2/omega * phi(z) * Phi(alpha z)``, ``z = (x - xi)/omega``.
    """

    xi: float
    omega: float
    alpha: float

    @classmethod
    def fit_moments(cls, samples: Sequence[float]) -> "SkewNormal":
        """Method-of-moments fit.

        Solves the skewness equation for the shape parameter ``delta``
        and matches mean/variance exactly. Sample skewness outside the
        representable range is clipped to the skew-normal limit.
        """
        x = np.asarray(samples, dtype=float)
        x = x[np.isfinite(x)]
        if x.size < 8:
            raise CalibrationError("need >= 8 samples for a skew-normal fit")
        mu = float(np.mean(x))
        sd = float(np.std(x))
        if sd == 0:
            raise CalibrationError("zero-variance data cannot be fitted")
        g = float(sps.skew(x))
        g = float(np.clip(g, -_SKEWNORM_MAX_SKEW, _SKEWNORM_MAX_SKEW))
        # Invert gamma = (4-pi)/2 * (delta sqrt(2/pi))^3 / (1 - 2 delta^2/pi)^1.5
        # via the closed form delta^2 = pi/2 * c / (c + ((4-pi)/2)^(2/3)),
        # c = |gamma|^(2/3).
        c = abs(g) ** (2.0 / 3.0)
        delta2 = (np.pi / 2.0) * c / (c + ((4.0 - np.pi) / 2.0) ** (2.0 / 3.0))
        delta = float(np.sign(g) * np.sqrt(min(delta2, 0.999999)))
        alpha = delta / np.sqrt(max(1e-12, 1.0 - delta**2))  # repro-lint: disable=UNIT001 (epsilon, unitless)
        omega = sd / np.sqrt(max(1e-12, 1.0 - 2.0 * delta**2 / np.pi))  # repro-lint: disable=UNIT001 (epsilon, unitless)
        xi = mu - omega * delta * np.sqrt(2.0 / np.pi)
        return cls(xi=xi, omega=omega, alpha=alpha)

    @classmethod
    def fit_quantiles(cls, quantiles: "dict[float, float]") -> "SkewNormal":
        """Least-squares fit of (xi, omega, alpha) to known quantiles.

        Parameters
        ----------
        quantiles:
            Probability → value pairs (at least three).
        """
        if len(quantiles) < 3:
            raise CalibrationError("need >= 3 quantiles for a skew-normal fit")
        probs = np.array(sorted(quantiles))
        values = np.array([quantiles[p] for p in probs])
        spread = values[-1] - values[0]
        if spread <= 0:
            raise CalibrationError("quantiles must be increasing")

        def objective(theta: np.ndarray) -> np.ndarray:
            xi, log_omega, alpha = theta
            model = sps.skewnorm.ppf(probs, alpha, loc=xi, scale=np.exp(log_omega))
            return (model - values) / spread

        theta0 = np.array([float(np.median(values)), float(np.log(spread / 4)), 0.5])
        sol = optimize.least_squares(objective, theta0, max_nfev=300)
        xi, log_omega, alpha = sol.x
        return cls(xi=float(xi), omega=float(np.exp(log_omega)), alpha=float(alpha))

    def quantile(self, p: float) -> float:
        """Inverse CDF at probability ``p``."""
        return float(sps.skewnorm.ppf(p, self.alpha, loc=self.xi, scale=self.omega))

    def sigma_quantile(self, n: float) -> float:
        """Quantile at sigma level ``n`` (e.g. +3 → the 99.86 % point)."""
        return self.quantile(sigma_level_fraction(n))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density."""
        return sps.skewnorm.pdf(x, self.alpha, loc=self.xi, scale=self.omega)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` random variates."""
        return sps.skewnorm.rvs(
            self.alpha, loc=self.xi, scale=self.omega, size=n, random_state=rng
        )


@dataclass(frozen=True)
class LogSkewNormal:
    """Log-skew-normal delay model of Balef et al. [12].

    The delay ``T`` is modeled by fitting a skew-normal to ``ln T``;
    quantiles map back through ``exp``. Requires strictly positive data.
    """

    log_model: SkewNormal

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "LogSkewNormal":
        """Fit to positive delay samples (non-positive values are rejected)."""
        x = np.asarray(samples, dtype=float)
        x = x[np.isfinite(x)]
        if np.any(x <= 0):
            raise CalibrationError("log-skew-normal requires positive samples")
        return cls(log_model=SkewNormal.fit_moments(np.log(x)))

    @classmethod
    def fit_quantiles(cls, quantiles: "dict[float, float]") -> "LogSkewNormal":
        """Fit from probability → delay pairs (e.g. an LVF quantile LUT)."""
        if any(v <= 0 for v in quantiles.values()):
            raise CalibrationError("log-skew-normal requires positive quantiles")
        log_q = {p: float(np.log(v)) for p, v in quantiles.items()}
        return cls(log_model=SkewNormal.fit_quantiles(log_q))

    @classmethod
    def from_moments(cls, mu: float, sigma: float, skew: float) -> "LogSkewNormal":
        """Moment-matched construction from ``(mu, sigma, skew)`` of the delay.

        This is how an LVF-style flow deploys the model of [12]: the
        library stores moments per operating point; the distribution is
        reconstructed from them, and its tail quantiles are *implied*
        rather than fitted — precisely the weakness the paper's N-sigma
        regression addresses.

        Uses the skew-normal MGF: for ``Y ~ SN(xi, omega, alpha)`` and
        ``L = exp(Y)``, ``E[L^n] = 2 exp(n xi + n^2 omega^2 / 2)
        Phi(n delta omega)``.
        """
        if mu <= 0 or sigma <= 0:
            raise CalibrationError("from_moments needs positive mu and sigma")

        target = np.array([mu, sigma, skew])

        def raw_moment(n, xi, omega, delta):
            return 2.0 * np.exp(n * xi + 0.5 * (n * omega) ** 2) * sps.norm.cdf(
                n * delta * omega)

        def stats_of(theta):
            xi, log_omega, t_delta = theta
            omega = np.exp(log_omega)
            delta = np.tanh(t_delta)
            m1 = raw_moment(1, xi, omega, delta)
            m2 = raw_moment(2, xi, omega, delta)
            m3 = raw_moment(3, xi, omega, delta)
            var = max(m2 - m1 * m1, 1e-300)
            sd = np.sqrt(var)
            g = (m3 - 3 * m1 * var - m1**3) / sd**3
            return np.array([m1, sd, g])

        def objective(theta):
            m1, sd, g = stats_of(theta)
            return np.array([
                (m1 - mu) / mu,
                (sd - sigma) / sigma,
                (g - skew) / max(abs(skew), 0.3),
            ])

        # Log-normal initial guess (delta = 0).
        omega0 = np.sqrt(np.log(1.0 + (sigma / mu) ** 2))
        xi0 = np.log(mu) - 0.5 * omega0**2
        sol = optimize.least_squares(
            objective, np.array([xi0, np.log(omega0), 0.0]), max_nfev=400)
        xi, log_omega, t_delta = sol.x
        delta = float(np.tanh(t_delta))
        alpha = delta / np.sqrt(max(1e-12, 1.0 - delta**2))  # repro-lint: disable=UNIT001 (epsilon, unitless)
        return cls(log_model=SkewNormal(xi=float(xi), omega=float(np.exp(log_omega)),
                                        alpha=alpha))

    def quantile(self, p: float) -> float:
        """Inverse CDF at probability ``p``."""
        return float(np.exp(self.log_model.quantile(p)))

    def sigma_quantile(self, n: float) -> float:
        """Quantile at sigma level ``n``."""
        return self.quantile(sigma_level_fraction(n))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density on the delay axis."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        pos = x > 0
        out[pos] = self.log_model.pdf(np.log(x[pos])) / x[pos]
        return out


@dataclass(frozen=True)
class BurrXII:
    """Burr type-XII distribution delay model of Moshrefi et al. [13].

    ``F(x) = 1 - (1 + ((x - loc)/scale)^c)^(-k)`` for ``x > loc``.
    Fitted by matching the median and two tail quantiles, refined with a
    least-squares quantile fit — the paper notes this model struggles at
    the +3σ tail in near-threshold conditions, which the Table II
    benchmark reproduces.
    """

    c: float
    k: float
    loc: float
    scale: float

    @classmethod
    def fit(cls, samples: Sequence[float]) -> "BurrXII":
        """Quantile-based fit of (c, k, scale) with a data-driven location."""
        x = np.asarray(samples, dtype=float)
        x = np.sort(x[np.isfinite(x)])
        if x.size < 50:
            raise CalibrationError("need >= 50 samples for a Burr XII fit")
        # Anchor the location below the sample minimum; the Burr support
        # starts at loc, and delays have a hard physical lower bound.
        span = x[-1] - x[0]
        if span <= 0:
            raise CalibrationError("zero-range data cannot be fitted")
        loc = float(x[0] - 0.05 * span)

        probs = np.array([0.05, 0.25, 0.5, 0.75, 0.95])
        q_emp = np.quantile(x, probs)

        def objective(theta: np.ndarray) -> np.ndarray:
            c, k, scale = np.exp(theta)
            q_mod = loc + scale * ((1.0 - probs) ** (-1.0 / k) - 1.0) ** (1.0 / c)
            return (q_mod - q_emp) / span

        theta0 = np.log([2.0, 1.0, float(np.median(x) - loc)])
        sol = optimize.least_squares(objective, theta0, max_nfev=200)
        c, k, scale = np.exp(sol.x)
        return cls(c=float(c), k=float(k), loc=loc, scale=float(scale))

    @classmethod
    def from_moments(cls, mu: float, sigma: float, skew: float) -> "BurrXII":
        """Moment-matched Burr XII (loc = 0) from ``(mu, sigma, skew)``.

        [13] deploys the Burr family from population statistics; the raw
        moments are ``E[X^r] = scale^r k B(k - r/c, 1 + r/c)`` (finite
        for ``ck > r``). Solved numerically for ``(c, k, scale)``.
        """
        if mu <= 0 or sigma <= 0:
            raise CalibrationError("from_moments needs positive mu and sigma")
        from scipy.special import gammaln

        target_cv = sigma / mu

        def raw_moment(r, c, k, scale):
            if k - r / c <= 0:
                return np.inf
            log_b = gammaln(k - r / c) + gammaln(1 + r / c) - gammaln(k + 1)
            return scale**r * k * np.exp(log_b)

        def stats_of(theta):
            c, k, scale = np.exp(theta)
            m1 = raw_moment(1, c, k, scale)
            m2 = raw_moment(2, c, k, scale)
            m3 = raw_moment(3, c, k, scale)
            if not np.all(np.isfinite([m1, m2, m3])):
                return None
            var = m2 - m1 * m1
            if var <= 0:
                return None
            sd = np.sqrt(var)
            g = (m3 - 3 * m1 * var - m1**3) / sd**3
            return m1, sd, g

        def objective(theta):
            out = stats_of(theta)
            if out is None:
                return np.array([10.0, 10.0, 10.0])
            m1, sd, g = out
            return np.array([
                (m1 - mu) / mu,
                (sd - sigma) / sigma,
                (g - skew) / max(abs(skew), 0.3),
            ])

        theta0 = np.array([np.log(max(2.0, 1.5 / target_cv)), np.log(2.0),
                           np.log(mu)])
        sol = optimize.least_squares(objective, theta0, max_nfev=500)
        c, k, scale = np.exp(sol.x)
        return cls(c=float(c), k=float(k), loc=0.0, scale=float(scale))

    @classmethod
    def fit_quantiles(cls, quantiles: "dict[float, float]") -> "BurrXII":
        """Least-squares fit of (c, k, loc, scale) to known quantiles."""
        if len(quantiles) < 4:
            raise CalibrationError("need >= 4 quantiles for a Burr XII fit")
        probs = np.array(sorted(quantiles))
        values = np.array([quantiles[p] for p in probs])
        spread = values[-1] - values[0]
        if spread <= 0:
            raise CalibrationError("quantiles must be increasing")
        loc0 = values[0] - 0.1 * spread

        def objective(theta: np.ndarray) -> np.ndarray:
            c, k, scale = np.exp(theta[:3])
            loc = theta[3]
            model = loc + scale * ((1.0 - probs) ** (-1.0 / k) - 1.0) ** (1.0 / c)
            return (model - values) / spread

        theta0 = np.array([np.log(2.0), 0.0, np.log(spread), loc0])
        sol = optimize.least_squares(objective, theta0, max_nfev=400)
        c, k, scale = np.exp(sol.x[:3])
        return cls(c=float(c), k=float(k), loc=float(sol.x[3]), scale=float(scale))

    def quantile(self, p: float) -> float:
        """Inverse CDF at probability ``p``."""
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        return float(
            self.loc
            + self.scale * ((1.0 - p) ** (-1.0 / self.k) - 1.0) ** (1.0 / self.c)
        )

    def sigma_quantile(self, n: float) -> float:
        """Quantile at sigma level ``n``."""
        return self.quantile(sigma_level_fraction(n))

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative distribution function."""
        x = np.asarray(x, dtype=float)
        z = np.clip((x - self.loc) / self.scale, 0.0, None)
        return 1.0 - (1.0 + z**self.c) ** (-self.k)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density."""
        x = np.asarray(x, dtype=float)
        z = (x - self.loc) / self.scale
        out = np.zeros_like(z)
        pos = z > 0
        zp = z[pos]
        out[pos] = (
            self.c
            * self.k
            * zp ** (self.c - 1.0)
            / self.scale
            * (1.0 + zp**self.c) ** (-self.k - 1.0)
        )
        return out
