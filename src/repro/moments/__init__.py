"""Statistics substrate: moments, sigma-level quantiles, distribution fits.

The paper's models speak the language of the first four standardized
moments ``[mu, sigma, gamma (skewness), kappa (kurtosis)]`` and of
"sigma levels" — the Gaussian-named quantiles 0.14 %, 2.28 %, 15.87 %,
50 %, 84.13 %, 97.72 %, 99.86 % written ``-3sigma … +3sigma``. This
package provides those primitives plus the comparison distributions
(skew-normal, log-skew-normal [12], Burr XII [13]) and small regression
helpers used by the calibration fits.
"""

from repro.moments.stats import (
    Moments,
    SIGMA_LEVELS,
    empirical_sigma_quantiles,
    quantile_standard_error,
    sigma_level_fraction,
)
from repro.moments.distributions import (
    BurrXII,
    LogSkewNormal,
    SkewNormal,
)
from repro.moments.regression import (
    LinearFit,
    fit_linear,
    polynomial_features,
)
from repro.moments.streaming import ReservoirQuantiles, StreamingMoments

__all__ = [
    "StreamingMoments",
    "ReservoirQuantiles",
    "Moments",
    "SIGMA_LEVELS",
    "sigma_level_fraction",
    "empirical_sigma_quantiles",
    "quantile_standard_error",
    "SkewNormal",
    "LogSkewNormal",
    "BurrXII",
    "LinearFit",
    "fit_linear",
    "polynomial_features",
]
