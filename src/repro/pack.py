"""Packed binary design database: mmap-able ``.rpk`` artifacts.

Cold starts — server boot, LRU reload after an eviction, worker spawn —
previously paid a full JSON parse plus tensor rebuild for every design
and library bundle. This module stores the same documents in a
versioned binary container that loads by ``mmap`` + digest verify
instead, with every tensor exposed as a **read-only zero-copy view**
into the file, so concurrent threads (and processes mapping the same
pack) share one page-cache copy of the data.

File layout (all integers little-endian)::

    offset 0    +--------------------------------------------------+
                | header, 64 bytes:                                |
                |   magic      8s   b"REPROPAK"                    |
                |   version    u32  PACK_FORMAT_VERSION            |
                |   endian     u32  0x01020304 (byte-order canary) |
                |   man_off    u64  manifest offset (= 64)         |
                |   man_len    u64  manifest length in bytes       |
                |   data_off   u64  data section offset (64-align) |
                |   file_len   u64  total file size (truncation    |
                |                   sentinel)                      |
                |   man_sha    16s  sha256(manifest)[:16]          |
    offset 64   +--------------------------------------------------+
                | manifest: canonical JSON                         |
                |   {"format", "version", "kind", "meta",          |
                |    "doc": <skeleton>, "segments": [...]}         |
    data_off    +--------------------------------------------------+
                | tensor segments: raw little-endian array bytes,  |
                | each starting at a 64-byte-aligned offset        |
                +--------------------------------------------------+

The *manifest* carries the JSON skeleton of the original document in
which every ndarray leaf is replaced by ``{"__ndarray_segment__": i}``,
plus one segment record per leaf: dotted name path, dtype string
(``"<f8"``, ``"<i8"``, ``"|b1"``, ...), shape, offset relative to the
data section, byte length, and the full sha256 of the segment bytes.
:meth:`PackFile.document` re-inflates the skeleton with
``np.frombuffer`` views, so existing ``from_dict`` deserializers
(whose ``np.asarray`` calls pass matching-dtype arrays through without
copying) work on packed documents unchanged — and without copies.

Zero-copy caveats (see ``docs/packing.md``): the views are *read-only*
(writing raises ``ValueError``), and each view keeps the underlying
``mmap`` alive through its ``base`` chain, so the mapping persists
until the last array referencing it is garbage collected — dropping the
:class:`PackFile` alone does not unmap the file.

Corruption never deserializes: :meth:`PackFile.open` validates the
header (magic, format version, endianness canary, truncation sentinel,
manifest digest and bounds) before parsing anything, and
``verify=True`` (the default everywhere artifacts cross a trust
boundary) re-hashes every segment against its recorded sha256. Failures
raise :class:`~repro.errors.PackError` with a machine-readable ``code``
that the ``PCK001``–``PCK004`` lint rules map onto diagnostics.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import PackError

#: First 8 bytes of every pack file.
MAGIC = b"REPROPAK"

#: Format version written into the header and the manifest; bumping it
#: invalidates every existing pack (and, via the ``pack_format`` entry
#: of :func:`repro.cache.version_salt`, every content-keyed artifact).
PACK_FORMAT_VERSION = 1

#: Fixed header size in bytes.
HEADER_SIZE = 64

#: Alignment of every tensor segment (and of the data section itself).
SEGMENT_ALIGN = 64

#: Little-endian byte-order canary; a pack written with the opposite
#: byte order would read back as 0x04030201.
ENDIAN_MARK = 0x01020304

#: Canonical file suffix.
PACK_SUFFIX = ".rpk"

#: Marker key replacing ndarray leaves in the manifest skeleton.
SEGMENT_KEY = "__ndarray_segment__"

#: Manifest ``kind`` of a packed :class:`~repro.core.sta_compiled.CompiledDesign`.
COMPILED_DESIGN_KIND = "sta_compiled"

#: Manifest ``kind`` of a packed library characterization bundle.
LIBRARY_KIND = "library_characterization"

# magic, version, endian mark, manifest offset/length, data offset,
# file length, manifest sha256 prefix — exactly HEADER_SIZE bytes.
_HEADER = struct.Struct("<8sIIQQQQ16s")
assert _HEADER.size == HEADER_SIZE

#: ndarray dtype kinds a pack may carry (floats, ints, uints, bools).
_SUPPORTED_KINDS = frozenset("fiub")


def _align(offset: int) -> int:
    return (offset + SEGMENT_ALIGN - 1) // SEGMENT_ALIGN * SEGMENT_ALIGN


def _canonical_array(name: str, arr: np.ndarray) -> np.ndarray:
    """C-contiguous little-endian form of a segment array."""
    if arr.dtype.kind not in _SUPPORTED_KINDS:
        raise PackError(
            f"segment {name!r} has unsupported dtype {arr.dtype!s} "
            f"(only float/int/uint/bool arrays pack)",
            code="dtype",
        )
    arr = np.ascontiguousarray(arr)
    if arr.dtype.byteorder == ">" or (
        arr.dtype.byteorder == "=" and not _little_endian_host()
    ):
        arr = arr.astype(arr.dtype.newbyteorder("<"))
    return arr


def _little_endian_host() -> bool:
    import sys

    return sys.byteorder == "little"


def _extract_segments(
    doc: Any,
) -> Tuple[Any, List[Tuple[str, np.ndarray]]]:
    """Split a document into a JSON skeleton + its ndarray leaves.

    Every ndarray in the (dict/list/scalar) tree is replaced by a
    ``{SEGMENT_KEY: i}`` placeholder and collected, named by its dotted
    path (``"levels.3.elm_in"``), in deterministic traversal order.
    """
    segments: List[Tuple[str, np.ndarray]] = []

    def walk(node: Any, path: str) -> Any:
        if isinstance(node, np.ndarray):
            segments.append((path or f"segment{len(segments)}", node))
            return {SEGMENT_KEY: len(segments) - 1}
        if isinstance(node, dict):
            if SEGMENT_KEY in node:
                raise PackError(
                    f"document key {SEGMENT_KEY!r} at {path!r} collides "
                    f"with the segment placeholder",
                    code="document",
                )
            return {
                str(k): walk(v, f"{path}.{k}" if path else str(k))
                for k, v in node.items()
            }
        if isinstance(node, (list, tuple)):
            return [walk(v, f"{path}.{i}" if path else str(i)) for i, v in enumerate(node)]
        return node

    return walk(doc, ""), segments


def write_pack(
    path: Union[str, Path],
    kind: str,
    doc: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
    perf=None,
    journal=None,
) -> Path:
    """Serialize ``doc`` (a dict tree with ndarray leaves) to ``path``.

    The write is atomic in the :meth:`repro.cache.JsonCache.put` style:
    a process-unique ``*.tmp`` sibling is written, fsynced, and renamed
    over the final path, so readers never observe a torn pack. Emits a
    ``pack_write`` journal event and bumps the ``pack_writes`` counter.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    skeleton, raw_segments = _extract_segments(doc)

    records: List[Dict[str, Any]] = []
    blobs: List[bytes] = []
    cursor = 0
    for name, arr in raw_segments:
        arr = _canonical_array(name, arr)
        blob = arr.tobytes()
        offset = _align(cursor)
        records.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
            }
        )
        blobs.append(blob)
        cursor = offset + len(blob)

    manifest = {
        "format": "repro-pack",
        "version": PACK_FORMAT_VERSION,
        "kind": kind,
        "meta": dict(meta or {}),
        "doc": skeleton,
        "segments": records,
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
    data_off = _align(HEADER_SIZE + len(manifest_bytes))
    file_len = data_off + cursor
    header = _HEADER.pack(
        MAGIC,
        PACK_FORMAT_VERSION,
        ENDIAN_MARK,
        HEADER_SIZE,
        len(manifest_bytes),
        data_off,
        file_len,
        hashlib.sha256(manifest_bytes).digest()[:16],
    )

    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.name}.{os.getpid()}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            fh.write(manifest_bytes)
            fh.write(b"\0" * (data_off - HEADER_SIZE - len(manifest_bytes)))
            for record, blob in zip(records, blobs):
                fh.seek(data_off + record["offset"])
                fh.write(blob)
            # A trailing zero-length (or align-padded) segment seeks past
            # EOF without writing; pin the file to its recorded length.
            fh.truncate(file_len)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass

    if perf is not None:
        perf.incr(pack_writes=1)
    if journal is not None:
        journal.event(
            "pack_write",
            path=str(path),
            kind=kind,
            nbytes=file_len,
            n_segments=len(records),
        )
    return path


class PackFile:
    """One opened (memory-mapped) ``.rpk`` pack.

    Construct via :meth:`open`. The instance owns the ``mmap``; arrays
    returned by :meth:`array` / :meth:`document` are read-only views
    whose ``base`` chain keeps the mapping alive, so they outlive the
    ``PackFile`` object itself (but never the *content* checks — a pack
    is fully validated before any view is handed out).
    """

    def __init__(
        self,
        path: Path,
        mm: mmap.mmap,
        manifest: Dict[str, Any],
        manifest_sha256: str,
    ):
        self.path = path
        self._mm = mm
        self._view = memoryview(mm)
        self.manifest = manifest
        self.manifest_sha256 = manifest_sha256
        self.version = int(manifest["version"])
        self.kind = str(manifest["kind"])
        self.meta: Dict[str, Any] = dict(manifest.get("meta", {}))
        self.segments: List[Dict[str, Any]] = list(manifest["segments"])
        self._data_off = int(manifest["__data_off__"])
        self._data_len = int(manifest["__data_len__"])

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        verify: bool = True,
        perf=None,
        journal=None,
    ) -> "PackFile":
        """mmap ``path`` and validate it (header always; digests if ``verify``).

        Raises :class:`PackError` (with ``code``) on any validation
        failure — the manifest is not even JSON-parsed until the header
        magic, version, endianness canary, truncation sentinel and
        manifest digest all check out, so corrupt bytes can never reach
        a deserializer. Bumps ``pack_loads`` and journals ``pack_load``
        on success.
        """
        path = Path(path)
        try:
            with path.open("rb") as fh:
                size = os.fstat(fh.fileno()).st_size
                if size < HEADER_SIZE:
                    raise PackError(
                        f"{path}: {size} bytes is smaller than the "
                        f"{HEADER_SIZE}-byte pack header",
                        code="truncated",
                    )
                mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except OSError as exc:
            raise PackError(f"{path}: unreadable pack: {exc}", code="io") from exc

        try:
            pack = cls._parse(path, mm, size)
        except Exception:
            mm.close()
            raise
        if verify:
            pack.verify(perf=perf, journal=journal)
        if perf is not None:
            perf.incr(pack_loads=1)
        if journal is not None:
            journal.event(
                "pack_load",
                path=str(path),
                kind=pack.kind,
                identity=pack.identity(),
                nbytes=size,
                n_segments=len(pack.segments),
                verified=bool(verify),
            )
        return pack

    @classmethod
    def _parse(cls, path: Path, mm: mmap.mmap, size: int) -> "PackFile":
        (
            magic,
            version,
            endian_mark,
            man_off,
            man_len,
            data_off,
            file_len,
            man_sha,
        ) = _HEADER.unpack(mm[:HEADER_SIZE])
        if magic != MAGIC:
            raise PackError(
                f"{path}: bad magic {magic!r} (expected {MAGIC!r})", code="magic"
            )
        if endian_mark != ENDIAN_MARK:
            raise PackError(
                f"{path}: endianness mark 0x{endian_mark:08x} != "
                f"0x{ENDIAN_MARK:08x}; the pack was written with a "
                f"foreign byte order",
                code="endian",
            )
        if version > PACK_FORMAT_VERSION or version < 1:
            raise PackError(
                f"{path}: pack format v{version} is not supported by "
                f"this reader (supports up to v{PACK_FORMAT_VERSION})",
                code="version",
            )
        if file_len != size:
            raise PackError(
                f"{path}: header records {file_len} bytes but the file "
                f"has {size} (truncated or padded pack)",
                code="truncated",
            )
        if man_off != HEADER_SIZE or man_off + man_len > size or data_off > size:
            raise PackError(
                f"{path}: manifest [{man_off}, {man_off + man_len}) or "
                f"data offset {data_off} out of bounds for {size} bytes",
                code="truncated",
            )
        manifest_bytes = bytes(mm[man_off : man_off + man_len])
        digest = hashlib.sha256(manifest_bytes)
        if digest.digest()[:16] != man_sha:
            raise PackError(
                f"{path}: manifest sha256 mismatch (header records "
                f"{man_sha.hex()}, manifest hashes to "
                f"{digest.digest()[:16].hex()})",
                code="digest",
            )
        try:
            manifest = json.loads(manifest_bytes)
        except json.JSONDecodeError as exc:
            raise PackError(
                f"{path}: manifest is not valid JSON: {exc}", code="manifest"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != "repro-pack":
            raise PackError(
                f"{path}: manifest format "
                f"{manifest.get('format') if isinstance(manifest, dict) else manifest!r} "
                f"is not 'repro-pack'",
                code="manifest",
            )
        data_len = size - data_off
        for record in manifest.get("segments", ()):
            end = int(record["offset"]) + int(record["nbytes"])
            if int(record["offset"]) < 0 or end > data_len:
                raise PackError(
                    f"{path}: segment {record.get('name')!r} "
                    f"[{record['offset']}, {end}) exceeds the "
                    f"{data_len}-byte data section",
                    code="bounds",
                )
        manifest["__data_off__"] = data_off
        manifest["__data_len__"] = data_len
        return cls(path, mm, manifest, digest.hexdigest())

    # ------------------------------------------------------------------
    def verify(self, perf=None, journal=None) -> None:
        """Re-hash every segment against its recorded sha256.

        Raises :class:`PackError` (``code="digest"``) naming the first
        mismatching segment. Bumps ``pack_verifies`` and journals
        ``pack_verify`` with the outcome.
        """
        error: Optional[PackError] = None
        for i, record in enumerate(self.segments):
            blob = self._segment_bytes(i)
            actual = hashlib.sha256(blob).hexdigest()
            if actual != record["sha256"]:
                error = PackError(
                    f"{self.path}: segment {record['name']!r} sha256 "
                    f"mismatch (recorded {record['sha256'][:16]}..., "
                    f"content hashes to {actual[:16]}...)",
                    code="digest",
                )
                break
        if perf is not None:
            perf.incr(pack_verifies=1)
        if journal is not None:
            journal.event(
                "pack_verify",
                path=str(self.path),
                kind=self.kind,
                ok=error is None,
                error=str(error) if error is not None else None,
            )
        if error is not None:
            raise error

    # ------------------------------------------------------------------
    def _segment_bytes(self, index: int) -> memoryview:
        record = self.segments[index]
        start = self._data_off + int(record["offset"])
        return self._view[start : start + int(record["nbytes"])]

    def array(self, which: Union[int, str]) -> np.ndarray:
        """Read-only zero-copy view of one segment (by index or name path)."""
        if isinstance(which, str):
            for i, record in enumerate(self.segments):
                if record["name"] == which:
                    which = i
                    break
            else:
                raise PackError(
                    f"{self.path}: no segment named {which!r}", code="bounds"
                )
        record = self.segments[which]
        arr = np.frombuffer(self._segment_bytes(which), dtype=np.dtype(record["dtype"]))
        return arr.reshape(tuple(record["shape"]))

    def document(self) -> Dict[str, Any]:
        """The packed document with every ndarray leaf as a mmap view."""

        def resolve(node: Any) -> Any:
            if isinstance(node, dict):
                if set(node) == {SEGMENT_KEY}:
                    return self.array(int(node[SEGMENT_KEY]))
                return {k: resolve(v) for k, v in node.items()}
            if isinstance(node, list):
                return [resolve(v) for v in node]
            return node

        return resolve(self.manifest["doc"])

    # ------------------------------------------------------------------
    def identity(self) -> str:
        """Content identity: format version + manifest digest.

        The manifest digest covers every segment sha256, dtype, shape
        and the document skeleton, so two packs share an identity iff
        they are byte-equivalent artifacts of the same format version.
        """
        return hashlib.sha256(
            f"rpk-v{self.version}:{self.manifest_sha256}".encode()
        ).hexdigest()[:16]

    @property
    def nbytes(self) -> int:
        """Total mapped file size in bytes."""
        return len(self._view)

    @property
    def tensor_nbytes(self) -> int:
        """Bytes of the tensor segments (the mmap-shared payload)."""
        return sum(int(r["nbytes"]) for r in self.segments)

    def close(self) -> None:
        """Release this handle's view of the mapping.

        Arrays already handed out keep the ``mmap`` alive through their
        ``base`` chain; this only drops the :class:`PackFile`'s own
        references so an unused pack unmaps promptly.
        """
        self._view = memoryview(b"")
        # The mmap object itself stays open while exported buffers
        # exist; numpy views hold such buffers, so never force-close.
        self._mm = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackFile({str(self.path)!r}, kind={self.kind!r}, "
            f"v{self.version}, {len(self.segments)} segments)"
        )


# ----------------------------------------------------------------------
# Domain helpers (lazy imports: repro.cache imports this module)
# ----------------------------------------------------------------------
def pack_compiled_design(
    design,
    path: Union[str, Path],
    design_key: str = "",
    perf=None,
    journal=None,
) -> Path:
    """Write a :class:`~repro.core.sta_compiled.CompiledDesign` pack.

    ``design_key`` (from
    :func:`~repro.core.sta_compiled.design_cache_key`) and the design's
    calibration digest are recorded in the manifest meta; loaders and
    lint rule ``PCK004`` refuse to serve a pack whose recorded identity
    no longer matches the live circuit + calibration.
    """
    meta = {
        "artifact": COMPILED_DESIGN_KIND,
        "circuit_name": design.circuit_name,
        "design_cache_key": design_key,
        "calibration_digest": design.calibration_digest,
    }
    return write_pack(
        path,
        COMPILED_DESIGN_KIND,
        design.to_dict(arrays=True),
        meta=meta,
        perf=perf,
        journal=journal,
    )


def load_compiled_design(
    path: Union[str, Path],
    verify: bool = True,
    expected_key: Optional[str] = None,
    perf=None,
    journal=None,
):
    """mmap a compiled-design pack into a zero-copy ``CompiledDesign``.

    With ``expected_key`` given, a pack whose recorded
    ``design_cache_key`` differs raises :class:`PackError`
    (``code="stale"``) — the stale-artifact guard behind lint rule
    ``PCK004`` and the registry's reload path. The returned design
    holds the :class:`PackFile` on its ``pack`` attribute.
    """
    from repro.core.sta_compiled import CompiledDesign

    pf = PackFile.open(path, verify=verify, perf=perf, journal=journal)
    if pf.kind != COMPILED_DESIGN_KIND:
        raise PackError(
            f"{path}: pack kind {pf.kind!r} is not a compiled design",
            code="kind",
        )
    if expected_key is not None and pf.meta.get("design_cache_key") != expected_key:
        raise PackError(
            f"{path}: pack was built for design_cache_key "
            f"{pf.meta.get('design_cache_key')!r}, not {expected_key!r} "
            f"(stale circuit, calibration, or code version)",
            code="stale",
        )
    design = CompiledDesign.from_dict(pf.document())
    design.pack = pf
    return design


def pack_library_characterization(
    charac,
    path: Union[str, Path],
    perf=None,
    journal=None,
) -> Path:
    """Write a library characterization bundle as a pack.

    Mirrors :func:`repro.cells.liberty.save_library_characterization`
    (same document schema) with the per-arc tables' index/moment/
    quantile grids as binary segments.
    """
    from repro.cells.liberty import FORMAT, FORMAT_VERSION, table_to_dict

    doc: Dict[str, Any] = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "tables": [table_to_dict(t, arrays=True) for t in charac.tables.values()],
    }
    if any(t.provenance is not None for t in charac.tables.values()):
        doc["surrogate"] = True
    if charac.quarantined:
        doc["quarantined"] = [q.as_dict() for q in charac.quarantined]
    meta = {"artifact": LIBRARY_KIND, "n_tables": len(charac.tables)}
    return write_pack(path, LIBRARY_KIND, doc, meta=meta, perf=perf, journal=journal)


def load_library_characterization_pack(
    path: Union[str, Path],
    verify: bool = True,
    perf=None,
    journal=None,
):
    """mmap a library pack into a ``LibraryCharacterization``.

    The returned bundle carries the :class:`PackFile` on its ``pack``
    attribute, which lets :class:`repro.parallel.SharedPayloadBank`
    publication short-circuit to the mmap'd file instead of copying the
    payload into POSIX shared memory.
    """
    from repro.cells.characterize import LibraryCharacterization, QuarantinedArc
    from repro.cells.liberty import FORMAT, table_from_dict

    pf = PackFile.open(path, verify=verify, perf=perf, journal=journal)
    if pf.kind != LIBRARY_KIND:
        raise PackError(
            f"{path}: pack kind {pf.kind!r} is not a library "
            f"characterization bundle",
            code="kind",
        )
    doc = pf.document()
    if doc.get("format") != FORMAT:
        raise PackError(
            f"{path}: packed document format {doc.get('format')!r} is "
            f"not {FORMAT!r}",
            code="manifest",
        )
    out = LibraryCharacterization()
    for record in doc["tables"]:
        out.put(table_from_dict(record))
    for record in doc.get("quarantined", ()):
        out.quarantined.append(QuarantinedArc.from_dict(record))
    out.pack = pf
    return out


def load_pack_payload(path: Union[str, Path], verify: bool = True):
    """Rebuild the domain object a pack holds (worker-side attach).

    Dispatches on the manifest ``kind``: compiled designs and library
    bundles come back as their domain classes (pack attached);
    any other kind returns the raw zero-copy document.
    """
    pf = PackFile.open(path, verify=False)
    if pf.kind == COMPILED_DESIGN_KIND:
        pf.close()
        return load_compiled_design(path, verify=verify)
    if pf.kind == LIBRARY_KIND:
        pf.close()
        return load_library_characterization_pack(path, verify=verify)
    if verify:
        pf.verify()
    return pf.document()


def delist_document(doc: Any) -> Any:
    """Deep-copy a document with every ndarray leaf as nested lists.

    The inverse direction of packing: ``repro unpack`` uses it to emit
    the plain-JSON artifact equivalent to a pack's content.
    """
    if isinstance(doc, np.ndarray):
        return doc.tolist()
    if isinstance(doc, dict):
        return {k: delist_document(v) for k, v in doc.items()}
    if isinstance(doc, list):
        return [delist_document(v) for v in doc]
    return doc
