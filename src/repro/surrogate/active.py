"""Active-learning surrogate characterization of one timing arc.

Instead of simulating every point of the requested (slew x load) grid,
the loop here picks a small subset of *real* Monte-Carlo evaluations and
lets Gaussian processes (:mod:`repro.surrogate.gp`) predict the rest:

1. **Seed design** — a Latin hypercube over the unit square
   (:func:`repro.variation.lhs.latin_hypercube_unit`), snapped to grid
   points, plus the mandatory anchors: the four grid corners and the
   point nearest the paper's reference condition (the Eq. 2/3
   calibration is anchored there, so it must be real data).
2. **Break-point guard** — after the first fit, the mu surface is
   compared against the best bilinear model (the functional form of the
   Eq. 2 calibration). Grid points whose bilinear residual exceeds
   ``breakpoint_tol`` of the surface range mark where the
   linear/bilinear validity domain ends (Agarwal-style break-point
   analysis); they are forced into the simulated set rather than
   trusted to the surrogate.
3. **Acquisition** — one GP per statistic (mu, sigma, skew, kurt, each
   sigma-level quantile, mean output slew); the next point is the grid
   candidate with the worst budget-normalized posterior standard
   deviation across the gated statistics (max posterior variance,
   deterministic index tie-break).
4. **Stopping** — when every gated statistic's predicted standard error
   over the *whole* requested grid falls under its relative budget, or
   the point cap is hit (SUR002 warning).
5. **Cross-validation gate** — analytic leave-one-out residuals of the
   mu surface; a breach of ``cv_budget`` (SUR001) aborts the surrogate
   and the caller falls back to the dense grid for that arc.

Every candidate is a point of the *requested dense grid*, so a
simulated point reuses the exact per-point seed of the dense path
(:func:`repro.parallel.task_seed` over the same ``(arc, i, j)``
identity) and carries bit-identical Monte-Carlo values. The emitted
table therefore has the same shape and layout as a dense run; only the
non-simulated entries are GP posterior means.

This module is simulation-agnostic: the caller supplies a ``runner``
that maps grid indices to per-point characterization records, which
keeps the loop unit-testable against synthetic surfaces and free of
circular imports with :mod:`repro.cells.characterize`.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CharacterizationError
from repro.moments.stats import SIGMA_LEVELS
from repro.surrogate.gp import GaussianProcess
from repro.units import PS
from repro.variation.lhs import latin_hypercube_unit

#: Environment variable selecting the surrogate mode (``off`` / ``gp``).
SURROGATE_ENV = "REPRO_SURROGATE"

#: Provenance keys every surrogate table must carry (SUR003).
PROVENANCE_REQUIRED_KEYS = (
    "method",
    "n_grid",
    "n_simulated",
    "n_predicted",
    "simulated",
    "statistics",
    "cv",
    "converged",
    "fallback",
)

#: Statistic names in table order: four moments, the sigma-level
#: quantiles, and the mean output slew.
STATISTIC_NAMES: Tuple[str, ...] = (
    "mu",
    "sigma",
    "skew",
    "kurt",
    *(f"q{level:+d}" for level in SIGMA_LEVELS),
    "out_slew",
)

#: Default relative predicted-standard-error budgets per statistic
#: family (fraction of the observed surface range). ``skew``/``kurt``
#: are predicted but not gating by default: their Monte-Carlo estimator
#: noise at characterization sample counts swamps surface structure, and
#: the cubic Eq. (3) fit smooths over the grid anyway. The values are
#: calibrated so a smooth arc converges around ``n_grid / 5`` simulated
#: points (measured: max true mu error ~4% of range at 5.8x reduction
#: on an 8x8 grid); remember the dense table itself carries Monte-Carlo
#: estimator noise of the same order at characterization sample counts.
DEFAULT_BUDGETS: Mapping[str, float] = {
    "mu": 0.04,
    "sigma": 0.08,
    "quantile": 0.08,
    "out_slew": 0.08,
}


def budget_family(statistic: str) -> str:
    """Map a statistic name onto its budget family."""
    return "quantile" if statistic.startswith("q") else statistic


def estimator_noise_var(
    name: str, mean_sigma: float, mean_kurt: float, n_samples: int
) -> float:
    """Analytic Monte-Carlo estimator variance of one statistic.

    The characterization points are themselves noisy estimates from
    ``n_samples`` Monte-Carlo draws; their standard errors are known in
    closed form (normal-theory asymptotics), so the GP nugget can be
    floored at real estimator noise instead of letting the marginal
    likelihood claim near-interpolation certainty from a handful of
    points. Returned in squared original units (seconds^2 for delays
    and slews, dimensionless for skew/kurtosis).
    """
    if n_samples <= 1 or mean_sigma <= 0.0:
        return 0.0
    n = float(n_samples)
    if name == "mu":
        return mean_sigma**2 / n
    if name == "sigma":
        # Var of the sample standard deviation (delta method).
        return mean_sigma**2 * max(mean_kurt - 1.0, 0.5) / (4.0 * n)
    if name == "skew":
        return 6.0 / n
    if name == "kurt":
        return 24.0 / n
    if name.startswith("q"):
        # Asymptotic quantile-estimator variance p(1-p) / (n phi(z)^2)
        # scaled by sigma^2, for the sigma-level z of this quantile.
        z = float(name[1:])
        phi = float(np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi))
        p = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
        p = min(max(p, 1.0 / n), 1.0 - 1.0 / n)
        return mean_sigma**2 * p * (1.0 - p) / (n * phi * phi)
    if name == "out_slew":
        # Mean output slew over the sample set; its spread is of the
        # same order as the delay spread, which serves as the proxy.
        return mean_sigma**2 / n
    return 0.0


@dataclass(frozen=True)
class SurrogateConfig:
    """Knobs of the active-learning surrogate (content-hashable).

    Attributes
    ----------
    mode:
        ``"gp"`` (the only surrogate) or ``"off"``.
    n_seed:
        Latin-hypercube seed points on top of the mandatory anchors
        (0 = auto: ``max(3, round(0.06 * n_grid))``; a lean seed design
        leaves more of the point budget to acquisition, which measures
        better than blind LHS coverage at equal cost).
    max_points:
        Hard cap on simulated points per arc (0 = auto:
        ``max(anchors + n_seed + 2, ceil(n_grid / 4))``). Hitting the
        cap before the budgets converge is a SUR002 warning, never an
        error — the table is still emitted with honest provenance.
    batch:
        Acquisition points simulated per round (rounds fan out over the
        worker pool; larger batches trade acquisition optimality for
        parallelism).
    budgets:
        Relative predicted-SE budget per statistic family
        (``mu`` / ``sigma`` / ``skew`` / ``kurt`` / ``quantile`` /
        ``out_slew``); families absent from the mapping do not gate.
    cv_budget:
        SUR001 gate: maximum leave-one-out mu residual as a fraction of
        the observed mu range before the arc falls back to dense.
    breakpoint_tol:
        Bilinear-residual fraction of the mu range beyond which a grid
        point is considered outside the Eq. (2) linear/bilinear validity
        domain and is force-simulated.
    n_restarts:
        Random hyperparameter restarts per GP fit (seeded, see
        :meth:`repro.surrogate.gp.GaussianProcess.fit`).
    """

    mode: str = "gp"
    n_seed: int = 0
    max_points: int = 0
    batch: int = 2
    budgets: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BUDGETS)
    )
    cv_budget: float = 0.08
    breakpoint_tol: float = 0.05
    n_restarts: int = 4

    @property
    def enabled(self) -> bool:
        return self.mode == "gp"

    def identity(self) -> dict:
        """Content-key payload: every knob that changes the output."""
        return {
            "mode": self.mode,
            "n_seed": self.n_seed,
            "max_points": self.max_points,
            "batch": self.batch,
            "budgets": {k: float(v) for k, v in sorted(self.budgets.items())},
            "cv_budget": self.cv_budget,
            "breakpoint_tol": self.breakpoint_tol,
            "n_restarts": self.n_restarts,
        }

    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["SurrogateConfig"]:
        """Build a config from a CLI/env token (``off``/empty -> None)."""
        if spec is None:
            return None
        token = spec.strip().lower()
        if token in ("", "off", "none", "0", "false"):
            return None
        if token == "gp":
            return cls()
        raise CharacterizationError(
            f"unknown surrogate mode {spec!r} (expected 'gp' or 'off')"
        )

    @classmethod
    def from_env(cls) -> Optional["SurrogateConfig"]:
        """Read :data:`SURROGATE_ENV` (unset/off -> None)."""
        return cls.parse(os.environ.get(SURROGATE_ENV, ""))


def resolve_surrogate(
    surrogate: "Optional[SurrogateConfig | str]",
) -> Optional[SurrogateConfig]:
    """Normalize a constructor argument: config, mode string, or None (env)."""
    if isinstance(surrogate, SurrogateConfig):
        return surrogate if surrogate.enabled else None
    if isinstance(surrogate, str):
        return SurrogateConfig.parse(surrogate)
    if surrogate is None:
        return SurrogateConfig.from_env()
    raise CharacterizationError(
        f"surrogate must be a SurrogateConfig, mode string or None, "
        f"got {type(surrogate).__name__}"
    )


# ----------------------------------------------------------------------
# Grid geometry
# ----------------------------------------------------------------------
def normalize_grid(slews: np.ndarray, loads: np.ndarray) -> np.ndarray:
    """Unit-square coordinates of every grid point, shape ``(n_grid, 2)``.

    Axes are normalized by their physical span (not index rank), so the
    GP lengthscales describe real slew/load distances.
    """
    slews = np.asarray(slews, dtype=float)
    loads = np.asarray(loads, dtype=float)
    s_span = slews[-1] - slews[0] if slews.size > 1 else 1.0
    c_span = loads[-1] - loads[0] if loads.size > 1 else 1.0
    u = (slews - slews[0]) / (s_span if s_span > 0 else 1.0)
    v = (loads - loads[0]) / (c_span if c_span > 0 else 1.0)
    uu, vv = np.meshgrid(u, v, indexing="ij")
    return np.column_stack([uu.ravel(), vv.ravel()])


def seed_indices(
    n_slews: int,
    n_loads: int,
    n_seed: int,
    rng: np.random.Generator,
    reference: Optional[Tuple[int, int]] = None,
) -> List[Tuple[int, int]]:
    """Mandatory anchors + LHS seed points, as sorted (i, j) grid indices.

    Anchors are the four grid corners (the bilinear calibration's
    support) and, when given, the reference-condition point. The Latin
    hypercube fills the interior; duplicate snaps collapse.
    """
    chosen: "dict[Tuple[int, int], None]" = {}
    for i in (0, n_slews - 1):
        for j in (0, n_loads - 1):
            chosen[(i, j)] = None
    if reference is not None:
        chosen[(int(reference[0]), int(reference[1]))] = None
    if n_seed > 0:
        unit = latin_hypercube_unit(n_seed, 2, rng)
        for u, v in unit:
            i = int(round(u * (n_slews - 1)))
            j = int(round(v * (n_loads - 1)))
            chosen[(i, j)] = None
    return sorted(chosen)


def bilinear_residual_field(
    coords: np.ndarray, train_idx: np.ndarray, mu_grid: np.ndarray
) -> np.ndarray:
    """Residual of the best bilinear model over the full grid.

    Fits ``mu ~ 1 + u + v + u*v`` (the functional form of the Eq. 2
    calibration) to the GP mu surface at the *simulated* points and
    evaluates the absolute residual everywhere — large residuals mark
    the end of the linear/bilinear validity domain (the Agarwal-style
    break-point region), where the surrogate must not replace real
    sampling.
    """
    feats = np.column_stack([
        np.ones(coords.shape[0]),
        coords[:, 0],
        coords[:, 1],
        coords[:, 0] * coords[:, 1],
    ])
    coef, *_ = np.linalg.lstsq(feats[train_idx], mu_grid[train_idx], rcond=None)
    return np.abs(mu_grid - feats @ coef)


# ----------------------------------------------------------------------
# The loop
# ----------------------------------------------------------------------
@dataclass
class SurrogateArcResult:
    """Outcome of one arc's active-learning characterization.

    ``moments`` / ``quantiles`` / ``out_slew`` have the exact dense-grid
    layout; entries at ``simulated`` indices are bit-identical
    Monte-Carlo values, the rest are GP posterior means. ``fallback``
    is a reason string when the surrogate refused (SUR001 breach or a
    grid too small to save anything) — the caller must then simulate
    the remaining points densely. ``point_records`` maps (i, j) to the
    raw per-point records already simulated, so a fallback reuses them
    instead of re-simulating.
    """

    moments: Optional[np.ndarray]
    quantiles: Optional[np.ndarray]
    out_slew: Optional[np.ndarray]
    simulated: List[Tuple[int, int]]
    provenance: dict
    converged: bool
    fallback: Optional[str]
    point_records: Dict[Tuple[int, int], dict]


def _collect(
    records: Mapping[Tuple[int, int], dict], order: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """Stack per-point records into a ``(n_points, n_statistics)`` matrix."""
    rows = []
    for ij in order:
        rec = records[ij]
        rows.append([*rec["moments"], *rec["quantiles"], rec["out_slew"]])
    return np.asarray(rows, dtype=float)


def run_active_learning(
    slews: np.ndarray,
    loads: np.ndarray,
    runner: Callable[[Sequence[Tuple[int, int]]], Dict[Tuple[int, int], dict]],
    seed: int,
    config: SurrogateConfig,
    reference: Optional[Tuple[int, int]] = None,
    n_samples: int = 0,
    journal=None,
    arc: Optional[Sequence[str]] = None,
) -> SurrogateArcResult:
    """Run the acquisition loop for one arc over the requested grid.

    Parameters
    ----------
    slews / loads:
        The dense grid the downstream consumers expect (validated,
        strictly ascending).
    runner:
        Maps a list of (i, j) grid indices to their per-point
        characterization records (``moments`` / ``quantiles`` /
        ``out_slew`` keys, as produced by
        :func:`repro.cells.characterize._characterize_point`). The
        runner owns parallelism, retries and perf accounting.
    seed:
        Content-hash-derived seed for the LHS design and GP restarts
        (``task_seed(engine seed, "surrogate", arc identity)``).
    reference:
        Grid index of the reference condition to force into the seed
        design, if the reference lies on the grid.
    n_samples:
        Monte-Carlo draws behind each simulated point; used to floor the
        GP nugget at the analytic estimator noise
        (:func:`estimator_noise_var`). 0 disables the floor.
    journal / arc:
        Optional run journal plus the arc identity used in its
        ``surrogate_fit`` / ``acquisition`` / ``surrogate_fallback``
        events.
    """
    slews = np.asarray(slews, dtype=float)
    loads = np.asarray(loads, dtype=float)
    n_s, n_c = slews.size, loads.size
    n_grid = n_s * n_c
    arc_label = list(arc) if arc is not None else []

    def fallback(reason: str, records: Dict[Tuple[int, int], dict],
                 provenance: Optional[dict] = None) -> SurrogateArcResult:
        if journal is not None:
            journal.event("surrogate_fallback", arc=arc_label, reason=reason,
                          n_simulated=len(records))
        return SurrogateArcResult(
            moments=None, quantiles=None, out_slew=None,
            simulated=sorted(records), provenance=provenance or {},
            converged=False, fallback=reason, point_records=records,
        )

    rng = np.random.default_rng(seed)
    n_seed = config.n_seed if config.n_seed > 0 else max(3, round(0.06 * n_grid))
    seeds = seed_indices(n_s, n_c, n_seed, rng, reference=reference)
    cap = (
        config.max_points
        if config.max_points > 0
        else max(len(seeds) + 2, int(np.ceil(n_grid / 4)))
    )
    cap = min(cap, n_grid)
    if n_grid < 9 or cap >= n_grid or len(seeds) >= cap:
        # Nothing to save: the mandatory anchors already exhaust the
        # budget. Simulate nothing here; the caller runs the dense grid.
        return fallback("grid_too_small", {})

    coords = normalize_grid(slews, loads)
    all_ij = [(i, j) for i in range(n_s) for j in range(n_c)]
    ij_to_flat = {ij: k for k, ij in enumerate(all_ij)}

    records: Dict[Tuple[int, int], dict] = dict(runner(seeds))
    seed_set = sorted(records)
    breakpoint_points: List[Tuple[int, int]] = []
    budgets = {
        name: config.budgets.get(budget_family(name))
        for name in STATISTIC_NAMES
    }

    def fit_round() -> Tuple[Dict[str, GaussianProcess], np.ndarray, List[Tuple[int, int]]]:
        order = sorted(records)
        train = _collect(records, order)
        x = coords[[ij_to_flat[ij] for ij in order]]
        mean_sigma = float(np.mean(train[:, 1]))
        mean_kurt = float(np.mean(train[:, 3]))
        gps = {
            name: GaussianProcess.fit(
                x, train[:, k], seed=seed + 1 + k,
                n_restarts=config.n_restarts,
                noise_var=estimator_noise_var(
                    name, mean_sigma, mean_kurt, n_samples
                ),
            )
            for k, name in enumerate(STATISTIC_NAMES)
        }
        return gps, x, order

    converged = False
    rel_se: Dict[str, float] = {}
    gps: Dict[str, GaussianProcess] = {}
    rounds = 0
    while True:
        gps, _x, order = fit_round()
        rounds += 1

        if rounds == 1 and config.breakpoint_tol > 0:
            # Break-point guard: force-simulate the region where the
            # bilinear (Eq. 2) form stops describing the mu surface.
            mu_mean, _ = gps["mu"].predict(coords)
            mu_span = float(mu_mean.max() - mu_mean.min())
            if mu_span > 0:
                train_idx = np.asarray([ij_to_flat[ij] for ij in order])
                resid = bilinear_residual_field(coords, train_idx, mu_mean)
                hot = [
                    all_ij[k]
                    for k in np.argsort(-resid)
                    if resid[k] > config.breakpoint_tol * mu_span
                    and all_ij[k] not in records
                ]
                room = max(cap - len(records) - 1, 0)
                breakpoint_points = sorted(hot[:room])
                if breakpoint_points:
                    records.update(runner(breakpoint_points))
                    gps, _x, order = fit_round()

        # Predicted relative standard error over the full grid, per
        # gated statistic (scale = observed surface range).
        pending = [ij for ij in all_ij if ij not in records]
        pending_x = coords[[ij_to_flat[ij] for ij in pending]]
        scores = np.zeros(len(pending))
        rel_se = {}
        for name in STATISTIC_NAMES:
            budget = budgets[name]
            gp = gps[name]
            span = float(np.ptp(gp.y))
            if span <= 0.0:
                rel_se[name] = 0.0
                continue
            _, var = gp.predict(pending_x)
            sd_rel = np.sqrt(var) / span
            rel_se[name] = float(sd_rel.max()) if sd_rel.size else 0.0
            if budget is not None and budget > 0:
                scores = np.maximum(scores, sd_rel / budget)
        if journal is not None:
            journal.event(
                "surrogate_fit", arc=arc_label, round=rounds,
                n_simulated=len(records),
                rel_se={k: round(v, 6) for k, v in rel_se.items()},
            )
        gated = [
            name for name in STATISTIC_NAMES
            if budgets[name] is not None and budgets[name] > 0
        ]
        if not pending or all(rel_se[name] <= budgets[name] for name in gated):
            converged = True
            break
        if len(records) >= cap:
            break

        # Acquisition: worst budget-normalized posterior sd first;
        # deterministic (i, j) tie-break via stable argsort.
        room = min(config.batch, cap - len(records), len(pending))
        ranked = np.argsort(-scores, kind="stable")[:room]
        batch = sorted(pending[k] for k in ranked)
        if journal is not None:
            journal.event("acquisition", arc=arc_label, round=rounds,
                          points=[list(ij) for ij in batch])
        records.update(runner(batch))

    # ------------------------------------------------------------------
    # Cross-validation gate (SUR001): leave-one-out residuals of mu.
    # The gate covers *interior* training points only: removing a grid
    # corner (or the reference anchor) turns its LOO prediction into an
    # extrapolation the emitted table never performs — anchors are
    # always simulated, so their entries are exact Monte-Carlo data and
    # their LOO residuals measure a deployment that does not exist.
    order = sorted(records)
    anchors = {(i, j) for i in (0, n_s - 1) for j in (0, n_c - 1)}
    if reference is not None:
        anchors.add((int(reference[0]), int(reference[1])))
    mu_values = _collect(records, order)[:, 0]
    mu_span = float(np.ptp(mu_values))
    loo = np.abs(gps["mu"].loo_residuals())
    interior = np.asarray([ij not in anchors for ij in order], dtype=bool)
    cv_max = float(loo[interior].max()) if interior.any() else 0.0
    cv_max_all = float(loo.max()) if loo.size else 0.0
    cv_rel = cv_max / mu_span if mu_span > 0 else 0.0
    cv = {
        "statistic": "mu",
        "max_abs_residual_s": cv_max,
        "max_abs_residual_anchors_s": cv_max_all,
        "n_interior": int(interior.sum()),
        "scale_s": mu_span,
        "rel": cv_rel,
        "budget": config.cv_budget,
    }
    provenance = {
        "method": "gp",
        "version": 1,
        "n_grid": n_grid,
        "n_simulated": len(records),
        "n_predicted": n_grid - len(records),
        "simulated": [list(ij) for ij in order],
        "seed_points": [list(ij) for ij in seed_set],
        "breakpoint_points": [list(ij) for ij in breakpoint_points],
        "rounds": rounds,
        "statistics": {
            name: {**gps[name].hyper.as_dict(),
                   "rel_se": round(rel_se.get(name, 0.0), 6)}
            for name in STATISTIC_NAMES
        },
        "cv": cv,
        "converged": converged,
        "fallback": None,
        "config": config.identity(),
    }
    if cv_rel > config.cv_budget:
        provenance["fallback"] = "cv_residual"
        return fallback("cv_residual", records, provenance)

    # ------------------------------------------------------------------
    # Evaluate the surrogate on the dense grid; simulated entries carry
    # their exact Monte-Carlo values.
    predictions = {
        name: gps[name].predict(coords)[0].reshape(n_s, n_c)
        for name in STATISTIC_NAMES
    }
    moments = np.stack(
        [predictions[n] for n in ("mu", "sigma", "skew", "kurt")], axis=-1
    )
    quantiles = np.stack(
        [predictions[f"q{level:+d}"] for level in SIGMA_LEVELS], axis=-1
    )
    out_slew = predictions["out_slew"]

    # Physicality guards on *predicted* entries (mirrors the calibrated
    # evaluators): non-negative sigma, Pearson-valid kurtosis,
    # non-decreasing quantiles across sigma levels, positive out-slew,
    # and mu no lower than the geometric -input_slew floor.
    sim_rows = _collect(records, order)
    sigma_floor = 1e-3 * float(np.min(sim_rows[:, 1]))
    moments[..., 1] = np.maximum(moments[..., 1], max(sigma_floor, 0.0))
    moments[..., 3] = np.maximum(
        moments[..., 3], 1.0 + moments[..., 2] ** 2 + 1e-6  # repro-lint: disable=UNIT001 (moment slack, unitless)
    )
    moments[..., 0] = np.maximum(moments[..., 0], -0.999 * slews[:, None])
    quantiles = np.maximum.accumulate(quantiles, axis=-1)
    out_slew = np.maximum(out_slew, 0.1 * PS)

    for ij in order:
        i, j = ij
        rec = records[ij]
        moments[i, j] = rec["moments"]
        quantiles[i, j] = rec["quantiles"]
        out_slew[i, j] = rec["out_slew"]

    return SurrogateArcResult(
        moments=moments, quantiles=quantiles, out_slew=out_slew,
        simulated=order, provenance=provenance, converged=converged,
        fallback=None, point_records=records,
    )


def validate_provenance(provenance: Mapping[str, object]) -> List[str]:
    """Structural problems of a surrogate provenance record (SUR003).

    Returns human-readable problem strings; empty means valid.
    """
    problems: List[str] = []
    for key in PROVENANCE_REQUIRED_KEYS:
        if key not in provenance:
            problems.append(f"missing required key {key!r}")
    if problems:
        return problems
    if provenance["method"] != "gp":
        problems.append(f"unknown method {provenance['method']!r}")
    try:
        n_sim = int(provenance["n_simulated"])  # type: ignore[arg-type]
        n_pred = int(provenance["n_predicted"])  # type: ignore[arg-type]
        n_grid = int(provenance["n_grid"])  # type: ignore[arg-type]
        if n_sim + n_pred != n_grid:
            problems.append(
                f"n_simulated ({n_sim}) + n_predicted ({n_pred}) "
                f"!= n_grid ({n_grid})"
            )
        if n_sim != len(provenance["simulated"]):  # type: ignore[arg-type]
            problems.append(
                f"n_simulated ({n_sim}) does not match the simulated "
                f"point list ({len(provenance['simulated'])})"  # type: ignore[arg-type]
            )
    except (TypeError, ValueError):
        problems.append("point counts are not integers")
    cv = provenance.get("cv")
    if not isinstance(cv, Mapping) or "rel" not in cv or "budget" not in cv:
        problems.append("cv record lacks rel/budget")
    stats = provenance.get("statistics")
    if not isinstance(stats, Mapping) or "mu" not in stats:
        problems.append("statistics record lacks the mu surface")
    return problems
