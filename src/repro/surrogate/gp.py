"""Dependency-free Gaussian-process regression over (slew, load) surfaces.

The moment surfaces of a timing arc (Eqs. 1-3 of the paper) are smooth
functions of the operating condition, so a handful of Monte-Carlo
evaluations pins them down far better than a dense grid — *if* the
interpolant also says where it is uncertain. A Gaussian process gives
exactly that: an analytic posterior mean and variance at every untried
condition, which the active-learning loop (:mod:`repro.surrogate.active`)
turns into an acquisition rule.

The implementation is deliberately minimal and deterministic:

* **ARD-RBF kernel plus nugget** — one lengthscale per input axis
  (automatic relevance determination over normalized slew and load), a
  unit signal variance on standardized targets, and a diagonal nugget
  absorbing Monte-Carlo estimator noise.
* **Cholesky-factored analytic posterior** — mean, variance and the
  log marginal likelihood all come from one factorization of the
  training kernel matrix; no iterative solver, no external optimizer.
* **Gradient-free hyperparameter fit** — a deterministic candidate grid
  plus content-hash-seeded random restarts, refined by a pattern search
  with step halving. The same ``(X, y, seed)`` always produces the same
  hyperparameters, bit for bit, which keeps surrogate characterization
  runs reproducible and cache-stable.
* **Analytic leave-one-out residuals** — the classical closed form from
  the inverse kernel matrix, used by the SUR001 cross-validation gate.

All inputs are expected pre-normalized to the unit square by the caller
(:func:`repro.surrogate.active.normalize_grid`); targets are
standardized internally and predictions are returned in original units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError

#: Hyperparameter search space (log-space bounds, standardized targets).
LENGTHSCALE_GRID = (0.15, 0.3, 0.6, 1.2)
NUGGET_GRID = (1e-6, 1e-4, 1e-2, 1e-1)  # repro-lint: disable-file=UNIT001 (GP hyperparameters are dimensionless)
LENGTHSCALE_BOUNDS = (0.05, 4.0)
NUGGET_BOUNDS = (1e-8, 0.5)

#: Jitter escalation ladder for a non-positive-definite kernel matrix.
_JITTERS = (0.0, 1e-10, 1e-8, 1e-6)


@dataclass(frozen=True)
class GPHyperparameters:
    """Fitted kernel hyperparameters (standardized-target units).

    Attributes
    ----------
    lengthscales:
        Per-axis ARD-RBF lengthscales in normalized input units.
    nugget:
        Diagonal noise variance (fraction of the unit signal variance).
    lml:
        Log marginal likelihood achieved at these values.
    """

    lengthscales: Tuple[float, ...]
    nugget: float
    lml: float

    def as_dict(self) -> dict:
        """JSON-ready form (surrogate provenance records)."""
        return {
            "lengthscales": [float(v) for v in self.lengthscales],
            "signal_var": 1.0,
            "nugget": float(self.nugget),
            "lml": float(self.lml),
        }


def _sq_dists(xa: np.ndarray, xb: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise scaled squared distances ``sum(((a-b)/ls)**2)``."""
    diff = xa[:, None, :] - xb[None, :, :]
    return np.sum((diff / lengthscales) ** 2, axis=-1)


def _kernel(xa: np.ndarray, xb: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Unit-variance ARD-RBF kernel matrix."""
    return np.exp(-0.5 * _sq_dists(xa, xb, lengthscales))


def _cholesky(k: np.ndarray) -> Optional[np.ndarray]:
    """Cholesky factor with jitter escalation; ``None`` if hopeless."""
    for jitter in _JITTERS:
        try:
            return np.linalg.cholesky(
                k if jitter == 0.0 else k + jitter * np.eye(k.shape[0])
            )
        except np.linalg.LinAlgError:
            continue
    return None


def _solve_chol(chol: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``K x = b`` given the Cholesky factor of ``K``."""
    from scipy.linalg import solve_triangular

    z = solve_triangular(chol, b, lower=True)
    return solve_triangular(chol.T, z, lower=False)


def _log_marginal_likelihood(
    x: np.ndarray, y: np.ndarray, lengthscales: np.ndarray, nugget: float
) -> float:
    """LML of standardized targets under the ARD-RBF + nugget kernel."""
    n = x.shape[0]
    k = _kernel(x, x, lengthscales) + nugget * np.eye(n)
    chol = _cholesky(k)
    if chol is None:
        return -np.inf
    alpha = _solve_chol(chol, y)
    return float(
        -0.5 * y @ alpha
        - np.sum(np.log(np.diag(chol)))
        - 0.5 * n * np.log(2.0 * np.pi)
    )


class GaussianProcess:
    """An ARD-RBF Gaussian process fitted to ``(X, y)`` observations.

    Parameters
    ----------
    x:
        ``(n, d)`` training inputs, pre-normalized to the unit cube.
    y:
        ``(n,)`` training targets in original (physical) units; the
        model standardizes them internally.
    hyper:
        Kernel hyperparameters; use :meth:`fit` to obtain them by
        maximum marginal likelihood, or pass explicit values for a
        fixed-kernel posterior (tests, variance-shrink analyses).

    Notes
    -----
    Degenerate targets (zero spread) collapse to a constant predictor
    with zero posterior variance — the correct limit, and it keeps the
    active-learning loop from chasing noise on flat surfaces.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, hyper: GPHyperparameters):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise CalibrationError(
                f"GP training shapes mismatch: x {x.shape}, y {y.shape}"
            )
        if x.shape[0] < 1:
            raise CalibrationError("GP needs at least one training point")
        if not (np.isfinite(x).all() and np.isfinite(y).all()):
            raise CalibrationError("GP training data must be finite")
        self.x = x
        self.y = y
        self.hyper = hyper
        self.y_mean = float(np.mean(y))
        spread = float(np.std(y))
        self.y_std = spread if spread > 0.0 else 0.0
        self.degenerate = self.y_std == 0.0
        self._ls = np.asarray(hyper.lengthscales, dtype=float)
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        if not self.degenerate:
            z = (y - self.y_mean) / self.y_std
            k = _kernel(x, x, self._ls) + hyper.nugget * np.eye(x.shape[0])
            chol = _cholesky(k)
            if chol is None:
                raise CalibrationError(
                    "GP kernel matrix is not positive definite even with "
                    f"jitter (lengthscales {hyper.lengthscales}, "
                    f"nugget {hyper.nugget})"
                )
            self._chol = chol
            self._alpha = _solve_chol(chol, z)

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        x: np.ndarray,
        y: np.ndarray,
        seed: int = 0,
        n_restarts: int = 4,
        refine_steps: int = 12,
        noise_var: float = 0.0,
    ) -> "GaussianProcess":
        """Fit hyperparameters by maximum marginal likelihood.

        The search is gradient-free and fully deterministic: a fixed
        candidate grid (:data:`LENGTHSCALE_GRID` x :data:`NUGGET_GRID`)
        plus ``n_restarts`` log-uniform random candidates drawn from a
        generator seeded with ``seed`` (derive it from a content hash so
        refits are bit-identical), then a pattern search with step
        halving around the best candidate. The same inputs always yield
        the same :class:`GPHyperparameters`.

        ``noise_var`` is a known lower bound on the observation noise in
        *original target units squared* (for Monte-Carlo moment
        estimates, the analytic standard error squared). The nugget is
        floored there: with few training points the marginal likelihood
        happily drives the nugget to ~0 and the posterior then claims
        certainty the estimator noise cannot support.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        spread = float(np.std(y))
        if spread == 0.0 or x.shape[0] < 2:
            hyper = GPHyperparameters(
                lengthscales=tuple(1.0 for _ in range(x.shape[1])),
                nugget=float(NUGGET_GRID[1]),
                lml=0.0,
            )
            return cls(x, y, hyper)
        z = (y - float(np.mean(y))) / spread
        d = x.shape[1]
        nugget_lo = NUGGET_BOUNDS[0]
        if noise_var > 0.0:
            nugget_lo = min(
                max(nugget_lo, noise_var / spread**2), NUGGET_BOUNDS[1]
            )

        rng = np.random.default_rng(seed)
        lo = np.log(np.array([LENGTHSCALE_BOUNDS[0]] * d + [nugget_lo]))
        hi = np.log(np.array([LENGTHSCALE_BOUNDS[1]] * d + [NUGGET_BOUNDS[1]]))
        candidates: List[np.ndarray] = []
        for ls in LENGTHSCALE_GRID:
            for nugget in NUGGET_GRID:
                theta = np.log(np.array([ls] * d + [max(nugget, nugget_lo)]))
                candidates.append(np.clip(theta, lo, hi))
        for _ in range(max(0, n_restarts)):
            candidates.append(rng.uniform(lo, hi))

        def score(theta: np.ndarray) -> float:
            ls = np.exp(theta[:d])
            nugget = float(np.exp(theta[d]))
            return _log_marginal_likelihood(x, z, ls, nugget)

        best_theta = candidates[0]
        best_lml = -np.inf
        for theta in candidates:
            lml = score(theta)
            if lml > best_lml:
                best_lml, best_theta = lml, theta

        # Pattern search: per-coordinate log-steps, halving on failure.
        theta = best_theta.copy()
        step = 0.5
        for _ in range(max(0, refine_steps)):
            improved = False
            for axis in range(d + 1):
                for direction in (1.0, -1.0):
                    trial = theta.copy()
                    trial[axis] = float(
                        np.clip(trial[axis] + direction * step, lo[axis], hi[axis])
                    )
                    lml = score(trial)
                    if lml > best_lml:
                        best_lml, theta = lml, trial
                        improved = True
            if not improved:
                step *= 0.5
                if step < 1e-3:
                    break
        hyper = GPHyperparameters(
            lengthscales=tuple(float(v) for v in np.exp(theta[:d])),
            nugget=float(np.exp(theta[d])),
            lml=float(best_lml),
        )
        return cls(x, y, hyper)

    # ------------------------------------------------------------------
    def predict(self, xq: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (original units) at query points.

        Returns the latent-function variance (no nugget added), which is
        the quantity the acquisition rule and the stopping budget need:
        it shrinks to ~0 at training points and grows with distance.
        """
        xq = np.asarray(xq, dtype=float)
        if xq.ndim == 1:
            xq = xq[None, :]
        if self.degenerate:
            return (
                np.full(xq.shape[0], self.y_mean),
                np.zeros(xq.shape[0]),
            )
        ks = _kernel(xq, self.x, self._ls)
        mean_z = ks @ self._alpha
        from scipy.linalg import solve_triangular

        v = solve_triangular(self._chol, ks.T, lower=True)
        var_z = np.maximum(1.0 - np.sum(v * v, axis=0), 0.0)
        return self.y_mean + self.y_std * mean_z, (self.y_std**2) * var_z

    def loo_residuals(self) -> np.ndarray:
        """Analytic leave-one-out residuals ``y_i - mean_{-i}(x_i)``.

        Uses the closed form ``alpha_i / (K^-1)_{ii}`` — no refitting.
        Residuals are returned in original target units; the SUR001
        cross-validation gate compares their maximum against the budget.
        """
        if self.degenerate:
            return np.zeros(self.x.shape[0])
        k_inv = _solve_chol(self._chol, np.eye(self.x.shape[0]))
        diag = np.maximum(np.diag(k_inv), np.finfo(float).tiny)
        return self.y_std * (self._alpha / diag)

    def max_posterior_sd(self, xq: np.ndarray) -> float:
        """Largest posterior standard deviation over the query points."""
        _, var = self.predict(xq)
        return float(np.sqrt(np.max(var))) if var.size else 0.0
