"""Active-learning surrogate characterization (opt-in fast mode).

Gaussian-process regression over the per-arc moment surfaces with
acquisition-driven sampling: simulate a handful of (slew, load) grid
points, predict the rest, and fall back to dense simulation whenever
the cross-validation gate or the Agarwal-style break-point check says
the surrogate cannot be trusted. Enable with ``REPRO_SURROGATE=gp`` or
``--surrogate gp``; dense characterization stays the default and is
bit-identical with the surrogate off.
"""

from repro.surrogate.active import (
    DEFAULT_BUDGETS,
    PROVENANCE_REQUIRED_KEYS,
    STATISTIC_NAMES,
    SURROGATE_ENV,
    SurrogateArcResult,
    SurrogateConfig,
    budget_family,
    estimator_noise_var,
    normalize_grid,
    resolve_surrogate,
    run_active_learning,
    seed_indices,
    validate_provenance,
)
from repro.surrogate.gp import GaussianProcess, GPHyperparameters

__all__ = [
    "DEFAULT_BUDGETS",
    "PROVENANCE_REQUIRED_KEYS",
    "STATISTIC_NAMES",
    "SURROGATE_ENV",
    "GaussianProcess",
    "GPHyperparameters",
    "SurrogateArcResult",
    "SurrogateConfig",
    "budget_family",
    "estimator_noise_var",
    "normalize_grid",
    "resolve_surrogate",
    "run_active_learning",
    "seed_indices",
    "validate_provenance",
]
