"""Lightweight performance counters for the simulation stack.

A single :class:`PerfCounters` instance is threaded through the solver,
the Monte-Carlo engine and the flow driver. Counter mutation goes
through :meth:`PerfCounters.incr` (and friends), which batch several
counters under one short lock acquisition — at most one per Newton
iteration, so the overhead is negligible next to one batched linear
solve while keeping concurrent updates (shared-memory publication and
result draining run off the main loop) lossless.

What is counted and why it matters:

* ``newton_iterations`` / ``linear_solves`` — the raw work of the
  implicit integrator. With per-sample convergence masking the two
  diverge from the naive ``iterations × batch`` cost.
* ``sample_solves`` vs ``full_sample_solves`` — actual vs unmasked
  sample·solve count; their ratio is the *active-sample fraction*, the
  direct measure of how much the masked kernel saves.
* ``fast_solves`` — steps served by the shared-factorization fast path
  (linear circuits, sample-independent Jacobian).
* ``dc_steps`` / ``dc_early_exits`` — pseudo-transient DC settle cost
  and how often it converges before its step budget.
* ``sta_compiles`` / ``sta_scenarios`` / ``sta_levels`` /
  ``sta_arc_evals`` — work of the compiled STA engine
  (:mod:`repro.core.sta_compiled`): design compiles performed, query
  scenarios served, levelized propagation sweeps, and (scenario × gate
  × pin) timing-arc evaluations. ``sta_arc_evals / wall_s['sta_query']``
  is the engine's headline throughput.
* ``sta_serve_requests`` / ``sta_serve_scenarios`` /
  ``sta_serve_rejects`` / ``sta_serve_deadline_misses`` /
  ``sta_serve_evictions`` / ``sta_serve_design_loads`` — the resident
  STA service (:mod:`repro.serve`): query requests admitted and the
  scenarios they carried, requests refused at admission (full queue or
  invalid input), requests that blew their deadline, tensor banks
  evicted from the registry LRU, and designs (re)compiled or reloaded
  into residency. Exposed live on the server's ``/stats`` endpoint.
* ``cache_hits`` / ``cache_misses`` / ``cache_corrupt`` — artifact-cache
  traffic (:class:`repro.cache.JsonCache`); ``cache_corrupt`` counts
  truncated/unparseable artifacts that were demoted to misses and
  unlinked instead of crashing the run.
* ``pack_writes`` / ``pack_loads`` / ``pack_verifies`` — packed binary
  artifacts (:mod:`repro.pack`): ``.rpk`` files written, opened by
  ``mmap`` (the zero-copy cold-start path of the design registry and
  :class:`repro.cache.PackCache`), and full per-segment sha256
  verification passes.
* ``task_retries`` / ``task_quarantines`` / ``pool_crashes`` — the
  fault-tolerance layer (:mod:`repro.parallel`): attempts re-executed
  after a retryable failure, tasks given up on after exhausting their
  budget, and worker-pool deaths recovered by isolated re-execution.
* ``kernel_ops`` — per-backend primitive invocation counts from
  :mod:`repro.kernels`, keyed ``"<backend>.<primitive>"`` (e.g.
  ``"cnative.solve_stack"``) and counting *sample-primitive* events, so
  backend A/B runs can be compared work-for-work.
* ``points_simulated`` / ``points_predicted`` — characterization grid
  points that ran a real Monte-Carlo simulation vs points filled in by
  the active-learning surrogate (:mod:`repro.surrogate`); their ratio
  is the headline sim-count reduction of surrogate mode.
* ``wall_s`` — wall-clock seconds per named stage (``simulate``,
  ``characterize``, ``fit_models``, ``sta_compile``, ``sta_query``,
  ...), accumulated with :meth:`PerfCounters.timer`.
* ``arc_wall_s`` / ``arc_samples`` — per-arc characterization wall time
  and Monte-Carlo sample counts (:meth:`PerfCounters.add_arc`), so
  benchmarks can attribute speedups to fewer simulations rather than
  kernel variance.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class PerfCounters:
    """Accumulating performance counters (cheap to update, mergeable)."""

    newton_iterations: int = 0
    linear_solves: int = 0
    sample_solves: int = 0
    full_sample_solves: int = 0
    fast_solves: int = 0
    steps: int = 0
    dc_steps: int = 0
    dc_early_exits: int = 0
    simulations: int = 0
    sta_compiles: int = 0
    sta_scenarios: int = 0
    sta_levels: int = 0
    sta_arc_evals: int = 0
    sta_serve_requests: int = 0
    sta_serve_scenarios: int = 0
    sta_serve_rejects: int = 0
    sta_serve_deadline_misses: int = 0
    sta_serve_evictions: int = 0
    sta_serve_design_loads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    pack_writes: int = 0
    pack_loads: int = 0
    pack_verifies: int = 0
    task_retries: int = 0
    task_quarantines: int = 0
    pool_crashes: int = 0
    points_simulated: int = 0
    points_predicted: int = 0
    wall_s: Dict[str, float] = field(default_factory=dict)
    kernel_ops: Dict[str, int] = field(default_factory=dict)
    arc_wall_s: Dict[str, float] = field(default_factory=dict)
    arc_samples: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    # Locks don't pickle; recreate one on the receiving side (worker
    # round-trips serialize counters between processes).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def incr(self, **counts: int) -> None:
        """Atomically add to several integer counters at once.

        ``perf.incr(newton_iterations=1, sample_solves=n)`` is the
        supported mutation path for hot loops: one lock acquisition per
        call, so concurrent accumulation (e.g. the shared-memory
        publisher thread next to the solver loop) never loses updates
        the way bare ``perf.field += n`` read-modify-writes can.
        """
        with self._lock:
            for name, n in counts.items():
                setattr(self, name, getattr(self, name) + n)

    def add_kernel_op(self, backend: str, primitive: str, n: int = 1) -> None:
        """Count ``n`` sample-primitive events for ``backend.primitive``."""
        key = f"{backend}.{primitive}"
        with self._lock:
            self.kernel_ops[key] = self.kernel_ops.get(key, 0) + n

    def add_arc(self, arc: str, wall_s: float = 0.0, samples: int = 0) -> None:
        """Attribute characterization wall time and MC samples to one arc.

        ``arc`` is the ``cell/pin/edge`` label; benchmarks use the
        per-arc attribution to separate genuine sim-count reductions
        (fewer grid points simulated) from kernel-speed variance.
        """
        with self._lock:
            self.arc_wall_s[arc] = self.arc_wall_s.get(arc, 0.0) + wall_s
            self.arc_samples[arc] = self.arc_samples.get(arc, 0) + samples

    # ------------------------------------------------------------------
    @property
    def active_sample_fraction(self) -> float:
        """Fraction of sample·solves actually performed vs the unmasked cost.

        1.0 means no masking benefit; 0.4 means 60 % of the per-sample
        Newton work was skipped because those samples had converged.
        """
        if self.full_sample_solves == 0:
            return 1.0
        return self.sample_solves / self.full_sample_solves

    def add_wall(self, stage: str, seconds: float) -> None:
        """Accumulate wall time under a stage label."""
        with self._lock:
            self.wall_s[stage] = self.wall_s.get(stage, 0.0) + seconds

    @contextmanager
    def timer(self, stage: str) -> Iterator[None]:
        """Context manager accumulating the enclosed wall time."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_wall(stage, time.perf_counter() - t0)

    # ------------------------------------------------------------------
    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Fold another counter set (e.g. from a worker process) into this one."""
        self.newton_iterations += other.newton_iterations
        self.linear_solves += other.linear_solves
        self.sample_solves += other.sample_solves
        self.full_sample_solves += other.full_sample_solves
        self.fast_solves += other.fast_solves
        self.steps += other.steps
        self.dc_steps += other.dc_steps
        self.dc_early_exits += other.dc_early_exits
        self.simulations += other.simulations
        self.sta_compiles += other.sta_compiles
        self.sta_scenarios += other.sta_scenarios
        self.sta_levels += other.sta_levels
        self.sta_arc_evals += other.sta_arc_evals
        self.sta_serve_requests += other.sta_serve_requests
        self.sta_serve_scenarios += other.sta_serve_scenarios
        self.sta_serve_rejects += other.sta_serve_rejects
        self.sta_serve_deadline_misses += other.sta_serve_deadline_misses
        self.sta_serve_evictions += other.sta_serve_evictions
        self.sta_serve_design_loads += other.sta_serve_design_loads
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_corrupt += other.cache_corrupt
        self.pack_writes += other.pack_writes
        self.pack_loads += other.pack_loads
        self.pack_verifies += other.pack_verifies
        self.task_retries += other.task_retries
        self.task_quarantines += other.task_quarantines
        self.pool_crashes += other.pool_crashes
        self.points_simulated += other.points_simulated
        self.points_predicted += other.points_predicted
        for stage, seconds in other.wall_s.items():
            self.add_wall(stage, seconds)
        for arc, seconds in other.arc_wall_s.items():
            self.add_arc(arc, wall_s=seconds)
        for arc, samples in other.arc_samples.items():
            self.add_arc(arc, samples=samples)
        with self._lock:
            for key, n in other.kernel_ops.items():
                self.kernel_ops[key] = self.kernel_ops.get(key, 0) + n
        return self

    def to_dict(self) -> dict:
        """JSON-ready dump (counters + derived active-sample fraction)."""
        return {
            "newton_iterations": self.newton_iterations,
            "linear_solves": self.linear_solves,
            "sample_solves": self.sample_solves,
            "full_sample_solves": self.full_sample_solves,
            "active_sample_fraction": round(self.active_sample_fraction, 4),
            "fast_solves": self.fast_solves,
            "steps": self.steps,
            "dc_steps": self.dc_steps,
            "dc_early_exits": self.dc_early_exits,
            "simulations": self.simulations,
            "sta_compiles": self.sta_compiles,
            "sta_scenarios": self.sta_scenarios,
            "sta_levels": self.sta_levels,
            "sta_arc_evals": self.sta_arc_evals,
            "sta_serve_requests": self.sta_serve_requests,
            "sta_serve_scenarios": self.sta_serve_scenarios,
            "sta_serve_rejects": self.sta_serve_rejects,
            "sta_serve_deadline_misses": self.sta_serve_deadline_misses,
            "sta_serve_evictions": self.sta_serve_evictions,
            "sta_serve_design_loads": self.sta_serve_design_loads,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corrupt": self.cache_corrupt,
            "pack_writes": self.pack_writes,
            "pack_loads": self.pack_loads,
            "pack_verifies": self.pack_verifies,
            "task_retries": self.task_retries,
            "task_quarantines": self.task_quarantines,
            "pool_crashes": self.pool_crashes,
            "points_simulated": self.points_simulated,
            "points_predicted": self.points_predicted,
            "wall_s": {k: round(v, 4) for k, v in self.wall_s.items()},
            "kernel_ops": dict(sorted(self.kernel_ops.items())),
            "arc_wall_s": {
                k: round(v, 4) for k, v in sorted(self.arc_wall_s.items())
            },
            "arc_samples": dict(sorted(self.arc_samples.items())),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfCounters":
        """Rebuild counters from :meth:`to_dict` output (worker round-trip)."""
        out = cls(
            newton_iterations=int(data.get("newton_iterations", 0)),
            linear_solves=int(data.get("linear_solves", 0)),
            sample_solves=int(data.get("sample_solves", 0)),
            full_sample_solves=int(data.get("full_sample_solves", 0)),
            fast_solves=int(data.get("fast_solves", 0)),
            steps=int(data.get("steps", 0)),
            dc_steps=int(data.get("dc_steps", 0)),
            dc_early_exits=int(data.get("dc_early_exits", 0)),
            simulations=int(data.get("simulations", 0)),
            sta_compiles=int(data.get("sta_compiles", 0)),
            sta_scenarios=int(data.get("sta_scenarios", 0)),
            sta_levels=int(data.get("sta_levels", 0)),
            sta_arc_evals=int(data.get("sta_arc_evals", 0)),
            sta_serve_requests=int(data.get("sta_serve_requests", 0)),
            sta_serve_scenarios=int(data.get("sta_serve_scenarios", 0)),
            sta_serve_rejects=int(data.get("sta_serve_rejects", 0)),
            sta_serve_deadline_misses=int(data.get("sta_serve_deadline_misses", 0)),
            sta_serve_evictions=int(data.get("sta_serve_evictions", 0)),
            sta_serve_design_loads=int(data.get("sta_serve_design_loads", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            cache_corrupt=int(data.get("cache_corrupt", 0)),
            pack_writes=int(data.get("pack_writes", 0)),
            pack_loads=int(data.get("pack_loads", 0)),
            pack_verifies=int(data.get("pack_verifies", 0)),
            task_retries=int(data.get("task_retries", 0)),
            task_quarantines=int(data.get("task_quarantines", 0)),
            pool_crashes=int(data.get("pool_crashes", 0)),
            points_simulated=int(data.get("points_simulated", 0)),
            points_predicted=int(data.get("points_predicted", 0)),
        )
        out.wall_s = {k: float(v) for k, v in data.get("wall_s", {}).items()}
        out.kernel_ops = {k: int(v) for k, v in data.get("kernel_ops", {}).items()}
        out.arc_wall_s = {k: float(v) for k, v in data.get("arc_wall_s", {}).items()}
        out.arc_samples = {k: int(v) for k, v in data.get("arc_samples", {}).items()}
        return out

    def summary(self) -> str:
        """Human-readable one-paragraph summary for CLI output."""
        lines = [
            f"simulations: {self.simulations}  transient steps: {self.steps}  "
            f"dc steps: {self.dc_steps} ({self.dc_early_exits} early exits)",
            f"newton iterations: {self.newton_iterations}  "
            f"linear solves: {self.linear_solves} "
            f"({self.fast_solves} fast-path)  "
            f"active-sample fraction: {self.active_sample_fraction:.2f}",
        ]
        if self.cache_hits or self.cache_misses or self.cache_corrupt:
            lines.append(
                f"cache: {self.cache_hits} hits  {self.cache_misses} misses  "
                f"{self.cache_corrupt} corrupt"
            )
        if self.pack_writes or self.pack_loads or self.pack_verifies:
            lines.append(
                f"packs: {self.pack_writes} written  "
                f"{self.pack_loads} mmap-loaded  "
                f"{self.pack_verifies} digest-verified"
            )
        if self.task_retries or self.task_quarantines or self.pool_crashes:
            lines.append(
                f"fault tolerance: {self.task_retries} retries  "
                f"{self.task_quarantines} quarantined  "
                f"{self.pool_crashes} pool crashes recovered"
            )
        if self.sta_scenarios or self.sta_compiles:
            lines.append(
                f"sta: {self.sta_compiles} compiles  "
                f"{self.sta_scenarios} scenarios  "
                f"{self.sta_levels} level sweeps  "
                f"{self.sta_arc_evals} arc evals"
            )
        if self.sta_serve_requests or self.sta_serve_rejects:
            lines.append(
                f"serve: {self.sta_serve_requests} requests  "
                f"{self.sta_serve_scenarios} scenarios  "
                f"{self.sta_serve_rejects} rejected  "
                f"{self.sta_serve_deadline_misses} deadline misses  "
                f"{self.sta_serve_design_loads} design loads  "
                f"{self.sta_serve_evictions} evictions"
            )
        if self.points_simulated or self.points_predicted:
            total = self.points_simulated + self.points_predicted
            lines.append(
                f"surrogate: {self.points_simulated} grid points simulated  "
                f"{self.points_predicted} predicted "
                f"({total} total)"
            )
        if self.arc_wall_s:
            lines.append(
                f"arcs characterized: {len(self.arc_wall_s)}  "
                f"slowest: "
                + "  ".join(
                    f"{arc}={seconds:.2f}s"
                    for arc, seconds in sorted(
                        self.arc_wall_s.items(), key=lambda kv: -kv[1]
                    )[:3]
                )
            )
        if self.kernel_ops:
            ops = "  ".join(
                f"{k}={v}" for k, v in sorted(self.kernel_ops.items())
            )
            lines.append(f"kernel ops: {ops}")
        if self.wall_s:
            stages = "  ".join(f"{k}={v:.2f}s" for k, v in sorted(self.wall_s.items()))
            lines.append(f"wall time: {stages}")
        return "\n".join(lines)
