"""EKV-style MOSFET model, vectorized over Monte-Carlo samples.

The EKV formulation expresses the channel current as the difference of a
*forward* and a *reverse* component, each an interpolation function of
the pinch-off voltage referenced to source/drain:

    i_f = F((v_p - v_s) / phi_t)      F(x) = ln(1 + exp(x/2))^2
    i_r = F((v_p - v_d) / phi_t)      v_p = (v_g - v_t_eff) / n
    I_DS = I_spec * (i_f - i_r) * (1 + lambda * v_ds)

with ``I_spec = 2 n kp (W/L) phi_t^2``. ``F`` tends to ``exp(x)`` for
``x << 0`` (subthreshold: exponential in Vgs) and to ``(x/2)^2`` for
``x >> 0`` (strong inversion: square law), with a smooth moderate-
inversion transition — exactly the regime of a 0.6 V near-threshold
design. The exponential subthreshold sensitivity to the (varying)
threshold voltage is what produces the skewed, heavy-tailed delay
distributions the paper calibrates.

Second-order effects included: DIBL (``v_t_eff = v_t - dibl*v_ds``) and
channel-length modulation (the ``1 + lambda*v_ds`` factor).

PMOS devices are handled by evaluating the same equations on negated
terminal voltages; see :class:`repro.spice.netlist.Mosfet` for the sign
bookkeeping, which works out so that the conductance derivatives carry
over *unchanged*.

All functions accept and return NumPy arrays and broadcast freely, so a
single call evaluates every Monte-Carlo sample of a device at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import thermal_voltage
from repro.variation.parameters import Technology


def _softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable ``log(1 + exp(x))``."""
    return np.logaddexp(0.0, x)


def _interp_f(x: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """EKV interpolation function ``F(x) = softplus(x/2)^2`` and its derivative.

    ``F'(x) = softplus(x/2) * sigmoid(x/2)``. The sigmoid is recovered
    from the softplus through the identity
    ``sigmoid(y) = 1 - exp(-softplus(y))`` — one ``expm1`` on an
    always-nonpositive argument instead of a second branch-masked
    exponential. This sits on the Newton hot path (every device, every
    iteration, every Monte-Carlo sample), where the saving is material.
    """
    sp = _softplus(x * 0.5)
    return sp * sp, sp * -np.expm1(-sp)


@dataclass(frozen=True)
class MosfetParams:
    """Electrical parameters of one device evaluation.

    ``vt``, ``ispec`` may be arrays (one entry per Monte-Carlo sample);
    the scalars ``n_slope``, ``phi_t``, ``dibl``, ``lam`` are shared.

    Attributes
    ----------
    vt:
        Effective zero-bias threshold magnitude in volts (nominal +
        sampled deviation).
    ispec:
        Specific current ``2 n kp (W/L) phi_t^2`` in amperes (absorbs
        the sampled mobility and length scaling).
    n_slope:
        Subthreshold slope factor ``n``.
    phi_t:
        Thermal voltage in volts.
    dibl:
        DIBL coefficient (V/V).
    lam:
        Channel-length-modulation coefficient (1/V).
    """

    vt: np.ndarray
    ispec: np.ndarray
    n_slope: float
    phi_t: float
    dibl: float
    lam: float

    def subset(self, rows: np.ndarray) -> "MosfetParams":
        """Restrict per-sample parameter arrays to the given sample rows.

        Used by the convergence-masked Newton kernel to evaluate the
        device model only for still-unconverged Monte-Carlo samples.
        Scalar parameters pass through unchanged.
        """
        return MosfetParams(
            vt=self.vt[rows] if np.ndim(self.vt) else self.vt,
            ispec=self.ispec[rows] if np.ndim(self.ispec) else self.ispec,
            n_slope=self.n_slope,
            phi_t=self.phi_t,
            dibl=self.dibl,
            lam=self.lam,
        )

    @classmethod
    def from_technology(
        cls,
        tech: Technology,
        is_pmos: bool,
        width: float,
        dvth: np.ndarray,
        mobility_scale: np.ndarray,
        length_scale: np.ndarray,
    ) -> "MosfetParams":
        """Build evaluation parameters from technology constants and a sample batch.

        Parameters
        ----------
        tech:
            Nominal process constants.
        is_pmos:
            Device polarity; selects ``vt0_p``/``kp_p`` vs ``vt0_n``/``kp_n``.
        width:
            Drawn width in meters.
        dvth, mobility_scale, length_scale:
            Per-sample deviations from :class:`~repro.variation.sampling.ParameterSample`
            (a slice of shape ``(n_samples,)`` for this device).
        """
        phi_t = thermal_voltage(tech.temperature_c)
        vt0 = tech.vt0_p if is_pmos else tech.vt0_n
        kp = tech.kp_p if is_pmos else tech.kp_n
        n = tech.subthreshold_slope_factor
        w_over_l = width / (tech.l_min * np.asarray(length_scale, dtype=float))
        ispec = 2.0 * n * kp * w_over_l * phi_t**2 * np.asarray(mobility_scale, dtype=float)
        vt = vt0 + np.asarray(dvth, dtype=float)
        return cls(
            vt=vt,
            ispec=ispec,
            n_slope=n,
            phi_t=phi_t,
            dibl=tech.dibl,
            lam=tech.channel_length_modulation,
        )


def ekv_ids(
    vg: np.ndarray, vd: np.ndarray, vs: np.ndarray, params: MosfetParams
) -> np.ndarray:
    """Drain-to-source current of an NMOS-referenced device.

    All voltages are bulk-referenced; arrays broadcast. Positive return
    value means conventional current flowing from drain to source.
    """
    ids, _, _, _ = ekv_ids_and_derivatives(vg, vd, vs, params)
    return ids


def ekv_ids_and_derivatives(
    vg: np.ndarray, vd: np.ndarray, vs: np.ndarray, params: MosfetParams
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Current and small-signal conductances of an NMOS-referenced device.

    This is the *golden* evaluation used by the ``numpy`` kernel
    backend; accelerated backends (:mod:`repro.kernels`) must match it
    within the documented equivalence envelope (lint rule ``KRN001``).

    Returns
    -------
    (ids, di_dvg, di_dvd, di_dvs):
        The drain-to-source current and its partial derivatives with
        respect to the gate, drain and source voltages. Shapes follow
        NumPy broadcasting of the inputs against the parameter arrays.
    """
    return _ekv_core(vg, vd, vs, params, _interp_f)


def _ekv_core(
    vg: np.ndarray,
    vd: np.ndarray,
    vs: np.ndarray,
    params: MosfetParams,
    interp,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """EKV algebra parameterized over the interpolation-function kernel.

    ``interp(x) -> (F(x), F'(x))`` lets accelerated backends substitute
    a faster (SIMD-friendly) softplus formulation while sharing every
    other operation — and its exact ordering — with the reference path.
    """
    vg = np.asarray(vg, dtype=float)
    vd = np.asarray(vd, dtype=float)
    vs = np.asarray(vs, dtype=float)
    phi_t = params.phi_t
    n = params.n_slope
    vds = vd - vs
    vt_eff = params.vt - params.dibl * vds
    vp = (vg - vt_eff) / n

    x_f = (vp - vs) / phi_t
    x_r = (vp - vd) / phi_t
    f_f, fp_f = interp(x_f)
    f_r, fp_r = interp(x_r)

    clm = 1.0 + params.lam * vds
    diff = f_f - f_r
    ids = params.ispec * diff * clm

    # dvp/dvg = 1/n; dvp/dvd = dibl/n; dvp/dvs = -dibl/n
    dxf_dvg = 1.0 / (n * phi_t)
    dxr_dvg = dxf_dvg
    dxf_dvd = (params.dibl / n) / phi_t
    dxf_dvs = (-params.dibl / n - 1.0) / phi_t
    dxr_dvd = (params.dibl / n - 1.0) / phi_t
    dxr_dvs = (-params.dibl / n) / phi_t

    di_dvg = params.ispec * clm * (fp_f * dxf_dvg - fp_r * dxr_dvg)
    di_dvd = params.ispec * (clm * (fp_f * dxf_dvd - fp_r * dxr_dvd) + params.lam * diff)
    di_dvs = params.ispec * (clm * (fp_f * dxf_dvs - fp_r * dxr_dvs) - params.lam * diff)
    return ids, di_dvg, di_dvd, di_dvs
