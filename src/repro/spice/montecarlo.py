"""Monte-Carlo transient driver.

:class:`MonteCarloEngine` is the reproduction's stand-in for "HSPICE with
10k MC samples": it draws process parameters, integrates one transition
of a device-level netlist for every sample at once, extends the time
window until the slowest samples settle, and measures per-sample delay
and output slew.

It serves three callers:

* **cell characterization** (:mod:`repro.cells.characterize`) — a cell
  arc driven by an ideal ramp into a capacitive load;
* **wire analysis** — a driver cell + RC tree + load cell, measuring the
  wire (root→leaf) delay with ``reference_node``;
* **golden path Monte-Carlo** (:mod:`repro.baselines.golden`) — stages
  chained with :class:`~repro.spice.netlist.SampledWaveformSource`
  waveforms and shared :class:`~repro.variation.sampling.GlobalDraws`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.perf import PerfCounters
from repro.spice.measure import (
    crossing_time,
    fraction_settled,
    measure_slew,
)
from repro.spice.netlist import (
    PiecewiseLinearSource,
    SampledWaveformSource,
    TransistorNetlist,
)
from repro.spice.transient import TransientResult, TransientSolver
from repro.units import PS
from repro.variation.parameters import Technology, VariationModel
from repro.variation.sampling import GlobalDraws, MonteCarloSampler, ParameterSample


@dataclass
class SimulationSetup:
    """Everything needed to simulate and measure one switching arc.

    Attributes
    ----------
    netlist:
        Device-level netlist. The input node must already be fixed to
        its stimulus (ramp / per-sample waveform), and any side inputs
        fixed to their static values.
    input_node / output_node:
        Nodes between which the 50 %→50 % delay is measured (unless
        ``reference_node`` overrides the "from" side).
    input_rising / output_rising:
        Transition directions at the measurement nodes.
    reference_node / reference_rising:
        When set, delay is measured from this node's 50 % crossing
        instead of the input's — used for wire (root→leaf) delay where
        the launch point is the driver cell's output.
    initial_voltages:
        Pre-settle initial guesses for unknown nodes (defaults to 0 V
        for unlisted nodes; the DC settle fixes the rest).
    wire_variation:
        Apply per-sample R/C scaling to wire resistors and explicit
        capacitors (ignored if the netlist has none).
    record_extra:
        Additional node names to record (for debugging or chaining).
    input_end_hint:
        Latest time at which the stimulus is still moving. Required only
        for generic callables; PWL and sampled-waveform sources report
        it themselves.
    """

    netlist: TransistorNetlist
    input_node: str
    output_node: str
    input_rising: bool
    output_rising: bool
    reference_node: Optional[str] = None
    reference_rising: Optional[bool] = None
    initial_voltages: Dict[str, float] = field(default_factory=dict)
    wire_variation: bool = True
    record_extra: Tuple[str, ...] = ()
    input_end_hint: Optional[float] = None


@dataclass
class DelaySamples:
    """Per-sample measurement results of one arc.

    Attributes
    ----------
    delay:
        ``(n_samples,)`` 50–50 delays in seconds (NaN = not measurable).
    output_slew:
        ``(n_samples,)`` 20–80 output transition times in seconds.
    t_launch / t_capture:
        Absolute 50 % crossing times at the "from" and output nodes.
    result:
        The recorded waveforms (None when dropped to save memory).
    """

    delay: np.ndarray
    output_slew: np.ndarray
    t_launch: np.ndarray
    t_capture: np.ndarray
    result: Optional[TransientResult] = None

    @property
    def valid(self) -> np.ndarray:
        """Boolean mask of samples with finite delay *and* finite slew.

        Invariant: a sample is valid iff both measurements are finite —
        NaN (unsettled / never crossed) and ±inf are rejected alike,
        via :func:`numpy.isfinite`. :meth:`finite` and
        :attr:`yield_fraction` are defined on this same mask, so
        ``finite().delay.size == round(yield_fraction * delay.size)``
        holds for every batch regardless of which kernel backend
        produced the measurements.
        """
        return np.isfinite(self.delay) & np.isfinite(self.output_slew)

    @property
    def yield_fraction(self) -> float:
        """Fraction of samples successfully measured (see :attr:`valid`).

        An empty batch yields 1.0 (vacuously: no sample failed) rather
        than propagating the NaN of an empty mean.
        """
        if self.delay.size == 0:
            return 1.0
        return float(np.mean(self.valid))

    def finite(self) -> "DelaySamples":
        """Return a copy restricted to valid samples (see :attr:`valid`)."""
        m = self.valid
        return DelaySamples(
            delay=self.delay[m],
            output_slew=self.output_slew[m],
            t_launch=self.t_launch[m],
            t_capture=self.t_capture[m],
            result=None,
        )


class MonteCarloEngine:
    """Batched Monte-Carlo transient simulation of switching arcs.

    Parameters
    ----------
    tech / variation:
        Process description.
    seed:
        Seed for the parameter sampler (deterministic experiments).
    steps_per_window:
        Time steps per simulation window; the window auto-extends (at
        constant step size) until the slowest samples settle.
    max_windows:
        Upper bound on window extensions before giving up (unsettled
        samples then report NaN).
    settle_fraction:
        Required fraction of samples settled to 95 % of the swing before
        measurement.
    masked:
        Use the convergence-masked Newton kernel (default; see
        :class:`~repro.spice.transient.TransientSolver`).
    kernel:
        Kernel backend *name* (``"numpy"``, ``"fused"``, ``"cnative"``,
        ``"numba"``, ``"auto"``) for the solver hot path; ``None``
        defers to the ``REPRO_KERNEL`` environment variable. Stored as
        a name (not an instance) so it travels in
        :meth:`fidelity_opts` to worker processes and cache keys.

    Attributes
    ----------
    perf:
        :class:`~repro.perf.PerfCounters` accumulated over every
        simulation this engine runs (solver work + wall time).
    """

    def __init__(
        self,
        tech: Technology,
        variation: VariationModel,
        seed: int = 0,
        steps_per_window: int = 160,
        max_windows: int = 10,
        settle_fraction: float = 0.995,
        masked: bool = True,
        kernel: Optional[str] = None,
    ):
        self.tech = tech
        self.variation = variation
        self.seed = seed
        self.sampler = MonteCarloSampler(variation, seed=seed)
        self.steps_per_window = steps_per_window
        self.max_windows = max_windows
        self.settle_fraction = settle_fraction
        self.masked = masked
        self.kernel = kernel
        self._kernel_backend = None  # resolved lazily (may compile)
        self.perf = PerfCounters()

    def kernel_backend(self):
        """The resolved :class:`~repro.kernels.base.KernelBackend`."""
        if self._kernel_backend is None:
            from repro.kernels import select_backend

            self._kernel_backend = select_backend(self.kernel)
        return self._kernel_backend

    def fidelity_opts(self) -> Dict[str, object]:
        """Engine knobs (minus seed) for building an equivalent engine elsewhere.

        Worker processes use this to reconstruct the engine configuration
        when fanning characterization points out over a pool.
        """
        return {
            "steps_per_window": self.steps_per_window,
            "max_windows": self.max_windows,
            "settle_fraction": self.settle_fraction,
            "masked": self.masked,
            "kernel": self.kernel,
        }

    # ------------------------------------------------------------------
    def _input_end(self, setup: SimulationSetup, t_begin: float) -> float:
        source = setup.netlist._fixed.get(setup.input_node)
        if source is None:
            raise SimulationError(
                f"input node {setup.input_node!r} is not fixed to a stimulus"
            )
        if isinstance(source, SampledWaveformSource):
            # Use the true activity span, not the recorded span — chained
            # waveforms carry long settled heads/tails.
            return source.activity_interval()[1]
        if isinstance(source, PiecewiseLinearSource):
            return float(source.times[-1])
        if setup.input_end_hint is None:
            raise SimulationError(
                "input_end_hint required for generic callable stimuli"
            )
        return setup.input_end_hint

    def simulate(
        self,
        setup: SimulationSetup,
        n_samples: int,
        sample: Optional[ParameterSample] = None,
        globals_: Optional[GlobalDraws] = None,
        t_begin: float = 0.0,
        keep_waveforms: bool = False,
    ) -> DelaySamples:
        """Simulate one arc for ``n_samples`` Monte-Carlo samples.

        Parameters
        ----------
        sample:
            Pre-drawn device parameters (otherwise drawn internally from
            this engine's sampler, using ``globals_`` if given).
        globals_:
            Shared die-to-die draws — pass the same object for every
            stage of a path to correlate global variation.
        t_begin:
            Start time of the window (stimuli are absolute-time).
        keep_waveforms:
            Retain the recorded waveforms on the returned object (needed
            for stage chaining; memory-heavy for large batches).
        """
        t_sim0 = time.perf_counter()
        netlist = setup.netlist
        compiled = netlist.compile(self.tech)
        if globals_ is None:
            globals_ = self.sampler.draw_globals(n_samples)
        if sample is None:
            if netlist.mosfets:
                sigmas, is_pmos = netlist.mismatch_sigmas(self.variation, self.tech)
                sample = self.sampler.sample(sigmas, is_pmos, n_samples, globals_)
            else:
                sample = ParameterSample.nominal(n_samples, 0)

        r_scale = c_scale = None
        if setup.wire_variation:
            if compiled.res_stamps:
                r_scale, _ = self.sampler.sample_wire_scales(
                    len(compiled.res_stamps), n_samples, globals_
                )
            if compiled.explicit_caps:
                _, c_scale = self.sampler.sample_wire_scales(
                    len(compiled.explicit_caps), n_samples, globals_
                )

        dev_cap_scale = None
        if netlist.mosfets and self.tech.cap_vth_sensitivity != 0.0:
            vt_ref = 0.5 * (self.tech.vt0_n + self.tech.vt0_p)
            dev_cap_scale = sample.cap_scale(self.tech.cap_vth_sensitivity, vt_ref)

        solver = TransientSolver(
            compiled,
            sample,
            r_scale=r_scale,
            c_scale=c_scale,
            dev_cap_scale=dev_cap_scale,
            masked=self.masked,
            perf=self.perf,
            kernel=self.kernel_backend(),
        )

        v0 = np.zeros((n_samples, compiled.n_unknown))
        for node, value in setup.initial_voltages.items():
            if node in compiled.node_index:
                v0[:, compiled.node_index[node]] = value
        v0 = solver.dc_settle(v0, t=t_begin)

        record = {setup.input_node, setup.output_node, *setup.record_extra}
        if setup.reference_node:
            record.add(setup.reference_node)
        record = sorted(record)

        t_input_end = self._input_end(setup, t_begin)
        stimulus_span = max(t_input_end - t_begin, 1.0 * PS)
        window = stimulus_span + max(60.0 * PS, 0.75 * stimulus_span)
        result = solver.run(v0, t_begin, t_begin + window, self.steps_per_window, record)
        for _ in range(self.max_windows - 1):
            out_wave = result.voltage_tm(setup.output_node)
            if (
                fraction_settled(
                    out_wave, self.tech.vdd, setup.output_rising, time_major=True
                )
                >= self.settle_fraction
            ):
                break
            t0 = result.times[-1]
            more = solver.run(
                result.final_state, t0, t0 + window, self.steps_per_window, record
            )
            # Drop the duplicated first point of the continuation (a view
            # in the time-major layout — no copy).
            more.times = more.times[1:]
            more.waveforms_t = {k: v[1:] for k, v in more.waveforms_t.items()}
            result = result.extended_with(more)

        self.perf.incr(simulations=1)
        self.perf.add_wall("simulate", time.perf_counter() - t_sim0)
        return self._measure(setup, result, keep_waveforms)

    # ------------------------------------------------------------------
    def _measure(
        self, setup: SimulationSetup, result: TransientResult, keep_waveforms: bool
    ) -> DelaySamples:
        vdd = self.tech.vdd
        from_node = setup.reference_node or setup.input_node
        from_rising = (
            setup.reference_rising
            if setup.reference_rising is not None
            else setup.input_rising
        )
        t_launch = crossing_time(
            result.times,
            result.voltage_tm(from_node),
            0.5 * vdd,
            from_rising,
            time_major=True,
        )
        t_capture = crossing_time(
            result.times,
            result.voltage_tm(setup.output_node),
            0.5 * vdd,
            setup.output_rising,
            time_major=True,
        )
        slew = measure_slew(
            result.times,
            result.voltage_tm(setup.output_node),
            vdd,
            setup.output_rising,
            time_major=True,
        )
        n = result.voltage_tm(setup.output_node).shape[1]
        t_launch = np.broadcast_to(t_launch, (n,)).copy()
        return DelaySamples(
            delay=t_capture - t_launch,
            output_slew=slew,
            t_launch=t_launch,
            t_capture=t_capture,
            result=result if keep_waveforms else None,
        )
