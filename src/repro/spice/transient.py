"""Batched backward-Euler transient solver.

The solver integrates the nodal equations

    C dv/dt + i_lin(v, t) + i_dev(v, t) = 0

for *all Monte-Carlo samples simultaneously*: the state is a
``(n_samples, n_nodes)`` array and each Newton iteration performs one
:func:`numpy.linalg.solve` on a ``(n_samples, n, n)`` stack of
Jacobians. For the small node counts of a cell + RC tree (< ~30) this is
orders of magnitude faster than looping SPICE decks, while remaining a
genuine nonlinear transient simulation of every sample.

Backward Euler is used rather than trapezoidal integration: it is
L-stable (no numerical ringing on stiff RC stages) and its first-order
error cancels almost perfectly in *delay differences* measured at fixed
step counts; tests in ``tests/spice`` check step-halving convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.spice.netlist import CompiledCircuit
from repro.variation.sampling import ParameterSample


@dataclass
class TransientResult:
    """Recorded waveforms of a transient run.

    Attributes
    ----------
    times:
        ``(n_points,)`` sample instants (seconds).
    waveforms:
        Node name → ``(n_samples, n_points)`` voltage array. Fixed nodes
        are recorded broadcast across samples.
    final_state:
        ``(n_samples, n_unknown)`` state at ``times[-1]`` — pass back to
        :meth:`TransientSolver.run` to continue the simulation.
    """

    times: np.ndarray
    waveforms: Dict[str, np.ndarray]
    final_state: np.ndarray

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node`` as ``(n_samples, n_points)``."""
        return self.waveforms[node]

    def extended_with(self, other: "TransientResult") -> "TransientResult":
        """Concatenate a follow-on run (its first point must continue this one)."""
        times = np.concatenate([self.times, other.times])
        waves = {
            k: np.concatenate([self.waveforms[k], other.waveforms[k]], axis=1)
            for k in self.waveforms
        }
        return TransientResult(times=times, waveforms=waves, final_state=other.final_state)


class TransientSolver:
    """Newton/backward-Euler integrator bound to one Monte-Carlo batch.

    Parameters
    ----------
    compiled:
        Circuit from :meth:`repro.spice.netlist.TransistorNetlist.compile`.
    sample:
        Per-transistor parameter batch (its transistor order must match
        the netlist's device order).
    r_scale / c_scale:
        Optional per-sample multiplicative scales for wire resistors and
        explicit capacitors (see :meth:`CompiledCircuit.build_linear`).
    max_newton:
        Maximum Newton iterations per time step.
    dv_tol:
        Convergence threshold on the Newton update (volts).
    damp:
        Per-iteration clamp on the Newton update magnitude (volts);
        prevents overshoot through the exponential device regions.
    """

    def __init__(
        self,
        compiled: CompiledCircuit,
        sample: ParameterSample,
        r_scale: Optional[np.ndarray] = None,
        c_scale: Optional[np.ndarray] = None,
        dev_cap_scale: Optional[np.ndarray] = None,
        max_newton: int = 12,
        dv_tol: float = 1e-5,
        damp: float = 0.3,
    ):
        self.compiled = compiled
        self.sample = sample
        self.params = compiled.bind_sample(sample)
        self.n_samples = sample.n_samples
        self.n = compiled.n_unknown
        self.max_newton = max_newton
        self.dv_tol = dv_tol
        self.damp = damp
        self._gmat, self._known_pulls, self._cvec = compiled.build_linear(
            r_scale, c_scale, dev_cap_scale
        )

    # ------------------------------------------------------------------
    def _linear_currents(self, v: np.ndarray, t: float) -> np.ndarray:
        if self._gmat.ndim == 2:
            out = v @ self._gmat.T
        else:
            out = np.einsum("snm,sm->sn", self._gmat, v)
        for i, g, node in self._known_pulls:
            out[:, i] -= g * self.compiled.known_voltage(node, t)
        return out

    def _step(self, v_prev: np.ndarray, t_new: float, dt: float) -> np.ndarray:
        """One backward-Euler step from ``v_prev`` to time ``t_new``."""
        c_over_dt = self._cvec / dt  # (n,) or (S, n)
        v = v_prev.copy()
        jac = np.empty((self.n_samples, self.n, self.n))
        for _ in range(self.max_newton):
            jac[:] = self._gmat  # broadcasts (n,n) or copies (S,n,n)
            dev = self.compiled.device_currents(v, t_new, self.params, jac=jac)
            resid = (v - v_prev) * c_over_dt + self._linear_currents(v, t_new) + dev
            idx = np.arange(self.n)
            jac[:, idx, idx] += c_over_dt
            try:
                delta = np.linalg.solve(jac, -resid[..., None])[..., 0]
            except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
                raise SimulationError(f"singular Jacobian at t={t_new:g}") from exc
            np.clip(delta, -self.damp, self.damp, out=delta)
            v += delta
            if not np.all(np.isfinite(v)):
                raise SimulationError(f"non-finite state at t={t_new:g}")
            if np.max(np.abs(delta)) < self.dv_tol:
                break
        return v

    # ------------------------------------------------------------------
    def dc_settle(
        self,
        v0: np.ndarray,
        t: float = 0.0,
        steps: int = 60,
        dt: float = 1e-9,
    ) -> np.ndarray:
        """Pseudo-transient DC solve: relax ``v0`` toward the operating point.

        Runs ``steps`` large backward-Euler steps with sources frozen at
        time ``t``. Robust where a plain Newton DC solve would need
        source stepping, at negligible cost.
        """
        v = np.array(v0, dtype=float, copy=True)
        for _ in range(steps):
            v_new = self._step(v, t, dt)
            if np.max(np.abs(v_new - v)) < self.dv_tol:
                return v_new
            v = v_new
        return v

    def run(
        self,
        v0: np.ndarray,
        t_start: float,
        t_stop: float,
        n_steps: int,
        record: Sequence[str],
    ) -> TransientResult:
        """Integrate from ``t_start`` to ``t_stop`` in ``n_steps`` uniform steps.

        Parameters
        ----------
        v0:
            Initial state, shape ``(n_samples, n_unknown)`` (e.g. the
            result of :meth:`dc_settle`).
        record:
            Node names to store waveforms for; both solved and fixed
            nodes are accepted.

        Returns
        -------
        TransientResult
            Waveforms sampled at the step boundaries, including
            ``t_start`` itself (so ``n_steps + 1`` points).
        """
        if n_steps < 1:
            raise SimulationError("n_steps must be >= 1")
        if t_stop <= t_start:
            raise SimulationError("t_stop must be after t_start")
        v = np.array(v0, dtype=float, copy=True)
        if v.shape != (self.n_samples, self.n):
            raise SimulationError(
                f"v0 shape {v.shape} != ({self.n_samples}, {self.n})"
            )
        dt = (t_stop - t_start) / n_steps
        times = t_start + dt * np.arange(n_steps + 1)
        waves = {name: np.empty((self.n_samples, n_steps + 1)) for name in record}
        self._record_into(waves, 0, v, t_start)
        for k in range(1, n_steps + 1):
            v = self._step(v, times[k], dt)
            self._record_into(waves, k, v, times[k])
        return TransientResult(times=times, waveforms=waves, final_state=v)

    def _record_into(
        self, waves: Dict[str, np.ndarray], k: int, v: np.ndarray, t: float
    ) -> None:
        for name, arr in waves.items():
            if name in self.compiled.node_index:
                arr[:, k] = v[:, self.compiled.node_index[name]]
            else:
                arr[:, k] = self.compiled.known_voltage(name, t)
