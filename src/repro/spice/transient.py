"""Batched backward-Euler transient solver.

The solver integrates the nodal equations

    C dv/dt + i_lin(v, t) + i_dev(v, t) = 0

for *all Monte-Carlo samples simultaneously*: the state is a
``(n_samples, n_nodes)`` array and each Newton iteration performs one
:func:`numpy.linalg.solve` on a ``(n_samples, n, n)`` stack of
Jacobians. For the small node counts of a cell + RC tree (< ~30) this is
orders of magnitude faster than looping SPICE decks, while remaining a
genuine nonlinear transient simulation of every sample.

Backward Euler is used rather than trapezoidal integration: it is
L-stable (no numerical ringing on stiff RC stages) and its first-order
error cancels almost perfectly in *delay differences* measured at fixed
step counts; tests in ``tests/spice`` check step-halving convergence.

Kernel optimizations (all opt-out via ``masked=False`` for reference
comparisons, all within Newton-tolerance of the reference):

* **convergence masking** — after the first couple of Newton iterations
  most Monte-Carlo samples have converged; subsequent iterations
  re-linearize and solve only the still-active subset (samples are
  independent, so freezing converged rows is exact);
* **buffer reuse** — the ``(n_samples, n, n)`` Jacobian stack is
  allocated once per solver and reused across every time step;
* **Newton prediction** — each step starts from a quadratic
  extrapolation of the trailing states instead of the previous state;
  the predictor only moves the starting iterate (the converged fixed
  point is unchanged) but collapses most samples on smooth waveform
  segments to a single solve-and-confirm iteration;
* **small-system adjugate solve** — ``n <= 3`` Jacobian stacks are
  inverted with an elementwise Cramer expansion over the sample axis,
  several times faster than the batched LAPACK dispatch at cell-circuit
  sizes;
* **linear fast path** — circuits without nonlinear devices and with a
  sample-independent conductance matrix (2-D ``_gmat``, 1-D ``_cvec``)
  factorize one ``(n, n)`` system per step size and back-substitute all
  samples at once instead of solving an ``(n_samples, n, n)`` stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.kernels.base import KernelBackend
from repro.perf import PerfCounters
from repro.spice.netlist import CompiledCircuit
from repro.units import NS
from repro.variation.sampling import ParameterSample


@dataclass
class TransientResult:
    """Recorded waveforms of a transient run.

    Waveforms are stored **time-major** — ``(n_points, n_samples)`` — the
    layout the solver records in (one contiguous row per step) and the
    layout window concatenation and threshold measurement consume
    directly. The historical sample-major ``(n_samples, n_points)`` view
    is materialised lazily (and cached per node) the first time
    :meth:`voltage` or :attr:`waveforms` is touched, so callers that
    only measure crossings never pay the transpose.

    Attributes
    ----------
    times:
        ``(n_points,)`` sample instants (seconds).
    waveforms_t:
        Node name → ``(n_points, n_samples)`` time-major voltage array.
        Fixed nodes are recorded broadcast across samples.
    final_state:
        ``(n_samples, n_unknown)`` state at ``times[-1]`` — pass back to
        :meth:`TransientSolver.run` to continue the simulation.
    """

    times: np.ndarray
    waveforms_t: Dict[str, np.ndarray]
    final_state: np.ndarray

    @property
    def waveforms(self) -> Dict[str, np.ndarray]:
        """Node name → ``(n_samples, n_points)`` sample-major waveforms."""
        return {name: self.voltage(name) for name in self.waveforms_t}

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of ``node`` as ``(n_samples, n_points)`` (cached)."""
        cache = self.__dict__.setdefault("_sample_major", {})
        if node not in cache:
            cache[node] = _to_sample_major(self.waveforms_t[node])
        return cache[node]

    def voltage_tm(self, node: str) -> np.ndarray:
        """Waveform of ``node`` in native time-major ``(n_points, n_samples)``."""
        return self.waveforms_t[node]

    def extended_with(self, other: "TransientResult") -> "TransientResult":
        """Concatenate a follow-on run (its first point must continue this one)."""
        times = np.concatenate([self.times, other.times])
        waves_t = {
            k: np.concatenate([self.waveforms_t[k], other.waveforms_t[k]], axis=0)
            for k in self.waveforms_t
        }
        return TransientResult(
            times=times, waveforms_t=waves_t, final_state=other.final_state
        )


def _to_sample_major(buf: np.ndarray) -> np.ndarray:
    """Transpose a time-major ``(n_points, n_samples)`` recording buffer
    into the ``(n_samples, n_points)`` result layout.

    Copied in 32-column blocks: a plain ``ascontiguousarray(buf.T)``
    walks one long-strided axis elementwise and is ~3x slower at
    Monte-Carlo batch sizes, while blocks keep both source rows and
    destination columns inside the cache.
    """
    n_points, n_samples = buf.shape
    out = np.empty((n_samples, n_points))
    for k0 in range(0, n_points, 32):
        block = buf[k0:k0 + 32]
        out[:, k0:k0 + block.shape[0]] = block.T
    return out


class TransientSolver:
    """Newton/backward-Euler integrator bound to one Monte-Carlo batch.

    Parameters
    ----------
    compiled:
        Circuit from :meth:`repro.spice.netlist.TransistorNetlist.compile`.
    sample:
        Per-transistor parameter batch (its transistor order must match
        the netlist's device order).
    r_scale / c_scale:
        Optional per-sample multiplicative scales for wire resistors and
        explicit capacitors (see :meth:`CompiledCircuit.build_linear`).
    max_newton:
        Maximum Newton iterations per time step.
    dv_tol:
        Convergence threshold on the Newton update (volts).
    damp:
        Per-iteration clamp on the Newton update magnitude (volts);
        prevents overshoot through the exponential device regions.
    masked:
        Enable per-sample convergence masking (default). ``False``
        selects the reference kernel that iterates every sample until
        the whole batch converges — kept for numerical A/B tests.
    perf:
        Optional :class:`~repro.perf.PerfCounters` accumulating Newton
        iterations, linear solves and active-sample statistics.
    kernel:
        Optional :class:`~repro.kernels.base.KernelBackend` supplying
        the hot-path primitives (device eval, stacked Newton solve,
        update/compact, shared factorization). ``None`` resolves via
        :func:`repro.kernels.select_backend` (the ``REPRO_KERNEL``
        environment variable; ``numpy`` reference by default).
    """

    def __init__(
        self,
        compiled: CompiledCircuit,
        sample: ParameterSample,
        r_scale: Optional[np.ndarray] = None,
        c_scale: Optional[np.ndarray] = None,
        dev_cap_scale: Optional[np.ndarray] = None,
        max_newton: int = 12,
        dv_tol: float = 1e-5,
        damp: float = 0.3,
        masked: bool = True,
        perf: Optional[PerfCounters] = None,
        kernel: Optional[KernelBackend] = None,
    ):
        if kernel is None:
            from repro.kernels import select_backend

            kernel = select_backend()
        self.kernel = kernel
        self.compiled = compiled
        self.sample = sample
        self.params = compiled.bind_sample(sample)
        self.n_samples = sample.n_samples
        self.n = compiled.n_unknown
        self.max_newton = max_newton
        self.dv_tol = dv_tol
        self.damp = damp
        self.masked = masked
        self.perf = perf
        self._gmat, self._known_pulls, self._cvec = compiled.build_linear(
            r_scale, c_scale, dev_cap_scale
        )
        # Pre-allocated Jacobian stack, reused by every Newton iteration
        # of every time step (the reference kernel used to allocate one
        # (S, n, n) array per step).
        self._jac_buf = np.empty((self.n_samples, self.n, self.n))
        self._diag_idx = np.arange(self.n)
        # Fast path: no nonlinear devices and sample-independent linear
        # stamps -> the step matrix is one (n, n) system shared by all
        # samples; factorize it once per step size.
        self._fast_linear = (
            not compiled.netlist.mosfets
            and self._gmat.ndim == 2
            and self._cvec.ndim == 1
        )
        self._fast_factors: Dict[float, object] = {}
        names = [""] * self.n
        for name, i in compiled.node_index.items():
            names[i] = name
        self._node_names = names

    # ------------------------------------------------------------------
    def _linear_currents(
        self, v: np.ndarray, t: float, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Linear (resistor) currents for the given state rows.

        ``rows`` restricts per-sample stamps and per-sample fixed-node
        sources to a subset of Monte-Carlo samples (``v`` already covers
        only those rows).
        """
        if self._gmat.ndim == 2:
            out = v @ self._gmat.T
        else:
            gmat = self._gmat if rows is None else self._gmat[rows]
            out = np.einsum("snm,sm->sn", gmat, v)
        for i, g, node in self._known_pulls:
            if rows is not None and np.ndim(g):
                g = g[rows]
            known = self.compiled.known_voltage(node, t)
            if rows is not None and isinstance(known, np.ndarray) and known.ndim:
                known = known[rows]
            out[:, i] -= g * known
        return out

    # ------------------------------------------------------------------
    # Error diagnostics
    # ------------------------------------------------------------------
    def _nonfinite_message(self, v: np.ndarray, t_new: float) -> str:
        bad = np.argwhere(~np.isfinite(v))
        nodes = sorted({self._node_names[j] for _, j in bad[:16]})
        n_bad = len({int(s) for s, _ in bad})
        return (
            f"non-finite state at t={t_new:g} on node(s) {', '.join(nodes)} "
            f"({n_bad}/{self.n_samples} samples affected)"
        )

    def _singular_message(self, jac: np.ndarray, t_new: float) -> str:
        # Identify near-zero pivot rows so the message names the culprit
        # nodes instead of just the time point (error path only).
        if jac.ndim == 2:
            jac = jac[None]
        row_mag = np.max(np.abs(jac), axis=2)  # (S, n)
        scale = max(float(np.max(row_mag)), 1.0)
        bad_rows = np.argwhere(row_mag < 1e-12 * scale)  # repro-lint: disable=UNIT001 (relative tol)
        nodes = sorted({self._node_names[j] for _, j in bad_rows[:16]})
        detail = f" on node(s) {', '.join(nodes)}" if nodes else ""
        return f"singular Jacobian at t={t_new:g}{detail}"

    # ------------------------------------------------------------------
    # Step kernels
    # ------------------------------------------------------------------
    def _solve_stack(
        self, jac: np.ndarray, resid: np.ndarray, t_new: float
    ) -> np.ndarray:
        """Newton update ``-J^{-1} r`` for a ``(S, n, n)`` Jacobian stack.

        Delegates to the active kernel backend (adjugate expansion for
        ``n <= 3``, batched LAPACK above — see
        :mod:`repro.kernels.numpy_backend` for the reference
        implementation). Exactly singular systems raise
        :class:`SimulationError` naming the offending nodes.
        """
        try:
            return self.kernel.solve_stack(jac, resid)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(self._singular_message(jac, t_new)) from exc

    def _step(
        self,
        v_prev: np.ndarray,
        t_new: float,
        dt: float,
        v_guess: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One backward-Euler step from ``v_prev`` to time ``t_new``.

        ``v_guess`` is an optional predicted state used by the masked
        kernel as the Newton starting point; the reference kernel
        ignores it (it always starts from ``v_prev``, like the
        pre-optimization solver).
        """
        if self._fast_linear:
            return self._step_fast(v_prev, t_new, dt)
        if self.masked:
            return self._step_masked(v_prev, t_new, dt, v_guess)
        return self._step_reference(v_prev, t_new, dt)

    def _fast_factorization(self, dt: float, c_over_dt: np.ndarray):
        """Per-``dt`` cached factorization of the linear step matrix."""
        key = float(dt)
        factor = self._fast_factors.get(key)
        if factor is None:
            a = self._gmat + np.diag(c_over_dt)
            factor = self.kernel.fast_factorization(a)
            self._fast_factors[key] = factor
        return factor

    def _fast_solve(self, factor, rhs: np.ndarray) -> np.ndarray:
        """Solve the shared (n, n) system against an (S, n) right-hand side."""
        return self.kernel.fast_solve(factor, rhs)

    def _step_fast(self, v_prev: np.ndarray, t_new: float, dt: float) -> np.ndarray:
        """Linear-circuit step: one shared factorization, all samples at once."""
        c_over_dt = self._cvec / dt
        factor = self._fast_factorization(dt, c_over_dt)
        v = v_prev.copy()
        for _ in range(self.max_newton):
            resid = (v - v_prev) * c_over_dt + self._linear_currents(v, t_new)
            delta = self._fast_solve(factor, -resid)
            np.clip(delta, -self.damp, self.damp, out=delta)
            v += delta
            if self.perf is not None:
                self.perf.incr(
                    newton_iterations=1,
                    linear_solves=1,
                    fast_solves=1,
                    sample_solves=self.n_samples,
                    full_sample_solves=self.n_samples,
                )
                self.perf.add_kernel_op(
                    self.kernel.name, "fast_solve", self.n_samples
                )
            if not np.all(np.isfinite(v)):
                raise SimulationError(self._nonfinite_message(v, t_new))
            if np.max(np.abs(delta)) < self.dv_tol:
                break
        return v

    def _step_masked(
        self,
        v_prev: np.ndarray,
        t_new: float,
        dt: float,
        v_guess: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Newton step that re-solves only the still-unconverged samples.

        Monte-Carlo samples are independent (the Jacobian is block
        diagonal across samples), so freezing a converged sample's state
        while others keep iterating is exact — not an approximation.

        When ``v_guess`` is given (:meth:`run` extrapolates it from the
        trailing states) the iteration starts there instead of at
        ``v_prev``, with the jump clamped to ``damp`` like any Newton
        update: on smooth waveform segments the prediction already sits
        within tolerance of the backward-Euler solution, so most samples
        converge in a single iteration instead of solve-then-confirm.
        The converged result is the same Newton fixed point either way.

        The loop body lives in
        :meth:`repro.kernels.base.KernelBackend.step_masked` so
        accelerated backends can swap the inner primitives (or override
        the whole step) without touching solver logic.
        """
        return self.kernel.step_masked(self, v_prev, t_new, dt, v_guess)

    def _step_reference(self, v_prev: np.ndarray, t_new: float, dt: float) -> np.ndarray:
        """Reference kernel: every sample iterates until the batch converges.

        Numerically this is the original (pre-masking) solver; it shares
        the pre-allocated Jacobian buffer but none of the masking logic,
        so A/B tests can bound the masking error directly.
        """
        c_over_dt = self._cvec / dt  # (n,) or (S, n)
        v = v_prev.copy()
        jac = self._jac_buf
        for _ in range(self.max_newton):
            jac[:] = self._gmat  # broadcasts (n,n) or copies (S,n,n)
            dev = self.compiled.device_currents(v, t_new, self.params, jac=jac)
            resid = (v - v_prev) * c_over_dt + self._linear_currents(v, t_new) + dev
            jac[:, self._diag_idx, self._diag_idx] += c_over_dt
            try:
                delta = np.linalg.solve(jac, -resid[..., None])[..., 0]
            except np.linalg.LinAlgError as exc:
                raise SimulationError(self._singular_message(jac, t_new)) from exc
            np.clip(delta, -self.damp, self.damp, out=delta)
            v += delta
            if self.perf is not None:
                self.perf.incr(
                    newton_iterations=1,
                    linear_solves=1,
                    sample_solves=self.n_samples,
                    full_sample_solves=self.n_samples,
                )
            if not np.all(np.isfinite(v)):
                raise SimulationError(self._nonfinite_message(v, t_new))
            if np.max(np.abs(delta)) < self.dv_tol:
                break
        return v

    # ------------------------------------------------------------------
    def dc_settle(
        self,
        v0: np.ndarray,
        t: float = 0.0,
        steps: int = 60,
        dt: float = NS,
    ) -> np.ndarray:
        """Pseudo-transient DC solve: relax ``v0`` toward the operating point.

        Runs up to ``steps`` large backward-Euler steps with sources
        frozen at time ``t``, exiting early once the state stops moving.
        Robust where a plain Newton DC solve would need source stepping,
        at negligible cost. Early exits and per-step costs are tracked
        in :attr:`perf` when counters are attached.
        """
        v = np.array(v0, dtype=float, copy=True)
        for _ in range(steps):
            v_new = self._step(v, t, dt)
            if self.perf is not None:
                self.perf.incr(dc_steps=1)
            if np.max(np.abs(v_new - v)) < self.dv_tol:
                if self.perf is not None:
                    self.perf.incr(dc_early_exits=1)
                return v_new
            v = v_new
        return v

    def run(
        self,
        v0: np.ndarray,
        t_start: float,
        t_stop: float,
        n_steps: int,
        record: Sequence[str],
    ) -> TransientResult:
        """Integrate from ``t_start`` to ``t_stop`` in ``n_steps`` uniform steps.

        Parameters
        ----------
        v0:
            Initial state, shape ``(n_samples, n_unknown)`` (e.g. the
            result of :meth:`dc_settle`).
        record:
            Node names to store waveforms for; both solved and fixed
            nodes are accepted.

        Returns
        -------
        TransientResult
            Waveforms sampled at the step boundaries, including
            ``t_start`` itself (so ``n_steps + 1`` points).
        """
        if n_steps < 1:
            raise SimulationError("n_steps must be >= 1")
        if t_stop <= t_start:
            raise SimulationError("t_stop must be after t_start")
        v = np.array(v0, dtype=float, copy=True)
        if v.shape != (self.n_samples, self.n):
            raise SimulationError(
                f"v0 shape {v.shape} != ({self.n_samples}, {self.n})"
            )
        dt = (t_stop - t_start) / n_steps
        times = t_start + dt * np.arange(n_steps + 1)
        # Recording buffers are time-major so each step writes one
        # contiguous row instead of a strided column scatter; the result
        # keeps that layout and transposes lazily only when asked.
        waves_t = {name: np.empty((n_steps + 1, self.n_samples)) for name in record}
        self._record_into(waves_t, 0, v, t_start)
        # Trailing states feed the masked kernel's Newton predictor:
        # quadratic extrapolation once two back-states exist, linear with
        # one, none on the first step. The predictor only moves the
        # starting iterate — convergence is still judged per update.
        v1: Optional[np.ndarray] = None  # state one step back
        v2: Optional[np.ndarray] = None  # state two steps back
        for k in range(1, n_steps + 1):
            if v2 is not None:
                guess = 3.0 * v - 3.0 * v1 + v2
            elif v1 is not None:
                guess = 2.0 * v - v1
            else:
                guess = None
            v_new = self._step(v, times[k], dt, v_guess=guess)
            v2 = v1
            v1 = v
            v = v_new
            self._record_into(waves_t, k, v, times[k])
        if self.perf is not None:
            self.perf.incr(steps=n_steps)
        return TransientResult(times=times, waveforms_t=waves_t, final_state=v)

    def _record_into(
        self, waves: Dict[str, np.ndarray], k: int, v: np.ndarray, t: float
    ) -> None:
        """Store the state into row ``k`` of the time-major buffers."""
        for name, arr in waves.items():
            if name in self.compiled.node_index:
                arr[k] = v[:, self.compiled.node_index[name]]
            else:
                arr[k] = self.compiled.known_voltage(name, t)
