"""Transistor-level netlist representation and compilation.

A :class:`TransistorNetlist` is the device-level view of a circuit:
MOSFETs, resistors, grounded capacitors, and *fixed* nodes whose voltage
is prescribed (supplies and driven inputs). :meth:`TransistorNetlist.compile`
lowers it to a :class:`CompiledCircuit` — index-based arrays ready for
the batched Newton solver in :mod:`repro.spice.transient`.

Formulation
-----------
Nodal analysis on the non-fixed ("unknown") nodes only. All voltage
sources are grounded and attached to fixed nodes, so no branch-current
unknowns are needed (no full MNA). Capacitors are node-to-ground, which
keeps the capacitance matrix constant and diagonal; this loses the
Miller gate-drain feedthrough but preserves every loading effect the
paper's models depend on (gate-cap load, junction self-load, RC wires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import NetlistError
from repro.spice.mosfet import MosfetParams, ekv_ids_and_derivatives
from repro.variation.parameters import Technology, VariationModel
from repro.variation.pelgrom import pelgrom_sigma_vth
from repro.variation.sampling import ParameterSample

#: Name of the implicit ground node (always fixed at 0 V).
GROUND = "gnd"


@dataclass
class Mosfet:
    """A single MOS device.

    Attributes
    ----------
    name:
        Unique device name within the netlist.
    polarity:
        ``"n"`` or ``"p"``.
    drain, gate, source:
        Node names. Bulk is implicit (gnd for NMOS, vdd for PMOS); the
        EKV evaluation is bulk-referenced via the polarity sign trick.
    width:
        Drawn width in meters.
    length:
        Drawn length in meters (defaults to technology minimum when the
        netlist is compiled if left at 0).
    """

    name: str
    polarity: str
    drain: str
    gate: str
    source: str
    width: float
    length: float = 0.0

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise NetlistError(f"mosfet {self.name}: polarity must be 'n' or 'p'")
        if self.width <= 0:
            raise NetlistError(f"mosfet {self.name}: width must be positive")

    @property
    def is_pmos(self) -> bool:
        """True for PMOS devices."""
        return self.polarity == "p"


@dataclass
class Resistor:
    """A two-terminal linear resistor."""

    name: str
    node_a: str
    node_b: str
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise NetlistError(f"resistor {self.name}: resistance must be positive")


@dataclass
class Capacitor:
    """A grounded linear capacitor attached to ``node``."""

    name: str
    node: str
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance < 0:
            raise NetlistError(f"capacitor {self.name}: capacitance must be non-negative")


class PiecewiseLinearSource:
    """A piecewise-linear voltage waveform for a fixed node.

    Before the first breakpoint the voltage holds at the first value;
    after the last breakpoint it holds at the last value.
    """

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        self.times = np.asarray(times, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.times.ndim != 1 or self.times.shape != self.values.shape:
            raise NetlistError("PWL source needs matching 1-D times and values")
        if self.times.size < 1:
            raise NetlistError("PWL source needs at least one breakpoint")
        if np.any(np.diff(self.times) < 0):
            raise NetlistError("PWL source times must be non-decreasing")

    def __call__(self, t: float) -> float:
        """Voltage at time ``t`` (scalar)."""
        return float(np.interp(t, self.times, self.values))

    @classmethod
    def constant(cls, value: float) -> "PiecewiseLinearSource":
        """A DC source at ``value`` volts."""
        return cls([0.0], [value])

    @classmethod
    def ramp(
        cls, v_start: float, v_end: float, t_start: float, ramp_time: float
    ) -> "PiecewiseLinearSource":
        """A linear transition from ``v_start`` to ``v_end`` starting at ``t_start``."""
        if ramp_time <= 0:
            raise NetlistError("ramp_time must be positive")
        return cls([t_start, t_start + ramp_time], [v_start, v_end])

    @classmethod
    def saturated_edge(
        cls, v_start: float, v_end: float, t_start: float, slew: float
    ) -> "PiecewiseLinearSource":
        """A cell-like edge: fast through mid-swing, slow saturating tail.

        Real near-threshold gate outputs cross the middle of the swing
        quickly and crawl through the last ~40 % as the driving device's
        overdrive collapses. Characterizing with plain linear ramps
        biases the delay LUTs; this two-slope edge (60 % of the swing at
        full slope, the rest at ~29 %) matches the requested 20–80 %
        ``slew`` while reproducing that tail.
        """
        if slew <= 0:
            raise NetlistError("slew must be positive")
        # With the knee at 60 % and the tail ending at 2 T, the 20–80 %
        # crossing interval is 1.1 T.
        t_unit = slew / 1.1
        dv = v_end - v_start
        return cls(
            [t_start, t_start + 0.6 * t_unit, t_start + 2.0 * t_unit],
            [v_start, v_start + 0.6 * dv, v_end],
        )


class SampledWaveformSource:
    """A fixed-node source with a *different* waveform per Monte-Carlo sample.

    Used to chain stage-by-stage path simulations: the recorded output
    waveforms of stage ``k`` (shape ``(n_samples, n_points)``) drive the
    input node of stage ``k+1`` while preserving each sample's own edge
    shape and timing. Evaluation at time ``t`` returns an
    ``(n_samples,)`` vector, which broadcasts through the solver.
    """

    def __init__(self, times: Sequence[float], waves: np.ndarray):
        self.times = np.asarray(times, dtype=float)
        self.waves = np.asarray(waves, dtype=float)
        if self.waves.ndim != 2 or self.waves.shape[1] != self.times.shape[0]:
            raise NetlistError(
                f"waves must be (n_samples, {self.times.shape[0]}), got {self.waves.shape}"
            )
        if np.any(np.diff(self.times) <= 0):
            raise NetlistError("waveform times must be strictly increasing")

    def __call__(self, t: float) -> np.ndarray:
        """Per-sample voltages at time ``t`` as an ``(n_samples,)`` array."""
        times = self.times
        if t <= times[0]:
            return self.waves[:, 0]
        if t >= times[-1]:
            return self.waves[:, -1]
        k = int(np.searchsorted(times, t) - 1)
        frac = (t - times[k]) / (times[k + 1] - times[k])
        return self.waves[:, k] * (1.0 - frac) + self.waves[:, k + 1] * frac

    def activity_interval(self, fraction: float = 0.02) -> "tuple[float, float]":
        """Time span over which any sample's waveform is still moving.

        Returns ``(t_start, t_end)``: the first instant any sample has
        left its initial value and the last instant any sample is still
        more than ``fraction`` of the overall swing away from its final
        value. Simulation windows should cover this interval rather than
        the (ever-growing) recorded span of a chained waveform.
        """
        swing = float(np.max(self.waves) - np.min(self.waves))
        if swing <= 0.0:
            return float(self.times[0]), float(self.times[0])
        tol = fraction * swing
        from_start = np.abs(self.waves - self.waves[:, :1]) > tol
        from_end = np.abs(self.waves - self.waves[:, -1:]) > tol
        started = from_start.any(axis=0)
        unfinished = from_end.any(axis=0)
        k_start = int(np.argmax(started)) if started.any() else 0
        k_end = (
            int(len(self.times) - 1 - np.argmax(unfinished[::-1]))
            if unfinished.any()
            else 0
        )
        k_start = max(0, k_start - 1)
        k_end = min(len(self.times) - 1, k_end + 1)
        return float(self.times[k_start]), float(self.times[k_end])


SourceLike = Union[float, PiecewiseLinearSource, Callable[[float], float]]


def _as_source(value: SourceLike) -> Callable[[float], float]:
    if isinstance(value, (int, float)):
        return PiecewiseLinearSource.constant(float(value))
    if callable(value):
        return value
    raise NetlistError(f"cannot interpret {value!r} as a voltage source")


class TransistorNetlist:
    """Mutable device-level netlist builder.

    Typical usage::

        net = TransistorNetlist()
        net.fix("vdd", 0.6)
        net.fix("in", PiecewiseLinearSource.ramp(0.0, 0.6, 1e-10, 2e-11))
        net.add_mosfet("mp", "p", drain="out", gate="in", source="vdd", width=2e-7)
        net.add_mosfet("mn", "n", drain="out", gate="in", source="gnd", width=1.2e-7)
        net.add_capacitor("cl", "out", 1e-15)
        compiled = net.compile(technology)

    The ground node ``"gnd"`` is always fixed at 0 V.
    """

    def __init__(self) -> None:
        self.mosfets: List[Mosfet] = []
        self.resistors: List[Resistor] = []
        self.capacitors: List[Capacitor] = []
        self._fixed: Dict[str, Callable[[float], float]] = {GROUND: _as_source(0.0)}
        self._names: set = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _register(self, name: str) -> None:
        if name in self._names:
            raise NetlistError(f"duplicate element name {name!r}")
        self._names.add(name)

    def fix(self, node: str, source: SourceLike) -> None:
        """Prescribe the voltage of ``node`` (supply rail or driven input)."""
        self._fixed[node] = _as_source(source)

    def add_mosfet(
        self,
        name: str,
        polarity: str,
        drain: str,
        gate: str,
        source: str,
        width: float,
        length: float = 0.0,
    ) -> Mosfet:
        """Add a MOSFET and return it."""
        self._register(name)
        device = Mosfet(name, polarity, drain, gate, source, width, length)
        self.mosfets.append(device)
        return device

    def add_resistor(self, name: str, node_a: str, node_b: str, resistance: float) -> Resistor:
        """Add a resistor and return it."""
        self._register(name)
        element = Resistor(name, node_a, node_b, resistance)
        self.resistors.append(element)
        return element

    def add_capacitor(self, name: str, node: str, capacitance: float) -> Capacitor:
        """Add a grounded capacitor and return it."""
        self._register(name)
        element = Capacitor(name, node, capacitance)
        self.capacitors.append(element)
        return element

    def nodes(self) -> List[str]:
        """All node names mentioned by any element (including fixed ones)."""
        seen: Dict[str, None] = {}
        for m in self.mosfets:
            for node in (m.drain, m.gate, m.source):
                seen.setdefault(node, None)
        for r in self.resistors:
            seen.setdefault(r.node_a, None)
            seen.setdefault(r.node_b, None)
        for c in self.capacitors:
            seen.setdefault(c.node, None)
        for node in self._fixed:
            seen.setdefault(node, None)
        return list(seen)

    # ------------------------------------------------------------------
    # Variation hookup
    # ------------------------------------------------------------------
    def mismatch_sigmas(
        self, variation: VariationModel, tech: Technology
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-transistor (sigma_vth_local, is_pmos) arrays for the MC sampler.

        Device order matches :attr:`mosfets`, which is also the column
        order expected of :class:`~repro.variation.sampling.ParameterSample`
        batches passed to the solver.
        """
        sigmas = np.array(
            [
                pelgrom_sigma_vth(variation.avt, m.width, m.length or tech.l_min)
                for m in self.mosfets
            ]
        )
        is_pmos = np.array([m.is_pmos for m in self.mosfets], dtype=bool)
        return sigmas, is_pmos

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, tech: Technology, add_device_caps: bool = True) -> "CompiledCircuit":
        """Lower to index-based arrays for the transient solver.

        Parameters
        ----------
        tech:
            Technology constants (supplies default channel length and the
            per-width parasitic capacitances).
        add_device_caps:
            When True (default), automatically add gate capacitance at
            each device's gate node and junction capacitance at drain and
            source nodes. Capacitance on fixed nodes is skipped (their
            voltage is prescribed, so it draws no solver current).
        """
        unknown = [n for n in self.nodes() if n not in self._fixed]
        index = {name: i for i, name in enumerate(unknown)}
        n = len(unknown)
        if n == 0:
            raise NetlistError("netlist has no unknown nodes to solve for")

        # Explicit capacitor stamps (scalable per-sample: wire variation)
        # are kept separate from device parasitics (not scaled).
        explicit_caps: List[Tuple[int, float]] = []
        for cap in self.capacitors:
            if cap.node in index:
                explicit_caps.append((index[cap.node], cap.capacitance))
        device_cdiag = np.zeros(n)
        device_cap_stamps: List[Tuple[int, int, float]] = []
        if add_device_caps:
            for j, m in enumerate(self.mosfets):
                for node, cap in (
                    (m.gate, tech.gate_cap(m.width)),
                    (m.drain, tech.drain_cap(m.width)),
                    (m.source, tech.drain_cap(m.width)),
                ):
                    if node in index:
                        device_cdiag[index[node]] += cap
                        device_cap_stamps.append((index[node], j, cap))
        cdiag = device_cdiag.copy()
        for i, c in explicit_caps:
            cdiag[i] += c
        # Every unknown node must carry some capacitance for the nodal
        # transient formulation to be well-posed; add a tiny floor.
        floor = 1e-18
        cdiag = np.maximum(cdiag, floor)

        # Resistor stamps, in netlist order so per-resistor scale arrays
        # line up: (ia, ib, fixed_node, g). ib == -1 means the second
        # terminal is the fixed node named `fixed_node`.
        res_stamps: List[Tuple[int, int, str, float]] = []
        g_const = np.zeros((n, n))
        g_known: List[Tuple[int, float, str]] = []
        for r in self.resistors:
            g = 1.0 / r.resistance
            a_u = r.node_a in index
            b_u = r.node_b in index
            if a_u and b_u:
                ia, ib = index[r.node_a], index[r.node_b]
                res_stamps.append((ia, ib, "", g))
                g_const[ia, ia] += g
                g_const[ib, ib] += g
                g_const[ia, ib] -= g
                g_const[ib, ia] -= g
            elif a_u:
                ia = index[r.node_a]
                res_stamps.append((ia, -1, r.node_b, g))
                g_const[ia, ia] += g
                g_known.append((ia, g, r.node_b))
            elif b_u:
                ib = index[r.node_b]
                res_stamps.append((ib, -1, r.node_a, g))
                g_const[ib, ib] += g
                g_known.append((ib, g, r.node_a))
            else:
                # resistor between two fixed nodes: no solver contribution,
                # but keep the slot so scale arrays stay aligned.
                res_stamps.append((-1, -1, "", g))

        terminals: List[Tuple[Tuple[int, ...], Tuple[str, ...]]] = []
        for m in self.mosfets:
            idx = []
            fixed = []
            for node in (m.drain, m.gate, m.source):
                if node in index:
                    idx.append(index[node])
                    fixed.append("")
                else:
                    if node not in self._fixed:  # pragma: no cover - defensive
                        raise NetlistError(f"node {node} is neither unknown nor fixed")
                    idx.append(-1)
                    fixed.append(node)
            terminals.append((tuple(idx), tuple(fixed)))

        return CompiledCircuit(
            netlist=self,
            tech=tech,
            node_index=index,
            cdiag=cdiag,
            g_const=g_const,
            g_known=g_known,
            device_terminals=terminals,
            fixed_sources=dict(self._fixed),
            res_stamps=res_stamps,
            explicit_caps=explicit_caps,
            device_cdiag=device_cdiag,
            device_cap_stamps=device_cap_stamps,
        )


@dataclass
class CompiledCircuit:
    """Index-based circuit ready for batched transient solving.

    Produced by :meth:`TransistorNetlist.compile`; consumed by
    :class:`repro.spice.transient.TransientSolver`. The per-sample device
    parameters are bound separately via :meth:`bind_sample` so one
    compilation serves many Monte-Carlo batches.
    """

    netlist: TransistorNetlist
    tech: Technology
    node_index: Dict[str, int]
    cdiag: np.ndarray
    g_const: np.ndarray
    g_known: List[Tuple[int, float, str]]
    device_terminals: List[Tuple[Tuple[int, ...], Tuple[str, ...]]]
    fixed_sources: Dict[str, Callable[[float], float]]
    res_stamps: List[Tuple[int, int, str, float]] = field(default_factory=list)
    explicit_caps: List[Tuple[int, float]] = field(default_factory=list)
    device_cdiag: np.ndarray = field(default_factory=lambda: np.zeros(0))
    device_cap_stamps: List[Tuple[int, int, float]] = field(default_factory=list)

    @property
    def n_unknown(self) -> int:
        """Number of solved nodes."""
        return len(self.node_index)

    def build_linear(
        self,
        r_scale: Optional[np.ndarray] = None,
        c_scale: Optional[np.ndarray] = None,
        dev_cap_scale: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, List[Tuple[int, np.ndarray, str]], np.ndarray]":
        """Build the (optionally per-sample) linear stamps.

        Parameters
        ----------
        r_scale:
            ``(n_samples, n_resistors)`` multiplicative scale on each
            resistor's *resistance* (netlist order), or None for nominal.
        c_scale:
            ``(n_samples, n_explicit_caps)`` multiplicative scale on each
            explicit capacitor, or None for nominal.
        dev_cap_scale:
            ``(n_samples, n_mosfets)`` multiplicative scale on each
            device's parasitic (gate/junction) capacitances, or None for
            nominal; see ``Technology.cap_vth_sensitivity``.

        Returns
        -------
        (gmat, known_pulls, cvec):
            ``gmat`` has shape ``(n, n)`` or ``(n_samples, n, n)``;
            ``known_pulls`` is a list of ``(node_index, conductance,
            fixed_node)`` with conductance scalar or ``(n_samples,)``;
            ``cvec`` has shape ``(n,)`` or ``(n_samples, n)``.
        """
        n = self.n_unknown
        if r_scale is None:
            gmat: np.ndarray = self.g_const
            known_pulls: List[Tuple[int, np.ndarray, str]] = [
                (i, np.asarray(g), node) for i, g, node in self.g_known
            ]
        else:
            r_scale = np.asarray(r_scale, dtype=float)
            if r_scale.ndim != 2 or r_scale.shape[1] != len(self.res_stamps):
                raise NetlistError(
                    f"r_scale must be (n_samples, {len(self.res_stamps)}), "
                    f"got {r_scale.shape}"
                )
            n_samples = r_scale.shape[0]
            gmat = np.zeros((n_samples, n, n))
            known_pulls = []
            for k, (ia, ib, fixed_node, g0) in enumerate(self.res_stamps):
                if ia < 0:
                    continue
                g = g0 / r_scale[:, k]
                if ib >= 0:
                    gmat[:, ia, ia] += g
                    gmat[:, ib, ib] += g
                    gmat[:, ia, ib] -= g
                    gmat[:, ib, ia] -= g
                else:
                    gmat[:, ia, ia] += g
                    known_pulls.append((ia, g, fixed_node))

        if c_scale is None and dev_cap_scale is None:
            cvec: np.ndarray = self.cdiag
        else:
            if c_scale is not None:
                c_scale = np.asarray(c_scale, dtype=float)
                if c_scale.ndim != 2 or c_scale.shape[1] != len(self.explicit_caps):
                    raise NetlistError(
                        f"c_scale must be (n_samples, {len(self.explicit_caps)}), "
                        f"got {c_scale.shape}"
                    )
                n_samples = c_scale.shape[0]
            if dev_cap_scale is not None:
                dev_cap_scale = np.asarray(dev_cap_scale, dtype=float)
                if (
                    dev_cap_scale.ndim != 2
                    or dev_cap_scale.shape[1] != len(self.netlist.mosfets)
                ):
                    raise NetlistError(
                        f"dev_cap_scale must be (n_samples, {len(self.netlist.mosfets)}), "
                        f"got {dev_cap_scale.shape}"
                    )
                n_samples = dev_cap_scale.shape[0]

            if dev_cap_scale is None:
                cvec = np.broadcast_to(self.device_cdiag, (n_samples, n)).copy()
            else:
                cvec = np.zeros((n_samples, n))
                for i, j, cap in self.device_cap_stamps:
                    cvec[:, i] += cap * dev_cap_scale[:, j]
            for k, (i, c) in enumerate(self.explicit_caps):
                cvec[:, i] += c * (c_scale[:, k] if c_scale is not None else 1.0)
            np.clip(cvec, 1e-18, None, out=cvec)
        return gmat, known_pulls, cvec

    def known_voltage(self, node: str, t: float) -> float:
        """Prescribed voltage of a fixed node at time ``t``."""
        return self.fixed_sources[node](t)

    def bind_sample(self, sample: ParameterSample) -> List[MosfetParams]:
        """Build per-device EKV parameters from a Monte-Carlo batch.

        The batch's transistor axis must follow the order of
        ``netlist.mosfets`` (which :meth:`TransistorNetlist.mismatch_sigmas`
        guarantees when the sampler is fed from the same netlist).
        """
        devices = self.netlist.mosfets
        if sample.n_transistors != len(devices):
            raise NetlistError(
                f"sample has {sample.n_transistors} transistors, "
                f"netlist has {len(devices)}"
            )
        params = []
        for j, m in enumerate(devices):
            params.append(
                MosfetParams.from_technology(
                    self.tech,
                    m.is_pmos,
                    m.width,
                    dvth=sample.dvth[:, j],
                    mobility_scale=sample.mobility_scale[:, j],
                    length_scale=sample.length_scale[:, j],
                )
            )
        return params

    def device_currents(
        self,
        v: np.ndarray,
        t: float,
        params: List[MosfetParams],
        jac: Optional[np.ndarray] = None,
        rows: Optional[np.ndarray] = None,
        kernel: Optional[object] = None,
    ) -> np.ndarray:
        """Sum of nonlinear device currents *leaving* each unknown node.

        Parameters
        ----------
        v:
            State array of shape ``(n_samples, n_unknown)``.
        t:
            Simulation time (for fixed-node voltages).
        params:
            Per-device EKV parameters from :meth:`bind_sample`.
        jac:
            Optional ``(n_samples, n_unknown, n_unknown)`` array; when
            given, device conductance stamps are accumulated into it.
        rows:
            Optional index array restricting the evaluation to a subset
            of Monte-Carlo samples: ``v`` (and ``jac``) then cover only
            those rows while ``params`` and per-sample fixed sources are
            sliced here. Used by the convergence-masked Newton kernel.
        kernel:
            Optional :class:`~repro.kernels.base.KernelBackend` whose
            ``ekv_eval`` replaces the reference device evaluation;
            ``None`` keeps the canonical
            :func:`~repro.spice.mosfet.ekv_ids_and_derivatives`.

        Returns
        -------
        numpy.ndarray
            ``(n_samples, n_unknown)`` residual contribution.
        """
        n_samples = v.shape[0]
        ekv = kernel.ekv_eval if kernel is not None else ekv_ids_and_derivatives
        # Optional fused C scatter of currents + conductance stamps; a
        # backend without it (or an unusual array layout) takes the
        # reference numpy path below.
        stamp = getattr(kernel, "stamp_device", None)

        def fixv(node: str):
            value = self.known_voltage(node, t)
            if rows is not None and isinstance(value, np.ndarray) and value.ndim:
                return value[rows]
            return value

        out = np.zeros((n_samples, self.n_unknown))
        for (idx, fixed), m, p in zip(
            self.device_terminals, self.netlist.mosfets, params
        ):
            if rows is not None:
                p = p.subset(rows)
            (id_, ig, is_), (fd, fg, fs) = idx, fixed
            vd = v[:, id_] if id_ >= 0 else fixv(fd)
            vg = v[:, ig] if ig >= 0 else fixv(fg)
            vs = v[:, is_] if is_ >= 0 else fixv(fs)
            sign = -1.0 if m.is_pmos else 1.0
            ids, g_g, g_d, g_s = ekv(sign * vg, sign * vd, sign * vs, p)
            if stamp is not None and stamp(
                out, jac, ids, g_g, g_d, g_s, sign, id_, ig, is_
            ):
                continue
            # Physical drain-to-source current; the sign flip cancels in
            # the conductances (d(sign*i)/dv = sign*g*sign = g).
            i_phys = sign * ids
            i_phys = np.broadcast_to(i_phys, (n_samples,))
            if id_ >= 0:
                out[:, id_] += i_phys
            if is_ >= 0:
                out[:, is_] -= i_phys
            if jac is not None:
                stamp_rows = []
                if id_ >= 0:
                    stamp_rows.append((id_, 1.0))
                if is_ >= 0:
                    stamp_rows.append((is_, -1.0))
                cols = []
                if id_ >= 0:
                    cols.append((id_, g_d))
                if ig >= 0:
                    cols.append((ig, g_g))
                if is_ >= 0:
                    cols.append((is_, g_s))
                for row, rsign in stamp_rows:
                    for col, g in cols:
                        jac[:, row, col] += rsign * np.broadcast_to(g, (n_samples,))
        return out

    def linear_currents(self, v: np.ndarray, t: float) -> np.ndarray:
        """Resistor currents leaving each unknown node (includes fixed-node pulls)."""
        out = v @ self.g_const.T
        for i, g, node in self.g_known:
            out[:, i] -= g * self.known_voltage(node, t)
        return out
