"""Waveform measurement: threshold crossings, delay, slew.

Conventions (used consistently across characterization, the golden
Monte-Carlo reference, and the calibrated models):

* **delay** — time from the input waveform crossing 50 % of VDD to the
  output waveform crossing 50 % of VDD;
* **slew** — the 20 %→80 % crossing interval of a transition (always
  positive, for rising and falling edges alike). A linear 0→VDD ramp of
  duration ``T`` therefore has slew ``0.6 T``; see
  :func:`ramp_time_for_slew`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Lower/upper measurement thresholds for slew, as fractions of VDD.
SLEW_LOW = 0.2
SLEW_HIGH = 0.8


def ramp_time_for_slew(slew: float) -> float:
    """Full 0→VDD ramp duration whose 20–80 % slew equals ``slew``."""
    return slew / (SLEW_HIGH - SLEW_LOW)


def crossing_time(
    times: np.ndarray,
    waves: np.ndarray,
    level: float,
    rising: bool,
    time_major: bool = False,
) -> np.ndarray:
    """First crossing time of ``level`` per sample, linearly interpolated.

    Parameters
    ----------
    times:
        ``(n_points,)`` monotone time axis.
    waves:
        ``(n_samples, n_points)`` waveforms (a 1-D array is treated as a
        single sample). With ``time_major=True`` the layout is
        ``(n_points, n_samples)`` instead — the native orientation of
        :class:`~repro.spice.transient.TransientResult` buffers — and a
        1-D array is a single sample along time.
    level:
        Threshold voltage.
    rising:
        Direction of the crossing to detect: from below to at-or-above
        (True) or from above to at-or-below (False).
    time_major:
        Interpret ``waves`` as ``(n_points, n_samples)``. Results are
        identical bit-for-bit to the sample-major path; this only avoids
        the transpose for callers that already hold time-major data.

    Returns
    -------
    numpy.ndarray
        ``(n_samples,)`` crossing times; ``nan`` where no crossing occurs.
    """
    times = np.asarray(times, dtype=float)
    waves = np.asarray(waves, dtype=float)
    if time_major:
        if waves.ndim == 1:
            waves = waves[:, None]
        if rising:
            before = waves[:-1] < level
            after = waves[1:] >= level
        else:
            before = waves[:-1] > level
            after = waves[1:] <= level
        cross = before & after
        found = cross.any(axis=0)
        idx = np.argmax(cross, axis=0)
        cols = np.arange(waves.shape[1])
        v0 = waves[idx, cols]
        v1 = waves[idx + 1, cols]
    else:
        waves = np.atleast_2d(waves)
        if rising:
            before = waves[:, :-1] < level
            after = waves[:, 1:] >= level
        else:
            before = waves[:, :-1] > level
            after = waves[:, 1:] <= level
        cross = before & after
        found = cross.any(axis=1)
        idx = np.argmax(cross, axis=1)
        rows = np.arange(waves.shape[0])
        v0 = waves[rows, idx]
        v1 = waves[rows, idx + 1]
    t0 = times[idx]
    t1 = times[idx + 1]
    dv = v1 - v0
    frac = np.where(np.abs(dv) > 0, (level - v0) / np.where(dv == 0, 1.0, dv), 0.0)
    out = t0 + frac * (t1 - t0)
    out[~found] = np.nan
    return out


def threshold_crossings(
    times: np.ndarray,
    waves: np.ndarray,
    vdd: float,
    rising: bool,
    fractions: "tuple[float, ...]" = (SLEW_LOW, 0.5, SLEW_HIGH),
    time_major: bool = False,
) -> "dict[float, np.ndarray]":
    """Crossing times at several VDD fractions in one call."""
    return {
        f: crossing_time(times, waves, f * vdd, rising, time_major=time_major)
        for f in fractions
    }


def measure_delay(
    times: np.ndarray,
    v_in: np.ndarray,
    v_out: np.ndarray,
    vdd: float,
    in_rising: bool,
    out_rising: bool,
    time_major: bool = False,
) -> np.ndarray:
    """50 %–50 % propagation delay per sample.

    ``v_in`` may be a single shared waveform ``(n_points,)`` (an ideal
    driven input identical across samples) or per-sample ``(n_samples,
    n_points)`` (``(n_points, n_samples)`` with ``time_major=True``).
    """
    t_in = crossing_time(times, v_in, 0.5 * vdd, in_rising, time_major=time_major)
    t_out = crossing_time(times, v_out, 0.5 * vdd, out_rising, time_major=time_major)
    return t_out - t_in


def measure_slew(
    times: np.ndarray,
    waves: np.ndarray,
    vdd: float,
    rising: bool,
    low: float = SLEW_LOW,
    high: float = SLEW_HIGH,
    time_major: bool = False,
) -> np.ndarray:
    """20 %–80 % transition time per sample (positive for both edges)."""
    t_low = crossing_time(times, waves, low * vdd, rising, time_major=time_major)
    t_high = crossing_time(times, waves, high * vdd, rising, time_major=time_major)
    if rising:
        return t_high - t_low
    return t_low - t_high


def fraction_settled(
    waves: np.ndarray,
    vdd: float,
    rising: bool,
    fraction: float = 0.95,
    time_major: bool = False,
) -> float:
    """Share of samples whose final value has covered ``fraction`` of the swing.

    Used by the Monte-Carlo driver to decide whether a simulation window
    was long enough or must be extended.
    """
    final = waves[-1] if time_major else np.atleast_2d(waves)[:, -1]
    if rising:
        done = final >= fraction * vdd
    else:
        done = final <= (1.0 - fraction) * vdd
    return float(np.mean(done))
