"""Vectorized transistor-level circuit simulator ("SPICE substrate").

The paper's golden reference is HSPICE Monte-Carlo on a TSMC 28 nm PDK.
This package supplies the equivalent for the reproduction: a small but
real nonlinear transient simulator with

* an EKV-style MOSFET model (:mod:`repro.spice.mosfet`) that is smooth
  and accurate from sub- to super-threshold — essential, because the
  paper operates at 0.6 V where devices sit in moderate inversion;
* a grounded-capacitor nodal formulation (:mod:`repro.spice.netlist`)
  for cells + RC interconnect;
* a **batched** backward-Euler/Newton transient solver
  (:mod:`repro.spice.transient`) that integrates *all Monte-Carlo
  samples simultaneously* as ``(n_samples, n_nodes)`` arrays — this is
  what makes 10k-sample characterization tractable in pure Python;
* waveform measurement utilities (:mod:`repro.spice.measure`) for delay
  and slew extraction;
* a Monte-Carlo driver (:mod:`repro.spice.montecarlo`) tying the above
  to the :mod:`repro.variation` sampler.
"""

from repro.spice.mosfet import MosfetParams, ekv_ids, ekv_ids_and_derivatives
from repro.spice.netlist import (
    Capacitor,
    CompiledCircuit,
    Mosfet,
    PiecewiseLinearSource,
    Resistor,
    TransistorNetlist,
)
from repro.spice.transient import TransientResult, TransientSolver
from repro.spice.measure import (
    crossing_time,
    measure_delay,
    measure_slew,
    threshold_crossings,
)
from repro.spice.montecarlo import DelaySamples, MonteCarloEngine, SimulationSetup

__all__ = [
    "MosfetParams",
    "ekv_ids",
    "ekv_ids_and_derivatives",
    "Mosfet",
    "Resistor",
    "Capacitor",
    "PiecewiseLinearSource",
    "TransistorNetlist",
    "CompiledCircuit",
    "TransientSolver",
    "TransientResult",
    "crossing_time",
    "threshold_crossings",
    "measure_delay",
    "measure_slew",
    "MonteCarloEngine",
    "SimulationSetup",
    "DelaySamples",
]
