"""Layer 1 — domain lint rules over flow artifacts.

Four artifact families are covered, mirroring the pipeline stages:

* gate-level circuits (``NET``): dangling/undriven nets, multi-driver
  nets, combinational cycles, floating outputs, unknown cells;
* RC trees and SPEF files (``RCT`` / ``SPF``): non-positive or
  non-finite R/C, floating leaves, absurd magnitudes, cap budgets that
  contradict the ``*D_NET`` header, unparseable files;
* characterized moment tables (``TBL``): non-finite entries, the
  Pearson moment inequality ``kurt >= skew**2 + 1``, grid monotonicity,
  empirical quantile crossings, non-physical means, extrapolated
  queries;
* fitted N-sigma models (``NSM``): quantile monotonicity across sigma
  levels and regression residual outliers.

Every check returns a :class:`~repro.lint.core.LintReport`; flow entry
points call these and fail fast via
:meth:`~repro.lint.core.LintReport.raise_if_errors`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import InterconnectError
from repro.interconnect.rctree import RCTree
from repro.lint.core import Diagnostic, LintReport, Rule, Severity, register_rule
from repro.moments.stats import (
    SIGMA_LEVELS,
    Moments,
    moment_validity_margin,
    moments_valid,
)
from repro.units import MEGOHM, PF, PS

# ----------------------------------------------------------------------
# Rule catalogue (domain layer)
# ----------------------------------------------------------------------
register_rule(Rule(
    "NET001", "domain", Severity.ERROR,
    "undriven net: a net with no driver that is not a primary input",
    "the STA cannot schedule gates fed by the net; arrival times would be garbage",
))
register_rule(Rule(
    "NET002", "domain", Severity.ERROR,
    "multi-driver net: two or more gate outputs drive the same net",
    "delay through a contended net is undefined; the timing graph is not a DAG of arcs",
))
register_rule(Rule(
    "NET003", "domain", Severity.ERROR,
    "combinational cycle in the gate graph",
    "topological propagation never terminates; the circuit is not analyzable",
))
register_rule(Rule(
    "NET004", "domain", Severity.WARNING,
    "floating net: a driven net with no sinks that is not a primary output",
    "usually a truncated netlist; the logic cone is dead weight in every analysis",
))
register_rule(Rule(
    "NET005", "domain", Severity.ERROR,
    "unknown cell: a gate instantiates a cell the library does not provide",
    "no characterized arcs exist for the cell, so no delay model can be looked up",
))
register_rule(Rule(
    "RCT001", "domain", Severity.ERROR,
    "non-positive segment resistance in an RC tree",
    "Elmore moments divide by and sum R; R <= 0 yields negative or absurd wire delays",
))
register_rule(Rule(
    "RCT002", "domain", Severity.ERROR,
    "negative node capacitance in an RC tree",
    "negative C makes downstream cap sums and delay moments physically meaningless",
))
register_rule(Rule(
    "RCT003", "domain", Severity.ERROR,
    "non-finite R or C value in an RC tree",
    "a single NaN/inf silently poisons every metric computed from the tree",
))
register_rule(Rule(
    "RCT004", "domain", Severity.WARNING,
    "floating leaf: a leaf node carrying zero capacitance",
    "a receiver pin tap with no load usually means the pin cap annotation was lost",
))
register_rule(Rule(
    "RCT005", "domain", Severity.WARNING,
    "absurd magnitude: segment R > 10 MOhm or node C > 1 nF",
    "values orders of magnitude beyond on-chip parasitics are almost always unit mix-ups",
))
register_rule(Rule(
    "SPF001", "domain", Severity.ERROR,
    "SPEF cap budget mismatch: *D_NET header total != sum of *CAP entries",
    "the file was edited or corrupted after extraction; loads can no longer be trusted",
))
register_rule(Rule(
    "SPF002", "domain", Severity.ERROR,
    "unparseable SPEF content (grammar violation or non-tree resistor network)",
    "partial parses must not feed the flow; fail loudly instead of analyzing half a net",
))
register_rule(Rule(
    "TBL001", "domain", Severity.ERROR,
    "non-finite entry in a characterized moment/quantile table",
    "NaN/inf interpolates into every model fitted from the table",
))
register_rule(Rule(
    "TBL002", "domain", Severity.ERROR,
    "moment validity violation: kurt < skew**2 + 1",
    "no real distribution has these moments; the table cannot describe any delay population",
))
register_rule(Rule(
    "TBL003", "domain", Severity.ERROR,
    "characterization grid axes not strictly ascending",
    "bilinear interpolation assumes sorted axes; lookups would silently misinterpolate",
))
register_rule(Rule(
    "TBL004", "domain", Severity.ERROR,
    "empirical quantile crossing across sigma levels at a grid point",
    "T(-1 sigma) > T(+1 sigma) means the stored quantiles are corrupt or mislabeled",
))
register_rule(Rule(
    "TBL005", "domain", Severity.ERROR,
    "non-physical moments: sigma < 0, or mean delay below -input_slew",
    "spread cannot be negative, and a 50%-to-50% delay more negative than "
    "the full input slew is geometrically impossible; either indicates "
    "measurement failure (mildly negative delays at slow-slew/light-load "
    "points are legitimate)",
))
register_rule(Rule(
    "TBL006", "domain", Severity.WARNING,
    "query outside the characterized slew/load grid (extrapolation)",
    "interpolators clamp to the grid edge; results outside it are extrapolated guesses",
))
register_rule(Rule(
    "NSM001", "domain", Severity.ERROR,
    "fitted N-sigma model quantiles cross: T(n) not monotone in n",
    "a quantile function must be non-decreasing; crossings make sigma levels meaningless",
))
register_rule(Rule(
    "NSM002", "domain", Severity.WARNING,
    "regression residual outlier in the N-sigma fit training data",
    "one grid point pulled the fit far from its own data; inspect that characterization",
))
register_rule(Rule(
    "NSM003", "domain", Severity.ERROR,
    "stale compiled STA artifact: packed arc tensors drift from the calibration",
    "a compile cached against an older calibration silently serves outdated "
    "delays for every query; the artifact must be recompiled",
))
register_rule(Rule(
    "ART001", "domain", Severity.ERROR,
    "unreadable or unrecognized artifact file",
    "an artifact the flow cannot even parse must never be silently skipped",
))
register_rule(Rule(
    "RUN001", "domain", Severity.WARNING,
    "quarantined arc: a timing arc was excluded from a run after "
    "exhausting its retry budget",
    "a quarantined arc means the calibration is missing data for that "
    "cell; downstream STA falls back or fails on it — the degradation "
    "must be visible, budgeted and re-runnable",
))
register_rule(Rule(
    "KRN001", "domain", Severity.ERROR,
    "kernel backend equivalence violation: an accelerated backend "
    "deviates from the numpy golden reference beyond the documented "
    "envelope",
    "accelerated kernels are only admissible while they reproduce the "
    "golden physics; a backend outside the envelope silently corrupts "
    "every delay sample it produces (see docs/kernels.md)",
))
register_rule(Rule(
    "RUN002", "domain", Severity.ERROR,
    "malformed run journal: unparseable line, non-object record, "
    "missing/unknown event, or non-monotonic sequence numbers",
    "a journal that cannot be trusted line-by-line is useless for "
    "post-mortems and resume decisions",
))
register_rule(Rule(
    "RUN003", "domain", Severity.WARNING,
    "interrupted run: the journal records a run_start with no matching "
    "run_finish",
    "the run died or was killed mid-flight; its checkpoints are intact "
    "and the run should be resumed, not silently forgotten",
))
register_rule(Rule(
    "TBL007", "domain", Severity.ERROR,
    "non-finite value in a characterization grid axis",
    "a NaN/inf slew or load index corrupts every interpolation and "
    "cache key derived from the table",
))
register_rule(Rule(
    "SUR001", "domain", Severity.ERROR,
    "surrogate cross-validation residual over budget without dense fallback",
    "the GP's own leave-one-out residuals say its predictions cannot be "
    "trusted for this arc; the run was required to fall back to dense "
    "simulation and did not",
))
register_rule(Rule(
    "SUR002", "domain", Severity.WARNING,
    "surrogate stopped at its point cap before the error budgets converged",
    "the emitted table honors the cross-validation gate but its "
    "predicted standard errors still exceed the requested budgets; "
    "raise the cap or the budgets, or fall back to dense",
))
register_rule(Rule(
    "SUR003", "domain", Severity.ERROR,
    "surrogate-produced table without a valid provenance record",
    "a table whose entries are model predictions must say which grid "
    "points are real simulations and which are inferred; without that, "
    "downstream audits cannot distinguish data from extrapolation",
))
register_rule(Rule(
    "SRV001", "domain", Severity.ERROR,
    "malformed serve request: missing/unknown field or wrong type",
    "a request the server cannot even interpret must be rejected at "
    "admission with a diagnostic, not guessed at — a typoed field name "
    "silently falling back to defaults would serve wrong answers",
))
register_rule(Rule(
    "SRV002", "domain", Severity.ERROR,
    "serve request value outside the analyzable domain",
    "non-finite or non-positive slews, unknown edge polarities, "
    "out-of-range sigma levels or correlations would propagate NaNs or "
    "nonsense through a shared resident engine; the request must be "
    "refused before it reaches the query path",
))
register_rule(Rule(
    "SRV003", "domain", Severity.ERROR,
    "serve request scenario grid exceeds the server's budget",
    "one unbounded slew x edge x correlation cross product can occupy a "
    "worker for minutes and starve every other client of the shared "
    "admission queue; oversized grids are refused, not queued",
))
register_rule(Rule(
    "PCK001", "domain", Severity.ERROR,
    "unreadable pack container: bad magic, unsupported format version, "
    "foreign byte order, or unparseable manifest",
    "a .rpk the reader cannot even frame must be refused before any "
    "byte of it is deserialized — packs are mmap'd straight into "
    "serving engines, so a malformed container is an integrity "
    "boundary, not a parse inconvenience",
))
register_rule(Rule(
    "PCK002", "domain", Severity.ERROR,
    "pack digest mismatch: a section's bytes do not hash to the sha256 "
    "recorded in its manifest",
    "a flipped bit in a timing tensor silently corrupts every delay "
    "served from the mapped arrays; the per-section digests exist so "
    "corruption is caught at load, never at query time",
))
register_rule(Rule(
    "PCK003", "domain", Severity.ERROR,
    "truncated pack: the file is shorter than its header records, or a "
    "tensor segment extends past the data section",
    "a torn write or partial copy leaves trailing segments reading "
    "zeros (or faulting) through the mmap; the recorded file length "
    "and per-segment bounds make truncation loud",
))
register_rule(Rule(
    "PCK004", "domain", Severity.ERROR,
    "stale pack: the recorded design_cache_key / calibration digest no "
    "longer matches the live circuit, calibration, or code version",
    "a pack built from yesterday's calibration would serve answers "
    "that disagree with every freshly compiled result; staleness must "
    "demote the pack to a rebuild, never serve",
))

#: RCT005 thresholds — far beyond plausible on-chip parasitics.
ABSURD_RESISTANCE = 10 * MEGOHM
ABSURD_CAPACITANCE = 1000 * PF


# ----------------------------------------------------------------------
# Circuits
# ----------------------------------------------------------------------
def lint_circuit(circuit, library=None, parasitics: bool = True) -> LintReport:
    """Static checks over a gate-level circuit (``NET`` rules).

    Parameters
    ----------
    circuit:
        A :class:`~repro.netlist.circuit.Circuit`.
    library:
        Optional :class:`~repro.cells.library.CellLibrary`; enables the
        unknown-cell check (NET005).
    parasitics:
        Also lint every net's attached RC tree (``RCT`` rules).
    """
    report = LintReport()
    name = circuit.name

    # NET001 / NET004: dangling and floating nets.
    for net in circuit.nets.values():
        if net.is_primary_input and net.name not in circuit.inputs:
            report.emit(
                "NET001",
                f"net {net.name!r} has no driver and is not a primary input",
                artifact=f"circuit {name}",
            )
        if not net.sinks:
            report.emit(
                "NET004",
                f"net {net.name!r} has no sinks and is not a primary output",
                artifact=f"circuit {name}",
            )

    # NET002: multi-driver nets (unreachable through the Circuit API,
    # but hand-built or deserialized circuits can carry them).
    drivers: Dict[str, List[str]] = {}
    for gate in circuit.gates.values():
        drivers.setdefault(gate.output_net, []).append(gate.name)
    for net_name, gate_names in sorted(drivers.items()):
        if len(gate_names) > 1:
            report.emit(
                "NET002",
                f"net {net_name!r} driven by {len(gate_names)} gates: "
                f"{sorted(gate_names)[:5]}",
                artifact=f"circuit {name}",
            )

    # NET003: combinational cycles (Kahn's algorithm; leftovers = cycle).
    indegree: Dict[str, int] = {}
    dependents: Dict[str, List[str]] = {g: [] for g in circuit.gates}
    for gate in circuit.gates.values():
        count = 0
        for net_name in gate.pins.values():
            net = circuit.nets.get(net_name)
            if net is not None and not net.is_primary_input and net.driver[0] in dependents:
                dependents[net.driver[0]].append(gate.name)
                count += 1
        indegree[gate.name] = count
    frontier = [g for g, d in indegree.items() if d == 0]
    seen = 0
    while frontier:
        gate_name = frontier.pop()
        seen += 1
        for dep in dependents[gate_name]:
            indegree[dep] -= 1
            if indegree[dep] == 0:
                frontier.append(dep)
    if seen != len(circuit.gates):
        remaining = sorted(g for g, d in indegree.items() if d > 0)
        report.emit(
            "NET003",
            f"combinational cycle involving gates {remaining[:5]}",
            artifact=f"circuit {name}",
        )

    # NET005: unknown cells (needs a library to check against).
    if library is not None:
        known = set(library.names)
        for gate in circuit.gates.values():
            if gate.cell_name not in known:
                report.emit(
                    "NET005",
                    f"gate {gate.name!r} instantiates unknown cell "
                    f"{gate.cell_name!r}",
                    artifact=f"circuit {name}",
                )

    if parasitics:
        for net in circuit.nets.values():
            if net.tree is not None:
                report.extend(lint_rctree(net.tree, name=f"net {net.name}"))
    return report


# ----------------------------------------------------------------------
# RC trees and SPEF
# ----------------------------------------------------------------------
def lint_rctree(tree: RCTree, name: str = "tree") -> LintReport:
    """Value/structure checks over one RC tree (``RCT`` rules)."""
    report = LintReport()
    for node in tree.nodes.values():
        where = f"{name} node {node.name!r}"
        if node.parent is not None:
            if not math.isfinite(node.resistance):
                report.emit("RCT003", f"{where}: non-finite resistance "
                            f"{node.resistance!r}", artifact=name)
            elif node.resistance <= 0:
                report.emit("RCT001", f"{where}: non-positive resistance "
                            f"{node.resistance!r} ohm", artifact=name)
            elif node.resistance > ABSURD_RESISTANCE:
                report.emit("RCT005", f"{where}: absurd resistance "
                            f"{node.resistance:.3g} ohm", artifact=name)
        if not math.isfinite(node.cap):
            report.emit("RCT003", f"{where}: non-finite cap {node.cap!r}",
                        artifact=name)
        elif node.cap < 0:
            report.emit("RCT002", f"{where}: negative cap {node.cap!r} F",
                        artifact=name)
        elif node.cap > ABSURD_CAPACITANCE:
            report.emit("RCT005", f"{where}: absurd cap {node.cap:.3g} F",
                        artifact=name)
    for leaf in tree.leaves():
        if leaf != tree.root and tree.nodes[leaf].cap == 0.0:
            report.emit(
                "RCT004",
                f"{name} leaf {leaf!r} carries zero capacitance (floating tap)",
                artifact=name,
            )
    return report


def lint_spef(path) -> LintReport:
    """Lint a SPEF file: grammar, tree structure, values, cap budgets.

    Unlike :func:`~repro.interconnect.spef.read_spef` (which fails fast
    on the first problem), the linter reports every problem it can
    reach: a grammar violation stops the file, but per-net build
    failures and budget mismatches are collected across nets.
    """
    from repro.interconnect.spef import (
        _build_tree,
        check_cap_budget,
        parse_spef_records,
    )

    report = LintReport()
    file = str(path)
    try:
        records = parse_spef_records(path)
    except InterconnectError as exc:
        report.emit("SPF002", str(exc), file=file)
        return report
    except OSError as exc:
        report.emit("SPF002", f"cannot read {file}: {exc}", file=file)
        return report
    for record in records:
        try:
            tree = _build_tree(record)
        except InterconnectError as exc:
            report.emit("SPF002", str(exc), artifact=f"net {record['name']}",
                        file=file)
            continue
        mismatch = check_cap_budget(record, tree)
        if mismatch is not None:
            report.emit("SPF001", mismatch, artifact=f"net {record['name']}",
                        file=file)
        tree_report = lint_rctree(tree, name=f"net {record['name']}")
        for diag in tree_report:
            report.add(Diagnostic(
                rule_id=diag.rule_id, severity=diag.severity,
                message=diag.message, artifact=diag.artifact, file=file,
            ))
    return report


# ----------------------------------------------------------------------
# Characterized tables
# ----------------------------------------------------------------------
def _arc_label(table) -> str:
    edge = "rise" if table.output_rising else "fall"
    return f"{table.cell_name}/{table.pin}/{edge}"


def lint_table(table, queries: Sequence[Tuple[float, float]] = ()) -> LintReport:
    """Checks over one :class:`CharacterizationTable` (``TBL`` rules)."""
    report = LintReport()
    arc = _arc_label(table)

    # TBL007 / TBL003: axes must be finite and strictly ascending.
    for axis_name, axis in (("slew", table.slews), ("load", table.loads)):
        if not np.isfinite(axis).all():
            report.emit(
                "TBL007",
                f"arc {arc}: {axis_name} axis contains non-finite values: "
                f"{axis.tolist()}",
                artifact=arc,
            )
            continue
        if axis.size < 2 or np.any(np.diff(axis) <= 0):
            report.emit(
                "TBL003",
                f"arc {arc}: {axis_name} axis {axis.tolist()} is not "
                f"strictly ascending with >= 2 points",
                artifact=arc,
            )

    # SUR001–003: surrogate-produced tables must carry a valid
    # provenance record whose own safety gates were honored.
    if table.provenance is not None:
        report.extend(lint_surrogate_provenance(table.provenance, arc))

    # TBL001: finiteness of every stored quantity.
    for field_name, grid in (
        ("moments", table.moments),
        ("quantiles", table.quantiles),
        ("out_slew", table.out_slew),
    ):
        bad = ~np.isfinite(grid)
        if bad.any():
            idx = tuple(int(v) for v in np.argwhere(bad)[0])
            report.emit(
                "TBL001",
                f"arc {arc}: non-finite {field_name} entry at index {idx}",
                artifact=arc,
            )

    finite = np.isfinite(table.moments).all(axis=-1)
    mu = table.moments[..., 0]
    sigma = table.moments[..., 1]
    skew = table.moments[..., 2]
    kurt = table.moments[..., 3]

    # TBL005: sigma must be non-negative; a 50%-to-50% delay can be
    # mildly negative (fast gate, slow input edge) but never more
    # negative than the input slew itself.
    slew_floor = -np.asarray(table.slews, dtype=float)[:, None]
    bad = finite & ((sigma < 0) | (mu < slew_floor))
    if bad.any():
        i, j = (int(v) for v in np.argwhere(bad)[0])
        report.emit(
            "TBL005",
            f"arc {arc} at grid point ({i}, {j}): non-physical moments "
            f"mu={mu[i, j]:.3g} s, sigma={sigma[i, j]:.3g} s "
            f"(input slew {table.slews[i]:.3g} s)",
            artifact=arc,
        )

    # TBL002: the Pearson moment inequality (shared helper).
    for i, j in np.argwhere(finite).tolist():
        if not moments_valid(float(skew[i, j]), float(kurt[i, j])):
            report.emit(
                "TBL002",
                f"arc {arc} at grid point ({i}, {j}): kurt "
                f"{kurt[i, j]:.6g} < skew**2 + 1 "
                f"(margin {moment_validity_margin(float(skew[i, j]), float(kurt[i, j])):.3g}); "
                f"no real distribution has these moments",
                artifact=arc,
            )
            break  # one diagnostic per arc keeps reports readable

    # TBL004: stored quantiles must be non-decreasing in the sigma level.
    q_finite = np.isfinite(table.quantiles).all(axis=-1)
    crossing = q_finite & (np.diff(table.quantiles, axis=-1) < 0).any(axis=-1)
    if crossing.any():
        i, j = (int(v) for v in np.argwhere(crossing)[0])
        values = [f"{v / PS:.3f}" for v in table.quantiles[i, j]]
        report.emit(
            "TBL004",
            f"arc {arc} at grid point ({i}, {j}): sigma-level quantiles "
            f"cross (ps): {values}",
            artifact=arc,
        )

    # TBL006: queries outside the characterized envelope extrapolate.
    for q_slew, q_load in queries:
        outside = []
        if not table.slews[0] <= q_slew <= table.slews[-1]:
            outside.append(f"slew {q_slew / PS:.1f} ps outside "
                           f"[{table.slews[0] / PS:.1f}, {table.slews[-1] / PS:.1f}] ps")
        if not table.loads[0] <= q_load <= table.loads[-1]:
            outside.append(f"load {q_load:.3g} F outside "
                           f"[{table.loads[0]:.3g}, {table.loads[-1]:.3g}] F")
        if outside:
            report.emit(
                "TBL006",
                f"arc {arc}: query extrapolates beyond the characterization "
                f"grid ({'; '.join(outside)})",
                artifact=arc,
            )
    return report


def lint_surrogate_provenance(provenance, arc: str) -> LintReport:
    """Validate one surrogate provenance record (``SUR`` rules).

    SUR003 covers structural problems (missing keys, inconsistent point
    counts); on a structurally valid record, SUR001 fires when the
    cross-validation gate was breached without the mandated dense
    fallback, and SUR002 when the acquisition loop hit its point cap
    before the per-statistic error budgets converged.
    """
    from repro.surrogate.active import validate_provenance

    report = LintReport()
    if not isinstance(provenance, dict):
        report.emit(
            "SUR003",
            f"arc {arc}: surrogate provenance is not a JSON object "
            f"({type(provenance).__name__})",
            artifact=arc,
        )
        return report
    problems = validate_provenance(provenance)
    if problems:
        report.emit(
            "SUR003",
            f"arc {arc}: malformed surrogate provenance: "
            f"{'; '.join(problems)}",
            artifact=arc,
        )
        return report
    cv = provenance["cv"]
    fallback = provenance.get("fallback")
    try:
        cv_rel = float(cv["rel"])
        cv_budget = float(cv["budget"])
    except (TypeError, ValueError):
        report.emit(
            "SUR003",
            f"arc {arc}: surrogate cv record is not numeric: {cv!r}",
            artifact=arc,
        )
        return report
    if cv_rel > cv_budget and not fallback:
        report.emit(
            "SUR001",
            f"arc {arc}: surrogate leave-one-out residual "
            f"{cv_rel:.4f} exceeds the budget {cv_budget:.4f} and the "
            f"arc did not fall back to dense simulation",
            artifact=arc,
        )
    if not provenance.get("converged") and not fallback:
        report.emit(
            "SUR002",
            f"arc {arc}: surrogate stopped at its point cap "
            f"({provenance['n_simulated']}/{provenance['n_grid']} points "
            f"simulated) before the error budgets converged",
            artifact=arc,
        )
    return report


def lint_characterization(
    charac, queries: Sequence[Tuple[float, float]] = ()
) -> LintReport:
    """Lint every table of a :class:`LibraryCharacterization` (or one table).

    Quarantined arcs recorded on the characterization (graceful
    degradation of a faulted run) are surfaced as RUN001 warnings so
    they can never pass unnoticed into model fitting.
    """
    report = LintReport()
    tables = getattr(charac, "tables", None)
    if tables is None:
        return lint_table(charac, queries=queries)
    for table in tables.values():
        report.extend(lint_table(table, queries=queries))
    for q in getattr(charac, "quarantined", ()):
        arc = "/".join(q.arc_key)
        report.emit(
            "RUN001",
            f"arc {arc} quarantined after {q.attempts} attempt(s) "
            f"({q.failed_points} grid point(s) failed): "
            f"{q.error_type}: {q.message}",
            artifact=arc,
        )
    return report


# ----------------------------------------------------------------------
# Kernel backends
# ----------------------------------------------------------------------
#: Equivalence envelope (docs/kernels.md) — error of an accelerated
#: backend vs the numpy golden reference, normalized by the largest
#: reference magnitude of the batch (robust to per-sample cancellation).
KERNEL_TOL_PRIMITIVE = 1e-12  # repro-lint: disable=UNIT001 (dimensionless)
#: Conductances are first derivatives assembled through a subtraction of
#: near-equal softplus terms, so their error floor is amplified.
KERNEL_TOL_CONDUCTANCE = 1e-9  # repro-lint: disable=UNIT001 (dimensionless)


def lint_kernel_equivalence(backend=None, n: int = 1024) -> LintReport:
    """Check a kernel backend against the numpy golden reference (KRN001).

    Evaluates every hot-path primitive (EKV device evaluation, stacked
    Newton solves, the update/compact step, the linear fast path) on
    deterministic pseudo-random inputs and compares against
    :class:`~repro.kernels.numpy_backend.NumpyBackend` within the
    documented equivalence envelope. End-to-end delay equivalence is
    enforced separately by the golden-equivalence test suite; this rule
    is the cheap always-on gate.

    ``backend`` may be a backend instance, a backend name, or ``None``
    for the environment-selected backend.
    """
    import numpy as np

    from repro.kernels import select_backend
    from repro.kernels.base import KernelBackend
    from repro.kernels.numpy_backend import NumpyBackend
    from repro.spice.mosfet import MosfetParams

    report = LintReport()
    if not isinstance(backend, KernelBackend):
        backend = select_backend(backend)
    ref = NumpyBackend()
    ident = backend.identity()

    def err_of(got, want) -> float:
        got = np.asarray(got, dtype=float)
        want = np.asarray(want, dtype=float)
        if not np.all(np.isfinite(got)):
            return float("inf")
        scale = float(np.max(np.abs(want))) or 1.0
        return float(np.max(np.abs(got - want))) / scale

    def check(primitive: str, err: float, tol: float) -> None:
        if not (err <= tol):
            report.emit(
                "KRN001",
                f"backend {ident}: {primitive} deviates from the numpy "
                f"reference by {err:.3e} (normalized; envelope {tol:.0e})",
                artifact=f"kernel/{backend.name}",
            )

    rng = np.random.default_rng(1202301)
    params = MosfetParams(
        vt=0.35 + 0.02 * rng.normal(size=n),
        ispec=np.abs(  # amperes, not a time/length unit
            1e-6 * (1.0 + 0.1 * rng.normal(size=n))),  # repro-lint: disable=UNIT001
        n_slope=1.3,
        phi_t=0.0258,
        dibl=0.08,
        lam=0.1,
    )
    vg = 0.6 * rng.random(n)
    vd = 0.6 * rng.random(n)
    vs = 0.1 * rng.random(n)
    got = backend.ekv_eval(vg, vd, vs, params)
    want = ref.ekv_eval(vg, vd, vs, params)
    tols = (
        KERNEL_TOL_PRIMITIVE,
        KERNEL_TOL_CONDUCTANCE,
        KERNEL_TOL_CONDUCTANCE,
        KERNEL_TOL_CONDUCTANCE,
    )
    for label, g, w, tol in zip(("ids", "gg", "gd", "gs"), got, want, tols):
        check(f"ekv_eval[{label}]", err_of(g, w), tol)

    for size in (1, 2, 3, 4):
        jac = rng.normal(size=(n, size, size))
        jac[:, np.arange(size), np.arange(size)] += 4.0
        resid = rng.normal(size=(n, size))
        delta = backend.solve_stack(jac.copy(), resid.copy())
        delta_ref = ref.solve_stack(jac, resid)
        check(f"solve_stack[{size}]", err_of(delta, delta_ref), KERNEL_TOL_PRIMITIVE)

        v1 = rng.normal(size=(n, size))
        v2 = v1.copy()
        rows = np.flatnonzero(rng.random(n) < 0.7)
        d1 = 0.5 * rng.normal(size=(rows.size, size))
        d2 = d1.copy()
        rows1, fin1 = backend.apply_update(v1, rows.copy(), d1, 0.3, 1e-2)
        rows2, fin2 = ref.apply_update(v2, rows.copy(), d2, 0.3, 1e-2)
        same_rows = (rows1 is None and rows2 is None) or (
            rows1 is not None and rows2 is not None and np.array_equal(rows1, rows2)
        )
        if not (same_rows and fin1 == fin2):
            report.emit(
                "KRN001",
                f"backend {ident}: apply_update[{size}] disagrees with the "
                f"numpy reference on convergence bookkeeping",
                artifact=f"kernel/{backend.name}",
            )
        check(f"apply_update[{size}]", err_of(v1, v2), KERNEL_TOL_PRIMITIVE)

    a = rng.normal(size=(6, 6))
    a[np.arange(6), np.arange(6)] += 6.0
    rhs = rng.normal(size=(n, 6))
    x = backend.fast_solve(backend.fast_factorization(a), rhs)
    x_ref = ref.fast_solve(ref.fast_factorization(a), rhs)
    check("fast_solve", err_of(x, x_ref), KERNEL_TOL_PRIMITIVE)
    return report


# ----------------------------------------------------------------------
# Run journals
# ----------------------------------------------------------------------
def lint_journal(path) -> LintReport:
    """Validate a JSONL run journal (``RUN`` rules).

    Checks line-level integrity (RUN002: parseable JSON objects with a
    known ``event`` and monotonically increasing ``seq``), surfaces
    quarantine events (RUN001), and flags interrupted runs — a
    ``run_start`` with no later ``run_finish`` (RUN003).
    """
    import json
    from pathlib import Path

    from repro.journal import KNOWN_EVENTS

    path = Path(path)
    report = LintReport()
    last_seq: Optional[int] = None
    open_runs: List[Tuple[int, str]] = []
    try:
        fh = path.open()
    except OSError as exc:
        report.emit("ART001", f"cannot read {path}: {exc}", file=str(path))
        return report
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                report.emit(
                    "RUN002", f"unparseable journal line: {exc}",
                    file=str(path), line=lineno,
                )
                continue
            if not isinstance(record, dict):
                report.emit(
                    "RUN002", "journal record is not a JSON object",
                    file=str(path), line=lineno,
                )
                continue
            event = record.get("event")
            if event not in KNOWN_EVENTS:
                report.emit(
                    "RUN002", f"unknown journal event {event!r}",
                    file=str(path), line=lineno,
                )
            seq = record.get("seq")
            if not isinstance(seq, int):
                report.emit(
                    "RUN002", "journal record has no integer 'seq'",
                    file=str(path), line=lineno,
                )
            else:
                # seq resets to 0 when a resume run appends to the same
                # journal file; within a run it must strictly increase.
                if last_seq is not None and seq not in (last_seq + 1, 0):
                    report.emit(
                        "RUN002",
                        f"non-monotonic journal sequence: {seq} after {last_seq}",
                        file=str(path), line=lineno,
                    )
                last_seq = seq
            if event == "run_start":
                open_runs.append((lineno, str(record.get("run_id", ""))))
            elif event == "run_finish" and open_runs:
                open_runs.pop()
            elif event in ("task_quarantine", "arc_quarantine"):
                label = record.get("label") or "/".join(
                    str(p) for p in (record.get("cell"), record.get("pin"),
                                     record.get("edge")) if p
                ) or f"task {record.get('index', record.get('task', '?'))}"
                report.emit(
                    "RUN001",
                    f"run quarantined {label}: "
                    f"{record.get('error_type', 'unknown error')}: "
                    f"{record.get('message', '')}",
                    file=str(path), line=lineno,
                )
    for lineno, run_id in open_runs:
        report.emit(
            "RUN003",
            f"run {run_id or '<unnamed>'} started here but never finished "
            f"(interrupted — resume candidate)",
            file=str(path), line=lineno,
        )
    return report


# ----------------------------------------------------------------------
# Serve requests
# ----------------------------------------------------------------------
#: Fields a serve query request may carry (``design`` is required).
SERVE_REQUEST_FIELDS = frozenset({
    "op", "request_id", "design", "slews_ps", "edges", "levels",
    "correlations", "deadline_s",
})

#: Sigma levels the Table I quantile models are trusted at.
SERVE_LEVEL_RANGE = (-5, 5)

#: Default cap on one request's slew x edge x correlation cross product.
SERVE_MAX_SCENARIOS = 4096


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def lint_serve_request(doc, max_scenarios: int = SERVE_MAX_SCENARIOS) -> LintReport:
    """Validate one resident-STA query request document (``SRV`` rules).

    The server (:mod:`repro.serve`) routes every incoming query through
    this check before admission; any ERROR diagnostic turns into a
    structured reject response carrying the rendered findings. Checks:

    * SRV001 — structural shape: a JSON object with a non-empty string
      ``design``, only known fields (:data:`SERVE_REQUEST_FIELDS`), and
      list-typed grid axes;
    * SRV002 — value domains: slews finite and positive, edges
      ``rise``/``fall``, sigma levels integers within
      :data:`SERVE_LEVEL_RANGE`, correlations ``null`` or in [0, 1],
      deadline finite and positive;
    * SRV003 — the expanded scenario grid (slews × edges ×
      correlations) must not exceed ``max_scenarios``.
    """
    report = LintReport()
    if not isinstance(doc, dict):
        report.emit(
            "SRV001",
            f"request is not a JSON object (got {type(doc).__name__})",
            artifact="serve_request",
        )
        return report
    label = str(doc.get("design", "")) or "serve_request"
    for field_name in sorted(set(doc) - SERVE_REQUEST_FIELDS):
        report.emit(
            "SRV001", f"unknown request field {field_name!r}", artifact=label,
        )
    design = doc.get("design")
    if not isinstance(design, str) or not design:
        report.emit(
            "SRV001", "request has no non-empty string 'design'",
            artifact=label,
        )

    def _axis(name: str) -> Optional[list]:
        value = doc.get(name)
        if value is None:
            return None
        if not isinstance(value, list) or not value:
            report.emit(
                "SRV001", f"'{name}' must be a non-empty list",
                artifact=label,
            )
            return None
        return value

    slews = _axis("slews_ps")
    for s in slews or ():
        if not _is_number(s) or not math.isfinite(s) or s <= 0:
            report.emit(
                "SRV002", f"slew {s!r} ps is not a finite positive number",
                artifact=label,
            )
    edges = _axis("edges")
    for e in edges or ():
        if e not in ("rise", "fall"):
            report.emit(
                "SRV002", f"edge {e!r} is not 'rise' or 'fall'",
                artifact=label,
            )
    lo, hi = SERVE_LEVEL_RANGE
    for n in _axis("levels") or ():
        if not isinstance(n, int) or isinstance(n, bool) or not lo <= n <= hi:
            report.emit(
                "SRV002",
                f"sigma level {n!r} is not an integer in [{lo}, {hi}]",
                artifact=label,
            )
    correlations = _axis("correlations")
    for rho in correlations or ():
        if rho is None:
            continue
        if not _is_number(rho) or not 0.0 <= rho <= 1.0:
            report.emit(
                "SRV002",
                f"stage correlation {rho!r} is not null or in [0, 1]",
                artifact=label,
            )
    deadline = doc.get("deadline_s")
    if deadline is not None and (
        not _is_number(deadline) or not math.isfinite(deadline) or deadline <= 0
    ):
        report.emit(
            "SRV002",
            f"deadline {deadline!r} s is not a finite positive number",
            artifact=label,
        )

    n_scenarios = (
        max(1, len(slews or [0]))
        * max(1, len(edges or [0]))
        * max(1, len(correlations or [0]))
    )
    if n_scenarios > max_scenarios:
        report.emit(
            "SRV003",
            f"scenario grid of {n_scenarios} exceeds the budget of "
            f"{max_scenarios} (slews x edges x correlations)",
            artifact=label,
        )
    return report


# ----------------------------------------------------------------------
# Fitted N-sigma models
# ----------------------------------------------------------------------
def default_probe_moments() -> List[Moments]:
    """Plausible moment combinations for probing a fitted model.

    The grid covers the shapes near-threshold delay distributions
    actually take (right-skewed, mildly heavy-tailed) at two mean
    delays, staying inside the moment-validity region. It deliberately
    stops at skew 0.8: the Table I regression is linear in its moment
    features, so monotonicity is only promised on the manifold the
    training data occupies — probing far outside it (extreme skew at
    tiny variability) would flag perfectly healthy fits.
    """
    probes = []
    for mu in (20 * PS, 80 * PS):
        for ratio in (0.03, 0.08, 0.15):
            for skew, kurt in (
                (0.0, 3.0), (0.2, 3.1), (0.5, 3.4), (0.8, 4.0),
            ):
                probes.append(Moments(mu=mu, sigma=ratio * mu, skew=skew, kurt=kurt))
    return probes


def lint_nsigma_model(
    model,
    probes: Optional[Sequence[Moments]] = None,
    training: Optional[
        Tuple[Sequence[Moments], Sequence[Dict[int, float]]]
    ] = None,
    outlier_mult: float = 6.0,
) -> LintReport:
    """Checks over a fitted :class:`NSigmaCellModel` (``NSM`` rules).

    Parameters
    ----------
    model:
        The fitted model.
    probes:
        Moment combinations at which NSM001 (quantile monotonicity) is
        evaluated; defaults to :func:`default_probe_moments`.
    training:
        Optional ``(moments, quantiles)`` training data. When given,
        NSM002 flags observations whose residual against the fit
        exceeds ``outlier_mult`` times that level's RMS residual.
    """
    report = LintReport()
    levels = sorted(model.coefficients)
    if probes is None:
        probes = default_probe_moments()

    # NSM001: T(n) must be non-decreasing in n for plausible moments.
    for m in probes:
        values = [model.quantile(m, n) for n in levels]
        diffs = np.diff(values)
        if np.any(diffs < -1e-16):
            k = int(np.argmax(diffs < -1e-16))
            report.emit(
                "NSM001",
                f"model quantiles cross between {levels[k]:+d} and "
                f"{levels[k + 1]:+d} sigma at probe moments mu={m.mu / PS:.1f} ps, "
                f"sigma/mu={m.sigma / m.mu if m.mu else 0:.3f}, skew={m.skew:.2f}, "
                f"kurt={m.kurt:.2f}: T({levels[k]:+d})={values[k] / PS:.4f} ps > "
                f"T({levels[k + 1]:+d})={values[k + 1] / PS:.4f} ps",
                artifact="nsigma model",
            )
            break

    # NSM002: per-observation residual outliers against the fit.
    if training is not None:
        moments, quantiles = training
        for level in levels:
            rms = float(model.fit_rms.get(level, 0.0))
            if rms <= 0.0:
                continue
            for idx, (m, q) in enumerate(zip(moments, quantiles)):
                if level not in q:
                    continue
                residual = q[level] - model.quantile(m, level)
                if abs(residual) > outlier_mult * rms:
                    report.emit(
                        "NSM002",
                        f"observation {idx} at {level:+d} sigma: residual "
                        f"{residual / PS:.4f} ps exceeds {outlier_mult:.0f}x "
                        f"the fit RMS ({rms / PS:.4f} ps)",
                        artifact="nsigma model",
                    )
    return report


def lint_compiled_design(design, calibrated, atol: float = 0.0) -> LintReport:
    """Drift check of a compiled STA artifact against a calibration (NSM003).

    Two layers of defense:

    * the content digests must match — a digest mismatch means the
      artifact was compiled from a different (typically older) fit;
    * every packed tensor row is re-derived from the live calibration
      through the same fallback resolution and compared coefficient by
      coefficient, catching artifacts whose digest was forged or whose
      payload was edited after compilation.

    Parameters
    ----------
    design:
        A :class:`~repro.core.sta_compiled.CompiledDesign`.
    calibrated:
        The live :class:`~repro.core.calibration.CalibratedCellLibrary`.
    atol:
        Absolute tolerance for the coefficient comparison (0.0 — the
        cache round-trips floats exactly, so any difference is drift).
    """
    report = LintReport()
    artifact = f"compiled design {design.circuit_name}"
    live_digest = calibrated.content_digest()
    if design.calibration_digest != live_digest:
        report.emit(
            "NSM003",
            f"calibration digest mismatch: artifact compiled against "
            f"{design.calibration_digest[:12]}..., live calibration is "
            f"{live_digest[:12]}...; recompile the design",
            artifact=artifact,
        )

    bank = design.arcs
    checked = set()
    for (cell, pin, rising), row in sorted(bank.index.items()):
        if row in checked:
            continue
        checked.add(row)
        try:
            arc = calibrated.get(cell, pin, rising)
        except KeyError:
            report.emit(
                "NSM003",
                f"arc {cell}/{pin}/{'rise' if rising else 'fall'} is packed "
                f"in the artifact but absent from the live calibration",
                artifact=artifact,
            )
            continue
        live_row = {
            "ref": [arc.ref.mu, arc.ref.sigma, arc.ref.skew, arc.ref.kurt],
            "mu_coef": arc.mu_coef,
            "sigma_coef": arc.sigma_coef,
            "skew_coef": arc.skew_coef,
            "kurt_coef": arc.kurt_coef,
            "slew_ref": arc.slew_ref,
            "slew_coef": arc.slew_coef,
        }
        packed_row = {
            "ref": bank.ref[row],
            "mu_coef": bank.mu_coef[row],
            "sigma_coef": bank.sigma_coef[row],
            "skew_coef": bank.skew_coef[row],
            "kurt_coef": bank.kurt_coef[row],
            "slew_ref": bank.slew_ref[row],
            "slew_coef": bank.slew_coef[row],
        }
        for field_name, live in live_row.items():
            packed = packed_row[field_name]
            if not np.allclose(np.asarray(packed), np.asarray(live), rtol=0.0,
                               atol=atol, equal_nan=True):
                report.emit(
                    "NSM003",
                    f"arc {cell}/{pin}/{'rise' if rising else 'fall'} row "
                    f"{row}: packed {field_name} drifts from the live "
                    f"calibration; recompile the design",
                    artifact=artifact,
                )
                break
    return report


# ----------------------------------------------------------------------
# Packed binary artifacts (PCK rules)
# ----------------------------------------------------------------------
#: :class:`~repro.errors.PackError` ``code`` → PCK rule. Unlisted codes
#: (kind/dtype/document/io/...) are container-level problems → PCK001.
_PACK_CODE_RULES = {
    "digest": "PCK002",
    "truncated": "PCK003",
    "bounds": "PCK003",
    "stale": "PCK004",
}


def lint_pack(path, expected_key=None, calibrated=None) -> LintReport:
    """Validate a ``.rpk`` packed artifact (``PCK`` rules).

    Runs the full trust ladder without ever deserializing suspect
    bytes: container framing (PCK001), per-segment sha256 digests
    (PCK002), truncation/bounds (PCK003), and — when ``expected_key``
    (a live :func:`~repro.core.sta_compiled.design_cache_key`) and/or
    ``calibrated`` (a live
    :class:`~repro.core.calibration.CalibratedCellLibrary`) are given —
    staleness of the recorded identity (PCK004).
    """
    from repro.errors import PackError
    from repro.pack import PackFile

    report = LintReport()
    try:
        pack = PackFile.open(path, verify=False)
    except PackError as exc:
        report.emit(
            _PACK_CODE_RULES.get(exc.code, "PCK001"), str(exc), file=str(path)
        )
        return report
    try:
        pack.verify()
    except PackError as exc:
        report.emit(
            _PACK_CODE_RULES.get(exc.code, "PCK002"), str(exc), file=str(path)
        )
    recorded_key = pack.meta.get("design_cache_key")
    if expected_key is not None and recorded_key != expected_key:
        report.emit(
            "PCK004",
            f"{path}: pack records design_cache_key {recorded_key!r} but "
            f"the live design keys to {expected_key!r}",
            file=str(path),
        )
    recorded_digest = pack.meta.get("calibration_digest")
    if calibrated is not None and recorded_digest is not None:
        live = calibrated.content_digest()
        if recorded_digest != live:
            report.emit(
                "PCK004",
                f"{path}: pack was built from calibration digest "
                f"{recorded_digest[:12]}... but the live calibration is "
                f"{live[:12]}...",
                file=str(path),
            )
    return report


# ----------------------------------------------------------------------
# Artifact dispatch (used by the CLI)
# ----------------------------------------------------------------------
def lint_artifact(path) -> LintReport:
    """Lint a file by sniffing its type.

    ``.spef`` files get the SPEF rules; JSON files are dispatched on
    their content (Liberty-like characterization bundles vs. fitted
    model bundles); ``.v`` files are read as structural Verilog and get
    the circuit rules; ``.jsonl`` files are validated as run journals;
    ``.rpk`` packed binaries get the ``PCK`` container/digest rules
    (staleness needs live context — see :func:`lint_pack`).
    """
    import json
    from pathlib import Path

    path = Path(path)
    report = LintReport()
    suffix = path.suffix.lower()
    if suffix == ".spef":
        return lint_spef(path)
    if suffix == ".jsonl":
        return lint_journal(path)
    if suffix == ".rpk":
        return lint_pack(path)
    if suffix == ".v":
        from repro.errors import NetlistError
        from repro.netlist.verilog import read_verilog

        try:
            circuit = read_verilog(path)
        except NetlistError as exc:
            report.emit("ART001", f"cannot read {path}: {exc}", file=str(path))
            return report
        return lint_circuit(circuit)
    if suffix == ".json":
        try:
            with path.open() as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            report.emit("ART001", f"cannot parse {path}: {exc}", file=str(path))
            return report
        if isinstance(doc, dict) and "tables" in doc:
            from repro.cells.liberty import load_library_characterization

            report = lint_characterization(load_library_characterization(path))
            if doc.get("surrogate") and not any(
                isinstance(t, dict) and "provenance" in t
                for t in doc["tables"]
            ):
                report.emit(
                    "SUR003",
                    f"{path}: bundle is flagged as surrogate-produced but "
                    f"no table carries a provenance record",
                    file=str(path),
                )
            return report
        if isinstance(doc, dict) and "nsigma" in doc:
            from repro.core.nsigma_cell import NSigmaCellModel

            return lint_nsigma_model(NSigmaCellModel.from_dict(doc["nsigma"]))
        if isinstance(doc, dict) and "moments" in doc and "index_1_slew_s" in doc:
            # A per-arc cache checkpoint (repro.cells.characterize writes
            # one per finished arc) — lintable individually, so a resumed
            # run's checkpoints can be audited before being trusted.
            from repro.cells.liberty import table_from_dict
            from repro.errors import CharacterizationError

            try:
                table = table_from_dict(doc)
            except CharacterizationError as exc:
                report.emit("ART001", f"cannot read {path}: {exc}", file=str(path))
                return report
            return lint_table(table)
        report.emit(
            "ART001",
            f"{path}: unrecognized JSON artifact (expected a characterization "
            f"or model bundle)",
            file=str(path),
        )
        return report
    report.emit("ART001", f"{path}: unknown artifact type {suffix!r}", file=str(path))
    return report
