"""SARIF 2.1.0 reporter (and a vendored structural validator).

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs (GitHub, VS Code) ingest;
emitting it lets the deep-lint CI job annotate PRs instead of burying
findings in a log. The emitter maps the lint vocabulary directly:

========================  =================================
lint concept              SARIF field
========================  =================================
:class:`Rule`             ``runs[].tool.driver.rules[]``
:class:`Diagnostic`       ``runs[].results[]``
``Severity.ERROR``        ``level: "error"``
``Severity.WARNING``      ``level: "warning"``
``Severity.INFO``         ``level: "note"``
``file:line``             ``physicalLocation`` + ``region``
========================  =================================

:func:`validate_sarif` is a minimal, dependency-free structural check
of the subset this emitter produces (CI must not fetch the official
JSON schema over the network). It verifies the invariants consumers
actually rely on — version string, tool driver with named rules, every
result referencing a declared rule with a message and a well-formed
location — and returns problems as strings rather than raising, so a
test can assert the list is empty and show all failures at once.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Set

from repro.lint.core import LintReport, Severity, get_rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def to_sarif(report: LintReport, tool_name: str = "repro-lint") -> dict:
    """Render a report as a SARIF 2.1.0 document (as a plain dict)."""
    rule_ids = sorted({d.rule_id for d in report.diagnostics})
    rules = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)
        rules.append({
            "id": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale or rule.summary},
            "defaultConfiguration": {"level": _LEVELS[rule.severity]},
            "properties": {"layer": rule.layer},
        })
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    results = []
    for diag in report.diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diag.rule_id,
            "ruleIndex": index[diag.rule_id],
            "level": _LEVELS[diag.severity],
            "message": {"text": diag.message},
        }
        if diag.file:
            region = {"startLine": diag.line} if diag.line else {}
            location: Dict[str, Any] = {
                "physicalLocation": {
                    "artifactLocation": {"uri": diag.file},
                },
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        elif diag.artifact:
            result["locations"] = [{
                "logicalLocations": [{"name": diag.artifact}],
            }]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {"name": tool_name, "rules": rules}},
            "results": results,
        }],
    }


def sarif_json(report: LintReport, tool_name: str = "repro-lint") -> str:
    """:func:`to_sarif` serialized with stable key order."""
    return json.dumps(to_sarif(report, tool_name), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Vendored structural validator (no network, no jsonschema dependency)
# ----------------------------------------------------------------------
def validate_sarif(doc: Any) -> List[str]:
    """Structural problems in a SARIF document ([] when valid).

    Checks the SARIF 2.1.0 subset that :func:`to_sarif` emits and that
    downstream viewers require; deliberately NOT a full JSON-schema
    implementation.
    """
    problems: List[str] = []

    def err(msg: str) -> None:
        problems.append(msg)

    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("version") != SARIF_VERSION:
        err(f"version must be {SARIF_VERSION!r}, got {doc.get('version')!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]

    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not isinstance(run, dict):
            err(f"{where} must be an object")
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        declared: Set[str] = set()
        if not isinstance(driver, dict) or not driver.get("name"):
            err(f"{where}.tool.driver.name is required")
        else:
            rules = driver.get("rules", [])
            if not isinstance(rules, list):
                err(f"{where}.tool.driver.rules must be an array")
                rules = []
            for ki, rule in enumerate(rules):
                if not isinstance(rule, dict) or not rule.get("id"):
                    err(f"{where}.tool.driver.rules[{ki}].id is required")
                    continue
                declared.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            err(f"{where}.results must be an array")
            continue
        for si, result in enumerate(results):
            rwhere = f"{where}.results[{si}]"
            if not isinstance(result, dict):
                err(f"{rwhere} must be an object")
                continue
            rule_id = result.get("ruleId")
            if not rule_id:
                err(f"{rwhere}.ruleId is required")
            elif declared and rule_id not in declared:
                err(f"{rwhere}.ruleId {rule_id!r} not among declared rules")
            message = result.get("message")
            if not isinstance(message, dict) or not message.get("text"):
                err(f"{rwhere}.message.text is required")
            if result.get("level") not in ("error", "warning", "note", None):
                err(f"{rwhere}.level {result.get('level')!r} is not a "
                    f"SARIF level")
            for li, loc in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{li}]"
                if not isinstance(loc, dict):
                    err(f"{lwhere} must be an object")
                    continue
                phys = loc.get("physicalLocation")
                logical = loc.get("logicalLocations")
                if phys is None and logical is None:
                    err(f"{lwhere} needs a physicalLocation or "
                        f"logicalLocations")
                if phys is not None:
                    art = phys.get("artifactLocation", {}) \
                        if isinstance(phys, dict) else {}
                    if not isinstance(art, dict) or not art.get("uri"):
                        err(f"{lwhere}.physicalLocation.artifactLocation"
                            f".uri is required")
                    region = phys.get("region") if isinstance(phys, dict) \
                        else None
                    if region is not None:
                        start = region.get("startLine") \
                            if isinstance(region, dict) else None
                        if not isinstance(start, int) or start < 1:
                            err(f"{lwhere}.physicalLocation.region"
                                f".startLine must be a positive integer")
    return problems
