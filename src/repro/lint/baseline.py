"""Lint baselines: fail CI on *new* findings only.

Turning a new static analysis on against an existing tree surfaces
pre-existing findings that may be intentional (the version salt
deliberately reads ``REPRO_KERNEL``) or not worth churning the code
for. Blocking CI on them would force a big-bang cleanup; ignoring them
would let new violations hide in the noise. The standard escape is a
*baseline*: a checked-in snapshot of the accepted findings. CI fails
only on findings **not** in the baseline, so the debt is frozen and
every new violation is caught the day it is written.

Findings are matched by a *fingerprint* — SHA-256 over
``rule|file|message`` — which deliberately excludes the line number:
editing an unrelated part of a file must not re-trigger accepted
findings. (Rule messages are stable per finding and never embed line
numbers, which is what makes this work.) The baseline file keeps the
readable fields next to each fingerprint plus a free-form ``reason``
so reviewers can audit what was accepted and why.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import LintConfigError
from repro.lint.core import Diagnostic, LintReport

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".lint-baseline.json"


def fingerprint(diag: Diagnostic) -> str:
    """Stable identity of a finding across unrelated edits."""
    key = f"{diag.rule_id}|{diag.file or diag.artifact}|{diag.message}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


class Baseline:
    """A set of accepted findings, persisted as reviewable JSON."""

    def __init__(self, entries: Optional[Dict[str, dict]] = None):
        #: fingerprint → entry (rule/file/message/reason).
        self.entries: Dict[str, dict] = dict(entries or {})

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise LintConfigError(f"baseline {path} is not valid JSON: {exc}")
        if not isinstance(doc, dict) or "entries" not in doc:
            raise LintConfigError(
                f"baseline {path} has no 'entries' key — not a baseline file?"
            )
        version = doc.get("version", 0)
        if version != BASELINE_VERSION:
            raise LintConfigError(
                f"baseline {path} has version {version}; this tool reads "
                f"version {BASELINE_VERSION} — regenerate with "
                f"`repro lint --deep --update-baseline`"
            )
        entries = {}
        for entry in doc["entries"]:
            entries[entry["fingerprint"]] = entry
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        """Write the baseline (sorted, diff-friendly)."""
        doc = {
            "version": BASELINE_VERSION,
            "entries": sorted(
                self.entries.values(),
                key=lambda e: (e.get("file", ""), e["rule"], e["fingerprint"]),
            ),
        }
        Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # ------------------------------------------------------------------
    @classmethod
    def from_report(cls, report: LintReport,
                    reasons: Optional[Dict[str, str]] = None) -> "Baseline":
        """Accept every finding in ``report`` (optionally with reasons,
        keyed by fingerprint)."""
        baseline = cls()
        reasons = reasons or {}
        for diag in report.diagnostics:
            fp = fingerprint(diag)
            baseline.entries[fp] = {
                "fingerprint": fp,
                "rule": diag.rule_id,
                "file": diag.file or diag.artifact,
                "message": diag.message,
                "reason": reasons.get(fp, ""),
            }
        return baseline

    # ------------------------------------------------------------------
    def filter_new(self, report: LintReport) -> Tuple[LintReport, int]:
        """Split a report against the baseline.

        Returns ``(new_report, matched)``: the report stripped of
        accepted findings (they count as suppressed), and how many
        baseline entries matched — callers can warn when the baseline
        has gone stale (``matched < len(entries)``).
        """
        new = LintReport(suppressed=report.suppressed)
        matched_fps = set()
        for diag in report.diagnostics:
            fp = fingerprint(diag)
            if fp in self.entries:
                matched_fps.add(fp)
                new.suppressed += 1
            else:
                new.add(diag)
        return new, len(matched_fps)

    def stale_entries(self, report: LintReport) -> List[dict]:
        """Baseline entries whose finding no longer fires (fixed code):
        candidates for deletion at the next baseline refresh."""
        live = {fingerprint(d) for d in report.diagnostics}
        return [e for fp, e in sorted(self.entries.items()) if fp not in live]

    def __len__(self) -> int:
        return len(self.entries)
