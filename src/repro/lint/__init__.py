"""Static analysis for circuits, moment tables, models — and the code itself.

Three layers share one diagnostic core (:mod:`repro.lint.core`):

* :mod:`repro.lint.domain` checks flow artifacts — gate netlists, RC
  trees / SPEF, characterized moment tables, fitted N-sigma models —
  for the structural invariants the pipeline silently depends on;
* :mod:`repro.lint.codebase` is an AST pass over the source tree
  enforcing repo invariants (seeded RNGs, no wall-clock reads, unit
  constants over bare literals, errors raised with messages);
* :mod:`repro.lint.flowgraph` is a whole-program dataflow layer —
  per-function CFGs with taint, dimension and lifecycle analyses
  (determinism taint DET0xx, cache-key completeness CKY0xx, unit
  inference UNT0xx, resource lifecycle RES0xx) — run via
  :func:`lint_deep` / ``repro lint --deep``.

Flow entry points (:mod:`repro.core.flow`, :mod:`repro.core.sta`,
:mod:`repro.cells.characterize`, :mod:`repro.interconnect.spef`) run
the domain rules on their inputs and fail fast; the ``repro lint`` CLI
subcommand and the CI ``lint``/``deep-lint`` jobs expose all layers.
Reports render as text, JSON (:meth:`LintReport.to_json` /
:meth:`LintReport.from_json`) or SARIF (:mod:`repro.lint.sarif`), and
:mod:`repro.lint.baseline` lets CI fail on *new* findings only. Every
rule is catalogued in ``docs/lint.md``.
"""

from repro.lint.core import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)
from repro.lint.domain import (
    lint_artifact,
    lint_characterization,
    lint_circuit,
    lint_compiled_design,
    lint_journal,
    lint_kernel_equivalence,
    lint_nsigma_model,
    lint_pack,
    lint_rctree,
    lint_serve_request,
    lint_spef,
    lint_surrogate_provenance,
    lint_table,
)
from repro.lint.codebase import lint_codebase, lint_source
from repro.lint.flowgraph import lint_deep, lint_module_deep
from repro.lint.baseline import Baseline, fingerprint
from repro.lint.sarif import sarif_json, to_sarif, validate_sarif

__all__ = [
    "Baseline",
    "Diagnostic",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "fingerprint",
    "get_rule",
    "register_rule",
    "sarif_json",
    "to_sarif",
    "validate_sarif",
    "lint_artifact",
    "lint_characterization",
    "lint_circuit",
    "lint_codebase",
    "lint_compiled_design",
    "lint_deep",
    "lint_journal",
    "lint_kernel_equivalence",
    "lint_module_deep",
    "lint_nsigma_model",
    "lint_pack",
    "lint_rctree",
    "lint_serve_request",
    "lint_source",
    "lint_spef",
    "lint_surrogate_provenance",
    "lint_table",
]
