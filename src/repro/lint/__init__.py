"""Static analysis for circuits, moment tables, models — and the code itself.

Two layers share one diagnostic core (:mod:`repro.lint.core`):

* :mod:`repro.lint.domain` checks flow artifacts — gate netlists, RC
  trees / SPEF, characterized moment tables, fitted N-sigma models —
  for the structural invariants the pipeline silently depends on;
* :mod:`repro.lint.codebase` is an AST pass over the source tree
  enforcing repo invariants (seeded RNGs, no wall-clock reads, unit
  constants over bare literals, errors raised with messages).

Flow entry points (:mod:`repro.core.flow`, :mod:`repro.core.sta`,
:mod:`repro.cells.characterize`, :mod:`repro.interconnect.spef`) run
the domain rules on their inputs and fail fast; the ``repro lint`` CLI
subcommand and the CI ``lint`` job expose both layers. Every rule is
catalogued in ``docs/lint.md``.
"""

from repro.lint.core import (
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)
from repro.lint.domain import (
    lint_artifact,
    lint_characterization,
    lint_circuit,
    lint_compiled_design,
    lint_journal,
    lint_kernel_equivalence,
    lint_nsigma_model,
    lint_rctree,
    lint_spef,
    lint_table,
)
from repro.lint.codebase import lint_codebase, lint_source

__all__ = [
    "Diagnostic",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register_rule",
    "lint_artifact",
    "lint_characterization",
    "lint_circuit",
    "lint_codebase",
    "lint_compiled_design",
    "lint_journal",
    "lint_kernel_equivalence",
    "lint_nsigma_model",
    "lint_rctree",
    "lint_source",
    "lint_spef",
    "lint_table",
]
