"""Layer 2 — AST lint rules over the repo's own source code.

These encode invariants the simulation flow depends on and that nearly
broke in earlier PRs:

* ``SEED001`` — every RNG must be explicitly seeded. An unseeded
  ``np.random.default_rng()`` (or any legacy ``np.random.*`` global-state
  call) silently breaks bit-exact reproducibility and the content-hash
  cache, whose keys assume results are pure functions of their inputs.
* ``TIME001`` — no wall-clock reads (``time.time``, ``datetime.now``,
  …) outside performance counters. A timestamp that leaks into kernel
  results or cache keys makes artifacts irreproducible and uncacheable.
  (``time.perf_counter`` / ``monotonic`` are fine: they only ever feed
  perf reporting.)
* ``UNIT001`` — no bare unit-magnitude literals (``1e-12``, ``20e-15``,
  …) where a :mod:`repro.units` constant exists. ``20 * PS`` documents
  the quantity's dimension; ``2e-11`` invites silent unit mix-ups.
* ``ERR001`` — every :class:`~repro.errors.ReproError` subclass must be
  raised with a message. A bare ``raise CharacterizationError`` tells
  an operator nothing about which arc or artifact failed.

Suppression is explicit and local: append ``# repro-lint: disable=ID``
to the offending line (a bare family token like ``disable=DET``
suppresses every ``DET…`` rule), or put
``# repro-lint: disable-file=ID`` on its own line for whole-file
exemptions (reserved for files like :mod:`repro.units` that *define*
the constants the rule points to). A suppression that never matches a
finding of this pass is itself flagged (``LNT001``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.lint.core import (
    LintReport,
    Rule,
    Severity,
    Suppressions,
    register_rule,
)

register_rule(Rule(
    "SEED001", "code", Severity.ERROR,
    "unseeded RNG: np.random.default_rng() without a seed, or legacy "
    "np.random.* global-state calls",
    "unseeded randomness breaks bit-exact reproducibility and poisons the "
    "content-hashed artifact cache",
))
register_rule(Rule(
    "TIME001", "code", Severity.ERROR,
    "wall-clock read (time.time / datetime.now / datetime.utcnow / "
    "date.today) in library code",
    "timestamps leaking into kernels or cache keys make results "
    "irreproducible; use time.perf_counter for perf timing",
))
register_rule(Rule(
    "UNIT001", "code", Severity.WARNING,
    "bare unit-magnitude literal (…e-15/-12/-9/-6) where a repro.units "
    "constant exists",
    "1e-12 might be PS or PF; `20 * PS` carries the dimension and survives "
    "refactors",
))
register_rule(Rule(
    "ERR001", "code", Severity.ERROR,
    "ReproError subclass raised without a message",
    "an argumentless error names no artifact, arc or file; operators "
    "cannot act on it",
))

#: Legacy numpy global-RNG entry points (all draw from hidden state).
_LEGACY_NP_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "normal",
    "uniform", "choice", "shuffle", "permutation", "seed", "standard_normal",
    "exponential", "poisson", "binomial",
})

#: Wall-clock call sites: attribute name → allowed owner names.
_WALLCLOCK_ATTRS: Dict[str, Set[str]] = {
    "time": {"time"},
    "now": {"datetime", "date"},
    "utcnow": {"datetime"},
    "today": {"datetime", "date"},
}

#: Exponents of bare literals that have a repro.units equivalent.
_UNIT_SUGGESTIONS: Dict[str, str] = {
    "-15": "FF (or FS)",
    "-12": "PS (or PF)",
    "-9": "NS (or NM)",
    "-6": "US (or UM)",
}

_UNIT_LITERAL = re.compile(r"^\d+(?:\.\d+)?[eE](-(?:15|12|9|6))$")

#: Rule IDs this pass can emit — the `scope` of its suppression
#: comments; tokens aimed at other passes (e.g. ``DET``) are left to
#: the flowgraph engine's own unused-suppression check.
CODE_RULE_IDS = frozenset({"SEED001", "TIME001", "UNIT001", "ERR001", "LNT001"})


def _error_class_names() -> Set[str]:
    """Names of every ReproError subclass (kept current automatically)."""
    import repro.errors as errors_mod

    return {
        name
        for name, obj in vars(errors_mod).items()
        if isinstance(obj, type) and issubclass(obj, errors_mod.ReproError)
    }


def _attr_owner(node: ast.expr) -> Optional[str]:
    """The name one level up an attribute chain: ``np.random.x`` → ``random``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _CodeVisitor(ast.NodeVisitor):
    """One-pass AST walk emitting code-layer diagnostics."""

    def __init__(self, source: str, rel_path: str, report: LintReport,
                 suppressions: Suppressions):
        self.source = source
        self.rel_path = rel_path
        self.report = report
        self.suppressions = suppressions
        self.error_names = _error_class_names()

    # ------------------------------------------------------------------
    def _emit(self, rule_id: str, lineno: int, message: str) -> None:
        if self.suppressions.active(rule_id, lineno):
            self.report.suppressed += 1
            return
        self.report.emit(rule_id, message, file=self.rel_path, line=lineno)

    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            attr = func.attr
            owner = _attr_owner(func.value)
            # SEED001: default_rng() with no/None seed, from any module alias.
            if attr == "default_rng":
                seed_args = list(node.args) + [
                    kw.value for kw in node.keywords if kw.arg in (None, "seed")
                ]
                unseeded = not seed_args or any(
                    isinstance(a, ast.Constant) and a.value is None
                    for a in seed_args[:1]
                )
                if unseeded:
                    self._emit(
                        "SEED001", node.lineno,
                        "default_rng() called without an explicit seed",
                    )
            # SEED001: legacy np.random.* global-state API.
            elif attr in _LEGACY_NP_RANDOM and owner == "random":
                root = func.value
                base = root.value if isinstance(root, ast.Attribute) else None
                if isinstance(base, ast.Name) and base.id in ("np", "numpy"):
                    self._emit(
                        "SEED001", node.lineno,
                        f"legacy global-state RNG call np.random.{attr}(); "
                        f"use a seeded np.random.default_rng(seed) instead",
                    )
            # TIME001: wall-clock reads.
            elif attr in _WALLCLOCK_ATTRS and owner in _WALLCLOCK_ATTRS[attr]:
                self._emit(
                    "TIME001", node.lineno,
                    f"wall-clock read {owner}.{attr}(); results and cache "
                    f"keys must not depend on the current time",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            segment = ast.get_source_segment(self.source, node) or ""
            m = _UNIT_LITERAL.match(segment.strip())
            if m:
                suggestion = _UNIT_SUGGESTIONS[m.group(1)]
                self._emit(
                    "UNIT001", node.lineno,
                    f"bare unit literal {segment.strip()}; use a repro.units "
                    f"constant instead (e.g. {suggestion})",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        bare_name: Optional[str] = None
        if isinstance(exc, ast.Name) and exc.id in self.error_names:
            bare_name = exc.id
        elif isinstance(exc, ast.Call) and not exc.args and not exc.keywords:
            func = exc.func
            callee = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if callee in self.error_names:
                bare_name = callee
        if bare_name is not None:
            self._emit(
                "ERR001", node.lineno,
                f"{bare_name} raised without a message; name the failing "
                f"artifact/arc/file in the error",
            )
        self.generic_visit(node)


def lint_source(source: str, rel_path: str = "<string>") -> LintReport:
    """Run the code rules over one module's source text."""
    report = LintReport()
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        # A file that does not parse cannot be linted; surface it as an
        # ERR001-severity diagnostic rather than crashing the whole run.
        report.emit(
            "ERR001", f"cannot parse {rel_path}: {exc}",
            file=rel_path, line=exc.lineno or 0,
        )
        return report
    suppressions = Suppressions(source, scope=CODE_RULE_IDS)
    _CodeVisitor(source, rel_path, report, suppressions).visit(tree)
    for lineno, token in suppressions.unused():
        if suppressions.active("LNT001", lineno):
            report.suppressed += 1
            continue
        report.emit(
            "LNT001",
            f"suppression `disable={token}` matched no finding of this "
            f"pass; delete it or fix the rule ID",
            file=rel_path, line=lineno,
        )
    return report


def lint_codebase(
    root: Optional[Union[str, Path]] = None,
    relative_to: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Run the code rules over every ``.py`` file under ``root``.

    ``root`` defaults to the installed :mod:`repro` package directory,
    so ``repro lint --codebase`` checks exactly the code it is running.
    Paths in diagnostics are reported relative to ``relative_to``
    (default: ``root``'s parent) for stable output across machines.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = Path(root)
    base = Path(relative_to) if relative_to is not None else root.parent
    report = LintReport()
    if root.is_file():
        files: Iterable[Path] = [root]
    else:
        files = sorted(
            p for p in root.rglob("*.py") if "__pycache__" not in p.parts
        )
    for path in files:
        try:
            rel = str(path.relative_to(base))
        except ValueError:
            rel = str(path)
        report.extend(lint_source(path.read_text(), rel_path=rel))
    return report
