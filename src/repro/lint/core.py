"""Diagnostic core shared by both lint layers.

The linter is a rule engine: every check is a registered :class:`Rule`
with a stable ID, a layer (``domain`` for artifact checks, ``code`` for
the AST pass over the source tree), a default :class:`Severity` and a
one-line rationale. Checks emit :class:`Diagnostic` records collected
into a :class:`LintReport`, which knows how to render itself as text or
JSON, filter suppressed rules, and fail fast by raising a
:class:`~repro.errors.ReproError` subclass when errors are present.

The rule catalogue is introspectable (``all_rules()``) so the CLI's
``--list-rules`` output and ``docs/lint.md`` cannot drift apart from
the implementation.
"""

from __future__ import annotations

import enum
import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.errors import LintConfigError, ReproError

#: Valid rule layers: ``domain`` (artifact checks), ``code`` (single-node
#: AST checks), ``flow`` (whole-function dataflow checks, see
#: :mod:`repro.lint.flowgraph`).
LAYERS = ("domain", "code", "flow")


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering allows threshold comparisons."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One registered lint check.

    Attributes
    ----------
    rule_id:
        Stable identifier (e.g. ``"RCT001"``) used in diagnostics,
        suppressions and documentation.
    layer:
        ``"domain"`` (artifact checks) or ``"code"`` (AST checks).
    severity:
        Default severity of diagnostics emitted by this rule.
    summary:
        One-line description of what the rule flags.
    rationale:
        Why violating artifacts/code corrupt the flow.
    """

    rule_id: str
    layer: str
    severity: Severity
    summary: str
    rationale: str = ""


#: Global rule registry: rule ID → :class:`Rule`.
_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add a rule to the registry.

    Idempotent: re-registering a rule *identical* to the existing one
    (same ID, layer, severity, summary, rationale) is a no-op, so a
    rule module surviving ``importlib.reload`` or being imported under
    two names cannot crash the engine. Re-registering the same ID with
    a *different* definition is a real conflict and raises
    :class:`~repro.errors.LintConfigError` naming both definitions.
    """
    existing = _REGISTRY.get(rule.rule_id)
    if existing is not None:
        if existing == rule:
            return existing
        raise LintConfigError(
            f"conflicting re-definition of lint rule {rule.rule_id!r}: "
            f"registered as {existing}, re-registered as {rule}"
        )
    if rule.layer not in LAYERS:
        raise LintConfigError(
            f"rule {rule.rule_id}: unknown layer {rule.layer!r} "
            f"(expected one of {', '.join(LAYERS)})"
        )
    _REGISTRY[rule.rule_id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    """Look up a registered rule; raises ``KeyError`` for unknown IDs."""
    return _REGISTRY[rule_id]


def all_rules(layer: Optional[str] = None) -> List[Rule]:
    """Every registered rule (optionally one layer), sorted by ID."""
    rules = sorted(_REGISTRY.values(), key=lambda r: r.rule_id)
    if layer is not None:
        rules = [r for r in rules if r.layer == layer]
    return rules


#: LNT001 lives in the core because both the code layer
#: (:mod:`repro.lint.codebase`) and the flow layer
#: (:mod:`repro.lint.flowgraph.engine`) report unused suppressions.
register_rule(Rule(
    "LNT001", "code", Severity.WARNING,
    "unused `# repro-lint: disable=` suppression",
    "a suppression that no longer matches any finding hides nothing but "
    "still reads as if it did; delete it or fix the rule ID",
))


_SUPPRESS_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9, ]+)")
_SUPPRESS_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9, ]+)")
#: A bare family token (letters only, e.g. ``DET``) suppresses every
#: rule whose ID starts with those letters (``DET001``, ``DET002``, …).
_FAMILY_TOKEN = re.compile(r"^[A-Z]+$")


class Suppressions:
    """Per-file suppression state parsed from ``# repro-lint:`` comments.

    Two comment forms are recognized (each prefixed with ``#`` in real
    code; spelled without it here so this docstring is not itself
    parsed as a suppression):

    * ``repro-lint: disable=UNIT001,DET`` on (or appended to) a line
      suppresses those rules on that line only;
    * ``repro-lint: disable-file=UNIT001`` on its own line exempts
      the whole file.

    Tokens are either full rule IDs (``DET001``) or *family prefixes*
    (``DET``), which match every rule ID starting with those letters.
    Matches are recorded, so a lint pass can report suppressions that
    never fired (rule ``LNT001``) — restricted to tokens within
    ``scope`` (the rule IDs the current pass can emit), because a file
    is linted by several passes and a token aimed at another pass is
    not unused, just out of scope here.
    """

    def __init__(self, source: str, scope: Optional[Iterable[str]] = None):
        #: line → tokens active on that line only.
        self.by_line: Dict[int, Set[str]] = {}
        #: tokens active file-wide, with the line that declared them.
        self.file_wide: Dict[str, int] = {}
        #: (line, token) pairs that matched at least one diagnostic.
        self._used: Set[Tuple[int, str]] = set()
        self._scope = set(scope) if scope is not None else None
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_FILE.search(text)
            if m:
                for tok in self._tokens(m.group(1)):
                    self.file_wide.setdefault(tok, lineno)
                continue
            m = _SUPPRESS_LINE.search(text)
            if m:
                self.by_line.setdefault(lineno, set()).update(
                    self._tokens(m.group(1))
                )

    @staticmethod
    def _tokens(group: str) -> Set[str]:
        return {tok.strip() for tok in group.split(",") if tok.strip()}

    @staticmethod
    def _token_matches(token: str, rule_id: str) -> bool:
        if token == rule_id:
            return True
        return bool(_FAMILY_TOKEN.match(token)) and rule_id.startswith(token)

    # ------------------------------------------------------------------
    def active(self, rule_id: str, lineno: int) -> bool:
        """Whether ``rule_id`` is suppressed at ``lineno`` (records usage)."""
        hit = False
        for tok, decl_line in self.file_wide.items():
            if self._token_matches(tok, rule_id):
                self._used.add((decl_line, tok))
                hit = True
        for tok in self.by_line.get(lineno, ()):
            if self._token_matches(tok, rule_id):
                self._used.add((lineno, tok))
                hit = True
        return hit

    # ------------------------------------------------------------------
    def _in_scope(self, token: str) -> bool:
        """Whether an unused ``token`` concerns rules of the current pass."""
        if self._scope is None:
            return True
        if _FAMILY_TOKEN.match(token):
            return any(rid.startswith(token) for rid in self._scope)
        return token in self._scope

    def unused(self) -> List[Tuple[int, str]]:
        """``(line, token)`` suppressions that never matched a finding.

        Only tokens within the pass's ``scope`` are reported; call
        after the pass has emitted (and filtered) every diagnostic.
        """
        candidates = [(line, tok) for tok, line in self.file_wide.items()]
        candidates += [
            (line, tok) for line, toks in self.by_line.items() for tok in toks
        ]
        return sorted(
            (line, tok)
            for line, tok in candidates
            if (line, tok) not in self._used and self._in_scope(tok)
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding: which rule fired, where, and why.

    Attributes
    ----------
    rule_id / severity:
        The rule that fired and the (possibly overridden) severity.
    message:
        Human-readable description naming the offending object.
    artifact:
        Name of the checked artifact (net, arc, circuit) for domain
        diagnostics; empty for code diagnostics.
    file / line:
        Source location for code diagnostics (``line`` is 1-based);
        ``file`` may also carry the artifact path for domain checks.
    """

    rule_id: str
    severity: Severity
    message: str
    artifact: str = ""
    file: str = ""
    line: int = 0

    @classmethod
    def of(
        cls,
        rule_id: str,
        message: str,
        artifact: str = "",
        file: str = "",
        line: int = 0,
        severity: Optional[Severity] = None,
    ) -> "Diagnostic":
        """Build a diagnostic, defaulting severity from the registry."""
        rule = get_rule(rule_id)
        return cls(
            rule_id=rule_id,
            severity=severity if severity is not None else rule.severity,
            message=message,
            artifact=artifact,
            file=file,
            line=line,
        )

    def location(self) -> str:
        """``file:line`` / artifact string for rendering ("" if neither)."""
        if self.file and self.line:
            return f"{self.file}:{self.line}"
        if self.file:
            return self.file
        return self.artifact

    def as_dict(self) -> dict:
        """JSON-serializable form (used by the ``--format json`` reporter)."""
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "artifact": self.artifact,
            "file": self.file,
            "line": self.line,
        }

    def render(self) -> str:
        """One-line text form: ``location: severity RULE: message``."""
        loc = self.location()
        prefix = f"{loc}: " if loc else ""
        return f"{prefix}{self.severity} {self.rule_id}: {self.message}"


@dataclass
class LintReport:
    """An ordered collection of diagnostics with reporting helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Count of diagnostics removed by :meth:`suppress` (for reporting).
    suppressed: int = 0

    # ------------------------------------------------------------------
    def add(self, diag: Diagnostic) -> None:
        """Append one diagnostic."""
        self.diagnostics.append(diag)

    def emit(self, rule_id: str, message: str, **kwargs: object) -> None:
        """Shorthand for ``add(Diagnostic.of(...))``."""
        self.add(Diagnostic.of(rule_id, message, **kwargs))  # type: ignore[arg-type]

    def extend(self, other: "LintReport") -> None:
        """Merge another report into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        """Diagnostics at ERROR severity."""
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Diagnostics at WARNING severity."""
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics are present."""
        return not self.errors

    def rule_ids(self) -> List[str]:
        """Sorted unique rule IDs that fired (handy in tests)."""
        return sorted({d.rule_id for d in self.diagnostics})

    # ------------------------------------------------------------------
    def suppress(self, disabled: Iterable[str]) -> "LintReport":
        """A copy without diagnostics from the ``disabled`` rule IDs."""
        off = set(disabled)
        kept = [d for d in self.diagnostics if d.rule_id not in off]
        return LintReport(
            diagnostics=kept,
            suppressed=self.suppressed + len(self.diagnostics) - len(kept),
        )

    # ------------------------------------------------------------------
    # Reporters
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line totals, e.g. ``2 errors, 1 warning (3 suppressed)``."""
        n_err, n_warn = len(self.errors), len(self.warnings)
        parts = [
            f"{n_err} error{'s' if n_err != 1 else ''}",
            f"{n_warn} warning{'s' if n_warn != 1 else ''}",
        ]
        text = ", ".join(parts)
        if self.suppressed:
            text += f" ({self.suppressed} suppressed)"
        return text

    def format_text(self) -> str:
        """Multi-line text report ending with the summary line."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON report: diagnostics plus totals (stable key order)."""
        doc = {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "suppressed": self.suppressed,
            },
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        """Re-parse :meth:`to_json` output into an equivalent report.

        The inverse direction of the JSON reporter: severities are
        resolved back to :class:`Severity` members and the suppressed
        count is restored, so ``from_json(r.to_json())`` compares equal
        to ``r`` diagnostic-for-diagnostic.
        """
        doc = json.loads(text)
        report = cls(suppressed=int(doc.get("summary", {}).get("suppressed", 0)))
        for entry in doc.get("diagnostics", []):
            report.add(Diagnostic(
                rule_id=entry["rule"],
                severity=Severity[entry["severity"].upper()],
                message=entry["message"],
                artifact=entry.get("artifact", ""),
                file=entry.get("file", ""),
                line=int(entry.get("line", 0)),
            ))
        return report

    # ------------------------------------------------------------------
    def raise_if_errors(
        self, exc_type: Type[ReproError], context: str = ""
    ) -> None:
        """Fail fast: raise ``exc_type`` listing every ERROR diagnostic."""
        errors = self.errors
        if not errors:
            return
        head = f"{context}: " if context else ""
        body = "; ".join(d.render() for d in errors[:10])
        if len(errors) > 10:
            body += f"; ... and {len(errors) - 10} more"
        raise exc_type(f"{head}{len(errors)} lint error(s): {body}")
