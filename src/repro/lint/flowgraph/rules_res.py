"""RES0xx — resource lifecycle over exception paths.

The fan-out layer owns POSIX shared-memory segments
(:meth:`repro.parallel.SharedPayloadBank.publish`), the cache writes
through ``tempfile.mkstemp``, and runs stream events into an open
:class:`repro.journal.RunJournal` file. Each of these survives the
process if dropped: an unlinked-never segment stays in ``/dev/shm``
until reboot, a stray ``.tmp`` confuses the orphan sweeper, an
unflushed journal loses its tail. These rules prove, per function, that
every acquisition is *released on every path* — including the paths
the happy-case reader never sees: the exception edges of the CFG.

* ``RES001`` (error) — ``SharedPayloadBank.publish`` result may escape
  the function unreleased (no ``close()`` on some path).
* ``RES002`` (error) — ``tempfile.mkstemp`` file may survive (no
  ``os.unlink``/``os.replace``/``os.close`` of either handle on some
  path).
* ``RES003`` (error) — a ``RunJournal`` opened here may never be
  ``close()``-d on some path.

The analysis is a forward *may-hold* pass: state is the set of live
acquisitions; joins union; the rule fires if any acquisition reaches
the CFG exit (which abnormal termination also does — that is what
makes the check path-sensitive). Recognised discharges:

* a release call on the variable (or any alias of the same
  acquisition: ``fd`` and ``tmp_name`` from one ``mkstemp`` are one
  resource);
* acquisition in a ``with`` header — the context manager releases;
* ownership escape: returning or yielding the value, storing it on
  ``self``/a subscript, or handing it to a container
  (``banks.append(bank)``) — some other scope's problem now;
* a guarded release, ``if bank is not None: bank.close()``: when an
  ``if`` test mentions the variable and a release appears under it,
  the acquisition is discharged at the header (on the other branch the
  acquisition was falsy/absent).

Plain *use* — passing the variable to an ordinary call — is not an
escape: ``use(bank)`` between acquire and release is exactly where the
exception-path leak lives.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.core import Diagnostic, Rule, Severity, register_rule
from repro.lint.flowgraph.cfg import FunctionUnit, iter_functions
from repro.lint.flowgraph.dataflow import (
    ForwardAnalysis,
    assignments_of,
    call_name,
    ref_name,
)

register_rule(Rule(
    "RES001", "flow", Severity.ERROR,
    "SharedPayloadBank.publish result may not be closed on every path",
    "an unreleased bank leaks a /dev/shm segment until reboot; close() "
    "in a finally or use the bank as a context manager",
))
register_rule(Rule(
    "RES002", "flow", Severity.ERROR,
    "mkstemp temp file may not be cleaned up on every path",
    "a stray .tmp defeats the cache's atomic-write protocol and feeds "
    "the orphan sweeper; unlink it in a finally",
))
register_rule(Rule(
    "RES003", "flow", Severity.ERROR,
    "RunJournal opened here may not be closed on every path",
    "an unclosed journal can lose its buffered tail — the exact events "
    "(crash, retry) the journal exists to record",
))

#: acquisition kind → (rule, human description)
KIND_RULES: Dict[str, Tuple[str, str]] = {
    "bank": ("RES001", "shared-memory bank"),
    "tmpfile": ("RES002", "mkstemp temp file"),
    "journal": ("RES003", "run journal"),
}

#: per-kind method/function names that discharge the resource. For a
#: temp file the on-disk entry is the resource — os.close(fd) alone
#: does NOT discharge it, but unlink/replace/rename/remove do.
_RELEASE_METHODS: Dict[str, FrozenSet[str]] = {
    "bank": frozenset({"close"}),
    "tmpfile": frozenset({"unlink", "replace", "rename", "remove"}),
    "journal": frozenset({"close"}),
}

_CONTAINER_TRANSFER = frozenset({"append", "add", "insert", "push",
                                 "register", "put", "setdefault"})


def _acquire_kind(expr: Optional[ast.expr]) -> Optional[str]:
    """Resource kind produced by evaluating ``expr``, if any."""
    if not isinstance(expr, ast.Call):
        return None
    dotted = call_name(expr)
    last = dotted.rpartition(".")[2]
    if last == "publish" and "SharedPayloadBank" in dotted:
        return "bank"
    if last == "mkstemp":
        return "tmpfile"
    if last == "RunJournal":
        return "journal"
    return None


# Each acquisition is identified by (kind, line); several variables may
# alias it (fd/tmp_name from one mkstemp, `b2 = bank`). State maps
# variable → acquisition, encoded as a sorted tuple for the solver.
ResState = Tuple[Tuple[str, Tuple[str, int]], ...]


def _call_args_names(call: ast.Call) -> Set[str]:
    names: Set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        name = ref_name(arg)
        if name is not None:
            names.add(name)
    return names


class _ResAnalysis(ForwardAnalysis[ResState]):
    def initial(self) -> ResState:
        return ()

    def join(self, a: ResState, b: ResState) -> ResState:
        return tuple(sorted(set(a) | set(b)))

    # ------------------------------------------------------------------
    def _released_vars(self, stmt: ast.stmt,
                       held: Dict[str, Tuple[str, int]]) -> Set[str]:
        """Variables whose resource a statement discharges."""
        released: Set[str] = set()
        for call in ast.walk(stmt):
            if not isinstance(call, ast.Call):
                continue
            if isinstance(call.func, ast.Attribute):
                recv = ref_name(call.func.value)
                # var.close() / var.unlink() / journal.close()
                if recv in held:
                    kind = held[recv][0]
                    if call.func.attr in _RELEASE_METHODS[kind]:
                        released.add(recv)
                # os.unlink(tmp) / os.close(fd) / os.replace(tmp, dst)
                # / banks.append(bank) ownership transfer
                method = call.func.attr
                for name in _call_args_names(call):
                    if name not in held:
                        continue
                    kind = held[name][0]
                    if (method in _RELEASE_METHODS[kind]
                            or method in _CONTAINER_TRANSFER):
                        released.add(name)
            elif isinstance(call.func, ast.Name):
                if call.func.id in ("close", "unlink"):
                    for name in _call_args_names(call):
                        if name in held:
                            released.add(name)
        # Ownership escapes: return/yield/attribute- or subscript-store.
        for sub in ast.walk(stmt):
            value = None
            if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = sub.value
            elif isinstance(sub, ast.Assign):
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in sub.targets):
                    value = sub.value
            elif isinstance(sub, ast.AnnAssign):
                if isinstance(sub.target, (ast.Attribute, ast.Subscript)):
                    value = sub.value
            if value is not None:
                for node in ast.walk(value):
                    name = ref_name(node)
                    if name in held:
                        released.add(name)
        return released

    # ------------------------------------------------------------------
    def transfer(self, node, state: ResState) -> ResState:
        return self._apply(node, state, acquire=True)

    def transfer_exc(self, node, state: ResState) -> ResState:
        # A statement that raised released what it released before the
        # raise (optimistic) but never completed its acquisition: the
        # exception edge of `bank = publish(...)` carries no bank.
        return self._apply(node, state, acquire=False)

    def _apply(self, node, state: ResState, acquire: bool) -> ResState:
        stmt = node.stmt
        if stmt is None:
            return state
        held: Dict[str, Tuple[str, int]] = dict(state)

        # Guarded release: `if bank: bank.close()` — test names the
        # variable and a release appears under this header. Discharge at
        # the header; the untaken branch means the acquisition is
        # absent/falsy there.
        if isinstance(stmt, ast.If):
            tested = {n for n in (
                ref_name(sub) for sub in ast.walk(stmt.test)) if n}
            guarded = tested & set(held)
            if guarded:
                for name in self._released_vars(stmt, held):
                    if name in guarded:
                        acq = held[name]
                        for var, other in list(held.items()):
                            if other == acq:
                                held.pop(var)
            return tuple(sorted(held.items()))

        # Compound headers other than `if` don't execute their body at
        # this node, so only simple statements release/acquire below.
        is_header = isinstance(stmt, (ast.For, ast.AsyncFor, ast.While,
                                      ast.Try, ast.With, ast.AsyncWith))
        if not is_header:
            for name in self._released_vars(stmt, held):
                acq = held[name]
                for var, other in list(held.items()):
                    if other == acq:
                        held.pop(var)

        # Acquisitions and aliases (with-headers are self-releasing).
        if acquire and not isinstance(stmt, (ast.With, ast.AsyncWith)):
            # `fd, tmp = mkstemp()` binds two names to one acquisition;
            # the on-disk file is what leaks, so track only the *path*
            # (the last tuple element).
            pairs = assignments_of(stmt)
            last_for_expr: Dict[int, str] = {
                id(expr): name for name, expr in pairs
                if _acquire_kind(expr) == "tmpfile"
            }
            for name, value_expr in pairs:
                kind = _acquire_kind(value_expr)
                if kind == "tmpfile" and name != last_for_expr[id(value_expr)]:
                    held.pop(name, None)
                    continue
                if kind is not None:
                    held[name] = (kind, getattr(value_expr, "lineno",
                                                node.lineno))
                    continue
                if value_expr is not None:
                    alias_of = ref_name(value_expr)
                    if alias_of is not None and alias_of in held:
                        held[name] = held[alias_of]
                        continue
                if name in held:
                    held.pop(name)  # rebound to something else
        return tuple(sorted(held.items()))


def check_function(unit: FunctionUnit, rel_path: str) -> List[Diagnostic]:
    """Run the RES lifecycle rules over one function."""
    analysis = _ResAnalysis()
    in_states = analysis.run(unit.cfg)
    exit_state = in_states.get(unit.cfg.exit, ())
    leaks: Dict[Tuple[str, int], str] = {}
    for var, (kind, line) in exit_state:
        leaks.setdefault((kind, line), var)
    diags: List[Diagnostic] = []
    for (kind, line), var in sorted(leaks.items(), key=lambda kv: kv[0][1]):
        rule_id, noun = KIND_RULES[kind]
        diags.append(Diagnostic.of(
            rule_id,
            f"{noun} `{var}` acquired in {unit.qualname} may not be "
            f"released on every path (exception paths count); release "
            f"in a finally or use a with block",
            file=rel_path, line=line,
        ))
    return diags


def check_module(tree: ast.Module, rel_path: str) -> List[Diagnostic]:
    """Run the RES rules over every function in a module."""
    diags: List[Diagnostic] = []
    for unit in iter_functions(tree):
        diags.extend(check_function(unit, rel_path))
    return diags
